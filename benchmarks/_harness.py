"""Shared helper for the benchmark harness.

Every ``bench_*`` file regenerates one paper table or figure: the
``benchmark`` fixture times the regeneration (the machine-model
evaluation), and this helper prints the same rows/series the paper
reports and asserts the experiment's shape checks.
"""

from __future__ import annotations

from repro.suite.experiments import EXPERIMENTS
from repro.suite.runner import render_experiment


def run_experiment(benchmark, exp_id: str):
    """Benchmark one experiment's regeneration; print and verify it."""
    builder = EXPERIMENTS[exp_id]
    exp = benchmark(builder)
    print()
    print(render_experiment(exp))
    assert exp.passed, [str(c) for c in exp.failures]
    return exp
