"""Shared helper for the benchmark harness.

Every ``bench_*`` file regenerates one paper table or figure: the
``benchmark`` fixture times the regeneration (the machine-model
evaluation), and this helper prints the same rows/series the paper
reports and asserts the experiment's shape checks.

With ``pytest benchmarks/ --engine`` the regeneration is routed through
:mod:`repro.engine` instead of calling the builder directly — the first
round executes and populates the content-addressed store, later rounds
measure the cache-hit path (``--jobs N`` and ``--no-cache`` pass
through; see ``conftest.py``).
"""

from __future__ import annotations

from repro.suite.experiments import EXPERIMENTS
from repro.suite.runner import render_experiment

#: Set by conftest when the harness opts into the engine; None = direct.
_ENGINE_CONFIG: dict | None = None


def configure_engine(jobs: int, use_cache: bool, cache_dir: str | None) -> None:
    """Route subsequent ``run_experiment`` calls through repro.engine."""
    global _ENGINE_CONFIG
    _ENGINE_CONFIG = {"jobs": jobs, "use_cache": use_cache,
                      "cache_dir": cache_dir}


def _engine_build(exp_id: str):
    from repro.engine import ResultStore, run_engine

    cfg = _ENGINE_CONFIG
    store = ResultStore(cfg["cache_dir"]) if cfg["cache_dir"] else ResultStore()
    report = run_engine([exp_id], jobs=cfg["jobs"],
                        use_cache=cfg["use_cache"], store=store)
    if report.failures:
        failure = report.failures[0]
        raise RuntimeError(f"engine failed on {exp_id}: {failure.message}")
    return report.experiments[0]


def run_experiment(benchmark, exp_id: str):
    """Benchmark one experiment's regeneration; print and verify it."""
    if _ENGINE_CONFIG is None:
        builder = EXPERIMENTS[exp_id]
        exp = benchmark(builder)
    else:
        exp = benchmark(lambda: _engine_build(exp_id))
    print()
    print(render_experiment(exp))
    assert exp.passed, [str(c) for c in exp.failures]
    return exp
