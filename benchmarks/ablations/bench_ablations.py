"""Ablations of the design choices DESIGN.md section 5 calls out.

Each test flips one machine-model or workload parameter and verifies the
direction and rough size of the effect — the evidence that the model's
shape conclusions are driven by the mechanisms the paper names, not by
accident.
"""

import dataclasses

import pytest

from repro.apps.ccm2 import costmodel as ccm2_cost
from repro.apps.mom import costmodel as mom_cost
from repro.apps.pop import costmodel as pop_cost
from repro.kernels import ia, radabs, vfft, xpose
from repro.machine.node import Node
from repro.machine.presets import sx4_node, sx4_processor


def test_clock_8ns_gives_the_papers_15_percent(benchmark):
    """'An additional 15% performance improvement can be realized ...
    running on a system with an 8.0 ns clock.'"""

    def both():
        bench = radabs.model_mflops(sx4_processor(9.2))
        prod = radabs.model_mflops(sx4_processor(8.0))
        return bench, prod

    bench_rate, prod_rate = benchmark(both)
    print(f"\nRADABS: 9.2ns {bench_rate:.1f} -> 8.0ns {prod_rate:.1f} Mflops")
    assert prod_rate / bench_rate == pytest.approx(1.15, rel=1e-6)


def test_bank_count_drives_xpose_degradation(benchmark):
    """Fewer banks make strided (XPOSE) access worse, COPY untouched."""

    def sweep():
        results = {}
        for banks in (64, 1024):
            proc = sx4_processor()
            proc.memory.banks = banks
            results[banks] = xpose.model_curve(proc).asymptote_mb_per_s
        return results

    rates = benchmark(sweep)
    print(f"\nXPOSE asymptote: 64 banks {rates[64]:.0f}, 1024 banks {rates[1024]:.0f} MB/s")
    assert rates[1024] >= rates[64]


def test_bank_busy_time_drives_gather_rate(benchmark):
    """'List vector access benefits from the very short bank cycle time':
    lengthening the bank busy time must hurt IA."""

    def sweep():
        results = {}
        for busy in (2.0, 16.0):
            proc = sx4_processor()
            proc.memory.bank_busy_cycles = busy
            results[busy] = ia.model_curve(proc).asymptote_mb_per_s
        return results

    rates = benchmark(sweep)
    print(f"\nIA asymptote: busy=2 {rates[2.0]:.0f}, busy=16 {rates[16.0]:.0f} MB/s")
    assert rates[2.0] > rates[16.0]


def test_vector_startup_sets_the_short_vector_knee(benchmark):
    """Halving startup helps short vectors far more than long ones."""

    def sweep():
        out = {}
        for startup in (20.0, 80.0):
            proc = sx4_processor()
            proc.vector.startup_cycles = startup
            out[startup] = (
                vfft.model_mflops(proc, 256, 5),
                vfft.model_mflops(proc, 256, 500),
            )
        return out

    rates = benchmark(sweep)
    short_gain = rates[20.0][0] / rates[80.0][0]
    long_gain = rates[20.0][1] / rates[80.0][1]
    print(f"\nstartup 80->20 cycles: short-vector gain {short_gain:.2f}x, "
          f"long-vector gain {long_gain:.2f}x")
    assert short_gain > 1.5 * long_gain


def test_slt_gather_share_drives_ensemble_degradation(benchmark, node):
    """Removing the irregular traffic (gathers + strided transposes)
    collapses the Table 6 degradation toward the unit-stride floor."""

    def both():
        full = ccm2_cost.ensemble_degradation(node)["degradation"]
        calm_node = sx4_node()
        calm_node.processor.memory.contention_slope = 0.0
        calm = ccm2_cost.ensemble_degradation(calm_node)["degradation"]
        return full, calm

    full, calm = benchmark(both)
    print(f"\nensemble degradation: full model {100 * full:.2f}%, "
          f"no-irregular-contention {100 * calm:.2f}%")
    assert full > 1.5 * calm


def test_mom_diagnostic_interval_ablation(benchmark, node):
    """Printing diagnostics every step vs never: the serial print is a
    real part of MOM's scalability ceiling."""

    def both():
        with_diag = mom_cost.parallel_step(node, cpus=32, with_diagnostics=True)
        without = mom_cost.parallel_step(node, cpus=32, with_diagnostics=False)
        return with_diag.seconds, without.seconds

    with_diag, without = benchmark(both)
    print(f"\nMOM 32-CPU step: with diagnostics {with_diag:.3f}s, without {without:.3f}s")
    assert with_diag > 1.1 * without


def test_mom_sor_decomposition_ablation(benchmark, node):
    """Turning off the block-Jacobi iteration growth (exponent 0) makes
    MOM scale much better — the solver is the other ceiling."""

    def both():
        base = mom_cost.speedup_table(node)[32][1]
        old = mom_cost.SOR_DECOMPOSITION_EXPONENT
        mom_cost.SOR_DECOMPOSITION_EXPONENT = 0.0
        try:
            flat = mom_cost.speedup_table(sx4_node())[32][1]
        finally:
            mom_cost.SOR_DECOMPOSITION_EXPONENT = old
        return base, flat

    base, flat = benchmark(both)
    print(f"\nMOM speedup at 32 CPUs: sqrt-growth {base:.2f}, no growth {flat:.2f}")
    assert flat > base + 2.0


def test_pop_cshift_vectorisation_ablation(benchmark):
    """The pre-release-compiler story: vectorising CSHIFT buys >1.3x."""

    def both():
        return (
            pop_cost.model_mflops(cshift_vectorized=False),
            pop_cost.model_mflops(cshift_vectorized=True),
        )

    scalar, vector = benchmark(both)
    print(f"\nPOP: cshift scalar {scalar:.0f}, vectorised {vector:.0f} Mflops")
    assert vector > 1.3 * scalar


def test_multinode_ccm2_extension(benchmark):
    """Beyond the paper: CCM2 across IXS-connected nodes.  Large problems
    keep scaling; small ones hit the all-to-all latency floor."""
    from repro.apps.ccm2 import costmodel as ccm2_cost_mod

    def sweep():
        return {
            res: ccm2_cost_mod.multinode_scaling(res=res, node_counts=(1, 4, 16))
            for res in ("T42L18", "T170L18")
        }

    curves = benchmark(sweep)
    for res, pts in curves.items():
        line = ", ".join(f"{n}n: {g:.0f} GF" for n, g in pts)
        print(f"\n{res}: {line}")
    eff = {res: dict(pts)[16] / (16 * dict(pts)[1]) for res, pts in curves.items()}
    assert eff["T42L18"] < eff["T170L18"]
