"""Costing-engine throughput: suitebatch vs compiled vs legacy.

The workload is the one the repo actually repeats: cost every registered
trace — the 13 NCAR kernels plus the three applications — on the
calibrated SX-4, the way every table regeneration and parameter sweep
does.  Three engines cost it:

* ``legacy`` walks every op in Python — the reference;
* ``compiled`` lowers each trace to structure-of-arrays columns once
  and memoises the machine-dependent per-op cost vectors, so
  steady-state re-costing collapses to a handful of NumPy expressions
  per trace;
* ``suitebatch`` stacks all 16 traces' columns into one ragged tensor
  and costs the whole suite in a single kernel pass, segment-reducing
  back to per-trace reports — the per-trace Python loop disappears.

This benchmark measures all three in steady state (caches warm — the
sweep regime), asserts the engines agree *exactly* first, and records
the result in ``BENCH_engine.json``.

Standalone (writes the JSON report, exit 1 on parity drift or a missed
speedup gate)::

    python benchmarks/bench_costing_throughput.py \\
        --min-speedup 10 --min-suitebatch-speedup 3

Under pytest the parity gates run as ordinary tests::

    PYTHONPATH=src python -m pytest benchmarks/bench_costing_throughput.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis.traces import TRACE_BUILDERS, build_registered_trace
from repro.machine.operations import Trace
from repro.machine.presets import canonical_machines, sx4_processor
from repro.machine.processor import Processor
from repro.machine.suitebatch import SuiteColumns, cost_suite_batch

__all__ = [
    "build_suite",
    "parity_machines",
    "check_parity",
    "measure_engine",
    "measure_suitebatch",
    "run_benchmark",
    "main",
]

#: Exactly-compared ExecutionReport quantities (name -> getter).
PARITY_FIELDS = (
    ("cycles", lambda r: r.cycles),
    ("seconds", lambda r: r.seconds),
    ("mflops", lambda r: r.mflops),
    ("bandwidth_bytes_per_s", lambda r: r.bandwidth_bytes_per_s),
)


def build_suite() -> list[tuple[str, Trace]]:
    """Every registered trace, in registry (paper) order."""
    return [(trace_id, build_registered_trace(trace_id)) for trace_id in TRACE_BUILDERS]


def parity_machines() -> list[Processor]:
    """The machines parity is asserted on: Table 1 plus both SX-4 clocks."""
    return list(canonical_machines().values())


def check_parity(
    suite: list[tuple[str, Trace]],
    machines: list[Processor],
    dilations: tuple[float, ...] = (1.0, 1.37),
) -> list[str]:
    """Exact three-way comparison; returns mismatch descriptions.

    Legacy vs compiled per trace, then the whole stacked suite through
    :func:`cost_suite_batch` vs compiled — every field compared with
    ``==``, never a tolerance.
    """
    mismatches: list[str] = []
    stacked = SuiteColumns.from_traces(suite)
    for processor in machines:
        for dilation in dilations:
            batch = cost_suite_batch(processor, stacked, dilation)
            for position, (trace_id, trace) in enumerate(suite):
                legacy = processor.execute(trace, dilation, engine="legacy")
                compiled = processor.execute(trace, dilation, engine="compiled")
                for field, get in PARITY_FIELDS:
                    lhs, rhs = get(legacy), get(compiled)
                    if lhs != rhs:
                        mismatches.append(
                            f"{processor.name} / {trace_id} / dilation {dilation}: "
                            f"{field} legacy={lhs!r} compiled={rhs!r}"
                        )
                    suitebatched = get(batch[position])
                    if suitebatched != rhs:
                        mismatches.append(
                            f"{processor.name} / {trace_id} / dilation {dilation}: "
                            f"{field} suitebatch={suitebatched!r} compiled={rhs!r}"
                        )
    return mismatches


def _cost_suite(processor: Processor, suite: list[tuple[str, Trace]], engine: str) -> float:
    total = 0.0
    for _, trace in suite:
        total += processor.execute(trace, engine=engine).seconds
    return total


def measure_engine(
    processor: Processor,
    suite: list[tuple[str, Trace]],
    engine: str,
    rounds: int = 5,
    repeats: int = 20,
) -> float:
    """Best-of-``rounds`` seconds for one steady-state full-suite costing.

    One untimed pass first: for the compiled engine it populates the
    per-trace columns and the machine-cached cost vectors, which is the
    regime every sweep after the first point runs in.
    """
    _cost_suite(processor, suite, engine)
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(repeats):
            _cost_suite(processor, suite, engine)
        best = min(best, (time.perf_counter() - start) / repeats)
    return best


def measure_suitebatch(
    processor: Processor,
    stacked: SuiteColumns,
    rounds: int = 5,
    repeats: int = 20,
) -> float:
    """Best-of-``rounds`` seconds for one fused full-suite costing.

    Same warm-cache regime as :func:`measure_engine`: the untimed pass
    populates the stacked cost columns and the per-trace report memo,
    after which a suite costing is one cache probe plus a list copy —
    the per-trace Python loop is gone entirely.
    """
    cost_suite_batch(processor, stacked)
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(repeats):
            reports = cost_suite_batch(processor, stacked)
            total = 0.0
            for report in reports:
                total += report.seconds
        best = min(best, (time.perf_counter() - start) / repeats)
    return best


def run_benchmark(rounds: int = 5, repeats: int = 20) -> dict:
    """Parity gate + timing; returns the BENCH_engine.json payload."""
    suite = build_suite()
    mismatches = check_parity(suite, parity_machines())
    processor = sx4_processor()

    # Cold compiled pass on fresh traces: compile + first costing, the
    # price a one-shot run pays before the caches exist.
    cold_suite = build_suite()
    start = time.perf_counter()
    _cost_suite(processor, cold_suite, "compiled")
    compiled_cold_s = time.perf_counter() - start

    # Cold suitebatch pass: stack + first fused costing on fresh traces.
    cold_stack_suite = build_suite()
    start = time.perf_counter()
    cost_suite_batch(processor, SuiteColumns.from_traces(cold_stack_suite))
    suitebatch_cold_s = time.perf_counter() - start

    legacy_s = measure_engine(processor, suite, "legacy", rounds, repeats)
    compiled_s = measure_engine(processor, suite, "compiled", rounds, repeats)
    stacked = SuiteColumns.from_traces(suite)
    suitebatch_s = measure_suitebatch(processor, stacked, rounds, repeats)
    return {
        "schema_version": 2,
        "benchmark": "costing_throughput",
        "machine": processor.name,
        "workload": "cost all registered traces once (steady state, caches warm)",
        "traces": len(suite),
        "ops": sum(len(trace) for _, trace in suite),
        "rounds": rounds,
        "repeats": repeats,
        "legacy_s_per_suite": legacy_s,
        "compiled_s_per_suite": compiled_s,
        "compiled_cold_s": compiled_cold_s,
        "suitebatch_s_per_suite": suitebatch_s,
        "suitebatch_cold_s": suitebatch_cold_s,
        "speedup": legacy_s / compiled_s if compiled_s > 0 else float("inf"),
        "suitebatch_speedup_vs_compiled": (
            compiled_s / suitebatch_s if suitebatch_s > 0 else float("inf")
        ),
        "parity": {
            "fields": [field for field, _ in PARITY_FIELDS],
            "engines": ["legacy", "compiled", "suitebatch"],
            "machines_checked": len(parity_machines()),
            "traces_checked": len(suite),
            "exact": not mismatches,
            "mismatches": mismatches,
        },
    }


def test_engines_agree_exactly():
    """Pytest face of the parity gate: zero drift on every machine/trace,
    across all three engines (legacy, compiled, suitebatch)."""
    assert check_parity(build_suite(), parity_machines()) == []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark suitebatch/compiled/legacy trace costing; "
                    "write BENCH_engine.json."
    )
    parser.add_argument("--rounds", type=int, default=5,
                        help="timing rounds per engine (best is kept)")
    parser.add_argument("--repeats", type=int, default=20,
                        help="suite costings per round")
    parser.add_argument("--out", default=str(Path(__file__).resolve().parent.parent
                                             / "BENCH_engine.json"),
                        help="report path (default: repo-root BENCH_engine.json)")
    parser.add_argument("--min-speedup", type=float, default=None, metavar="X",
                        help="fail unless compiled is at least X times faster "
                             "than legacy")
    parser.add_argument("--min-suitebatch-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless the fused suitebatch costing is at "
                             "least X times faster than compiled (same-run "
                             "ratio, machine-independent)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="committed BENCH_engine.json to regress against")
    parser.add_argument("--max-slowdown", type=float, default=0.25, metavar="F",
                        help="fail when compiled_s_per_suite (or, when the "
                             "baseline records it, suitebatch_s_per_suite) "
                             "exceeds the baseline by more than this "
                             "fraction (default: 0.25)")
    args = parser.parse_args(argv if argv is not None else sys.argv[1:])

    payload = run_benchmark(rounds=args.rounds, repeats=args.repeats)
    Path(args.out).write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")

    parity = payload["parity"]
    print(f"traces: {payload['traces']} ({payload['ops']} ops) on {payload['machine']}")
    print(f"legacy:     {payload['legacy_s_per_suite'] * 1e3:8.3f} ms / suite")
    print(f"compiled:   {payload['compiled_s_per_suite'] * 1e3:8.3f} ms / suite "
          f"(cold first pass {payload['compiled_cold_s'] * 1e3:.3f} ms)")
    print(f"suitebatch: {payload['suitebatch_s_per_suite'] * 1e3:8.3f} ms / suite "
          f"(cold stack + cost {payload['suitebatch_cold_s'] * 1e3:.3f} ms)")
    print(f"speedup:  {payload['speedup']:.1f}x compiled vs legacy, "
          f"{payload['suitebatch_speedup_vs_compiled']:.1f}x suitebatch "
          f"vs compiled")
    print(f"parity:   {'exact' if parity['exact'] else 'DRIFT'} over "
          f"{parity['machines_checked']} machines x {parity['traces_checked']} "
          f"traces x {len(parity['engines'])} engines")
    print(f"report:   {args.out}")

    if not parity["exact"]:
        for line in parity["mismatches"][:20]:
            print(f"  parity drift: {line}", file=sys.stderr)
        return 1
    if args.min_speedup is not None and payload["speedup"] < args.min_speedup:
        print(f"error: speedup {payload['speedup']:.1f}x below required "
              f"{args.min_speedup:g}x", file=sys.stderr)
        return 1
    if (
        args.min_suitebatch_speedup is not None
        and payload["suitebatch_speedup_vs_compiled"] < args.min_suitebatch_speedup
    ):
        print(f"error: suitebatch speedup "
              f"{payload['suitebatch_speedup_vs_compiled']:.1f}x below "
              f"required {args.min_suitebatch_speedup:g}x", file=sys.stderr)
        return 1
    if args.baseline is not None:
        baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
        gates = [("compiled_s_per_suite", "compiled")]
        if "suitebatch_s_per_suite" in baseline:
            gates.append(("suitebatch_s_per_suite", "suitebatch"))
        for key, label in gates:
            reference = float(baseline[key])
            measured = payload[key]
            slowdown = measured / reference - 1.0
            print(f"baseline: {label} {reference * 1e3:8.3f} ms / suite "
                  f"({args.baseline}); slowdown {slowdown:+.1%} "
                  f"(gate {args.max_slowdown:+.0%})")
            if slowdown > args.max_slowdown:
                print(f"error: {label} costing regressed {slowdown:+.1%} vs "
                      f"baseline (allowed {args.max_slowdown:+.0%}): "
                      f"{measured * 1e3:.3f} ms vs {reference * 1e3:.3f} ms",
                      file=sys.stderr)
                return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
