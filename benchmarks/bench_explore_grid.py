"""Grid-costing throughput: one NumPy pass vs a per-machine loop.

The workload is the explore engine's reason to exist: cost the full
registered trace suite against a ~1000-machine parameter sweep anchored
at the calibrated SX-4 (clock x pipes x banks), with the six canonical
presets embedded as the parity anchor.  The grid path prices all
machines in one broadcasted pass per trace; the loop baseline
materializes each grid row as a :class:`Processor` and executes the
suite per machine on the compiled engine — the best the repo could do
before :mod:`repro.machine.grid`.

The parity gate runs first and is exact: every canonical preset's
embedded grid column must equal its per-machine compiled report
bit-for-bit on every trace and field.  Results land in
``BENCH_explore.json`` (same shape conventions as ``BENCH_engine.json``).

Standalone (writes the JSON report, exit 1 on parity drift)::

    python benchmarks/bench_explore_grid.py --points 1000

Under pytest the parity gate runs as an ordinary test::

    PYTHONPATH=src python -m pytest benchmarks/bench_explore_grid.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis.traces import TRACE_BUILDERS, build_registered_trace
from repro.explore.engine import cost_suite_grid
from repro.explore.sweep import ParameterSweep, linear_axis, log_axis
from repro.machine.grid import MachineGrid
from repro.machine.presets import CANONICAL_PRESET_IDS, canonical_machines

__all__ = [
    "build_sweep",
    "check_grid_parity",
    "measure_grid",
    "measure_loop",
    "run_benchmark",
    "main",
]

#: Exactly-compared quantities: (field, report getter, GridTraceCost column).
PARITY_FIELDS = (
    ("cycles", lambda r: r.cycles, "cycles"),
    ("seconds", lambda r: r.seconds, "seconds"),
    ("mflops", lambda r: r.mflops, "mflops"),
    ("bandwidth_bytes_per_s", lambda r: r.bandwidth_bytes_per_s, "bandwidth_bytes_per_s"),
)

#: Grid rows the loop baseline materializes and executes (timing the
#: full thousand serially would dominate the benchmark's own runtime;
#: per-machine cost is flat, so a slice extrapolates honestly).
LOOP_SAMPLE_MACHINES = 64


def build_sweep(points: int) -> ParameterSweep:
    """A 3-axis SX-4-anchored sweep of ~``points`` machines + presets."""
    banks_steps = 5
    pipes_steps = 8
    clock_steps = max(1, round(points / (banks_steps * pipes_steps)))
    return ParameterSweep(
        anchor="sx4",
        axes=(
            linear_axis("clock.period_ns", 4.0, 16.0, clock_steps),
            linear_axis("vector.pipes", 2, 16, pipes_steps),
            log_axis("memory.banks", 128, 2048, banks_steps),
        ),
        include_presets=True,
    )


def check_grid_parity(grid: MachineGrid) -> list[str]:
    """Exact grid-vs-compiled comparison on the embedded canonical presets.

    The presets occupy the first rows of an ``include_presets`` grid;
    each must match its per-machine compiled execution bit-for-bit on
    every registered trace.
    """
    machines = canonical_machines()
    mismatches: list[str] = []
    for trace_id in TRACE_BUILDERS:
        trace = build_registered_trace(trace_id)
        cost = None
        for j, (name, processor) in enumerate(machines.items()):
            if grid.names[j] != name:
                mismatches.append(
                    f"grid row {j} is {grid.names[j]!r}, expected preset {name!r}"
                )
                continue
            if cost is None:
                from repro.machine.grid import cost_trace_grid

                cost = cost_trace_grid(trace, grid)
            report = processor.execute(trace, engine="compiled")
            for field, get, column in PARITY_FIELDS:
                lhs, rhs = get(report), float(getattr(cost, column)[j])
                if lhs != rhs:
                    mismatches.append(
                        f"{name} / {trace_id}: {field} "
                        f"compiled={lhs!r} grid={rhs!r}"
                    )
    return mismatches


def measure_grid(sweep: ParameterSweep, rounds: int = 3) -> tuple[float, int]:
    """Best-of-``rounds`` seconds for one cold full-suite grid costing.

    Each round rebuilds the grid so the per-trace cost memo starts
    empty — the honest "price a new design space" number, not a
    dictionary lookup.
    """
    best = float("inf")
    n_machines = 0
    for _ in range(rounds):
        grid = sweep.build()
        n_machines = grid.n_machines
        start = time.perf_counter()
        cost_suite_grid(grid)
        best = min(best, time.perf_counter() - start)
    return best, n_machines


def measure_loop(grid: MachineGrid, sample: int = LOOP_SAMPLE_MACHINES) -> tuple[float, int]:
    """Seconds per machine for the per-machine compiled-loop baseline.

    Materializes ``sample`` grid rows and executes the full suite on
    each; returns (seconds per machine, machines actually timed).
    """
    sample = min(sample, grid.n_machines)
    suite = [build_registered_trace(trace_id) for trace_id in TRACE_BUILDERS]
    processors = [grid.materialize(i) for i in range(sample)]
    start = time.perf_counter()
    for processor in processors:
        for trace in suite:
            processor.execute(trace, engine="compiled")
    elapsed = time.perf_counter() - start
    return elapsed / sample, sample


def run_benchmark(points: int = 1000, rounds: int = 3) -> dict:
    """Parity gate + timing; returns the BENCH_explore.json payload."""
    sweep = build_sweep(points)
    grid = sweep.build()
    mismatches = check_grid_parity(grid)

    grid_s, n_machines = measure_grid(sweep, rounds)
    loop_s_per_machine, loop_sample = measure_loop(grid)
    loop_s_projected = loop_s_per_machine * n_machines

    suite_size = len(TRACE_BUILDERS)
    ops = sum(len(build_registered_trace(t)) for t in TRACE_BUILDERS)
    return {
        "schema_version": 1,
        "benchmark": "explore_grid_throughput",
        "anchor": "sx4",
        "workload": (
            "cost all registered traces against a clock x pipes x banks "
            "sweep (cold grid, presets embedded)"
        ),
        "machines": n_machines,
        "sweep_points": sweep.n_points,
        "traces": suite_size,
        "ops": ops,
        "rounds": rounds,
        "grid_s_per_sweep": grid_s,
        "machines_per_s_grid": n_machines / grid_s if grid_s > 0 else float("inf"),
        "loop_s_per_machine": loop_s_per_machine,
        "loop_sample_machines": loop_sample,
        "loop_s_projected": loop_s_projected,
        "speedup": loop_s_projected / grid_s if grid_s > 0 else float("inf"),
        "parity": {
            "fields": [field for field, _, _ in PARITY_FIELDS],
            "machines_checked": len(CANONICAL_PRESET_IDS),
            "traces_checked": suite_size,
            "exact": not mismatches,
            "mismatches": mismatches,
        },
    }


def test_grid_matches_compiled_on_embedded_presets():
    """Pytest face of the parity gate: zero drift on the canonical rows."""
    assert check_grid_parity(build_sweep(50).build()) == []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark grid vs per-machine suite costing; write BENCH_explore.json."
    )
    parser.add_argument("--points", type=int, default=1000,
                        help="approximate sweep size (default: 1000)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds (best is kept)")
    parser.add_argument("--out", default=str(Path(__file__).resolve().parent.parent
                                             / "BENCH_explore.json"),
                        help="report path (default: repo-root BENCH_explore.json)")
    parser.add_argument("--min-speedup", type=float, default=None, metavar="X",
                        help="fail unless the grid is at least X times faster")
    args = parser.parse_args(argv if argv is not None else sys.argv[1:])

    payload = run_benchmark(points=args.points, rounds=args.rounds)
    Path(args.out).write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")

    parity = payload["parity"]
    print(f"sweep: {payload['machines']} machines x {payload['traces']} traces "
          f"({payload['ops']} ops each suite)")
    print(f"grid:  {payload['grid_s_per_sweep'] * 1e3:9.3f} ms / sweep "
          f"({payload['machines_per_s_grid']:.0f} machines/s)")
    print(f"loop:  {payload['loop_s_projected'] * 1e3:9.3f} ms projected "
          f"({payload['loop_s_per_machine'] * 1e3:.3f} ms/machine over "
          f"{payload['loop_sample_machines']} sampled)")
    print(f"speedup: {payload['speedup']:.1f}x")
    print(f"parity:  {'exact' if parity['exact'] else 'DRIFT'} over "
          f"{parity['machines_checked']} presets x {parity['traces_checked']} traces")
    print(f"report:  {args.out}")

    if not parity["exact"]:
        for line in parity["mismatches"][:20]:
            print(f"  parity drift: {line}", file=sys.stderr)
        return 1
    if args.min_speedup is not None and payload["speedup"] < args.min_speedup:
        print(f"error: speedup {payload['speedup']:.1f}x below required "
              f"{args.min_speedup:g}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
