"""Figure 5: COPY / IA / XPOSE memory bandwidth sweeps on the SX-4/1."""

from _harness import run_experiment


def test_figure5_memory_bandwidth(benchmark):
    exp = run_experiment(benchmark, "figure5")
    assert set(exp.series) == {"COPY", "IA", "XPOSE"}
