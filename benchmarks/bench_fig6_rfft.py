"""Figure 6: RFFT ('scalar' style) Mflops across the three axis families."""

from _harness import run_experiment


def test_figure6_rfft(benchmark):
    exp = run_experiment(benchmark, "figure6")
    assert set(exp.series) == {"2^n", "3*2^n", "5*2^n"}
