"""Figure 7: VFFT ('vector' style) Mflops vs vector length."""

from _harness import run_experiment


def test_figure7_vfft(benchmark):
    exp = run_experiment(benchmark, "figure7")
    assert len(exp.series) == 3
