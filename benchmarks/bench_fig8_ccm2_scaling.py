"""Figure 8: CCM2 Cray-equivalent Gflops vs processors, three resolutions."""

from _harness import run_experiment


def test_figure8_ccm2_scaling(benchmark):
    exp = run_experiment(benchmark, "figure8")
    assert set(exp.series) == {"T42L18", "T106L18", "T170L18"}
