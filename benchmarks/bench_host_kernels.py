"""Host-machine measurements of the functional kernels.

The machine-model benches regenerate the paper's SX-4 numbers; these
benches time the *functional* NumPy implementations on the host — the
suite's original purpose (measure the machine in front of you), applied
to the machine actually in front of us.  KTRIES-style best-of behaviour
comes from pytest-benchmark's own repetition.
"""

import numpy as np
import pytest

from repro.apps.ccm2.dynamics import ShallowWaterLayer, initial_rh_wave
from repro.apps.ccm2.gaussian import GaussianGrid
from repro.apps.ccm2.spectral import SpectralTransform
from repro.kernels import copy as kcopy
from repro.kernels import fftpack, hint, ia, radabs, xpose
from repro.units import MB


@pytest.fixture(scope="module")
def copy_data():
    rng = np.random.default_rng(0)
    return np.asfortranarray(rng.standard_normal((10_000, 100)))


def test_host_copy_kernel(benchmark, copy_data):
    result = benchmark(kcopy.copy_kernel, copy_data)
    bandwidth = copy_data.nbytes / benchmark.stats["mean"] / MB
    print(f"\nhost COPY (1e6 elements): {bandwidth:.0f} MB/s one-way")
    assert kcopy.verify(copy_data, result)


def test_host_ia_kernel(benchmark, copy_data):
    indx = ia.random_index(copy_data.shape[0])
    result = benchmark(ia.ia_kernel, copy_data, indx)
    assert ia.verify(copy_data, indx, result)


def test_host_xpose_kernel(benchmark):
    rng = np.random.default_rng(1)
    data = np.asfortranarray(rng.standard_normal((100, 100, 100)))
    result = benchmark(kxpose_run, data)
    assert xpose.verify(data, result)


def kxpose_run(data):
    return xpose.xpose_kernel(data)


def test_host_real_fft(benchmark):
    rng = np.random.default_rng(2)
    data = rng.standard_normal((240, 50))
    spectrum = benchmark(fftpack.real_forward, data)
    flops = fftpack.real_fft_flops(240) * 50
    mflops = flops / benchmark.stats["mean"] / 1e6
    print(f"\nhost mixed-radix FFT (N=240, M=50): {mflops:.1f} benchmark-Mflops")
    assert np.allclose(spectrum, np.fft.rfft(data, axis=0), atol=1e-8)


def test_host_radabs(benchmark):
    cols = radabs.make_columns(ncol=512, nlev=18)
    absorp, emis = benchmark(radabs.radabs_kernel, cols)
    assert absorp.shape == (18, 18, 512)
    assert float(absorp.max()) < 1.0


def test_host_hint(benchmark):
    result = benchmark(hint.hint_integrate, 400)
    quips = result.iterations * result.qualities[-1] / max(
        benchmark.stats["mean"], 1e-12
    )
    print(f"\nhost HINT: quality {result.qualities[-1]:.0f} after "
          f"{result.iterations} subdivisions")
    assert result.brackets_exact
    assert quips > 0


def test_host_spectral_transform_roundtrip(benchmark):
    transform = SpectralTransform(GaussianGrid(32, 64), trunc=21)
    rng = np.random.default_rng(3)
    field = rng.standard_normal(transform.grid.shape)

    def roundtrip():
        return transform.inverse(transform.forward(field))

    out = benchmark(roundtrip)
    assert out.shape == field.shape


def test_host_shallow_water_step(benchmark):
    transform = SpectralTransform(GaussianGrid(32, 64), trunc=21)
    layer = ShallowWaterLayer(transform)
    state = initial_rh_wave(transform)

    out = benchmark(layer.run, state, 600.0, 2)
    assert layer.total_mass(out) == pytest.approx(layer.total_mass(state))
