"""Section 2: the SX-4 architecture numbers, derived from the model."""

from _harness import run_experiment


def test_sec2_architecture(benchmark):
    exp = run_experiment(benchmark, "sec2")
    assert len(exp.rows) == 6
