"""Section 3: the rejected comparison suites (LINPACK, STREAM), quantified."""

from _harness import run_experiment


def test_sec3_other_benchmarks(benchmark):
    exp = run_experiment(benchmark, "sec3")
    assert any("LINPACK" in str(row[0]) for row in exp.rows)
