"""Section 4.1: PARANOIA + ELEFUNT accuracy pass/fail gate."""

from _harness import run_experiment


def test_sec41_correctness(benchmark):
    exp = run_experiment(benchmark, "sec4.1")
    assert all(row[1] == "pass" for row in exp.rows)
