"""Section 4.4: RADABS 865.9 Y-MP-equivalent Mflops on the SX-4/1."""

from _harness import run_experiment


def test_sec44_radabs(benchmark):
    exp = run_experiment(benchmark, "sec4.4")
    assert abs(exp.rows[0][1] - 865.9) < 0.1 * 865.9
