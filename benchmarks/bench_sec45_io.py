"""Section 4.5: the disk / HIPPI / network benchmarks."""

from _harness import run_experiment


def test_sec45_io(benchmark):
    exp = run_experiment(benchmark, "sec4.5")
    assert len(exp.rows) == 5
