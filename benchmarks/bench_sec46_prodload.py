"""Section 4.6: the PRODLOAD production workload (paper: 93m28s)."""

from _harness import run_experiment


def test_sec46_prodload(benchmark):
    exp = run_experiment(benchmark, "sec4.6")
    assert exp.rows[-1][0] == "TOTAL"
