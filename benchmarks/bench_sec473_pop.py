"""Section 4.7.3: POP at 537 Mflops with the unvectorised CSHIFT."""

from _harness import run_experiment


def test_sec473_pop(benchmark):
    exp = run_experiment(benchmark, "sec4.7.3")
    scalar, vector = exp.rows
    assert vector[1] > scalar[1]
