"""Service submission throughput and warm-hit latency.

The workload is the service's steady state: a burst of submissions
against an already-populated store.  A 100-job cold burst (distinct
``tag`` values, so every body digests to its own job id) executes
through the engine once; the identical warm burst must then be answered
entirely from the spool — one read per submission, ``cache: hit``, no
executor.  The benchmark measures both bursts through the transport-free
:meth:`ServiceApp.handle` path (the socket layer adds only framing) and
records warm-hit p50/p99 latency plus submissions/s in
``BENCH_service.json``.

The embedded gate is the content-addressing contract: the cold burst
must be 0% hits, the warm burst **at least 90%** hits (it is 100% in
practice; the margin absorbs future admission changes, not cache
regressions).

Standalone (writes the JSON report, exit 1 on a gate breach)::

    python benchmarks/bench_service.py --jobs 100

Under pytest the hit-rate gate runs as an ordinary (smaller) test::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.service.app import CACHE_HIT, ServiceApp

__all__ = [
    "submission_bodies",
    "run_burst",
    "percentile",
    "run_benchmark",
    "main",
]

#: Smallest real suite job: one experiment, so the cold burst executes
#: quickly while the warm burst still exercises the full submit path.
SUITE_IDS = ["table2"]

WARM_HIT_RATE_FLOOR = 0.90


def submission_bodies(jobs: int) -> list[bytes]:
    """``jobs`` distinct request bodies for identical work.

    The ``tag`` field varies the job id without changing the resolved
    work — the engine computes once and every later job splices the
    same digests from the store.
    """
    return [
        json.dumps(
            {"kind": "suite", "suite": {"ids": SUITE_IDS}, "tag": f"burst-{i:04d}"}
        ).encode("utf-8")
        for i in range(jobs)
    ]


def run_burst(app: ServiceApp, bodies: list[bytes]) -> tuple[list[float], int]:
    """Submit every body; returns (per-submission seconds, hits)."""
    latencies: list[float] = []
    hits = 0
    for body in bodies:
        start = time.perf_counter()
        response = app.handle("POST", "/v1/jobs", body)
        latencies.append(time.perf_counter() - start)
        payload = json.loads(response.body)
        if payload.get("cache") == CACHE_HIT:
            hits += 1
        app.run_pending()  # execute misses inline, like the worker would
    return latencies, hits


def percentile(samples: list[float], fraction: float) -> float:
    """The ``fraction`` quantile by nearest-rank on sorted samples."""
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def run_benchmark(jobs: int = 100) -> dict:
    """Cold + warm bursts against a fresh root; BENCH_service payload."""
    bodies = submission_bodies(jobs)
    with tempfile.TemporaryDirectory(prefix="bench-service-") as root:
        app = ServiceApp(root=root)

        cold_start = time.perf_counter()
        cold_latencies, cold_hits = run_burst(app, bodies)
        cold_wall_s = time.perf_counter() - cold_start

        warm_start = time.perf_counter()
        warm_latencies, warm_hits = run_burst(app, bodies)
        warm_wall_s = time.perf_counter() - warm_start

    return {
        "schema_version": 1,
        "benchmark": "service_submission_burst",
        "workload": f"{jobs}-job burst of identical suite work "
                    f"({'+'.join(SUITE_IDS)}), distinct tags, cold then warm",
        "jobs": jobs,
        "cold": {
            "hits": cold_hits,
            "hit_rate": cold_hits / jobs,
            "wall_s": cold_wall_s,
            "submit_p50_s": percentile(cold_latencies, 0.50),
            "submit_p99_s": percentile(cold_latencies, 0.99),
        },
        "warm": {
            "hits": warm_hits,
            "hit_rate": warm_hits / jobs,
            "wall_s": warm_wall_s,
            "submit_p50_s": percentile(warm_latencies, 0.50),
            "submit_p99_s": percentile(warm_latencies, 0.99),
            "submissions_per_s": jobs / warm_wall_s if warm_wall_s > 0 else 0.0,
        },
        "gate": {
            "warm_hit_rate_floor": WARM_HIT_RATE_FLOOR,
            "cold_must_miss": True,
        },
    }


def test_warm_burst_hits_without_executor():
    """Pytest face of the gate, on a burst small enough for CI."""
    payload = run_benchmark(jobs=10)
    assert payload["cold"]["hit_rate"] == 0.0
    assert payload["warm"]["hit_rate"] >= WARM_HIT_RATE_FLOOR


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark service submission bursts; write BENCH_service.json."
    )
    parser.add_argument("--jobs", type=int, default=100,
                        help="submissions per burst (default: 100)")
    parser.add_argument("--out", default=str(Path(__file__).resolve().parent.parent
                                             / "BENCH_service.json"),
                        help="report path (default: repo-root BENCH_service.json)")
    args = parser.parse_args(argv if argv is not None else sys.argv[1:])

    payload = run_benchmark(jobs=args.jobs)
    Path(args.out).write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")

    cold, warm = payload["cold"], payload["warm"]
    print(f"burst: {payload['jobs']} submissions of identical work, "
          f"cold then warm")
    print(f"cold: {cold['hit_rate']:7.1%} hits, "
          f"p50 {cold['submit_p50_s'] * 1e3:7.3f} ms, "
          f"p99 {cold['submit_p99_s'] * 1e3:7.3f} ms")
    print(f"warm: {warm['hit_rate']:7.1%} hits, "
          f"p50 {warm['submit_p50_s'] * 1e3:7.3f} ms, "
          f"p99 {warm['submit_p99_s'] * 1e3:7.3f} ms, "
          f"{warm['submissions_per_s']:,.0f} submissions/s")
    print(f"report: {args.out}")

    if cold["hit_rate"] != 0.0:
        print(f"error: cold burst hit rate {cold['hit_rate']:.1%} != 0% — "
              f"a fresh root answered from a cache that cannot exist",
              file=sys.stderr)
        return 1
    if warm["hit_rate"] < WARM_HIT_RATE_FLOOR:
        print(f"error: warm burst hit rate {warm['hit_rate']:.1%} below the "
              f"{WARM_HIT_RATE_FLOOR:.0%} floor — content addressing is "
              f"not short-circuiting resubmissions", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
