"""Table 1: HINT MQUIPS vs RADABS Mflops across four single processors."""

from _harness import run_experiment


def test_table1_hint_vs_radabs(benchmark):
    exp = run_experiment(benchmark, "table1")
    # The headline: the rank inversion between the two metrics.
    hint_row, radabs_row = exp.rows
    assert hint_row[2] == max(hint_row[1:])  # RS6K wins HINT
    assert radabs_row[4] == max(radabs_row[1:])  # Y-MP wins RADABS
