"""Table 2: the benchmarked SX-4/32's specification sheet."""

from _harness import run_experiment


def test_table2_specs(benchmark):
    exp = run_experiment(benchmark, "table2")
    assert dict(exp.rows)["Clock Rate"] == "9.2 ns"
