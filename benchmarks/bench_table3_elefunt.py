"""Table 3: intrinsic-function throughput (Mcalls/s) on the SX-4/1."""

from _harness import run_experiment


def test_table3_elefunt(benchmark):
    exp = run_experiment(benchmark, "table3")
    assert len(exp.rows[0]) == 5  # EXP LOG PWR SIN SQRT
