"""Table 4: CCM2 resolutions, grids, spacings and timesteps."""

from _harness import run_experiment


def test_table4_resolutions(benchmark):
    exp = run_experiment(benchmark, "table4")
    assert [row[0] for row in exp.rows] == [
        "T42L18", "T63L18", "T85L18", "T106L18", "T170L18",
    ]
