"""Table 5: one-year climate simulations at T42L18 and T63L18."""

from _harness import run_experiment


def test_table5_one_year(benchmark):
    exp = run_experiment(benchmark, "table5")
    t42, t63 = exp.rows
    assert t63[1] > 2 * t42[1]  # T63 costs ~2.6x T42
