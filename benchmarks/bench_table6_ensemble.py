"""Table 6: the ensemble test (1 vs 8 concurrent 4-CPU CCM2 jobs)."""

from _harness import run_experiment


def test_table6_ensemble(benchmark):
    exp = run_experiment(benchmark, "table6")
    degradation = exp.rows[-1][1]
    assert degradation < 5.0  # percent
