"""Table 7: MOM 350-step times and speedups, 1 to 32 CPUs."""

from _harness import run_experiment


def test_table7_mom(benchmark):
    exp = run_experiment(benchmark, "table7")
    cpus = [row[0] for row in exp.rows]
    assert cpus == [1, 4, 8, 16, 32]
