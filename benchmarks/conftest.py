"""Fixtures for the benchmark harness (see _harness.py for the runner)."""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))


def pytest_addoption(parser):
    group = parser.getgroup("repro engine")
    group.addoption("--engine", action="store_true", default=False,
                    help="route experiment regeneration through repro.engine "
                         "(content-addressed cache + parallel fan-out)")
    group.addoption("--jobs", type=int, default=1,
                    help="engine worker processes (with --engine)")
    group.addoption("--no-cache", action="store_true", default=False,
                    help="with --engine: bypass the result store")
    group.addoption("--engine-cache-dir", default=None,
                    help="with --engine: result store root "
                         "(default: .repro-cache)")


def pytest_configure(config):
    if config.getoption("--engine", default=False):
        import _harness

        _harness.configure_engine(
            jobs=config.getoption("--jobs"),
            use_cache=not config.getoption("--no-cache"),
            cache_dir=config.getoption("--engine-cache-dir"),
        )


@pytest.fixture
def sx4():
    from repro.machine.presets import sx4_processor

    return sx4_processor()


@pytest.fixture
def node():
    from repro.machine.presets import sx4_node

    return sx4_node()
