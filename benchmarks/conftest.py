"""Fixtures for the benchmark harness (see _harness.py for the runner)."""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))


@pytest.fixture
def sx4():
    from repro.machine.presets import sx4_processor

    return sx4_processor()


@pytest.fixture
def node():
    from repro.machine.presets import sx4_node

    return sx4_node()
