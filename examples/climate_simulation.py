#!/usr/bin/env python
"""Run the CCM2 analogue: spectral dynamics + physics + SLT transport.

A two-day T21 simulation (toy resolution — the benchmark resolutions of
Table 4 live in ``repro.apps.ccm2.resolutions``), printing the model's
health diagnostics as it runs, then the cost model's view of the same
workload on the SX-4.

Run:  python examples/climate_simulation.py
"""

from repro.apps.ccm2 import costmodel
from repro.apps.ccm2.gaussian import GaussianGrid
from repro.apps.ccm2.model import CCM2Model
from repro.machine.presets import sx4_node
from repro.units import fmt_time

# ---- the functional model ------------------------------------------------
model = CCM2Model(GaussianGrid(32, 64), trunc=21, nlev=4)  # dt auto-set below CFL
steps_per_day = int(86400 / model.dt)
print(f"T21L4 toy run: {model.grid.nlat}x{model.grid.nlon} grid, "
      f"dt={model.dt:.0f}s, {steps_per_day} steps/day")
print(f"{'step':>5} {'mass':>12} {'energy':>14} {'q_min':>8} {'q_max':>8}")

for day in range(2):
    for _ in range(steps_per_day):
        diag = model.step()
        if not diag.healthy:
            raise SystemExit(f"model unhealthy at step {diag.step}: {diag}")
    print(f"{diag.step:>5} {diag.mass:12.2f} {diag.energy:14.4e} "
          f"{diag.moisture_min:8.4f} {diag.moisture_max:8.4f}")
    daily_mean = model.flush_history()
    print(f"      day {day + 1} history mean geopotential: "
          f"{daily_mean.mean():.1f} m^2/s^2")

print("\nmoisture stayed shape-preserved (no new extrema) and mass is "
      "conserved by the spectral flux form.")

# ---- the cost model's view -------------------------------------------------
node = sx4_node()
print(f"\nThe same workload priced on the {node.name} at Table 4 resolutions:")
print(f"{'resolution':>10} {'1 CPU/step':>12} {'32 CPU/step':>12} {'Gflops@32':>10}")
for res in ("T42L18", "T106L18", "T170L18"):
    one = costmodel.parallel_step(node, res, 1)
    many = costmodel.parallel_step(node, res, 32)
    print(f"{res:>10} {fmt_time(one.seconds):>12} {fmt_time(many.seconds):>12} "
          f"{many.flop_equivalents / many.seconds / 1e9:>10.1f}")

year = costmodel.year_simulation_seconds(node, "T42L18")
print(f"\none simulated year at T42L18: {fmt_time(year['total_seconds'])} "
      f"including {fmt_time(year['io_seconds'])} of history I/O "
      f"({year['io_bytes'] / 1e9:.1f} GB written)")
