#!/usr/bin/env python
"""Compare machines across the kernel suite — the Table 1 exercise, wider.

Runs HINT, RADABS, the memory benchmarks and the FFT pair over the SX-4
and the paper's four comparators, printing the kind of cross-machine
table a procurement would look at, plus the Figure 5 bandwidth chart.

Run:  python examples/machine_comparison.py
"""

from repro.kernels import copy as kcopy
from repro.kernels import hint, ia, radabs, rfft, vfft, xpose
from repro.machine.presets import sx4_processor, table1_machines
from repro.suite.figures import render_ascii_chart
from repro.suite.tables import render_table

machines = {"NEC SX-4/1": sx4_processor(), **table1_machines()}

rows = []
for name, proc in machines.items():
    rows.append(
        [
            name,
            round(proc.peak_flops / 1e6),
            round(hint.model_mquips(proc), 1),
            round(radabs.model_mflops(proc), 1),
            round(rfft.model_mflops(proc, 256), 1) if proc.is_vector_machine else "-",
            round(vfft.model_mflops(proc, 256, 200), 1) if proc.is_vector_machine else "-",
        ]
    )
print(
    render_table(
        ["machine", "peak Mflops", "HINT MQUIPS", "RADABS Mflops",
         "RFFT(256)", "VFFT(256,200)"],
        rows,
        title="Kernel suite across machines (model values; Table 1 extended)",
    )
)
print(
    "\nNote the Table 1 story: HINT ranks the cache workstations above the\n"
    "Crays; RADABS — the climate workload — says the opposite, by an order\n"
    "of magnitude.  'Benchmarks must characterize the anticipated workload.'\n"
)

# Figure 5 for the SX-4: the three memory access patterns.
sx4 = machines["NEC SX-4/1"]
series = {}
for label, module in (("COPY", kcopy), ("IA", ia), ("XPOSE", xpose)):
    ns, bws = module.model_curve(sx4).series()
    series[label] = list(zip(map(float, ns), bws))
print(
    render_ascii_chart(
        series,
        title="Figure 5: SX-4/1 memory bandwidth (MB/s) vs axis length",
        x_label="axis length N",
        y_label="MB/s",
        log_x=True,
    )
)
