#!/usr/bin/env python
"""Run both ocean models: MOM (rigid lid) and POP (implicit free surface).

MOM spins up a circulation from a warm pool, solving the barotropic
streamfunction by SOR each step and printing diagnostics every 10 steps
(the cadence the paper blames for part of Table 7's modest scalability).
POP disperses a surface-height bump through its conjugate-gradient
free-surface solver.  Both then get priced on the SX-4 machine model.

Run:  python examples/ocean_models.py
"""

import numpy as np

from repro.apps.mom import costmodel as mom_cost
from repro.apps.mom.grid import OceanGrid
from repro.apps.mom.model import MOMModel
from repro.apps.mom.state import warm_pool_state
from repro.apps.pop import costmodel as pop_cost
from repro.apps.pop.model import POPModel
from repro.machine.presets import sx4_node

# ---- MOM: rigid-lid spin-up ------------------------------------------------
grid = OceanGrid(nlon=36, nlat=24, nlev=5)
mom = MOMModel(grid, dt=1800.0)
mom.set_state(warm_pool_state(grid, anomaly_deg=3.0))
print(f"MOM {grid.nlon}x{grid.nlat}x{grid.nlev} basin, warm-pool start")
print(f"{'step':>5} {'mean T':>8} {'KE':>12} {'max speed':>10} {'SOR iters':>9}")
for diag in mom.run(40):
    print(f"{diag.step:>5} {diag.mean_temperature:8.3f} "
          f"{diag.kinetic_energy:12.4e} {diag.max_speed:10.4f} "
          f"{diag.sor_iterations:>9}")
assert mom.state.kinetic_energy > 0, "the pressure anomaly must drive flow"
print("-> a circulation spun up from the baroclinic pressure gradient.\n")

# ---- POP: free-surface gravity waves ----------------------------------------
pop = POPModel(OceanGrid(nlon=36, nlat=24, nlev=5), dt=900.0)
eta = np.zeros(pop.grid.shape2d)
eta[12, 18] = 0.5  # half-metre bump mid-basin
pop.set_surface_anomaly(eta)
print("POP free-surface: dispersing a 0.5 m surface bump")
print(f"{'step':>5} {'max |eta|':>10} {'CG iters':>9}")
for diag in pop.run(8):
    print(f"{diag.step:>5} {diag.max_eta:10.4f} {diag.cg_iterations:>9}")
print("-> the implicit solver damps and spreads the bump; volume is "
      f"conserved to {abs(pop.diagnostics[-1].mean_eta - eta.mean()):.2e} m.\n")

# ---- the benchmarks' performance view ----------------------------------------
node = sx4_node()
print("Table 7 regenerated (MOM, 350 steps of the 1-degree benchmark):")
print(f"{'CPUs':>5} {'model s':>9} {'paper s':>9} {'speedup':>8}")
for cpus, (t, s) in mom_cost.speedup_table(node).items():
    paper_t, _ = mom_cost.PAPER_TABLE7[cpus]
    print(f"{cpus:>5} {t:9.1f} {paper_t:9.1f} {s:8.2f}")

scalar = pop_cost.model_mflops(cshift_vectorized=False)
vector = pop_cost.model_mflops(cshift_vectorized=True)
print(f"\nPOP on one SX-4 CPU: {scalar:.0f} Mflops with the pre-release "
      f"compiler's scalar CSHIFT (paper: 537); {vector:.0f} once CSHIFT "
      "vectorises.")
