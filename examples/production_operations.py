#!/usr/bin/env python
"""Operate the machine like a centre would: NQS, checkpoints, SFS, blocks.

The paper spends Section 2.6 on SUPER-UX because NCAR was buying a
*production environment*.  This example exercises that layer end to end:

1. partition the node with Resource Blocks,
2. submit a mixed workload through NQS queues and watch qcat,
3. checkpoint a running climate model, "crash", restore and verify the
   continuation is bit-identical,
4. write the model's history through the SFS write-back cache and flush.

Run:  python examples/production_operations.py
"""

import numpy as np

from repro.apps.ccm2.gaussian import GaussianGrid
from repro.apps.ccm2.model import CCM2Model
from repro.scheduler.resource_blocks import ResourceBlockSet
from repro.superux.checkpoint import restore_model, take_checkpoint
from repro.superux.nqs import BatchJob, NQSQueue, QueueComplex
from repro.superux.sfs import SFSFileSystem
from repro.units import MB, fmt_bytes, fmt_time

# ---- 1. resource blocks -------------------------------------------------------
blocks = ResourceBlockSet.production_default()
print("Resource blocks:", ", ".join(
    f"{b.name}({b.min_cpus}..{b.max_cpus} CPUs, {b.policy})" for b in blocks.blocks))
chosen = blocks.place(2, 0.5, policy="interactive")
print(f"  interactive login placed on block {chosen.name!r}\n")

# ---- 2. NQS -------------------------------------------------------------------
complex_ = QueueComplex(
    queues=[
        NQSQueue("express", priority=10, max_cpus_per_job=4, max_run_seconds=600,
                 run_limit=2),
        NQSQueue("climate", priority=0, max_cpus_per_job=32, run_limit=4),
    ],
    node_cpus=32,
)
chatty = BatchJob("ccm2-t42", cpus=16, memory_gb=2.0, duration_s=3600,
                  output_script=((0.0, "NSTEP=0"), (0.5, "NSTEP=36"), (1.0, "NSTEP=72")))
complex_.submit(chatty, "climate")
complex_.submit(BatchJob("quick-plot", cpus=2, memory_gb=0.2, duration_s=120), "express")
complex_.submit(BatchJob("mom-spinup", cpus=16, memory_gb=2.0, duration_s=1800), "climate")
makespan = complex_.run()
print(f"NQS ran {len(complex_.accounting)} jobs, makespan {fmt_time(makespan)}")
for rec in complex_.accounting:
    print(f"  {rec.job:12s} queue={rec.queue:8s} waited {rec.queued_s:6.0f}s "
          f"ran {rec.ran_s:6.0f}s ({rec.cpu_seconds:,.0f} CPU-s)")
print(f"qcat of {chatty.name} at completion: {chatty.qcat(now=makespan)}\n")

# ---- 3. checkpoint/restart ----------------------------------------------------
model = CCM2Model(GaussianGrid(32, 64), trunc=21, nlev=4, semi_implicit=True)
model.run(5)
blob = take_checkpoint(model)
print(f"checkpoint after step {model.step_count}: {fmt_bytes(blob.nbytes)}")
model.run(5)
reference = model.state.phi.copy()

fresh = CCM2Model(GaussianGrid(32, 64), trunc=21, nlev=4, semi_implicit=True)
restore_model(fresh, blob)
fresh.run(5)
identical = np.array_equal(fresh.state.phi, reference)
print(f"restored model continued bit-identically: {identical}\n")
assert identical

# ---- 4. SFS history writes ----------------------------------------------------
fs = SFSFileSystem(write_back=True)
fs.create("h0001.nc")
write_time = sum(fs.write("h0001.nc", 4 * MB) for _ in range(30))
flush_time = fs.flush("h0001.nc")
print(f"SFS: 30 history records ({fmt_bytes(30 * 4 * MB)}) acknowledged in "
      f"{fmt_time(write_time)} via the XMU cache; background flush cost "
      f"{fmt_time(flush_time)} of disk time.")
