#!/usr/bin/env python
"""Quickstart: the two faces of the reproduction in ~40 lines.

1. The **machine model**: build an SX-4 processor, describe a workload
   as operation descriptors, and read off sustained performance.
2. The **functional suite**: run a real kernel (RADABS) in NumPy and a
   real correctness test (PARANOIA) on the host.

Run:  python examples/quickstart.py
"""

from repro.kernels import paranoia, radabs
from repro.machine import Trace, VectorOp, presets
from repro.units import fmt_flops, fmt_rate

# ---- 1. the machine model ---------------------------------------------------
sx4 = presets.sx4_processor()  # the 9.2 ns machine the paper benchmarked
print(f"machine: {sx4.name}")
print(f"  peak:  {fmt_flops(sx4.peak_flops)} per processor")
print(f"  port:  {fmt_rate(sx4.port_bandwidth_bytes_per_s)} to memory")

# Describe a daxpy-like loop: y[i] += a * x[i] over one million elements.
daxpy = Trace(
    [
        VectorOp(
            "daxpy",
            length=1_000_000,
            flops_per_element=2.0,
            loads_per_element=2.0,
            stores_per_element=1.0,
        )
    ],
    name="daxpy 1e6",
)
report = sx4.execute(daxpy)
print(f"\ndaxpy over 1e6 elements: {report.seconds * 1e3:.2f} ms "
      f"-> {fmt_flops(report.mflops * 1e6)} sustained")

# The paper's headline kernel: RADABS, in Cray-Y-MP-equivalent Mflops.
print(f"RADABS on the SX-4/1: {radabs.model_mflops(sx4):.1f} Mflops "
      "(paper: 865.9)")

# ---- 2. the functional suite -------------------------------------------------
cols = radabs.make_columns(ncol=256, nlev=18)
absorptivity, emissivity = radabs.radabs_kernel(cols)
print(f"\nfunctional RADABS: absorptivity matrix {absorptivity.shape}, "
      f"max {absorptivity.max():.3f} (must stay below 1)")

report64 = paranoia.run_paranoia()
print(f"PARANOIA on this host's float64: "
      f"{'PASSED' if report64.passed else 'FAILED'} "
      f"({len(report64.checks)} probes)")
