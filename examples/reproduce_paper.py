#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one run.

Thin wrapper over the suite runner: prints each experiment's rows/series,
the paper's reference values, and the shape-check verdicts, ending with
the overall reproduction summary.  Equivalent to::

    python -m repro.suite.runner

Run:  python examples/reproduce_paper.py [exp_id ...]
      (e.g. ``python examples/reproduce_paper.py table7 figure8``)
"""

import sys

from repro.suite.runner import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
