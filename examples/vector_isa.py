#!/usr/bin/env python
"""Program the SX-4's vector unit directly: the executable ISA model.

Assembles the COPY, DAXPY and IA (gather) inner loops as vector
instruction programs, runs them on the functional vector-machine
simulator, verifies the results numerically, and compares the simulated
cycle counts with the analytic trace model — the two layers of the
machine model cross-checking each other.

Run:  python examples/vector_isa.py
"""

import numpy as np

from repro.machine.isa import (
    Instr,
    VectorMachine,
    assemble_copy,
    assemble_daxpy,
    assemble_gather,
)
from repro.machine.operations import Trace, VectorOp
from repro.machine.presets import sx4_processor

N = 50_000
rng = np.random.default_rng(0)
proc = sx4_processor()

print(f"vector machine: {proc.name}, {proc.vector.pipes} pipes, "
      f"vl_max={proc.vector.register_length}\n")

# ---- COPY ---------------------------------------------------------------------
vm = VectorMachine(memory_words=4 * N)
data = rng.standard_normal(N)
vm.memory[0:N] = data
cycles = vm.run(assemble_copy(src=0, dst=2 * N, n=N))
assert np.array_equal(vm.memory[2 * N : 3 * N], data)
analytic = proc.execute(
    Trace([VectorOp("copy", length=N, loads_per_element=1, stores_per_element=1)])
).cycles
print(f"COPY   {N} elements: ISA {cycles:10.0f} cycles "
      f"({cycles / N:.3f}/elem) | analytic {analytic:10.0f} "
      f"(load/store paths overlapped)")

# ---- DAXPY --------------------------------------------------------------------
vm = VectorMachine(memory_words=4 * N)
x, y = rng.standard_normal(N), rng.standard_normal(N)
vm.memory[0:N] = x
vm.memory[N : 2 * N] = y
cycles = vm.run(assemble_daxpy(x=0, y=N, n=N, alpha=2.5))
assert np.allclose(vm.memory[N : 2 * N], y + 2.5 * x)
flops = 2 * N
mflops = flops / (cycles * proc.clock.period_s) / 1e6
print(f"DAXPY  {N} elements: ISA {cycles:10.0f} cycles -> {mflops:7.1f} Mflops "
      f"at the {proc.clock.period_ns:g} ns clock")

# ---- gather (the IA benchmark's inner loop) -------------------------------------
vm = VectorMachine(memory_words=5 * N)
indx = rng.permutation(N)
vm.memory[0:N] = data
vm.memory[N : 2 * N] = indx.astype(float)
cycles_ia = vm.run(assemble_gather(src=0, index=N, dst=3 * N, n=N))
assert np.array_equal(vm.memory[3 * N : 4 * N], data[indx])
vm2 = VectorMachine(memory_words=5 * N)
vm2.memory[0:N] = data
cycles_copy = vm2.run(assemble_copy(src=0, dst=3 * N, n=N))
print(f"GATHER {N} elements: ISA {cycles_ia:10.0f} cycles — "
      f"{cycles_ia / cycles_copy:.1f}x the COPY cycles "
      f"(the Figure 5 IA-vs-COPY gap, at instruction level)")

# ---- a hand-written reduction ---------------------------------------------------
vm = VectorMachine()
vm.memory[0:256] = np.arange(256.0)
vm.run([
    Instr("lds", vd=0, imm=0, stride=1),
    Instr("vmuls", vd=1, vs1=0, imm=2.0),
    Instr("vsum", vd=0, vs1=1),
])
assert vm.sregs[0] == 2.0 * np.arange(256).sum()
print(f"\nhand-written program: sum(2*i for i in 0..255) = {vm.sregs[0]:.0f} "
      f"in {vm.instructions_retired} instructions, {vm.cycles:.0f} cycles")
