"""Setuptools shim.

The offline environment this project targets ships setuptools without the
``wheel`` package, so PEP-517/660 editable installs cannot build editable
wheels.  Keeping a classic ``setup.py`` (and no ``[build-system]`` table in
``pyproject.toml``) lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path, which works everywhere.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
