"""repro — the NCAR Benchmark Suite and an SX-4 performance-model simulator.

A reproduction of Hammond, Loft & Tannenbaum, *"Architecture and
Application: The Performance of the NEC SX-4 on the NCAR Benchmark
Suite"* (SC 1996).

Subpackages
-----------
``repro.machine``
    Performance models of the SX-4 (CPU, banked memory, XMU, IOP, IXS,
    SMP node) and the Table 1 comparator machines.
``repro.kernels``
    The thirteen NCAR kernel benchmarks (PARANOIA, ELEFUNT, COPY, IA,
    XPOSE, RFFT, VFFT, RADABS, …) plus HINT, each with a functional NumPy
    implementation and a machine-model trace builder.
``repro.apps``
    The three complete geophysical applications: CCM2 (spectral transform
    atmosphere), MOM (rigid-lid finite-difference ocean) and POP
    (implicit free-surface ocean).
``repro.iosim``
    Disk, HIPPI and network benchmark models (Section 4.5).
``repro.scheduler``
    Resource blocks and the PRODLOAD production-workload simulation.
``repro.suite``
    The suite runner and the per-table / per-figure experiment harness.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
