"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``suite [exp_id ...]``
    Regenerate the paper's tables/figures (all, or the named ones) and
    print the shape-check report.  Exit status 1 on any failed check.
``suite --save PATH`` / ``suite --compare PATH``
    Archive the run to JSON, or compare it against an archived baseline
    and report drifts.
``machine``
    Print the modelled machines and their headline characteristics.
``list``
    List the available experiment ids.
"""

from __future__ import annotations

import argparse

from repro.suite import archive
from repro.units import GB, MEGA
from repro.suite.experiments import EXPERIMENTS
from repro.suite.runner import render_experiment, run_suite


def _cmd_suite(args: argparse.Namespace) -> int:
    report = run_suite(args.experiments or None)
    if not args.quiet:
        for exp in report.experiments:
            print(render_experiment(exp))
            print()
    print(report.summary())
    if args.save:
        path = archive.save_run(report.experiments, args.save)
        print(f"archived run to {path}")
    if args.compare:
        baseline = archive.load_run(args.compare)
        drifts = archive.compare_runs(baseline, report.experiments)
        if drifts:
            print(f"{len(drifts)} drifts vs {args.compare}:")
            for drift in drifts:
                print(f"  [{drift.kind}] {drift.exp_id}: {drift.description}")
            return 1
        print(f"no drifts vs {args.compare}")
    return 0 if report.passed else 1


def _cmd_machine(_: argparse.Namespace) -> int:
    from repro.machine.presets import sx4_processor, table1_machines
    from repro.suite.tables import render_table

    rows = []
    for name, proc in {"NEC SX-4/1 (9.2ns)": sx4_processor(),
                       "NEC SX-4/1 (8.0ns)": sx4_processor(8.0),
                       **table1_machines()}.items():
        rows.append([
            name,
            f"{proc.clock.period_ns:g} ns",
            f"{proc.peak_flops / MEGA:,.0f}",
            "vector" if proc.is_vector_machine else "cache",
            f"{proc.port_bandwidth_bytes_per_s / GB:.1f}",
        ])
    print(render_table(
        ["machine", "clock", "peak Mflops", "class", "memory GB/s"],
        rows, title="Modelled machines",
    ))
    return 0


def _cmd_list(_: argparse.Namespace) -> int:
    for exp_id, builder in EXPERIMENTS.items():
        doc = (builder.__doc__ or "").strip().splitlines()[0]
        print(f"{exp_id:<10} {doc}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the SC'96 NEC SX-4 / NCAR Benchmark Suite paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_suite = sub.add_parser("suite", help="regenerate tables/figures")
    p_suite.add_argument("experiments", nargs="*", help="experiment ids (default: all)")
    p_suite.add_argument("--save", metavar="PATH", help="archive the run as JSON")
    p_suite.add_argument("--compare", metavar="PATH", help="compare against an archive")
    p_suite.add_argument("--quiet", action="store_true", help="summary only")
    p_suite.set_defaults(func=_cmd_suite)

    p_machine = sub.add_parser("machine", help="list modelled machines")
    p_machine.set_defaults(func=_cmd_machine)

    p_list = sub.add_parser("list", help="list experiment ids")
    p_list.set_defaults(func=_cmd_list)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
