"""Static analysis: vectorization diagnostics and repo-invariant lint.

Two analyzers share one diagnostics vocabulary
(:class:`~repro.analysis.diagnostics.Diagnostic`):

* the **trace analyzer** (:mod:`repro.analysis.traces` +
  :mod:`repro.analysis.rules`) inspects machine-model traces for the
  coding-style anti-patterns Section 4.4 of the paper identifies — short
  vectors, bank-conflict strides, gather-dominated and scalar-dominated
  loops — and quantifies each with the analytic model (advisory);
* the **repo linter** (:mod:`repro.analysis.repolint`) enforces the
  repository's structural invariants over the AST (CI-gating);
* the **effect analyzer** (:mod:`repro.analysis.effects`) builds an
  import-resolved call graph over a whole package, propagates
  per-function effect summaries to a fixpoint, and proves the engine's
  cache-key determinism and pool-worker purity contracts (the DET rule
  family, CI-gating against a checked-in baseline).

Run any of them from the command line::

    python -m repro.analysis trace radabs
    python -m repro.analysis repolint
    python -m repro.analysis effects src/repro
"""

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Severity,
    count_by_rule,
)
from repro.analysis.effects import (
    Effect,
    EffectContract,
    EffectsReport,
    analyze_and_check,
    analyze_tree,
    check_contracts,
    default_contract,
    effect_chain,
)
from repro.analysis.repolint import lint_file, lint_repo, repo_root
from repro.analysis.rules import ALL_RULES
from repro.analysis.traces import (
    EXPERIMENT_TRACE_IDS,
    TRACE_BUILDERS,
    analyze_benchmark,
    analyze_trace,
    build_registered_trace,
    experiment_summaries,
)

__all__ = [
    "Diagnostic",
    "DiagnosticReport",
    "Severity",
    "count_by_rule",
    "ALL_RULES",
    "analyze_trace",
    "analyze_benchmark",
    "build_registered_trace",
    "experiment_summaries",
    "TRACE_BUILDERS",
    "EXPERIMENT_TRACE_IDS",
    "lint_repo",
    "lint_file",
    "repo_root",
    "Effect",
    "EffectContract",
    "EffectsReport",
    "analyze_tree",
    "analyze_and_check",
    "check_contracts",
    "default_contract",
    "effect_chain",
]
