"""Static analysis: vectorization diagnostics and repo-invariant lint.

Two analyzers share one diagnostics vocabulary
(:class:`~repro.analysis.diagnostics.Diagnostic`):

* the **trace analyzer** (:mod:`repro.analysis.traces` +
  :mod:`repro.analysis.rules`) inspects machine-model traces for the
  coding-style anti-patterns Section 4.4 of the paper identifies — short
  vectors, bank-conflict strides, gather-dominated and scalar-dominated
  loops — and quantifies each with the analytic model (advisory);
* the **repo linter** (:mod:`repro.analysis.repolint`) enforces the
  repository's structural invariants over the AST (CI-gating).

Run either from the command line::

    python -m repro.analysis trace radabs
    python -m repro.analysis --repolint
"""

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Severity,
    count_by_rule,
)
from repro.analysis.repolint import lint_file, lint_repo, repo_root
from repro.analysis.rules import ALL_RULES
from repro.analysis.traces import (
    EXPERIMENT_TRACE_IDS,
    TRACE_BUILDERS,
    analyze_benchmark,
    analyze_trace,
    build_registered_trace,
    experiment_summaries,
)

__all__ = [
    "Diagnostic",
    "DiagnosticReport",
    "Severity",
    "count_by_rule",
    "ALL_RULES",
    "analyze_trace",
    "analyze_benchmark",
    "build_registered_trace",
    "experiment_summaries",
    "TRACE_BUILDERS",
    "EXPERIMENT_TRACE_IDS",
    "lint_repo",
    "lint_file",
    "repo_root",
]
