"""CLI for the static-analysis subsystem.

Usage::

    python -m repro.analysis list             # registered benchmark ids
    python -m repro.analysis trace <id> ...   # analyze benchmark traces
    python -m repro.analysis trace --all      # analyze every registered id
    python -m repro.analysis --repolint       # lint the repo (CI gate)

``trace`` is advisory (always exits 0: diagnostics are performance
explanations, not failures); ``--repolint`` exits 1 on any finding.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.repolint import lint_repo
from repro.analysis.traces import TRACE_BUILDERS, analyze_benchmark


def _cmd_list() -> int:
    width = max(len(trace_id) for trace_id in TRACE_BUILDERS)
    for trace_id, (description, _) in TRACE_BUILDERS.items():
        print(f"{trace_id:<{width}}  {description}")
    return 0


def _cmd_trace(ids: list[str]) -> int:
    for trace_id in ids:
        if trace_id not in TRACE_BUILDERS:
            known = ", ".join(sorted(TRACE_BUILDERS))
            print(f"error: unknown benchmark id {trace_id!r}; known ids: {known}")
            return 2
    for trace_id in ids:
        report = analyze_benchmark(trace_id)
        print(f"== {trace_id}: {report.subject}")
        if report.clean:
            print("   no diagnostics — trace follows the SX-4 coding-style rules")
        else:
            for diag in report:
                print(f"   {diag}")
        print(f"   summary: {report.summary_line()}")
    return 0


def _cmd_repolint() -> int:
    report = lint_repo()
    for diag in report:
        print(diag)
    if report.clean:
        print("repolint: all repo invariants hold")
        return 0
    print(f"repolint: {len(report)} violation(s)")
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Vectorization diagnostics and repo-invariant lint.",
    )
    parser.add_argument(
        "--repolint",
        action="store_true",
        help="lint src/repro and tests for repo invariants (exit 1 on findings)",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list registered benchmark ids")
    trace_parser = sub.add_parser("trace", help="analyze benchmark traces by id")
    trace_parser.add_argument("ids", nargs="*", metavar="id")
    trace_parser.add_argument(
        "--all", action="store_true", help="analyze every registered benchmark"
    )
    args = parser.parse_args(argv)

    if args.repolint:
        return _cmd_repolint()
    if args.command == "list":
        return _cmd_list()
    if args.command == "trace":
        ids = list(TRACE_BUILDERS) if args.all else args.ids
        if not ids:
            trace_parser.error("give at least one benchmark id or --all")
        return _cmd_trace(ids)
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
