"""CLI for the static-analysis subsystem.

Usage::

    python -m repro.analysis list               # registered benchmark ids
    python -m repro.analysis trace <id> ...     # analyze benchmark traces
    python -m repro.analysis trace --all        # analyze every registered id
    python -m repro.analysis effects [path]     # whole-program effect analysis
    python -m repro.analysis repolint           # lint the repo (CI gate)
    python -m repro.analysis --repolint         # legacy spelling of the same

Every subcommand exits with the same convention:

* **0** — clean (no findings);
* **1** — findings, none of them errors (advisory: trace diagnostics,
  stale-baseline warnings);
* **2** — error findings, or a usage error (unknown benchmark id,
  unreadable baseline, bad arguments).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.diagnostics import DiagnosticReport, Severity
from repro.analysis.effects import (
    DEFAULT_BASELINE,
    EffectsReport,
    analyze_tree,
    check_contracts,
    load_baseline,
    sarif_report,
    write_baseline,
)
from repro.analysis.repolint import lint_repo, repo_root
from repro.analysis.traces import TRACE_BUILDERS, analyze_benchmark


def _report_exit_code(report: DiagnosticReport) -> int:
    """Uniform exit convention: 0 clean, 1 warnings only, 2 errors."""
    worst = report.worst_severity
    if worst is None:
        return 0
    return 2 if worst is Severity.ERROR else 1


def _cmd_list() -> int:
    width = max(len(trace_id) for trace_id in TRACE_BUILDERS)
    for trace_id, (description, _) in TRACE_BUILDERS.items():
        print(f"{trace_id:<{width}}  {description}")
    return 0


def _cmd_trace(ids: list[str]) -> int:
    for trace_id in ids:
        if trace_id not in TRACE_BUILDERS:
            known = ", ".join(sorted(TRACE_BUILDERS))
            print(f"error: unknown benchmark id {trace_id!r}; known ids: {known}")
            return 2
    exit_code = 0
    for trace_id in ids:
        report = analyze_benchmark(trace_id)
        print(f"== {trace_id}: {report.subject}")
        if report.clean:
            print("   no diagnostics — trace follows the SX-4 coding-style rules")
        else:
            for diag in report:
                print(f"   {diag}")
        print(f"   summary: {report.summary_line()}")
        exit_code = max(exit_code, _report_exit_code(report))
    return exit_code


def _cmd_repolint() -> int:
    report = lint_repo()
    for diag in report:
        print(diag)
    if report.clean:
        print("repolint: all repo invariants hold")
    else:
        print(f"repolint: {len(report)} violation(s)")
    return _report_exit_code(report)


def _effects_json(report: EffectsReport) -> dict:
    return {
        "schema_version": 1,
        "subject": report.subject,
        "findings": [
            {
                "rule_id": f.diagnostic.rule_id,
                "severity": str(f.diagnostic.severity),
                "location": f.diagnostic.location,
                "message": f.diagnostic.message,
                "fingerprint": f.fingerprint,
            }
            for f in report.findings
        ],
        "suppressed": report.suppressed,
        "stale_baseline": list(report.stale_baseline),
        "summary": report.summary_line(),
    }


def _cmd_effects(args: argparse.Namespace) -> int:
    root = Path(args.path) if args.path else repo_root() / "src" / "repro"
    if not root.is_dir():
        print(f"error: {root} is not a directory")
        return 2
    baseline_path = Path(args.baseline) if args.baseline else repo_root() / DEFAULT_BASELINE
    try:
        baseline = set() if args.no_baseline else load_baseline(baseline_path)
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"error: cannot read baseline {baseline_path}: {exc}")
        return 2
    program = analyze_tree(root)
    report = check_contracts(program, baseline=baseline)

    if args.write_baseline:
        # Re-check unbaselined so the file captures every current error.
        fresh = check_contracts(program, baseline=set())
        count = write_baseline(baseline_path, fresh)
        print(f"effects: wrote {count} fingerprint(s) to {baseline_path}")
        return 0

    payload: dict | None = None
    if args.format == "json":
        payload = _effects_json(report)
    elif args.format == "sarif":
        payload = sarif_report(report)
    if payload is not None:
        text = json.dumps(payload, indent=2, sort_keys=(args.format == "json"))
        if args.out:
            Path(args.out).write_text(text + "\n", encoding="utf-8")
            print(f"effects: wrote {args.format} to {args.out}")
        else:
            print(text)
        return report.exit_code()

    # text format
    for finding in report.findings:
        print(finding.diagnostic)
    functions = len(program.functions)
    modules = len(program.modules)
    print(
        f"effects: {modules} modules, {functions} functions analyzed — "
        f"{report.summary_line()}"
    )
    if args.out:
        Path(args.out).write_text(
            json.dumps(_effects_json(report), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return report.exit_code()


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.analysis.effects import effect_chain

    root = Path(args.path) if args.path else repo_root() / "src" / "repro"
    program = analyze_tree(root)
    full = args.explain
    if full not in program.functions:
        candidates = [name for name in program.functions if name.endswith(full)]
        if len(candidates) == 1:
            full = candidates[0]
        else:
            hint = f"; did you mean one of {sorted(candidates)[:5]}?" if candidates else ""
            print(f"error: no analyzed function {args.explain!r}{hint}")
            return 2
    effects = sorted(program.effects_of(full), key=lambda e: e.value)
    print(f"{full}:")
    if not effects:
        print("   no effects — transitively pure")
        return 0
    for effect in effects:
        chain = effect_chain(program, full, effect)
        print(f"   {effect}: {' -> '.join(chain)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Vectorization diagnostics, repo-invariant lint, and whole-program "
            "effect analysis. Exit codes: 0 clean, 1 warnings, 2 errors."
        ),
    )
    parser.add_argument(
        "--repolint",
        action="store_true",
        help="legacy alias for the 'repolint' subcommand",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list registered benchmark ids")
    trace_parser = sub.add_parser("trace", help="analyze benchmark traces by id")
    trace_parser.add_argument("ids", nargs="*", metavar="id")
    trace_parser.add_argument(
        "--all", action="store_true", help="analyze every registered benchmark"
    )
    sub.add_parser(
        "repolint", help="lint src/repro and tests for repo invariants (CI gate)"
    )
    effects_parser = sub.add_parser(
        "effects",
        help="whole-program effect analysis: cache-key determinism (DET rules)",
    )
    effects_parser.add_argument(
        "path", nargs="?", help="package directory to analyze (default: src/repro)"
    )
    effects_parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    effects_parser.add_argument(
        "--baseline",
        help=f"baseline file of accepted fingerprints (default: {DEFAULT_BASELINE})",
    )
    effects_parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding",
    )
    effects_parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept every current error into the baseline file and exit 0",
    )
    effects_parser.add_argument(
        "--out", help="also write the report (json for text format) to this file"
    )
    effects_parser.add_argument(
        "--explain",
        metavar="FUNCTION",
        help="print the effect summary and call chains for one function",
    )
    args = parser.parse_args(argv)

    if args.repolint or args.command == "repolint":
        return _cmd_repolint()
    if args.command == "list":
        return _cmd_list()
    if args.command == "trace":
        ids = list(TRACE_BUILDERS) if args.all else args.ids
        if not ids:
            trace_parser.error("give at least one benchmark id or --all")
        return _cmd_trace(ids)
    if args.command == "effects":
        if args.explain:
            return _cmd_explain(args)
        return _cmd_effects(args)
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
