"""Shared diagnostics core for the static-analysis subsystem.

Both analyzer levels — the machine-model trace analyzer
(:mod:`repro.analysis.traces`) and the AST repo linter
(:mod:`repro.analysis.repolint`) — report their findings as
:class:`Diagnostic` records: a stable rule id, a severity, a location
(operation index within a trace, or file:line within the repo), a
human-readable message, and, for performance rules, a predicted-impact
estimate derived from the analytic machine model.  That estimate is what
makes the trace diagnostics *quantitative*, the way the SX compiler's
vectorization listings told you not just "this loop did not vectorize"
but what it cost you.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["Severity", "Diagnostic", "DiagnosticReport", "count_by_rule"]


class Severity(enum.IntEnum):
    """Diagnostic severities, ordered so max() picks the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "warning", not "Severity.WARNING"
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding from either analyzer level.

    Parameters
    ----------
    rule_id:
        Stable identifier: ``VEC00x`` for trace rules, ``REPO00x`` for
        repo-invariant rules.
    severity:
        :class:`Severity`; repolint ERRORs gate CI, trace WARNINGs/INFOs
        are advisory.
    location:
        Where: ``op[3] 'radabs level-pair'`` for traces, ``path:line``
        for repolint.
    message:
        The finding, with the numbers that justify it.
    predicted_impact:
        For trace rules, the modelled slowdown factor currently being
        paid (e.g. 8.0 = the flagged pattern makes this op ~8x slower
        than the conflict-free form).  ``None`` where no single factor
        is meaningful (e.g. purely structural findings).
    op_index:
        Index of the offending op within the trace, or ``None`` for
        trace-level and repo-level findings.
    """

    rule_id: str
    severity: Severity
    location: str
    message: str
    predicted_impact: float | None = None
    op_index: int | None = None

    def __str__(self) -> str:
        # Render every impact a rule bothered to set — a factor of 1.0
        # ("costs nothing extra") or below is information, not absence;
        # only None means "no single factor is meaningful here".
        impact = ""
        if self.predicted_impact is not None:
            impact = f" [~{self.predicted_impact:.1f}x]"
        return f"{self.rule_id} {self.severity}: {self.location}: {self.message}{impact}"


@dataclass
class DiagnosticReport:
    """All findings for one analyzed subject (a trace or a repo tree)."""

    subject: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    @property
    def worst_severity(self) -> Severity | None:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def by_rule(self, rule_id: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule_id == rule_id]

    def summary_line(self) -> str:
        """One-line digest: ``clean`` or ``VEC001 x2, VEC004 x1 (worst ~6.2x)``."""
        if self.clean:
            return "clean"
        counts = count_by_rule(self.diagnostics)
        parts = [f"{rule} x{n}" for rule, n in counts.items()]
        # "is not None", not truthiness: an explicit impact of 0.0 is a
        # real measurement and must participate in the worst-case figure.
        impacts = [
            d.predicted_impact
            for d in self.diagnostics
            if d.predicted_impact is not None
        ]
        worst = f" (worst ~{max(impacts):.1f}x)" if impacts else ""
        return ", ".join(parts) + worst


def count_by_rule(diagnostics: list[Diagnostic]) -> dict[str, int]:
    """Rule id -> occurrence count, in first-seen order."""
    counts: dict[str, int] = {}
    for diag in diagnostics:
        counts[diag.rule_id] = counts.get(diag.rule_id, 0) + 1
    return counts
