"""Whole-program effect analysis: cache-key determinism, worker purity.

The engine's content-addressed store (:mod:`repro.engine.store`) is only
correct if every experiment builder is a pure function of (transitive
source digests, machine fingerprint) — an impure builder silently
poisons the cache with results the digest cannot distinguish.  The
repolint determinism rule (REPO004) checks for clocks and entropy
*syntactically, per file, inside hand-listed subtrees*; it cannot follow
a call from a builder into a helper module two packages away.  This
module can: it parses every module under a package root, builds an
import-resolved call graph, computes a per-function **effect summary**,
propagates summaries transitively to a fixpoint, and checks the result
against the declared determinism contracts.

The effect lattice (absence of every effect = pure enough to cache)::

    ============    ====================================================
    effect          a function (or anything it transitively calls) ...
    ============    ====================================================
    reads-clock     reads host time (time.time/perf_counter/monotonic,
                    datetime.now, ...)
    reads-entropy   draws randomness (random.*, numpy.random.*,
                    os.urandom, uuid.uuid4, secrets.*)
    unseeded-rng    constructs an RNG with no seed (random.Random(),
                    numpy.random.default_rng()) — reported with
                    reads-entropy under DET002
    reads-env       reads the process environment (os.environ/getenv)
    fs-order        iterates the filesystem in platform order
                    (os.listdir, Path.iterdir/glob) without sorted(...)
    mutates-global  writes module-level state (global + store,
                    REGISTRY[k] = v, MODULE_LIST.append, ...)
    performs-io     touches files/processes/sockets (informational:
                    reported in summaries, not gated by a DET rule —
                    reading source bytes is how digests work)
    ============    ====================================================

The DET rule family checks the summaries against the contracts:

    ======  ==========================================================
    rule    contract
    ======  ==========================================================
    DET000  meta: a file failed to parse, or a baseline entry went
            stale (the finding it suppressed no longer fires)
    DET001  a deterministic root (engine builder or digest function)
            transitively reads the host clock
    DET002  a deterministic root transitively draws entropy or builds
            an unseeded RNG
    DET003  a deterministic root transitively reads the environment
    DET004  a deterministic root transitively iterates the filesystem
            in unstable order
    DET005  a function reachable from a pool-worker entry point
            mutates module-global state (the poor-man's race detector
            for the process-pool executor)
    DET006  a function that feeds a digest (calls hashlib) transitively
            iterates the filesystem in unstable order — the hash seals
            whatever order the platform happened to return
    ======  ==========================================================

Deterministic roots come from the engine: every builder registered in
``repro.suite.experiments.EXPERIMENTS`` (enumerated statically by
:func:`repro.engine.deps.builder_entry_points`, or discovered from any
module-level ``EXPERIMENTS`` dict when analyzing other trees) plus the
digest/keying functions of :mod:`repro.engine.deps` and
:mod:`repro.engine.store`.  Worker roots are the builders plus the pool
worker entry ``repro.engine.executor._execute_job``.

Escape hatches, so adoption is incremental:

* ``# repolint: skip`` on the impure line suppresses findings whose
  sink is that line;
* ``# repolint: exempt=DET001 -- reason`` in the *sink's* module (or
  the root's) exempts the listed rules;
* a checked-in **baseline** (:data:`DEFAULT_BASELINE`) of finding
  fingerprints: baselined findings are suppressed, new ones gate CI,
  stale entries are reported as DET000 warnings so the file shrinks
  monotonically.
"""

from __future__ import annotations

import ast
import enum
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, Severity
from repro.analysis.repolint import module_exemptions, skipped_lines

__all__ = [
    "Effect",
    "EffectSite",
    "FunctionInfo",
    "ModuleInfo",
    "Program",
    "parse_module",
    "EffectContract",
    "Finding",
    "EffectsReport",
    "DEFAULT_BASELINE",
    "DETERMINISM_RULES",
    "analyze_tree",
    "default_contract",
    "check_contracts",
    "analyze_and_check",
    "effect_chain",
    "load_baseline",
    "write_baseline",
    "sarif_report",
]

#: Default baseline filename, resolved against the repository root.
DEFAULT_BASELINE = ".repro-effects-baseline.json"

#: Baseline file schema; bump if the fingerprint format changes.
BASELINE_SCHEMA = 1


class Effect(enum.Enum):
    """One element of the effect lattice (see module docstring)."""

    READS_CLOCK = "reads-clock"
    READS_ENTROPY = "reads-entropy"
    UNSEEDED_RNG = "unseeded-rng"
    READS_ENV = "reads-env"
    FS_ORDER = "fs-order"
    MUTATES_GLOBAL = "mutates-global"
    PERFORMS_IO = "performs-io"

    def __str__(self) -> str:
        return self.value


#: Effects that break cache-key determinism, and the DET rule that
#: reports each when a deterministic root transitively carries it.
DETERMINISM_RULES: dict[Effect, str] = {
    Effect.READS_CLOCK: "DET001",
    Effect.READS_ENTROPY: "DET002",
    Effect.UNSEEDED_RNG: "DET002",
    Effect.READS_ENV: "DET003",
    Effect.FS_ORDER: "DET004",
}

# ------------------------------------------------------- impurity tables
#: External callables that read the host clock.
CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: External callables that draw entropy outright.
ENTROPY_CALLS = frozenset({"os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4"})

#: Prefixes whose every member draws from a shared, implicitly seeded
#: stream (module-level RNG state).
ENTROPY_PREFIXES = ("random.", "secrets.", "numpy.random.")

#: RNG factories: seeded (any argument) is fine, bare is unseeded-rng.
RNG_FACTORIES = frozenset(
    {"random.Random", "random.SystemRandom", "numpy.random.default_rng", "numpy.random.RandomState"}
)

#: External callables that iterate the filesystem in platform order.
FS_ORDER_CALLS = frozenset({"os.listdir", "os.scandir", "glob.glob", "glob.iglob"})

#: Methods that iterate the filesystem regardless of receiver type
#: (Path.iterdir/glob/rglob and anything shaped like them).
FS_ORDER_METHODS = frozenset({"iterdir", "glob", "rglob"})

#: Builtins that impose a deterministic order on their iterable, making
#: a directly wrapped fs-order call stable.
ORDER_IMPOSING = frozenset({"sorted", "min", "max", "sum", "len", "set"})

#: External callables that perform IO (informational effect).
IO_CALLS = frozenset(
    {
        "open",
        "os.replace",
        "os.remove",
        "os.rename",
        "os.unlink",
        "os.mkdir",
        "os.makedirs",
        "os.rmdir",
        "shutil.copy",
        "shutil.copyfile",
        "shutil.copytree",
        "shutil.move",
        "shutil.rmtree",
        "subprocess.run",
        "subprocess.Popen",
        "subprocess.check_call",
        "subprocess.check_output",
        "socket.socket",
        "urllib.request.urlopen",
    }
)

#: IO-shaped methods on unresolved receivers (Path/file objects).
IO_METHODS = frozenset(
    {"write_text", "write_bytes", "read_text", "read_bytes", "touch", "unlink", "mkdir"}
)

#: Methods that mutate their receiver in place (list/dict/set protocol).
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
    }
)

#: hashlib constructors: a call into one marks the function a digest
#: producer for DET006.
DIGEST_CALLS = frozenset(
    {
        "hashlib.sha256",
        "hashlib.sha1",
        "hashlib.sha512",
        "hashlib.sha3_256",
        "hashlib.md5",
        "hashlib.blake2b",
        "hashlib.blake2s",
        "hashlib.new",
    }
)


# ------------------------------------------------------- program model
@dataclass(frozen=True)
class EffectSite:
    """Where a direct effect enters a function."""

    effect: Effect
    lineno: int
    detail: str  # e.g. "time.perf_counter()" or "REGISTRY[...] = ..."


@dataclass
class FunctionInfo:
    """One analyzed function (or method) and its direct behavior."""

    module: str
    qualname: str  # module-local: "f" or "Class.f"
    lineno: int
    sites: list[EffectSite] = field(default_factory=list)
    calls: set[str] = field(default_factory=set)  # resolved full names
    makes_digest: bool = False  # calls a hashlib constructor

    @property
    def full(self) -> str:
        return f"{self.module}.{self.qualname}"


@dataclass
class ModuleInfo:
    """One parsed module: imports, definitions, pragmas."""

    name: str
    path: Path
    rel: str  # path relative to the analysis root, for locations
    imports: dict[str, str] = field(default_factory=dict)  # local -> dotted
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, set[str]] = field(default_factory=dict)  # name -> methods
    module_level_names: set[str] = field(default_factory=set)
    experiment_builders: list[str] = field(default_factory=list)
    exemptions: set[str] = field(default_factory=set)
    skipped: set[int] = field(default_factory=set)
    parse_error: str | None = None


#: Provenance of one transitive effect on one function: either a direct
#: site in that function, or the callee the effect arrived through.
Provenance = EffectSite | str


@dataclass
class Program:
    """The whole analyzed tree, its call graph, and effect summaries."""

    root: Path
    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: full name -> effect -> provenance, computed by the fixpoint.
    summaries: dict[str, dict[Effect, Provenance]] = field(default_factory=dict)

    def effects_of(self, full: str) -> set[Effect]:
        return set(self.summaries.get(full, ()))

    def reachable_from(self, roots: list[str]) -> set[str]:
        """Every analyzed function reachable from the given roots."""
        seen: set[str] = set()
        frontier = [r for r in roots if r in self.functions]
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            frontier.extend(
                callee
                for callee in self.functions[name].calls
                if callee in self.functions and callee not in seen
            )
        return seen


# ------------------------------------------------------- module parsing
def _module_name(root: Path, path: Path, package: str | None) -> str:
    rel = path.relative_to(root)
    parts = list(rel.parts)
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts.pop()
    if package:
        parts.insert(0, package)
    return ".".join(parts) if parts else (package or "")


def _import_table(tree: ast.Module, module: str) -> dict[str, str]:
    """Local name -> dotted target, resolving aliases and relativity."""
    package = module.rsplit(".", 1)[0] if "." in module else module
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                table[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                parts = package.split(".")
                keep = len(parts) - (node.level - 1)
                base = ".".join(parts[:keep] + ([base] if base else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                table[alias.asname or alias.name] = f"{base}.{alias.name}" if base else alias.name
    return table


def _experiments_registry(tree: ast.Module) -> list[str]:
    """Function names registered in a module-level EXPERIMENTS dict."""
    for node in tree.body:
        value = None
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "EXPERIMENTS" for t in node.targets
        ):
            value = node.value
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == "EXPERIMENTS"
        ):
            value = node.value
        if isinstance(value, ast.Dict):
            return [v.id for v in value.values if isinstance(v, ast.Name)]
    return []


def parse_module(name: str, path: Path, root: Path) -> ModuleInfo:
    """Parse one file into its :class:`ModuleInfo` (no effects yet)."""
    source = path.read_text(encoding="utf-8")
    rel = "/".join(path.relative_to(root).parts)
    info = ModuleInfo(name=name, path=path, rel=rel)
    info.exemptions = module_exemptions(source)
    info.skipped = skipped_lines(source)
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as exc:
        info.parse_error = f"{exc.msg} (line {exc.lineno})"
        return info
    info.imports = _import_table(tree, name)
    info.experiment_builders = _experiments_registry(tree)
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[node.name] = FunctionInfo(
                module=name, qualname=node.name, lineno=node.lineno
            )
            info.module_level_names.add(node.name)
        elif isinstance(node, ast.ClassDef):
            methods = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            info.classes[node.name] = methods
            info.module_level_names.add(node.name)
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{node.name}.{item.name}"
                    info.functions[qual] = FunctionInfo(
                        module=name, qualname=qual, lineno=item.lineno
                    )
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    info.module_level_names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            info.module_level_names.add(node.target.id)
    info._tree = tree  # type: ignore[attr-defined]  # consumed by _analyze_bodies
    return info


# ------------------------------------------------------- body analysis
class _BodyAnalyzer(ast.NodeVisitor):
    """Direct effects and resolved call edges for one function body."""

    def __init__(self, program: Program, mod: ModuleInfo, fn: FunctionInfo,
                 class_name: str | None) -> None:
        self.program = program
        self.mod = mod
        self.fn = fn
        self.class_name = class_name
        self.globals_declared: set[str] = set()
        self.local_names: set[str] = set()  # params + names bound in the body
        self.local_types: dict[str, str] = {}  # var -> analyzed class full name
        self.parents: dict[ast.AST, ast.AST] = {}

    # -- name resolution ------------------------------------------------
    def _dotted(self, node: ast.expr) -> str | None:
        """Resolve an expression to a dotted path, or None."""
        if isinstance(node, ast.Name):
            name = node.id
            if self.class_name and name == "self":
                return f"{self.mod.name}.{self.class_name}"
            if name in self.local_types:
                return self.local_types[name]
            if name in self.local_names and name not in self.globals_declared:
                return None  # a local binding shadows everything else
            if name in self.mod.functions and "." not in name:
                return f"{self.mod.name}.{name}"
            if name in self.mod.classes:
                return f"{self.mod.name}.{name}"
            if name in self.mod.imports:
                return self.mod.imports[name]
            return name  # builtin or unknown
        if isinstance(node, ast.Attribute):
            base = self._dotted(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        if isinstance(node, ast.Call):
            # Chained construction: ClassName(...).method — type of the
            # call is the class when the callee resolves to one.
            target = self._dotted(node.func)
            if target is not None and self._class_of(target) is not None:
                return target
        return None

    def _class_of(self, dotted: str) -> tuple[ModuleInfo, str] | None:
        """(module, class name) when a dotted path names an analyzed class."""
        if "." not in dotted:
            return None
        module, cls = dotted.rsplit(".", 1)
        info = self.program.modules.get(module)
        if info is not None and cls in info.classes:
            return info, cls
        return None

    def _function_target(self, dotted: str) -> str | None:
        """Full name of the analyzed function a dotted path names."""
        if dotted in self.program.functions:
            return dotted
        # module.Class.method or module.function with the module joined in
        if "." in dotted:
            head, tail = dotted.rsplit(".", 1)
            owner = self._class_of(head)
            if owner is not None:
                info, cls = owner
                if tail in info.classes[cls]:
                    return f"{info.name}.{cls}.{tail}"
            # A from-imported symbol re-exported by a package __init__:
            # fall through, unresolved.
        return None

    # -- effect recording ----------------------------------------------
    def _site(self, effect: Effect, node: ast.AST, detail: str) -> None:
        self.fn.sites.append(EffectSite(effect=effect, lineno=node.lineno, detail=detail))

    def _order_imposed(self, node: ast.Call) -> bool:
        """True when the fs-order call is directly wrapped in sorted()."""
        parent = self.parents.get(node)
        if isinstance(parent, ast.Starred):
            parent = self.parents.get(parent)
        if isinstance(parent, ast.Call) and isinstance(parent.func, ast.Name):
            return parent.func.id in ORDER_IMPOSING
        return False

    def _classify_external(self, node: ast.Call, dotted: str) -> None:
        method = dotted.rsplit(".", 1)[1] if "." in dotted else dotted
        if dotted in RNG_FACTORIES:
            seeded = bool(node.args) or any(kw.arg == "seed" for kw in node.keywords)
            if not seeded:
                self._site(Effect.UNSEEDED_RNG, node, f"{dotted}() with no seed")
            return
        if dotted in CLOCK_CALLS:
            self._site(Effect.READS_CLOCK, node, f"{dotted}()")
        elif dotted in ENTROPY_CALLS or dotted.startswith(ENTROPY_PREFIXES):
            self._site(Effect.READS_ENTROPY, node, f"{dotted}()")
        elif dotted == "os.getenv" or dotted.startswith("os.environ"):
            self._site(Effect.READS_ENV, node, f"{dotted}()")
        elif dotted in FS_ORDER_CALLS:
            if not self._order_imposed(node):
                self._site(Effect.FS_ORDER, node, f"{dotted}() unsorted")
        elif dotted in IO_CALLS:
            self._site(Effect.PERFORMS_IO, node, f"{dotted}()")
        elif dotted in DIGEST_CALLS:
            self.fn.makes_digest = True
        else:
            self._method_heuristics(node, method)

    def _method_heuristics(self, node: ast.Call, method: str) -> None:
        """Receiver-independent method checks (Path-like/file-like objects)."""
        if method in FS_ORDER_METHODS and not self._order_imposed(node):
            self._site(Effect.FS_ORDER, node, f".{method}() unsorted")
        elif method in IO_METHODS:
            self._site(Effect.PERFORMS_IO, node, f".{method}()")

    def _module_level_base(self, node: ast.expr) -> str | None:
        """Name of the module-global a store/mutation targets, if any."""
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        name = node.id
        if name in self.globals_declared:
            return name
        if name in self.local_names or name in self.local_types or name == "self":
            return None
        if name in self.mod.module_level_names and name not in self.mod.functions:
            return name  # plain module global, or a class (shared attrs)
        target = self.mod.imports.get(name)
        if target and "." in target:
            module, attr = target.rsplit(".", 1)
            owner = self.program.modules.get(module)
            if owner is not None and attr in owner.module_level_names:
                if attr in owner.functions or attr in owner.classes:
                    return None  # rebinding a function/class name is not state
                return name
        return None

    # -- visitors -------------------------------------------------------
    def visit_Global(self, node: ast.Global) -> None:
        self.globals_declared.update(node.names)
        self.generic_visit(node)

    def _handle_store(self, target: ast.expr, node: ast.AST) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.globals_declared:
                self._site(Effect.MUTATES_GLOBAL, node, f"global {target.id} = ...")
            return
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            base = self._module_level_base(target)
            if base is not None:
                shape = "[...]" if isinstance(target, ast.Subscript) else f".{target.attr}"
                self._site(Effect.MUTATES_GLOBAL, node, f"{base}{shape} = ...")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._handle_store(elt, node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # Local type tracking: x = ClassName(...)
        if isinstance(node.value, ast.Call):
            dotted = self._dotted(node.value.func)
            if dotted is not None and self._class_of(dotted) is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.local_types[target.id] = dotted
        for target in node.targets:
            self._handle_store(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._handle_store(node.target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._handle_store(node.target, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._dotted(node.func)
        resolved = False
        if dotted is not None:
            target = self._function_target(dotted)
            owner = self._class_of(dotted)
            if target is not None:
                self.fn.calls.add(target)
                resolved = True
            elif owner is not None:
                info, cls = owner
                if "__init__" in info.classes[cls]:
                    self.fn.calls.add(f"{info.name}.{cls}.__init__")
                resolved = True
            else:
                self._classify_external(node, dotted)
        elif isinstance(node.func, ast.Attribute):
            # Unresolved receiver (a local, an expression): method-name
            # heuristics still apply.
            self._method_heuristics(node, node.func.attr)
        if not resolved and isinstance(node.func, ast.Attribute):
            method = node.func.attr
            if method in MUTATOR_METHODS:
                base = self._module_level_base(node.func.value)
                if base is not None:
                    self._site(Effect.MUTATES_GLOBAL, node, f"{base}.{method}(...)")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # Non-call environment reads: os.environ[...] / os.environ.get
        dotted = self._dotted(node)
        if dotted == "os.environ":
            parent = self.parents.get(node)
            if not (isinstance(parent, ast.Call) and parent.func is node):
                self._site(Effect.READS_ENV, node, "os.environ")
        self.generic_visit(node)

    def run(self, body: list[ast.stmt], args: ast.arguments) -> None:
        # Python scoping up front: params and every name bound anywhere
        # in the body are locals (unless declared global), and they
        # shadow module-level names for the whole function.
        all_args = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        self.local_names.update(arg.arg for arg in all_args)
        if args.vararg is not None:
            self.local_names.add(args.vararg.arg)
        if args.kwarg is not None:
            self.local_names.add(args.kwarg.arg)
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Name) and isinstance(
                    node.ctx, (ast.Store, ast.Del)
                ):
                    self.local_names.add(node.id)
                elif isinstance(node, ast.Global):
                    self.globals_declared.update(node.names)
                elif isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    self.local_names.add(node.name)
                elif isinstance(node, ast.ExceptHandler) and node.name:
                    self.local_names.add(node.name)
                for child in ast.iter_child_nodes(node):
                    self.parents[child] = node
        # Parameter annotations seed the local type table.
        for arg in all_args:
            if arg.annotation is not None:
                dotted = self._dotted_annotation(arg.annotation)
                if dotted is not None and self._class_of(dotted) is not None:
                    self.local_types[arg.arg] = dotted
        for stmt in body:
            self.visit(stmt)

    def _dotted_annotation(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, (ast.Name, ast.Attribute)):
            return self._dotted(node)
        return None


def _analyze_bodies(program: Program) -> None:
    for mod in program.modules.values():
        tree = getattr(mod, "_tree", None)
        if tree is None:
            continue
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                analyzer = _BodyAnalyzer(program, mod, mod.functions[node.name], None)
                analyzer.run(node.body, node.args)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fn = mod.functions[f"{node.name}.{item.name}"]
                        analyzer = _BodyAnalyzer(program, mod, fn, node.name)
                        analyzer.run(item.body, item.args)
        del mod._tree  # type: ignore[attr-defined]


# ------------------------------------------------------- fixpoint
def _propagate(program: Program) -> None:
    """Transitive effect summaries with provenance, to a fixpoint.

    ``summaries[f][e]`` is either the :class:`EffectSite` where ``f``
    performs ``e`` directly, or the full name of the callee the effect
    arrived through — enough to reconstruct a call chain to the sink.
    Direct sites win over inherited ones, and a function's summary only
    grows, so the iteration terminates in O(functions x effects) rounds.
    """
    summaries = program.summaries
    for full, fn in program.functions.items():
        summaries[full] = {}
        for site in fn.sites:
            summaries[full].setdefault(site.effect, site)

    changed = True
    while changed:
        changed = False
        for full, fn in program.functions.items():
            summary = summaries[full]
            for callee in fn.calls:
                if callee == full:
                    continue
                for effect in summaries.get(callee, ()):
                    if effect not in summary:
                        summary[effect] = callee
                        changed = True


def effect_chain(program: Program, full: str, effect: Effect) -> list[str]:
    """Call chain from ``full`` to the direct site of ``effect``.

    Returns ``[full, ..., sink]``; the sink is where the effect is
    performed directly.  Empty when the function lacks the effect.
    """
    chain = [full]
    seen = {full}
    current = full
    while True:
        provenance = program.summaries.get(current, {}).get(effect)
        if provenance is None:
            return []
        if isinstance(provenance, EffectSite):
            return chain
        if provenance in seen:  # defensive: cyclic provenance
            return chain
        seen.add(provenance)
        chain.append(provenance)
        current = provenance


def _sink_site(program: Program, full: str, effect: Effect) -> tuple[str, EffectSite] | None:
    chain = effect_chain(program, full, effect)
    if not chain:
        return None
    sink = chain[-1]
    provenance = program.summaries[sink][effect]
    assert isinstance(provenance, EffectSite)
    return sink, provenance


# ------------------------------------------------------- tree walking
def analyze_tree(root: Path | str, package: str | None = None) -> Program:
    """Parse and analyze every ``*.py`` under ``root``.

    ``package`` is the dotted prefix for module names; when omitted it
    is ``root.name`` if the root directory is itself a package
    (contains ``__init__.py``), else empty.
    """
    root = Path(root).resolve()
    if package is None and (root / "__init__.py").is_file():
        package = root.name
    program = Program(root=root)
    for path in sorted(root.rglob("*.py")):
        if "egg-info" in str(path):
            continue
        name = _module_name(root, path, package)
        if not name:
            continue
        program.modules[name] = parse_module(name, path, root)
    for mod in program.modules.values():
        for fn in mod.functions.values():
            program.functions[fn.full] = fn
    _analyze_bodies(program)
    _propagate(program)
    return program


# ------------------------------------------------------- contracts
@dataclass(frozen=True)
class EffectContract:
    """What the analyzer enforces: who must be pure, and how."""

    #: Functions that must be transitively deterministic (DET001-004).
    deterministic_roots: tuple[str, ...] = ()
    #: Pool-worker entry points: everything reachable must not mutate
    #: module-global state (DET005).
    worker_roots: tuple[str, ...] = ()


def default_contract(program: Program) -> EffectContract:
    """The repo's standing contract, derived from the analyzed tree.

    Builders come from any module-level ``EXPERIMENTS`` registry in the
    tree; when the tree is this repository's own ``repro`` package, the
    engine's static enumeration
    (:func:`repro.engine.deps.builder_entry_points`) is consulted too,
    so the contract can never drift from what the executor actually
    dispatches.  Digest/keying functions of the engine join the
    deterministic roots; the pool worker entry joins the worker roots.
    """
    det_roots: list[str] = []
    worker_roots: list[str] = []
    for mod in program.modules.values():
        for builder in mod.experiment_builders:
            full = f"{mod.name}.{builder}"
            if full in program.functions:
                det_roots.append(full)
                worker_roots.append(full)
    if "repro.suite.experiments" in program.modules:
        from repro.engine.deps import builder_entry_points

        for _exp_id, module, func in builder_entry_points():
            full = f"{module}.{func}"
            if full in program.functions and full not in det_roots:
                det_roots.append(full)
                worker_roots.append(full)
    for full in (
        "repro.engine.deps.experiment_digest",
        "repro.engine.deps.suite_digests",
        "repro.engine.deps.machine_fingerprint",
        "repro.engine.store.canonical_bytes",
        "repro.engine.store.payload_checksum",
    ):
        if full in program.functions:
            det_roots.append(full)
    worker_entry = "repro.engine.executor._execute_job"
    if worker_entry in program.functions:
        worker_roots.append(worker_entry)
    return EffectContract(
        deterministic_roots=tuple(det_roots), worker_roots=tuple(worker_roots)
    )


@dataclass(frozen=True)
class Finding:
    """One contract violation: a diagnostic plus its baseline identity."""

    diagnostic: Diagnostic
    fingerprint: str


@dataclass
class EffectsReport:
    """Everything one contract check produced."""

    subject: str
    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0  # baselined findings
    stale_baseline: list[str] = field(default_factory=list)

    @property
    def diagnostics(self) -> DiagnosticReport:
        report = DiagnosticReport(subject=self.subject)
        report.diagnostics.extend(f.diagnostic for f in self.findings)
        return report

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.diagnostic.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.diagnostic.severity is not Severity.ERROR]

    def exit_code(self) -> int:
        """Uniform CLI convention: 0 clean, 1 warnings only, 2 errors."""
        if self.errors:
            return 2
        if self.findings:
            return 1
        return 0

    def summary_line(self) -> str:
        if not self.findings and not self.suppressed:
            return "clean"
        parts = []
        if self.findings:
            parts.append(self.diagnostics.summary_line())
        if self.suppressed:
            parts.append(f"{self.suppressed} baselined")
        return "; ".join(parts) if parts else "clean"


def _location(program: Program, full: str, lineno: int | None = None) -> str:
    fn = program.functions[full]
    mod = program.modules[fn.module]
    return f"{mod.rel}:{lineno if lineno is not None else fn.lineno}"


def _exempted(program: Program, rule_id: str, root: str, sink: str,
              site: EffectSite | None) -> bool:
    """Escape hatches: sink-line skip, sink-module or root-module exempt."""
    for full in (sink, root):
        mod = program.modules[program.functions[full].module]
        if rule_id in mod.exemptions:
            return True
    if site is not None:
        sink_mod = program.modules[program.functions[sink].module]
        if site.lineno in sink_mod.skipped:
            return True
    return False


def _chain_text(chain: list[str]) -> str:
    return " -> ".join(chain)


def check_contracts(
    program: Program,
    contract: EffectContract | None = None,
    baseline: set[str] | None = None,
) -> EffectsReport:
    """Apply the DET rule family to the program's effect summaries."""
    contract = contract if contract is not None else default_contract(program)
    baseline = baseline or set()
    report = EffectsReport(subject=str(program.root))
    seen_fingerprints: set[str] = set()
    used_baseline: set[str] = set()

    def emit(rule_id: str, severity: Severity, location: str, message: str,
             fingerprint: str) -> None:
        if fingerprint in seen_fingerprints:
            return
        seen_fingerprints.add(fingerprint)
        if fingerprint in baseline:
            used_baseline.add(fingerprint)
            report.suppressed += 1
            return
        report.findings.append(
            Finding(
                diagnostic=Diagnostic(
                    rule_id=rule_id,
                    severity=severity,
                    location=location,
                    message=message,
                ),
                fingerprint=fingerprint,
            )
        )

    # DET000: parse failures are findings, not silent coverage holes.
    for mod in program.modules.values():
        if mod.parse_error is not None:
            emit(
                "DET000",
                Severity.ERROR,
                f"{mod.rel}:1",
                f"file does not parse ({mod.parse_error}); its effects are unknown",
                f"DET000 {mod.name} parse",
            )

    # DET001-004: deterministic roots carry no determinism-breaking effect.
    for root in contract.deterministic_roots:
        if root not in program.functions:
            continue
        for effect, rule_id in DETERMINISM_RULES.items():
            resolved = _sink_site(program, root, effect)
            if resolved is None:
                continue
            sink, site = resolved
            if _exempted(program, rule_id, root, sink, site):
                continue
            chain = effect_chain(program, root, effect)
            via = (
                f" via {_chain_text(chain)}" if len(chain) > 1 else ""
            )
            emit(
                rule_id,
                Severity.ERROR,
                _location(program, root),
                (
                    f"deterministic root {root} transitively has effect "
                    f"'{effect}'{via}; sink {sink} at "
                    f"{_location(program, sink, site.lineno)}: {site.detail} — "
                    f"the cache key cannot see this, so cached results would "
                    f"be unsound"
                ),
                f"{rule_id} {sink} {site.detail}",
            )

    # DET005: nothing reachable from a pool worker mutates module globals.
    worker_reachable = program.reachable_from(list(contract.worker_roots))
    for full in sorted(worker_reachable):
        fn = program.functions[full]
        for site in fn.sites:
            if site.effect is not Effect.MUTATES_GLOBAL:
                continue
            if _exempted(program, "DET005", full, full, site):
                continue
            emit(
                "DET005",
                Severity.ERROR,
                _location(program, full, site.lineno),
                (
                    f"{full} mutates module-global state ({site.detail}) and is "
                    f"reachable from a pool-worker entry point; forked workers "
                    f"each see their own copy, so this state silently diverges "
                    f"between parent and workers"
                ),
                f"DET005 {full} {site.detail}",
            )

    # DET006: digest producers never consume unstable filesystem order.
    for full, fn in sorted(program.functions.items()):
        if not fn.makes_digest:
            continue
        resolved = _sink_site(program, full, Effect.FS_ORDER)
        if resolved is None:
            continue
        sink, site = resolved
        if _exempted(program, "DET006", full, sink, site):
            continue
        chain = effect_chain(program, full, Effect.FS_ORDER)
        emit(
            "DET006",
            Severity.ERROR,
            _location(program, full),
            (
                f"{full} feeds a digest but iterates the filesystem in "
                f"platform order via {_chain_text(chain)}; sink {sink} at "
                f"{_location(program, sink, site.lineno)}: {site.detail} — "
                f"wrap the iteration in sorted() so the digest is "
                f"order-independent"
            ),
            f"DET006 {sink} {site.detail}",
        )

    # DET000: stale baseline entries (suppressing nothing) should go.
    for fingerprint in sorted(baseline - used_baseline):
        report.stale_baseline.append(fingerprint)
        report.findings.append(
            Finding(
                diagnostic=Diagnostic(
                    rule_id="DET000",
                    severity=Severity.WARNING,
                    location=f"{DEFAULT_BASELINE}:1",
                    message=(
                        f"baseline entry {fingerprint!r} no longer matches any "
                        f"finding; delete it (or regenerate with "
                        f"--write-baseline) so the baseline only shrinks"
                    ),
                ),
                fingerprint=f"DET000 stale {fingerprint}",
            )
        )
    return report


def analyze_and_check(
    root: Path | str,
    package: str | None = None,
    baseline: set[str] | None = None,
    contract: EffectContract | None = None,
) -> EffectsReport:
    """One-call front door: :func:`analyze_tree` then :func:`check_contracts`."""
    program = analyze_tree(root, package)
    return check_contracts(program, contract=contract, baseline=baseline)


# ------------------------------------------------------- baseline file
def load_baseline(path: Path | str) -> set[str]:
    """Fingerprints from a baseline file; empty set when absent."""
    path = Path(path)
    if not path.is_file():
        return set()
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"baseline schema {payload.get('schema')!r} is not {BASELINE_SCHEMA}; "
            f"regenerate with --write-baseline"
        )
    return set(payload.get("findings", []))


def write_baseline(path: Path | str, report: EffectsReport) -> int:
    """Persist every current ERROR fingerprint; returns the entry count.

    Warnings (stale-baseline notices) are never baselined — they exist
    to shrink this file, not to grow it.
    """
    fingerprints = sorted(f.fingerprint for f in report.errors)
    payload = {
        "schema": BASELINE_SCHEMA,
        "comment": (
            "Accepted pre-existing effect-analysis findings "
            "(python -m repro.analysis effects). New findings gate CI; "
            "fix one, then delete its line here."
        ),
        "findings": fingerprints,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(fingerprints)


# ------------------------------------------------------- SARIF output
_SEVERITY_TO_SARIF = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}

#: One-line rule descriptions, rendered into SARIF and ``--explain``.
RULE_DESCRIPTIONS = {
    "DET000": "effect-analysis meta finding (parse failure or stale baseline entry)",
    "DET001": "deterministic root transitively reads the host clock",
    "DET002": "deterministic root transitively draws entropy or builds an unseeded RNG",
    "DET003": "deterministic root transitively reads the process environment",
    "DET004": "deterministic root transitively iterates the filesystem in unstable order",
    "DET005": "pool-worker-reachable function mutates module-global state",
    "DET006": "digest producer consumes unstable filesystem iteration order",
}


def sarif_report(report: EffectsReport) -> dict:
    """The findings as a minimal SARIF 2.1.0 document (one run)."""
    results = []
    for finding in report.findings:
        diag = finding.diagnostic
        uri, _, line = diag.location.rpartition(":")
        results.append(
            {
                "ruleId": diag.rule_id,
                "level": _SEVERITY_TO_SARIF[diag.severity],
                "message": {"text": diag.message},
                "partialFingerprints": {"repro/effects/v1": finding.fingerprint},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": uri},
                            "region": {"startLine": int(line) if line.isdigit() else 1},
                        }
                    }
                ],
            }
        )
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-effects",
                        "informationUri": "https://example.invalid/repro",
                        "rules": [
                            {"id": rule, "shortDescription": {"text": text}}
                            for rule, text in sorted(RULE_DESCRIPTIONS.items())
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
