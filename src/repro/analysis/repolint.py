"""Repo-invariant linter: AST checks generic linters cannot express.

Walks ``src/repro`` and ``tests`` and enforces the conventions this
repository depends on:

========  ==============================================================
rule      invariant
========  ==============================================================
REPO001   every kernel module exposes a functional entry point AND a
          trace builder (the two-faces contract of repro.machine)
REPO002   ``__all__`` matches the module's public definitions
REPO003   operation descriptors are only built with known intrinsic
          names (the :data:`repro.machine.operations.INTRINSICS` set)
REPO004   no wall-clock or randomness in simulator code paths (the
          determinism invariant of :mod:`repro.events`)
REPO005   no magic unit constants (1e6/1e9/1e12) where
          :mod:`repro.units` symbols exist
REPO006   every machine component that consumes trace operations
          (references VectorOp/ScalarOp) registers perfmon counters via
          a top-level :func:`repro.perfmon.counters.declare_counters`
          call — the observability contract of the counter emulation
REPO007   every batched (columnar) method ``<name>_batch`` has a per-op
          sibling method ``<name>`` on the same class — the exact-parity
          contract of :mod:`repro.machine.compiled`: the parity suite
          can only verify batched code that has a reference to verify
          against
REPO008   every ``fault_point`` call site names its site with a string
          literal drawn from :data:`repro.faults.inject.FAULT_SITES` —
          the registry that also declares the ``fault.<site>`` perfmon
          counter, so every injectable site is observable in profiles
REPO009   every machine-axis method ``<name>_cycles_grid`` has a
          ``<name>_cycles_batch`` sibling on the same class — the grid
          parity contract of :mod:`repro.machine.grid`: a grid kernel
          is only trustworthy if the per-machine batch kernel it must
          mirror bit-for-bit exists to be verified against (REPO007
          then chains that sibling down to the per-op reference)
REPO010   CLI entry modules honor the uniform exit-code contract:
          0 = success, 1 = operation failed, 2 = usage error.  Literal
          ``sys.exit(N)`` / ``raise SystemExit(N)`` with any other
          integer is rejected — richer failure taxonomies (like
          ``engine run``'s 3/4/5 failure kinds) must flow through a
          named, documented code map, never inline magic numbers
REPO011   public ``*_cycles_batch`` kernels are segment-safe: the
          suite-batch engine evaluates them once over columns stacked
          from many traces, so their bodies must be elementwise NumPy —
          no Python ``while`` loops, no ``for`` loops or comprehensions
          over data rows (constant-trip loops over the intrinsic
          vocabulary and ``np.unique`` results are allowed), and no
          scalarisation of column entries (``.item()``/``.tolist()``/
          ``float(column_arg)``), which would silently break when rows
          from different traces interleave
REPO012   ``except`` clauses in :mod:`repro.service` that name
          ``TimeoutError``/``OSError`` (or a subclass — the connection
          family) must re-raise, log, or count what they caught: a
          service that silently eats a timeout or a hangup reports
          ``ready`` while requests disappear.  Compliance is a
          ``raise`` statement or a call to a reporting/counting helper
          (``print``, logger methods, perfmon ``record``/``add``/
          ``add_many``, the app's ``_count``/``_record``/``note_*``
          hooks) anywhere in the handler body
========  ==============================================================

All findings are ERROR severity — the CLI exits non-zero on any, which
is how CI gates on this.  Escape hatches, for the rare legitimate case:

* ``# repolint: skip`` on the offending line suppresses that line;
* ``# repolint: exempt=REPO001 -- reason`` anywhere in a module exempts
  the whole module from the listed (comma-separated) rules.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, Severity
from repro.faults.inject import FAULT_SITES
from repro.machine.operations import INTRINSICS

__all__ = ["lint_repo", "lint_file", "repo_root", "module_exemptions", "skipped_lines"]

#: Kernel functional entry points that do not follow the ``*_kernel``
#: naming pattern (solver-style or multi-transform interfaces).
FUNCTIONAL_ENTRY_ALTERNATES = frozenset(
    {"solve", "hint_integrate", "rfft_multi", "vfft_multi", "run_accuracy_suite"}
)

#: Magic constants REPO005 rejects in arithmetic, with the repro.units
#: replacement to name in the message.
MAGIC_UNIT_CONSTANTS = {1e6: "MEGA", 1e9: "GIGA", 1e12: "TERA"}

#: Subtrees of src/repro where the determinism invariant (REPO004) holds:
#: simulator state may only advance through event time, never host time.
SIMULATOR_PATHS = ("machine", "iosim", "scheduler", "superux", "events.py")

_EXEMPT_RE = re.compile(r"#\s*repolint:\s*exempt=([A-Z0-9,\s]+?)(?:\s+--.*)?$", re.M)
_SKIP_RE = re.compile(r"#\s*repolint:\s*skip\b")


def repo_root() -> Path:
    """The repository root, located from this package's install path."""
    return Path(__file__).resolve().parents[3]


def module_exemptions(source: str) -> set[str]:
    """Rule ids a module opts out of via ``# repolint: exempt=...``.

    Shared with :mod:`repro.analysis.effects`, whose DET rules honor the
    same pragma vocabulary.
    """
    exempt: set[str] = set()
    for match in _EXEMPT_RE.finditer(source):
        exempt.update(r.strip() for r in match.group(1).split(",") if r.strip())
    return exempt


def skipped_lines(source: str) -> set[int]:
    """1-based line numbers carrying a ``# repolint: skip`` pragma."""
    return {
        i for i, line in enumerate(source.splitlines(), start=1) if _SKIP_RE.search(line)
    }


def _top_level_defs(tree: ast.Module) -> tuple[set[str], set[str]]:
    """(all defined top-level names, public def/class names)."""
    defined: set[str] = set()
    public_defs: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defined.add(node.name)
            if not node.name.startswith("_"):
                public_defs.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    defined.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            defined.add(node.target.id)
        elif isinstance(node, ast.ImportFrom):
            defined.update(alias.asname or alias.name for alias in node.names)
        elif isinstance(node, ast.Import):
            defined.update((alias.asname or alias.name).split(".")[0] for alias in node.names)
    return defined, public_defs


def _literal_all(tree: ast.Module) -> tuple[int, list[str]] | None:
    """(__all__ line number, names) if the module declares a literal __all__."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets):
            continue
        if isinstance(node.value, (ast.List, ast.Tuple)):
            names = [
                elt.value
                for elt in node.value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            ]
            return node.lineno, names
    return None


# ---------------------------------------------------------------- rules
def _check_kernel_contract(
    path: Path, rel: str, tree: ast.Module
) -> list[Diagnostic]:
    """REPO001: a kernel module has both faces — function and trace."""
    has_builder = False
    has_functional = False
    for node in tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        if node.name == "build_trace" or node.name.endswith("_trace"):
            has_builder = True
        if "kernel" in node.name or node.name in FUNCTIONAL_ENTRY_ALTERNATES:
            has_functional = True
    missing = []
    if not has_functional:
        missing.append("a functional entry point (*_kernel or equivalent)")
    if not has_builder:
        missing.append("a trace builder (build_trace/*_trace)")
    if not missing:
        return []
    return [
        Diagnostic(
            rule_id="REPO001",
            severity=Severity.ERROR,
            location=f"{rel}:1",
            message=(
                f"kernel module lacks {' and '.join(missing)}; every benchmark "
                f"has two faces — the computation and its machine-model trace"
            ),
        )
    ]


def _check_all_exports(rel: str, tree: ast.Module) -> list[Diagnostic]:
    """REPO002: __all__ and the public definitions agree."""
    declared = _literal_all(tree)
    if declared is None:
        return []
    lineno, names = declared
    defined, public_defs = _top_level_defs(tree)
    found = []
    for name in names:
        if name not in defined:
            found.append(
                Diagnostic(
                    rule_id="REPO002",
                    severity=Severity.ERROR,
                    location=f"{rel}:{lineno}",
                    message=f"__all__ exports {name!r} but the module never defines it",
                )
            )
    for name in sorted(public_defs - set(names)):
        found.append(
            Diagnostic(
                rule_id="REPO002",
                severity=Severity.ERROR,
                location=f"{rel}:{lineno}",
                message=(
                    f"public definition {name!r} is missing from __all__ "
                    f"(export it or prefix it with an underscore)"
                ),
            )
        )
    return found


def _check_intrinsic_names(rel: str, tree: ast.Module) -> list[Diagnostic]:
    """REPO003: intrinsic mixes only use names the machine model knows."""

    def bad_keys(mapping: ast.Dict) -> list[tuple[int, str]]:
        out = []
        for key in mapping.keys:
            if (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and key.value not in INTRINSICS
            ):
                out.append((key.lineno, key.value))
        return out

    found = []
    for node in ast.walk(tree):
        candidates: list[ast.Dict] = []
        if isinstance(node, ast.Call):
            for kw in node.keywords:
                if kw.arg in ("intrinsics", "intrinsic_calls") and isinstance(
                    kw.value, ast.Dict
                ):
                    candidates.append(kw.value)
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Dict):
            if any(
                isinstance(t, ast.Name) and "INTRINSIC" in t.id for t in node.targets
            ):
                candidates.append(node.value)
        for mapping in candidates:
            for lineno, name in bad_keys(mapping):
                found.append(
                    Diagnostic(
                        rule_id="REPO003",
                        severity=Severity.ERROR,
                        location=f"{rel}:{lineno}",
                        message=(
                            f"unknown intrinsic {name!r}; the machine model "
                            f"prices only {', '.join(INTRINSICS)}"
                        ),
                    )
                )
    return found


#: time-module members that read the host clock (REPO004).
_CLOCK_MEMBERS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)


def _forbidden_origin(path: str) -> str | None:
    """REPO004 message fragment when a dotted origin is impure, else None."""
    if path == "random" or path.startswith("random."):
        return path
    if path == "numpy.random" or path.startswith("numpy.random."):
        return path
    if path.startswith("time.") and path.split(".", 1)[1] in _CLOCK_MEMBERS:
        return f"{path}()"
    return None


def _check_determinism(rel: str, tree: ast.Module) -> list[Diagnostic]:
    """REPO004: simulator code never reads host clocks or entropy.

    Flags both the imports and the usages they enable.  Usage sites are
    resolved through an alias table, so from-imports and renames —
    ``from time import time``, ``from time import perf_counter as now``,
    ``import numpy.random as nr`` — are caught alongside the
    attribute-style ``time.time()`` / ``np.random.rand()`` forms the
    original check was limited to.
    """
    found = []
    flagged: set[tuple[int, str]] = set()

    def flag(lineno: int, what: str) -> None:
        if (lineno, what) in flagged:
            return
        flagged.add((lineno, what))
        found.append(
            Diagnostic(
                rule_id="REPO004",
                severity=Severity.ERROR,
                location=f"{rel}:{lineno}",
                message=(
                    f"{what} in a simulator code path; simulated time only "
                    f"advances through the event queue (determinism invariant)"
                ),
            )
        )

    # Pass 1: imports — flag the forbidden ones, and build the alias
    # table usage resolution reads (local name -> dotted origin).
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                aliases[alias.asname or root] = alias.name if alias.asname else root
                if root in ("time", "random") or alias.name.startswith("numpy.random"):
                    flag(node.lineno, f"import of {alias.name!r}")
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            module_flagged = module.split(".")[0] in ("time", "random") or (
                module.startswith("numpy.random")
            )
            if module_flagged:
                flag(node.lineno, f"import of {module!r}")
            for alias in node.names:
                if alias.name == "*":
                    continue
                origin = f"{module}.{alias.name}" if module else alias.name
                aliases[alias.asname or alias.name] = origin
                if _forbidden_origin(origin) is not None and not module_flagged:
                    # e.g. ``from numpy import random`` — the forbidden
                    # module arrives under a name the module check above
                    # could not see, so flag the symbol itself.
                    flag(node.lineno, f"import of {origin!r}")

    # Pass 2: usages, resolved through the alias table.  Only outermost
    # attribute chains are flagged, so ``np.random.rand`` is one finding.
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent

    def resolve(node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            return aliases.get(node.id)
        if isinstance(node, ast.Attribute):
            base = resolve(node.value)
            return f"{base}.{node.attr}" if base is not None else None
        return None

    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            if isinstance(parents.get(node), ast.Attribute):
                continue  # an enclosing chain will consider the full path
            origin = resolve(node)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if isinstance(parents.get(node), (ast.Attribute, ast.Import, ast.ImportFrom)):
                continue
            origin = aliases.get(node.id)
            # A bare module reference is not itself a clock/entropy read;
            # member origins (``from time import time``) are.
            if origin is not None and "." not in origin:
                origin = None
            if origin is not None and node.id != origin.rsplit(".", 1)[1]:
                member = _forbidden_origin(origin)
                if member is not None:
                    flag(node.lineno, f"{member} (as {node.id!r})")
                continue
        else:
            continue
        if origin is None:
            continue
        fragment = _forbidden_origin(origin)
        if fragment is not None:
            flag(node.lineno, fragment)
    return found


def _check_magic_units(rel: str, tree: ast.Module) -> list[Diagnostic]:
    """REPO005: scale factors come from repro.units, not literals."""
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.BinOp) or not isinstance(
            node.op, (ast.Mult, ast.Div)
        ):
            continue
        for operand in (node.left, node.right):
            if (
                isinstance(operand, ast.Constant)
                and isinstance(operand.value, float)
                and operand.value in MAGIC_UNIT_CONSTANTS
            ):
                symbol = MAGIC_UNIT_CONSTANTS[operand.value]
                found.append(
                    Diagnostic(
                        rule_id="REPO005",
                        severity=Severity.ERROR,
                        location=f"{rel}:{operand.lineno}",
                        message=(
                            f"magic unit constant {operand.value:g}; use "
                            f"repro.units.{symbol} so scale factors are named"
                        ),
                    )
                )
    return found


def _check_perfmon_registration(rel: str, tree: ast.Module) -> list[Diagnostic]:
    """REPO006: op-consuming machine components declare perfmon counters.

    A component that times :class:`VectorOp`/:class:`ScalarOp` work is a
    source of PROGINF truth — if it never registers counters, profiles
    silently under-report whatever it models.
    """
    op_refs = [
        node.lineno
        for node in ast.walk(tree)
        if (isinstance(node, ast.Name) and node.id in ("VectorOp", "ScalarOp"))
        or (isinstance(node, ast.Attribute) and node.attr in ("VectorOp", "ScalarOp"))
    ]
    if not op_refs:
        return []
    for node in tree.body:
        if not (isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)):
            continue
        func = node.value.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        if name == "declare_counters":
            return []
    return [
        Diagnostic(
            rule_id="REPO006",
            severity=Severity.ERROR,
            location=f"{rel}:{min(op_refs)}",
            message=(
                "machine component consumes trace operations but never calls "
                "repro.perfmon.counters.declare_counters at module level; "
                "components that time ops must register the counters they "
                "populate (PROGINF would otherwise under-report)"
            ),
        )
    ]


def _check_batch_siblings(rel: str, tree: ast.Module) -> list[Diagnostic]:
    """REPO007: batched methods shadow a per-op method on the same class.

    The compiled engine's correctness story is *parity with the per-op
    reference*: every ``<name>_batch`` method must sit next to the
    ``<name>`` method it vectorises, otherwise there is nothing for the
    parity suite to compare it against.
    """
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        methods = {
            item.name: item
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for name, method in methods.items():
            # Private helpers are internal plumbing, not part of the
            # per-op/batched costing API the parity suite pins down.
            if not name.endswith("_batch") or name.startswith("_"):
                continue
            sibling = name[: -len("_batch")]
            if sibling in methods:
                continue
            found.append(
                Diagnostic(
                    rule_id="REPO007",
                    severity=Severity.ERROR,
                    location=f"{rel}:{method.lineno}",
                    message=(
                        f"batched method {node.name}.{name} has no per-op "
                        f"sibling {sibling!r}; every columnar method needs "
                        f"the per-op reference the parity suite verifies "
                        f"it against"
                    ),
                )
            )
    return found


def _check_grid_siblings(rel: str, tree: ast.Module) -> list[Diagnostic]:
    """REPO009: grid methods shadow a per-machine batch method.

    The machine-axis engine's correctness story stacks on REPO007's:
    a ``<name>_cycles_grid`` method claims bit-parity with running
    ``<name>_cycles_batch`` once per machine, so the batch sibling must
    exist on the same class for the grid parity suite to compare
    against (and REPO007 in turn guarantees *that* sibling has its
    per-op reference).
    """
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        methods = {
            item.name: item
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for name, method in methods.items():
            # Private _*_grid helpers are the kernels behind the public
            # API, not independently-verified surface.
            if not name.endswith("_cycles_grid") or name.startswith("_"):
                continue
            sibling = name[: -len("_grid")] + "_batch"
            if sibling in methods:
                continue
            found.append(
                Diagnostic(
                    rule_id="REPO009",
                    severity=Severity.ERROR,
                    location=f"{rel}:{method.lineno}",
                    message=(
                        f"grid method {node.name}.{name} has no per-machine "
                        f"sibling {sibling!r}; every machine-axis method "
                        f"needs the batch reference the grid parity suite "
                        f"verifies it against"
                    ),
                )
            )
    return found


def _check_fault_sites(rel: str, tree: ast.Module) -> list[Diagnostic]:
    """REPO008: fault_point call sites name a registered site, literally.

    :data:`repro.faults.inject.FAULT_SITES` is both the site registry
    and (via the module-level ``declare_counters``) the ``fault.*``
    counter registry — a call site whose first argument is a literal
    member of it is guaranteed an observable counter.  A non-literal
    site defeats that static guarantee, so it is rejected outright.
    """
    found = []

    def flag(lineno: int, message: str) -> None:
        found.append(
            Diagnostic(
                rule_id="REPO008",
                severity=Severity.ERROR,
                location=f"{rel}:{lineno}",
                message=message,
            )
        )

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        if name != "fault_point":
            continue
        site = node.args[0] if node.args else None
        if site is None:
            for kw in node.keywords:
                if kw.arg == "site":
                    site = kw.value
        if not (isinstance(site, ast.Constant) and isinstance(site.value, str)):
            flag(
                node.lineno,
                "fault_point site must be a string literal so the hook "
                "site and its fault.* counter are statically checkable",
            )
        elif site.value not in FAULT_SITES:
            flag(
                node.lineno,
                f"fault_point site {site.value!r} is not registered in "
                f"repro.faults.inject.FAULT_SITES {FAULT_SITES}; register "
                f"it there (which also declares its fault.* counter)",
            )
    return found


#: Names a ``*_cycles_batch`` loop may draw its iterable from (REPO011):
#: loops over the fixed intrinsic vocabulary (or builtins wrapping it)
#: run a constant number of vectorised column operations regardless of
#: which rows are stacked — loops over the data columns do not.
SEGMENT_SAFE_ITERABLE_NAMES = frozenset(
    {"enumerate", "sorted", "range", "len", "zip", "INTRINSICS", "SORTED_INTRINSICS"}
)


def _check_segment_safety(rel: str, tree: ast.Module) -> list[Diagnostic]:
    """REPO011: public ``*_cycles_batch`` kernels stay segment-safe.

    The suite-batch engine (:mod:`repro.machine.suitebatch`) calls these
    kernels once over columns stacked from many traces and segment-
    reduces the result, so a kernel is only eligible if its output row
    ``i`` depends on input row ``i`` alone.  Elementwise NumPy has that
    property by construction; three things break it silently:

    * Python loops over the rows (``while``, or ``for``/comprehensions
      whose iterable involves the data columns) — loop trip counts then
      depend on which traces were stacked;
    * loops over the constant intrinsic vocabulary are fine
      (``sorted(INTRINSICS)``), as are loops over ``np.unique`` results
      mapped back through the inverse: both are value-dependent, never
      row-identity-dependent;
    * scalarising a column entry (``.item()``, ``.tolist()``,
      ``float(<column arg>)``) — the hidden float round-trip can differ
      from the vectorised code path the rest of the rows take.
    """
    found = []

    def flag(lineno: int, message: str) -> None:
        found.append(
            Diagnostic(
                rule_id="REPO011",
                severity=Severity.ERROR,
                location=f"{rel}:{lineno}",
                message=message,
            )
        )

    def unique_locals(method: ast.FunctionDef) -> set[str]:
        """Local names bound (possibly tuple-unpacked) from np.unique."""
        names: set[str] = set()
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
                continue
            func = node.value.func
            attr = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
            if attr != "unique":
                continue
            for target in node.targets:
                elts = target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
                names.update(e.id for e in elts if isinstance(e, ast.Name))
        return names

    def iterable_ok(expr: ast.expr, allowed: set[str]) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id not in allowed:
                return False
            if isinstance(node, ast.Attribute) and node.attr != "unique":
                return False
        return True

    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        for method in cls.body:
            if not isinstance(method, ast.FunctionDef):
                continue
            name = method.name
            if not name.endswith("_cycles_batch") or name.startswith("_"):
                continue
            params = {a.arg for a in method.args.args} - {"self"}
            allowed = SEGMENT_SAFE_ITERABLE_NAMES | unique_locals(method)
            label = f"{cls.name}.{name}"
            for node in ast.walk(method):
                if isinstance(node, ast.While):
                    flag(
                        node.lineno,
                        f"batch kernel {label} contains a Python while loop; "
                        f"segment-safe kernels are elementwise NumPy over the "
                        f"stacked columns (suite-batch eligibility)",
                    )
                elif isinstance(node, ast.For):
                    if not iterable_ok(node.iter, allowed):
                        flag(
                            node.lineno,
                            f"batch kernel {label} loops over data rows in "
                            f"Python; only constant-trip loops (the intrinsic "
                            f"vocabulary, np.unique results) keep the kernel "
                            f"segment-safe for suite-batch stacking",
                        )
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                       ast.GeneratorExp)):
                    for generator in node.generators:
                        if not iterable_ok(generator.iter, allowed):
                            flag(
                                node.lineno,
                                f"batch kernel {label} iterates data rows in a "
                                f"comprehension; segment-safe kernels stay "
                                f"elementwise over the stacked columns",
                            )
                elif isinstance(node, ast.Call):
                    func = node.func
                    if isinstance(func, ast.Attribute) and func.attr in ("item", "tolist"):
                        flag(
                            node.lineno,
                            f"batch kernel {label} scalarises a column via "
                            f".{func.attr}(); the hidden per-row Python float "
                            f"path breaks bit-parity once rows from different "
                            f"traces interleave",
                        )
                    elif (
                        isinstance(func, ast.Name)
                        and func.id == "float"
                        and any(
                            isinstance(n, ast.Name) and n.id in params
                            for arg in node.args
                            for n in ast.walk(arg)
                        )
                    ):
                        flag(
                            node.lineno,
                            f"batch kernel {label} forces a column argument "
                            f"through float(); scalarising stacked columns is "
                            f"not segment-safe (machine scalars like "
                            f"float(self.<attr>) are fine)",
                        )
    return found


#: Exit codes every ``repro.*`` CLI may use as inline literals.  The
#: shared contract — 0 success, 1 failure, 2 usage — is what lets shell
#: scripts and CI treat the tools uniformly; anything finer-grained
#: (``engine run``'s failure kinds) must come from a named code map.
CONTRACT_EXIT_CODES = (0, 1, 2)


def _exit_code_literal(node: ast.AST) -> tuple[int, int] | None:
    """(lineno, code) when ``node`` exits with a literal int, else None.

    Matches ``sys.exit(N)`` / ``exit(N)`` calls and ``raise
    SystemExit(N)``; non-literal arguments (variables, dict lookups
    like ``FAILURE_EXIT_CODES[kind]``) are out of scope by design —
    a named map is exactly the documented escape this rule demands.
    """
    call: ast.expr | None = None
    if isinstance(node, ast.Raise) and isinstance(node.exc, ast.Call):
        func = node.exc.func
        if isinstance(func, ast.Name) and func.id == "SystemExit":
            call = node.exc
    elif isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        if name == "exit":
            call = node
    if call is None or len(call.args) != 1 or call.keywords:
        return None
    arg = call.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, int):
        return node.lineno, arg.value
    return None


def _check_exit_codes(rel: str, tree: ast.Module) -> list[Diagnostic]:
    """REPO010: CLI entry modules keep to the 0/1/2 exit-code contract.

    Applies to ``cli.py`` / ``__main__.py`` modules and any src module
    defining a top-level ``main`` function.  Only *literal* integer
    codes outside the contract are findings: exits through a named
    failure-kind map (``sys.exit(FAILURE_EXIT_CODES[kind])``) are the
    sanctioned way to express richer taxonomies, because the map is a
    single documented, greppable surface instead of scattered numbers.
    """
    found = []
    for node in ast.walk(tree):
        hit = _exit_code_literal(node)
        if hit is None:
            continue
        lineno, code = hit
        if code in CONTRACT_EXIT_CODES:
            continue
        found.append(
            Diagnostic(
                rule_id="REPO010",
                severity=Severity.ERROR,
                location=f"{rel}:{lineno}",
                message=(
                    f"CLI exits with literal code {code}, outside the "
                    f"uniform contract {CONTRACT_EXIT_CODES} "
                    f"(0 ok / 1 failure / 2 usage); route richer "
                    f"failure kinds through a named exit-code map"
                ),
            )
        )
    return found


#: Exception names REPO012 treats as the timeout/connection family —
#: the errors a service is most tempted to shrug off and least able to
#: afford losing track of.
SWALLOWABLE_NETWORK_ERRORS = frozenset(
    {
        "TimeoutError",
        "OSError",
        "ConnectionError",
        "ConnectionResetError",
        "ConnectionRefusedError",
        "ConnectionAbortedError",
        "BrokenPipeError",
        "InterruptedError",
    }
)

#: Call names REPO012 accepts as "the handler made the error observable":
#: stdout/stderr reporting, logger methods, and the perfmon counting
#: surface (module helpers and the app's private wrappers).
OBSERVABILITY_CALLS = frozenset(
    {
        "print",
        "log",
        "debug",
        "info",
        "warning",
        "error",
        "exception",
        "critical",
        "record",
        "add",
        "add_many",
        "_count",
        "_record",
    }
)


def _names_network_error(annotation: ast.expr | None) -> bool:
    """True when an except clause names a REPO012 family member.

    Bare ``except:`` / ``except Exception`` are out of scope: those are
    catch-all boundaries (the server's 500 fence, the worker loop), not
    handlers that singled the network family out to discard it.
    """
    if annotation is None:
        return False
    if isinstance(annotation, ast.Tuple):
        return any(_names_network_error(elt) for elt in annotation.elts)
    if isinstance(annotation, ast.Name):
        return annotation.id in SWALLOWABLE_NETWORK_ERRORS
    if isinstance(annotation, ast.Attribute):
        # socket.timeout / asyncio.TimeoutError style references.
        return annotation.attr in SWALLOWABLE_NETWORK_ERRORS or (
            annotation.attr == "timeout"
        )
    return False


def _handler_observes(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
            if name is not None and (
                name in OBSERVABILITY_CALLS or name.startswith("note_")
            ):
                return True
    return False


def _check_swallowed_timeouts(rel: str, tree: ast.Module) -> list[Diagnostic]:
    """REPO012: service code never silently swallows timeouts/hangups.

    The lifecycle layer's honesty depends on every timeout and
    connection error landing somewhere visible — a counter, a log line,
    or the caller (via re-raise).  An ``except OSError: pass`` in the
    service keeps ``/v1/health`` green while the failure it hid recurs,
    which is precisely the failure mode the drain/breaker/watchdog
    machinery exists to surface.
    """
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _names_network_error(node.type):
            continue
        if _handler_observes(node):
            continue
        caught = ast.unparse(node.type) if node.type is not None else "..."
        found.append(
            Diagnostic(
                rule_id="REPO012",
                severity=Severity.ERROR,
                location=f"{rel}:{node.lineno}",
                message=(
                    f"except clause catches {caught} but neither re-raises, "
                    f"logs, nor counts it; a service that silently swallows "
                    f"timeouts/hangups reports healthy while losing requests "
                    f"(re-raise, print, or record a perfmon counter)"
                ),
            )
        )
    return found


# ---------------------------------------------------------------- driver
def _is_kernel_module(rel_parts: tuple[str, ...]) -> bool:
    return (
        len(rel_parts) == 4
        and rel_parts[:3] == ("src", "repro", "kernels")
        and rel_parts[3] != "__init__.py"
    )


def _is_machine_component(rel_parts: tuple[str, ...]) -> bool:
    """Machine component modules REPO006 applies to (not the operation
    vocabulary or its columnar lowering, which define and transport the
    ops rather than timing them — timing stays in the components)."""
    return (
        len(rel_parts) == 4
        and rel_parts[:3] == ("src", "repro", "machine")
        and rel_parts[3] not in ("__init__.py", "operations.py", "compiled.py")
    )


def _is_simulator_path(rel_parts: tuple[str, ...]) -> bool:
    if rel_parts[:2] != ("src", "repro") or len(rel_parts) < 3:
        return False
    return rel_parts[2] in SIMULATOR_PATHS


def _in_src(rel_parts: tuple[str, ...]) -> bool:
    return rel_parts[:2] == ("src", "repro")


def _is_service_module(rel_parts: tuple[str, ...]) -> bool:
    """Modules REPO012 holds to the no-swallowed-timeouts contract."""
    return rel_parts[:3] == ("src", "repro", "service")


def _is_cli_entry(rel_parts: tuple[str, ...], tree: ast.Module) -> bool:
    """Modules REPO010 holds to the exit-code contract: the conventional
    entry-point filenames, plus any src module exposing a top-level
    ``main`` (however it is named, it is somebody's entry point)."""
    if not _in_src(rel_parts):
        return False
    if rel_parts[-1] in ("cli.py", "__main__.py"):
        return True
    return any(
        isinstance(node, ast.FunctionDef) and node.name == "main"
        for node in tree.body
    )


def lint_file(path: Path, root: Path) -> list[Diagnostic]:
    """All repo-invariant findings for one file."""
    rel_parts = path.relative_to(root).parts
    rel = "/".join(rel_parts)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as exc:
        return [
            Diagnostic(
                rule_id="REPO000",
                severity=Severity.ERROR,
                location=f"{rel}:{exc.lineno or 1}",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    exempt = module_exemptions(source)
    skipped = skipped_lines(source)

    found: list[Diagnostic] = []
    if _is_kernel_module(rel_parts):
        found.extend(_check_kernel_contract(path, rel, tree))
    found.extend(_check_all_exports(rel, tree))
    found.extend(_check_intrinsic_names(rel, tree))
    if _is_simulator_path(rel_parts):
        found.extend(_check_determinism(rel, tree))
    if _is_machine_component(rel_parts):
        found.extend(_check_perfmon_registration(rel, tree))
    if _in_src(rel_parts) and rel_parts[-1] != "units.py":
        found.extend(_check_magic_units(rel, tree))
    if _in_src(rel_parts):
        found.extend(_check_batch_siblings(rel, tree))
        found.extend(_check_grid_siblings(rel, tree))
        found.extend(_check_segment_safety(rel, tree))
        found.extend(_check_fault_sites(rel, tree))
    if _is_service_module(rel_parts):
        found.extend(_check_swallowed_timeouts(rel, tree))
    if _is_cli_entry(rel_parts, tree):
        found.extend(_check_exit_codes(rel, tree))

    def kept(diag: Diagnostic) -> bool:
        if diag.rule_id in exempt:
            return False
        lineno = int(diag.location.rsplit(":", 1)[1])
        return lineno not in skipped

    return [d for d in found if kept(d)]


def lint_repo(root: Path | None = None) -> DiagnosticReport:
    """Lint src/repro and tests; report is CI-gating (any finding fails)."""
    root = root or repo_root()
    report = DiagnosticReport(subject=str(root))
    files: list[Path] = []
    for sub in ("src/repro", "tests"):
        base = root / sub
        if base.is_dir():
            files.extend(sorted(base.rglob("*.py")))
    for path in files:
        if "egg-info" in str(path):
            continue
        report.diagnostics.extend(lint_file(path, root))
    return report
