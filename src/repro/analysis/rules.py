"""Trace rules: the vectorization anti-patterns of Section 4.4, as lint.

Each rule inspects a :class:`~repro.machine.operations.Trace` against a
calibrated vector-machine model *before* pricing and reports the coding
styles the paper says decide SX-4 performance:

========  =====================================================  ========
rule      finding                                                severity
========  =====================================================  ========
VEC001    vector length below the half-performance length n½     warning
VEC002    constant stride causing bank conflicts                 warning
VEC003    gather/scatter-dominated memory traffic                warning
VEC004    scalar-op-dominated trace (vector ≫ scalar rule)       warning
VEC005    arithmetic intensity below the machine balance         info
VEC006    intrinsic-heavy loop (vector intrinsic pipes decide)   info
========  =====================================================  ========

Every diagnostic carries a predicted-impact factor computed from the same
analytic model that prices the trace, so the output is quantitative: a
stride-512 access on 1024 two-cycle banks reports the ~8x bank-conflict
slowdown it is actually being charged.

Per-op rules (VEC001/2/3/6) fire on individual :class:`VectorOp` entries;
trace-level rules (VEC004/5) judge the aggregate.  A rule is a callable
``(trace, processor) -> list[Diagnostic]`` registered in :data:`ALL_RULES`.
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.machine.compiled import compile_trace, fsum
from repro.machine.operations import INTRINSIC_FLOP_EQUIV, ScalarOp, Trace, VectorOp
from repro.machine.processor import Processor

__all__ = [
    "SCALAR_FRACTION_THRESHOLD",
    "ALL_RULES",
    "rule_vec001_short_vectors",
    "rule_vec002_bank_conflict_stride",
    "rule_vec003_gather_dominated",
    "rule_vec004_scalar_dominated",
    "rule_vec005_low_intensity",
    "rule_vec006_intrinsic_heavy",
]

#: VEC004 fires when scalar ops consume more than this fraction of the
#: modelled cycles.  30% scalar time already caps speedup at ~3.3x
#: (Amdahl), far below what the rewrite of Section 4.4 achieved.
SCALAR_FRACTION_THRESHOLD = 0.3

RuleFn = Callable[[Trace, Processor], list[Diagnostic]]


def _vector_ops(trace: Trace):
    """(index, op) pairs for the vector ops of a trace, skipping idle ones."""
    for i, op in enumerate(trace):
        if isinstance(op, VectorOp) and op.count > 0:
            yield i, op


def _op_location(i: int, op: VectorOp | ScalarOp) -> str:
    return f"op[{i}] {op.name!r}"


def rule_vec001_short_vectors(trace: Trace, processor: Processor) -> list[Diagnostic]:
    """VEC001: vector loop shorter than the half-performance length.

    Below Hockney's n½ (= startup_cycles x pipes; 320 on the SX-4) a loop
    spends more cycles filling pipelines than computing.  Impact is the
    modelled overhead dilation: (startup + busy) / busy cycles per
    execution — the factor a rewrite to asymptotic-length vectors recovers.
    """
    assert processor.vector is not None and processor.memory is not None
    n_half = processor.vector.half_performance_length
    found = []
    for i, op in enumerate(trace):
        if not isinstance(op, VectorOp) or op.count <= 0:
            continue
        if op.length >= n_half:
            continue
        busy = max(
            processor.vector.arithmetic_cycles(op), processor.memory.transfer_cycles(op)
        )
        overhead = processor.vector.overhead_cycles(op)
        impact = (overhead + busy) / busy if busy > 0 else float(overhead)
        found.append(
            Diagnostic(
                rule_id="VEC001",
                severity=Severity.WARNING,
                location=_op_location(i, op),
                message=(
                    f"vector length {op.length} is below the half-performance "
                    f"length n½={n_half}; the loop is startup-dominated — "
                    f"restructure so the long axis is innermost"
                ),
                predicted_impact=impact,
                op_index=i,
            )
        )
    return found


def rule_vec002_bank_conflict_stride(trace: Trace, processor: Processor) -> list[Diagnostic]:
    """VEC002: constant stride sharing a large factor with the bank count.

    Stride s on B banks cycles through only B/gcd(s, B) banks; once that
    subset cannot cover the port width within the bank busy time, loads
    serialise.  Impact is the modelled bank-conflict factor (8x for stride
    512 on 1024 two-cycle banks).
    """
    assert processor.memory is not None
    memory = processor.memory
    found = []
    for i, op in _vector_ops(trace):
        for stride, words, path in (
            (op.load_stride, op.loads_per_element, "load"),
            (op.store_stride, op.stores_per_element, "store"),
        ):
            if words <= 0:
                continue
            conflict = memory.conflict_factor(stride)
            if conflict <= 1.0:
                continue
            found.append(
                Diagnostic(
                    rule_id="VEC002",
                    severity=Severity.WARNING,
                    location=_op_location(i, op),
                    message=(
                        f"{path} stride {stride} hits only "
                        f"{memory.distinct_banks(stride)} of {memory.banks} banks: "
                        f"~{conflict:.0f}x {path} slowdown — pad the leading "
                        f"dimension to an odd stride"
                    ),
                    predicted_impact=conflict,
                    op_index=i,
                )
            )
    return found


def rule_vec003_gather_dominated(trace: Trace, processor: Processor) -> list[Diagnostic]:
    """VEC003: loop moving at least as many indexed as sequential words.

    List-vector access pays the gather dilation plus index-vector traffic
    on the load path.  Impact compares the op's modelled memory time with
    the same words moved at unit stride.
    """
    assert processor.memory is not None
    memory = processor.memory
    found = []
    for i, op in _vector_ops(trace):
        indexed = op.indexed_words
        if indexed <= 0 or indexed < op.sequential_words:
            continue
        actual = memory.transfer_cycles(op)
        ideal = max(
            (op.loads_per_element + op.gather_loads_per_element) * op.length,
            (op.stores_per_element + op.scatter_stores_per_element) * op.length,
        ) / memory.path_words_per_cycle
        impact = actual / ideal if ideal > 0 else None
        found.append(
            Diagnostic(
                rule_id="VEC003",
                severity=Severity.WARNING,
                location=_op_location(i, op),
                message=(
                    f"gather/scatter moves {indexed:.0f} of "
                    f"{indexed + op.sequential_words:.0f} words per execution "
                    f"(list-vector dominated) — precompute a sorted index or "
                    f"restructure to constant stride"
                ),
                predicted_impact=impact,
                op_index=i,
            )
        )
    return found


def rule_vec004_scalar_dominated(trace: Trace, processor: Processor) -> list[Diagnostic]:
    """VEC004: scalar ops consume an Amdahl-limiting share of the cycles.

    The paper's first coding-style rule: vector speed dwarfs scalar speed,
    so any trace whose scalar bookkeeping exceeds ~30% of modelled time is
    style-broken.  Impact is the Amdahl bound 1/(1-f) currently forfeited.
    """
    compiled = compile_trace(trace)
    scalar_cycles = fsum(processor.scalar_op_cycles_batch(compiled))
    vector_cycles = fsum(processor.vector_op_cycles_batch(compiled))
    total_cycles = scalar_cycles + vector_cycles
    if total_cycles <= 0:
        return []
    fraction = scalar_cycles / total_cycles
    if fraction <= SCALAR_FRACTION_THRESHOLD:
        return []
    # At 100% scalar there is no vector part to amortise against; leave
    # the impact unquantified rather than reporting an infinite factor.
    impact = 1.0 / (1.0 - fraction) if fraction < 1.0 else None
    return [
        Diagnostic(
            rule_id="VEC004",
            severity=Severity.WARNING,
            location=f"trace {trace.name!r}",
            message=(
                f"scalar ops take {100 * fraction:.0f}% of modelled cycles "
                f"(threshold {100 * SCALAR_FRACTION_THRESHOLD:.0f}%); the "
                f"vector ≫ scalar rule says move this work into vector "
                f"loops"
            ),
            predicted_impact=impact,
        )
    ]


def rule_vec005_low_intensity(trace: Trace, processor: Processor) -> list[Diagnostic]:
    """VEC005: arithmetic intensity below the machine's flops:words balance.

    With intensity (flop-equivalents per word moved) under the balance
    point — peak flops per cycle over port words per cycle, 1.0 on the
    SX-4 — the memory port, not the pipes, bounds the rate.  Impact is the
    balance-to-intensity ratio: the headroom the pipes cannot reach.
    """
    assert processor.vector is not None and processor.memory is not None
    words = trace.words_moved
    if words <= 0:
        return []
    intensity = trace.flop_equivalents / words
    balance = processor.vector.peak_flops_per_cycle / processor.memory.port_words_per_cycle
    if intensity >= balance:
        return []
    impact = balance / intensity if intensity > 0 else None
    return [
        Diagnostic(
            rule_id="VEC005",
            severity=Severity.INFO,
            location=f"trace {trace.name!r}",
            message=(
                f"arithmetic intensity {intensity:.2f} flops/word is below the "
                f"machine balance {balance:.2f}: memory-bandwidth bound, "
                f"expect ≤{100 * intensity / balance:.0f}% of peak"
            ),
            predicted_impact=impact,
        )
    ]


def rule_vec006_intrinsic_heavy(trace: Trace, processor: Processor) -> list[Diagnostic]:
    """VEC006: loop whose cost is decided by the vector intrinsic pipes.

    Fires when intrinsic flop-equivalents exceed the genuine flops *and*
    the intrinsic pipeline time exceeds the add/multiply time — the RADABS
    profile, where EXP/LOG/PWR throughput, not peak Mflops, predicts the
    machine ranking.  Informational: the cure is a faster math library,
    not a loop restructure.  Impact is the op slowdown relative to the
    same loop with free intrinsics.
    """
    assert processor.vector is not None
    vector = processor.vector
    found = []
    for i, op in _vector_ops(trace):
        if not op.intrinsic_calls:
            continue
        equiv = sum(
            INTRINSIC_FLOP_EQUIV[name] * per for name, per in op.intrinsic_calls
        )
        if equiv <= op.flops_per_element:
            continue
        intrinsic_cycles = sum(
            op.length * per * vector.intrinsic_cycles_per_element[name]
            for name, per in op.intrinsic_calls
        )
        flop_cycles = vector.arithmetic_cycles(op) - intrinsic_cycles
        if intrinsic_cycles <= flop_cycles:
            continue
        impact = (
            (intrinsic_cycles + flop_cycles) / flop_cycles if flop_cycles > 0 else None
        )
        mix = ", ".join(f"{name} {per:g}/elem" for name, per in op.intrinsic_calls)
        found.append(
            Diagnostic(
                rule_id="VEC006",
                severity=Severity.INFO,
                location=_op_location(i, op),
                message=(
                    f"intrinsic-heavy loop ({mix}): library throughput, not "
                    f"peak Mflops, bounds this op — rank machines by intrinsic "
                    f"pipes (Table 3)"
                ),
                predicted_impact=impact,
                op_index=i,
            )
        )
    return found


#: All trace rules, in rule-id order; the analyzer runs them in sequence.
ALL_RULES: tuple[RuleFn, ...] = (
    rule_vec001_short_vectors,
    rule_vec002_bank_conflict_stride,
    rule_vec003_gather_dominated,
    rule_vec004_scalar_dominated,
    rule_vec005_low_intensity,
    rule_vec006_intrinsic_heavy,
)
