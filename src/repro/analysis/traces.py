"""Trace analyzer: run the VEC rules over any benchmark's trace builder.

Two pieces:

* :func:`analyze_trace` — run every rule in
  :data:`repro.analysis.rules.ALL_RULES` over one
  :class:`~repro.machine.operations.Trace` against a vector-machine model
  (the SX-4 by default) and collect the findings in a
  :class:`~repro.analysis.diagnostics.DiagnosticReport`.
* :data:`TRACE_BUILDERS` — a registry mapping stable benchmark ids
  (``radabs``, ``xpose``, ``ccm2``, ...) to zero-argument builders that
  produce each suite benchmark's trace at its representative size, so the
  CLI (``python -m repro.analysis trace radabs``) and the suite runner can
  analyze every benchmark by name.

:data:`EXPERIMENT_TRACE_IDS` links suite experiment ids to the registry,
which is how :mod:`repro.suite.runner` attaches per-experiment diagnostic
summaries to its reports.
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport
from repro.analysis.rules import ALL_RULES
from repro.apps.ccm2 import costmodel as ccm2_cost
from repro.apps.mom import costmodel as mom_cost
from repro.apps.mom.grid import OceanGrid
from repro.apps.pop import costmodel as pop_cost
from repro.kernels import copy as kcopy
from repro.kernels import (
    elefunt,
    hint,
    ia,
    linpack,
    nas,
    radabs,
    rfft,
    stream,
    vfft,
    xpose,
)
from repro.machine.operations import Trace
from repro.machine.presets import sx4_processor
from repro.machine.processor import Processor
from repro.machine.suitebatch import SuiteColumns
from repro.perfmon.collector import record as perfmon_record

__all__ = [
    "MAX_FINDINGS_PER_RULE",
    "analyze_trace",
    "TRACE_BUILDERS",
    "EXPERIMENT_TRACE_IDS",
    "build_registered_trace",
    "build_suite_columns",
    "analyze_benchmark",
    "experiment_summaries",
]


#: Per-op rules firing on more ops than this are collapsed into one
#: aggregate diagnostic (a LINPACK factorisation is ~1000 shrinking axpys;
#: a thousand copies of the same finding explain nothing).
MAX_FINDINGS_PER_RULE = 4


def _aggregate(diagnostics: list) -> list:
    """Collapse rule floods: keep the worst finding, note the spread."""
    if len(diagnostics) <= MAX_FINDINGS_PER_RULE:
        return diagnostics
    worst = max(diagnostics, key=lambda d: d.predicted_impact or 0.0)
    indices = sorted(d.op_index for d in diagnostics if d.op_index is not None)
    span = f"ops[{indices[0]}..{indices[-1]}]" if indices else worst.location
    return [
        Diagnostic(
            rule_id=worst.rule_id,
            severity=worst.severity,
            location=span,
            message=f"[{len(diagnostics)} ops, worst at {worst.location}] {worst.message}",
            predicted_impact=worst.predicted_impact,
            op_index=worst.op_index,
        )
    ]


def analyze_trace(trace: Trace, processor: Processor | None = None) -> DiagnosticReport:
    """Run all VEC rules over a trace; findings in rule-id order.

    The processor must be a vector machine (the rules interrogate its
    vector unit and banked memory); the calibrated SX-4 is the default.
    Rules that fire on more than :data:`MAX_FINDINGS_PER_RULE` ops are
    collapsed to one aggregate diagnostic carrying the worst case.
    """
    processor = processor or sx4_processor()
    if not processor.is_vector_machine:
        raise ValueError(
            f"trace analysis needs a vector machine model, got {processor.name!r}"
        )
    report = DiagnosticReport(subject=trace.name)
    for rule in ALL_RULES:
        report.diagnostics.extend(_aggregate(rule(trace, processor)))
    return report


def _mom_step() -> Trace:
    """One MOM timestep at the Table 7 grid, diagnostics amortised."""
    grid = OceanGrid.benchmark()
    step = (
        mom_cost.baroclinic_trace(grid)
        + mom_cost.barotropic_trace(grid, mom_cost.SOR_ITERATIONS)
        + mom_cost.diagnostics_trace(grid).scaled(1.0 / mom_cost.DIAGNOSTIC_INTERVAL)
    )
    step.name = "MOM 1° step"
    return step


#: Benchmark id -> (description, zero-argument trace builder) at each
#: benchmark's representative size.  Ids are what the CLI and the suite
#: integration use; keep them stable.
TRACE_BUILDERS: dict[str, tuple[str, Callable[[], Trace]]] = {
    "copy": (
        "NCAR COPY kernel, N=65536 M=16 (Figure 5)",
        lambda: kcopy.build_trace(65536, 16),
    ),
    "ia": (
        "NCAR IA indirect-addressing kernel, N=65536 M=16 (Figure 5)",
        lambda: ia.build_trace(65536, 16),
    ),
    "xpose": (
        "NCAR XPOSE transpose kernel, 512x512 (Figure 5)",
        lambda: xpose.build_trace(512, 512),
    ),
    "stream": (
        "STREAM TRIAD at the standard array size (Section 3.1)",
        lambda: stream.build_trace("TRIAD"),
    ),
    "linpack": (
        "LINPACK n=1000 solve (Section 3.1 / Table 2)",
        lambda: linpack.build_trace(1000),
    ),
    "hint": (
        "HINT hierarchical-integration loop (Table 1)",
        lambda: hint.build_trace(1_000_000),
    ),
    "nas-ep": (
        "NAS EP, 2^24 pseudorandom pairs (Section 3.2)",
        lambda: nas.ep_trace(1 << 24),
    ),
    "rfft": (
        "FFTPACK scalar-style real FFT, 1024-point x 64 (Figure 6)",
        lambda: rfft.build_trace(1024, 64),
    ),
    "vfft": (
        "Vectorised multiple real FFT, 1024-point x 512 (Figure 7)",
        lambda: vfft.build_trace(1024, 512),
    ),
    "elefunt": (
        "ELEFUNT EXP throughput loop (Table 3)",
        lambda: elefunt.throughput_trace("exp"),
    ),
    "radabs": (
        "RADABS, vectorised coding style, T42 columns (Section 4.4)",
        lambda: radabs.build_trace(8192),
    ),
    "radabs-scalar": (
        "RADABS, pre-rewrite scalar coding style (Section 4.4)",
        lambda: radabs.build_scalar_trace(8192),
    ),
    "ccm2": (
        "CCM2 T42 timestep, all phases (Section 4 / Table 4)",
        lambda: ccm2_cost.step_trace("T42").total,
    ),
    "mom": (
        "MOM 1° 45-level timestep (Section 4.7 / Table 7)",
        _mom_step,
    ),
    "pop": (
        "POP 2° step as benchmarked: scalar CSHIFT (Section 4.7.3)",
        lambda: pop_cost.step_trace(),
    ),
    "pop-vector": (
        "POP 2° step with CSHIFT vectorised (Section 4.7.3 diagnosis)",
        lambda: pop_cost.step_trace(cshift_vectorized=True),
    ),
}

#: Suite experiment id -> benchmark ids whose diagnostics the runner
#: attaches to that experiment's report.  Experiments with no trace-driven
#: content (architecture tables, correctness probes, I/O) are absent.
EXPERIMENT_TRACE_IDS: dict[str, tuple[str, ...]] = {
    "sec3": ("linpack", "stream", "nas-ep"),
    "table1": ("hint", "radabs"),
    "table2": ("linpack",),
    "figure5": ("copy", "ia", "xpose"),
    "figure6": ("rfft",),
    "figure7": ("vfft",),
    "table3": ("elefunt",),
    "sec4.4": ("radabs-scalar", "radabs"),
    "table4": ("ccm2",),
    "figure8": ("ccm2",),
    "table5": ("ccm2",),
    "table6": ("ccm2",),
    "sec4.6": ("ccm2",),
    "table7": ("mom",),
    "sec4.7.3": ("pop", "pop-vector"),
}


def build_registered_trace(trace_id: str) -> Trace:
    """Build the registry trace for one benchmark id."""
    try:
        _, builder = TRACE_BUILDERS[trace_id]
    except KeyError:
        known = ", ".join(sorted(TRACE_BUILDERS))
        raise KeyError(f"unknown benchmark id {trace_id!r}; known ids: {known}") from None
    return builder()


def build_suite_columns(trace_ids=None) -> SuiteColumns:
    """Build and stack the registered trace suite (all 16 by default).

    This is the *derive* path of the suitebatch engine — the cost a
    fresh process pays when no shared column segment is available to
    attach to (counted under ``suitebatch.derives``).  It lives here
    rather than in :mod:`repro.machine.suitebatch` because only the
    analysis layer knows the trace registry: the machine layer keeps
    no edge to it, so kernel dependency closures stay per-kernel.
    """
    ids = tuple(TRACE_BUILDERS) if trace_ids is None else tuple(trace_ids)
    unknown = [trace_id for trace_id in ids if trace_id not in TRACE_BUILDERS]
    if unknown:
        raise ValueError(
            f"unknown trace ids {unknown!r} (known: {list(TRACE_BUILDERS)})"
        )
    suite = SuiteColumns.from_traces(
        (trace_id, build_registered_trace(trace_id)) for trace_id in ids
    )
    perfmon_record("suitebatch", {"derives": 1.0})
    return suite


def analyze_benchmark(
    trace_id: str, processor: Processor | None = None
) -> DiagnosticReport:
    """Analyze one registered benchmark's trace by id."""
    return analyze_trace(build_registered_trace(trace_id), processor)


def experiment_summaries(
    exp_id: str, processor: Processor | None = None
) -> list[tuple[str, DiagnosticReport]]:
    """(benchmark id, report) pairs for one suite experiment.

    Empty for experiments with no registered traces; the suite runner
    renders each pair as one summary line.
    """
    processor = processor or sx4_processor()
    return [
        (trace_id, analyze_benchmark(trace_id, processor))
        for trace_id in EXPERIMENT_TRACE_IDS.get(exp_id, ())
    ]
