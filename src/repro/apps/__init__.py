"""The complete geophysical applications of the NCAR suite (Section 4.7).

``ccm2``
    The NCAR Community Climate Model version 2 analogue: a spectral
    transform dynamical core on the Gaussian grid, RADABS-style column
    physics, and shape-preserving semi-Lagrangian moisture transport.
``mom``
    The GFDL Modular Ocean Model analogue: a rigid-lid Bryan–Cox–Semtner
    finite-difference ocean with a streamfunction barotropic solver.
``pop``
    The Los Alamos Parallel Ocean Program analogue: an implicit
    free-surface ocean whose surface-pressure system is solved by
    conjugate gradients over 9-point stencil (CSHIFT-style) operators.
"""

from repro.apps import ccm2, mom, pop  # noqa: F401

__all__ = ["ccm2", "mom", "pop"]
