"""CCM2: spectral-transform atmospheric general circulation model analogue.

Section 4.7.1 describes CCM2's computational design, which this package
reproduces piece by piece:

* "the spectral transform method is employed to compute the dry dynamics"
  → :mod:`~repro.apps.ccm2.spectral` on the Gaussian grid of
  :mod:`~repro.apps.ccm2.gaussian` with the associated Legendre basis of
  :mod:`~repro.apps.ccm2.legendre`;
* "horizontal derivatives and linear terms ... calculated in spectral
  space", nonlinear terms on the grid → the shallow-water-layer dynamical
  core of :mod:`~repro.apps.ccm2.dynamics`;
* "physics computations involve only the vertical column above each grid
  point" → :mod:`~repro.apps.ccm2.physics`, built on the RADABS kernel;
* "trace gases, including water vapor, are transported ... using a shape
  preserving SLT scheme ... involves indirect addressing" →
  :mod:`~repro.apps.ccm2.slt`;
* the T42…T170 resolution table (Table 4) → :mod:`~repro.apps.ccm2.resolutions`;
* the machine-model cost of one timestep (Figure 8, Tables 5 and 6) →
  :mod:`~repro.apps.ccm2.costmodel`.

The full CCM2 is ~40,000 lines of Fortran-77 physics; DESIGN.md documents
the substitution: this analogue keeps CCM2's three compute phases
(transforms, column physics, SLT) with the same data layouts, parallelism
and intrinsic mix, on the same grids, which is what the benchmark
measures.
"""

from repro.apps.ccm2.gaussian import GaussianGrid, gauss_legendre
from repro.apps.ccm2.legendre import LegendreBasis
from repro.apps.ccm2.spectral import SpectralTransform
from repro.apps.ccm2.dynamics import ShallowWaterLayer, initial_rh_wave, initial_solid_body
from repro.apps.ccm2.physics import ColumnPhysics
from repro.apps.ccm2.slt import SemiLagrangianTransport
from repro.apps.ccm2.model import CCM2Model
from repro.apps.ccm2.resolutions import RESOLUTIONS, Resolution, resolution

__all__ = [
    "GaussianGrid",
    "gauss_legendre",
    "LegendreBasis",
    "SpectralTransform",
    "ShallowWaterLayer",
    "initial_rh_wave",
    "initial_solid_body",
    "ColumnPhysics",
    "SemiLagrangianTransport",
    "CCM2Model",
    "Resolution",
    "RESOLUTIONS",
    "resolution",
]
