"""Machine-model cost of a CCM2 timestep (Figure 8, Tables 5 and 6).

Each phase of the CCM2 step is priced as machine-model operation traces
whose vector lengths, strides and intrinsic mixes follow the code
structure Section 4.7.1 describes:

==================  ========================================================
Phase               Trace structure
==================  ========================================================
Legendre transform  per m-block, inner vectors over the spectral index
                    (average length ≈ T/2 — the reason "the SX-4 runs most
                    efficiently on long vector problems": T42's vectors are
                    ~22 elements, T170's ~86)
Longitude FFTs      FFTPACK passes vectorised across latitudes
Column physics      the RADABS kernel on its radiation cycle plus the cheap
                    every-step parameterisations, vector length = nlon
SLT transport       16-point bicubic gathers (indirect addressing)
Data transposes     strided reshapes between column-, longitude- and
                    spectral-major layouts
Grid-point algebra  the low-intensity nonlinear products and updates
Spectral algebra    semi-implicit/vertical coupling, vectorised over nspec
==================  ========================================================

Parallelisation follows CCM2's multitasking: spectral phases distribute
over the T+1 Fourier wavenumbers (whose block imbalance is what makes T42
scale worst), grid phases over latitude rows with a physics load-imbalance
factor (day/night radiation), plus per-step synchronisation regions.

Calibration anchors: T170L18 on 32 CPUs sustains ≈24 Cray-equivalent
Gflops (Figure 8); the one-year T42/T63 runs of Table 5; the 1.89%
ensemble degradation of Table 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.ccm2.resolutions import Resolution, resolution
from repro.kernels import fftpack, radabs
from repro.machine.ixs import MultiNodeSystem
from repro.machine.node import Node, ParallelReport, block_imbalance
from repro.machine.operations import ScalarOp, Trace, VectorOp
from repro.machine.presets import sx4_node
from repro.units import GIGA

__all__ = [
    "CCM2Cost",
    "step_trace",
    "parallel_step",
    "figure8_point",
    "figure8_curves",
    "year_simulation_seconds",
    "ensemble_degradation",
    "history_bytes_per_day",
    "multinode_gflops",
    "multinode_scaling",
]

#: Prognostic fields passing through the spectral transforms each step
#: (vorticity, divergence, temperature/geopotential, moisture-adjacent RHS).
TRANSFORMED_FIELDS = 4
#: Full radiation (RADABS) runs every this many dynamics steps.
RADIATION_INTERVAL = 3
#: Parallel regions (fork/join boundaries) per timestep.
REGIONS_PER_STEP = 12.0
#: Low-intensity grid-point loops per level per step (nonlinear products,
#: filters, diagnostics updates).
GRID_LOOPS = 30
#: Whole-state layout transposes per step (column- ↔ lon- ↔ spectral-major
#: reshapes around physics, FFT, SLT and history).
TRANSPOSES = 8
#: History fields written per model day (Table 5's ~15 GB/year at T63).
HISTORY_FIELDS = 15
#: Physics load-imbalance growth per CPU (day/night radiation asymmetry).
PHYSICS_IMBALANCE_PER_CPU = 0.005


@dataclass(frozen=True)
class CCM2Cost:
    """Phase traces for one timestep at one resolution."""

    res: Resolution
    spectral: Trace  # distributes over Fourier wavenumbers
    grid: Trace  # distributes over latitude rows
    serial: Trace  # timestep control, not parallelised

    @property
    def total(self) -> Trace:
        return Trace(
            ops=self.spectral.ops + self.grid.ops + self.serial.ops,
            name=f"CCM2 {self.res.name} step",
        )


def _legendre_trace(res: Resolution) -> Trace:
    """Forward+inverse Legendre transforms for all fields and levels."""
    avg_len = max(2, (res.trunc + 2) // 2)
    count = 2 * 2 * TRANSFORMED_FIELDS * res.nlev * (res.nlat // 2) * (res.trunc + 1)
    return Trace(
        [
            VectorOp(
                "legendre transform",
                length=avg_len,
                count=float(count),
                flops_per_element=8.0,  # complex multiply-add
                # Coefficients, basis values and running accumulators:
                # slightly memory-bound, consistent with "many NCAR
                # modeling codes are memory bandwidth limited" (Sec. 4.2).
                loads_per_element=4.5,
                stores_per_element=0.5,
            )
        ],
        name="legendre",
    )


def _fft_trace(res: Resolution) -> Trace:
    """Longitude FFTs, vectorised across latitudes (both directions)."""
    ops = []
    for factor, l1, ido in fftpack.pass_structure(res.nlon):
        ops.append(
            VectorOp(
                f"fft pass r{factor}",
                length=res.nlat,
                count=float(l1 * ido * factor * 2 * TRANSFORMED_FIELDS * res.nlev),
                flops_per_element=fftpack.PASS_FLOPS_PER_POINT[factor],
                loads_per_element=1.0,
                stores_per_element=1.0,
            )
        )
    return Trace(ops, name="fft")


def _spectral_algebra_trace(res: Resolution) -> Trace:
    """Semi-implicit solve and local spectral-space algebra."""
    return Trace(
        [
            VectorOp(
                "spectral algebra",
                length=res.nspec,
                count=float(res.nlev * res.nlev * 2),
                flops_per_element=2.0,
                loads_per_element=1.5,
                stores_per_element=0.5,
            )
        ],
        name="spectral algebra",
    )


def _physics_trace(res: Resolution) -> Trace:
    """RADABS on its radiation cycle plus the cheap every-step physics."""
    pairs = res.nlev * (res.nlev - 1) // 2 + res.nlev
    return Trace(
        [
            VectorOp.make(
                "radabs",
                res.nlon,
                count=float(pairs * res.nlat / RADIATION_INTERVAL),
                flops_per_element=radabs.RAW_FLOPS_PER_ELEMENT,
                loads_per_element=6.0,
                stores_per_element=2.0,
                gather_loads_per_element=radabs.GATHERED_LOADS_PER_ELEMENT,
                intrinsics=radabs.INTRINSIC_MIX,
            ),
            VectorOp.make(
                "fast physics",
                res.nlon,
                count=float(res.nlat * res.nlev),
                flops_per_element=60.0,
                loads_per_element=6.0,
                stores_per_element=3.0,
                intrinsics={"exp": 0.2, "sqrt": 0.1},
            ),
        ],
        name="physics",
    )


def _slt_trace(res: Resolution) -> Trace:
    """Shape-preserving SLT: 16-point bicubic gathers per level."""
    return Trace(
        [
            VectorOp(
                "slt gather",
                length=res.nlon,
                count=float(res.nlat * res.nlev),
                flops_per_element=30.0,
                loads_per_element=2.0,
                stores_per_element=1.0,
                gather_loads_per_element=16.0,
            )
        ],
        name="slt",
    )


def _transpose_trace(res: Resolution) -> Trace:
    """Layout transposes between column-, lon- and spectral-major phases."""
    return Trace(
        [
            VectorOp(
                "state transpose",
                length=res.nlon,
                count=float(TRANSPOSES * res.nlev * res.nlat),
                loads_per_element=1.0,
                stores_per_element=1.0,
                load_stride=res.nlat,
            )
        ],
        name="transpose",
    )


def _grid_algebra_trace(res: Resolution) -> Trace:
    """Low-intensity grid loops: nonlinear products, filters, updates."""
    return Trace(
        [
            VectorOp(
                "grid algebra",
                length=res.nlon,
                count=float(GRID_LOOPS * res.nlev * res.nlat),
                flops_per_element=2.0,
                loads_per_element=2.5,
                stores_per_element=1.0,
            )
        ],
        name="grid algebra",
    )


def step_trace(res: Resolution | str) -> CCM2Cost:
    """All phase traces for one CCM2 timestep at a Table 4 resolution."""
    if isinstance(res, str):
        res = resolution(res)
    spectral = _legendre_trace(res) + _spectral_algebra_trace(res)
    grid = (
        _fft_trace(res)
        + _physics_trace(res)
        + _slt_trace(res)
        + _transpose_trace(res)
        + _grid_algebra_trace(res)
    )
    serial = Trace(
        [ScalarOp("timestep control", instructions=20_000.0, memory_words=2_000.0)],
        name="serial",
    )
    return CCM2Cost(res=res, spectral=spectral, grid=grid, serial=serial)


def _physics_imbalance(cpus: int) -> float:
    return 1.0 + PHYSICS_IMBALANCE_PER_CPU * cpus


def _block_shares(units: int, cpus: int) -> list[float]:
    """Fractions of ``units`` indivisible work items each CPU receives
    under block dealing: ``units mod cpus`` CPUs carry the ceiling share,
    the rest the floor share.  Sums to 1 exactly — total work is
    conserved; only the *maximum* share (wall time) reflects imbalance."""
    if units < 1 or cpus < 1:
        raise ValueError(f"need positive units and cpus, got {units}, {cpus}")
    base, rem = divmod(units, cpus)
    return [(base + (1 if i < rem else 0)) / units for i in range(cpus)]


def parallel_step(
    node: Node,
    res: Resolution | str,
    cpus: int,
    other_active_cpus: int = 0,
) -> ParallelReport:
    """One timestep on ``cpus`` processors of an SX-4 node.

    Spectral work deals the (T+1) Fourier wavenumbers to the CPUs in
    blocks (T42's 43 wavenumbers on 32 CPUs leave half the machine with
    double shares — the main reason small resolutions scale worst); grid
    work deals latitude rows, with the busiest CPU additionally carrying
    the physics day/night imbalance.
    """
    cost = step_trace(res)
    if cpus < 1:
        raise ValueError(f"need at least one CPU, got {cpus}")
    spec_shares = _block_shares(cost.res.trunc + 1, cpus)
    grid_shares = _block_shares(cost.res.nlat, cpus)
    imbalance = _physics_imbalance(cpus)
    traces = []
    for i in range(cpus):
        grid_factor = grid_shares[i] * (imbalance if i == 0 else 1.0)
        traces.append(
            cost.spectral.scaled(spec_shares[i]) + cost.grid.scaled(grid_factor)
        )
    name = f"CCM2 {cost.res.name} step/{cpus}cpu"
    return node.run_parallel(
        traces,
        serial=cost.serial,
        regions=REGIONS_PER_STEP,
        other_active_cpus=other_active_cpus,
        trace_name=name,
    )


def figure8_point(node: Node, res: Resolution | str, cpus: int) -> float:
    """Sustained Cray-equivalent Gflops of CCM2 (one Figure 8 point)."""
    report = parallel_step(node, res, cpus)
    return report.flop_equivalents / report.seconds / GIGA


def figure8_curves(
    node: Node | None = None,
    resolutions: tuple[str, ...] = ("T42L18", "T106L18", "T170L18"),
    cpu_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
) -> dict[str, list[tuple[int, float]]]:
    """Figure 8: Gflops vs processor count for three resolutions."""
    node = node or sx4_node()
    return {
        name: [(p, figure8_point(node, name, p)) for p in cpu_counts]
        for name in resolutions
    }


def history_bytes_per_day(res: Resolution | str) -> float:
    """Daily-average history volume (the Table 5 runs wrote daily stats)."""
    if isinstance(res, str):
        res = resolution(res)
    return float(HISTORY_FIELDS * res.columns * res.nlev * 8)


def year_simulation_seconds(
    node: Node | None = None,
    res: Resolution | str = "T42L18",
    cpus: int = 32,
    days: float = 365.0,
    disk_rate_bytes_per_s: float = 60e6,
) -> dict[str, float]:
    """Wall-clock breakdown of a one-year climate simulation (Table 5).

    History writes are synchronous once per model day at the given
    effective disk rate (conventional striped disks, Section 4.5.1 class
    hardware), plus a monthly restart dump of the full state.
    """
    node = node or sx4_node()
    if isinstance(res, str):
        res = resolution(res)
    if days <= 0:
        raise ValueError(f"day count must be positive, got {days}")
    step = parallel_step(node, res, cpus)
    steps = res.steps_for_days(days)
    compute = step.seconds * steps
    daily = history_bytes_per_day(res)
    restart = 8 * res.columns * res.nlev * 8  # 4 fields x 2 time levels
    io_bytes = daily * days + restart * (days / 30.0)
    io_seconds = io_bytes / disk_rate_bytes_per_s
    return {
        "steps": float(steps),
        "compute_seconds": compute,
        "io_bytes": io_bytes,
        "io_seconds": io_seconds,
        "total_seconds": compute + io_seconds,
    }


def multinode_gflops(
    system: MultiNodeSystem, res: Resolution | str, nodes: int | None = None
) -> float:
    """CCM2 across IXS-connected nodes — the Section 2.5 extension study.

    The paper ran CCM2 inside one node; the IXS exists precisely to grow
    beyond it ("very tight coupling between nodes enabling a single
    system image").  The model: latitudes are dealt across nodes, each
    node runs its share on its 32 CPUs, and the spectral transform's
    latitude↔wavenumber data transposition crosses the IXS twice per
    step (forward and inverse), each node streaming its slice of the
    transformed state through its 8 GB/s channels.  Small resolutions
    saturate quickly — the transpose volume shrinks like 1/nodes but the
    per-exchange latency and barrier do not.
    """
    if isinstance(res, str):
        res = resolution(res)
    nodes = system.node_count if nodes is None else nodes
    if not 1 <= nodes <= system.node_count:
        raise ValueError(f"nodes must be in [1, {system.node_count}], got {nodes}")
    one_node = parallel_step(system.node, res, system.node.cpu_count)
    compute = one_node.seconds * block_imbalance(res.nlat, nodes) / nodes
    state_bytes = TRANSFORMED_FIELDS * res.nlev * res.columns * 8.0
    if nodes > 1:
        sub = MultiNodeSystem(node=system.node, node_count=nodes, ixs=system.ixs)
        # Forward and inverse transpositions, each a personalised
        # all-to-all of this node's share of the state.
        exchange = 2.0 * sub.alltoall_seconds(state_bytes / nodes)
    else:
        exchange = 0.0
    total_flops = one_node.flop_equivalents
    return total_flops / (compute + exchange) / GIGA


def multinode_scaling(
    system: MultiNodeSystem | None = None,
    res: Resolution | str = "T170L18",
    node_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
) -> list[tuple[int, float]]:
    """Gflops vs node count for one resolution (ablation bench target)."""
    system = system or MultiNodeSystem(node=sx4_node(), node_count=16)
    return [(n, multinode_gflops(system, res, n)) for n in node_counts]


def ensemble_degradation(
    node: Node | None = None,
    res: Resolution | str = "T42L18",
    cpus_per_job: int = 4,
    jobs: int = 8,
) -> dict[str, float]:
    """The Table 6 ensemble test: one 4-CPU CCM2 job alone vs eight
    concurrent 4-CPU copies filling the 32-CPU node.

    Returns the single-job step time, the loaded step time, and the
    relative degradation (paper: 1.89%).
    """
    node = node or sx4_node()
    if cpus_per_job * jobs > node.cpu_count:
        raise ValueError(
            f"{jobs} jobs x {cpus_per_job} CPUs exceed the {node.cpu_count}-CPU node"
        )
    alone = parallel_step(node, res, cpus_per_job, other_active_cpus=0)
    loaded = parallel_step(
        node, res, cpus_per_job, other_active_cpus=cpus_per_job * (jobs - 1)
    )
    return {
        "single_seconds": alone.seconds,
        "loaded_seconds": loaded.seconds,
        "degradation": loaded.seconds / alone.seconds - 1.0,
    }
