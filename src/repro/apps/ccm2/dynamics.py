"""Spectral shallow-water dynamical core (the CCM2 dry dynamics analogue).

CCM2's dry dynamics compute spectral coefficients of the state, evaluate
nonlinear terms on the Gaussian grid, apply linear terms locally in
spectral space, and transform back (Section 4.7.1).  The rotating
shallow-water equations in vorticity-divergence form exercise that cycle
exactly — they are the canonical spectral-dynamics proxy (Hack & Jakob's
formulation, also the substrate of the Williamson test suite):

    ∂ζ/∂t = −DIV(Uη, Vη)
    ∂δ/∂t = +DIV(Vη, −Uη) − ∇²(Φ + (U²+V²)/(2(1−μ²)))
    ∂Φ/∂t = −DIV(UΦ, VΦ)

with η = ζ + f absolute vorticity, (U, V) = (u, v)·cosφ, and
DIV(A, B) = (1/(a(1−μ²)))∂A/∂λ + (1/a)∂B/∂μ the flux-divergence operator
of :meth:`~repro.apps.ccm2.spectral.SpectralTransform.forward_div_pair`.

Time integration is leapfrog with a Robert–Asselin filter and optional
∇⁴ hyperdiffusion, as in spectral GCM practice.  The flux form conserves
mass *exactly* in spectral space (the (0,0) mode of DIV vanishes
identically), and total energy approximately — both are tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.ccm2.spectral import EARTH_OMEGA, SpectralTransform

__all__ = [
    "ShallowWaterState",
    "ShallowWaterLayer",
    "initial_solid_body",
    "initial_rh_wave",
]

GRAVITY = 9.80616


@dataclass
class ShallowWaterState:
    """Prognostic spectral state: vorticity ζ, divergence δ, geopotential Φ."""

    vort: np.ndarray
    div: np.ndarray
    phi: np.ndarray

    def copy(self) -> "ShallowWaterState":
        return ShallowWaterState(self.vort.copy(), self.div.copy(), self.phi.copy())

    def __add__(self, other: "ShallowWaterState") -> "ShallowWaterState":
        return ShallowWaterState(
            self.vort + other.vort, self.div + other.div, self.phi + other.phi
        )

    def scaled(self, factor: float) -> "ShallowWaterState":
        return ShallowWaterState(
            self.vort * factor, self.div * factor, self.phi * factor
        )


@dataclass
class ShallowWaterLayer:
    """One shallow-water layer integrated by the spectral transform method.

    Parameters
    ----------
    transform:
        The spectral transform (grid + truncation + radius).
    omega:
        Planetary rotation rate (Coriolis f = 2Ω·sinφ).
    nu4:
        ∇⁴ hyperdiffusion coefficient [m⁴/s] applied to ζ, δ, Φ.
    robert:
        Robert–Asselin time-filter coefficient.
    """

    transform: SpectralTransform
    omega: float = EARTH_OMEGA
    nu4: float = 0.0
    robert: float = 0.03
    #: Semi-implicit gravity-wave treatment (the scheme CCM2 itself uses,
    #: which is what allows Table 4's long timesteps): the linear terms
    #: -∇²Φ and -Φ̄·δ are averaged over the two leapfrog endpoints and the
    #: resulting Helmholtz problem is solved exactly in spectral space.
    semi_implicit: bool = False
    #: Reference geopotential Φ̄ linearised about (semi-implicit only).
    phi_ref: float = GRAVITY * 8.0e3
    coriolis_grid: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.nu4 < 0:
            raise ValueError(f"hyperdiffusion must be >= 0, got {self.nu4}")
        if not 0.0 <= self.robert < 0.5:
            raise ValueError(f"Robert coefficient must be in [0, 0.5), got {self.robert}")
        if self.phi_ref <= 0:
            raise ValueError(f"reference geopotential must be positive, got {self.phi_ref}")
        mu = self.transform.grid.sinlat[:, None]
        self.coriolis_grid = (2.0 * self.omega * mu) * np.ones(
            (1, self.transform.grid.nlon)
        )

    # -- diagnostics -----------------------------------------------------------
    def grid_fields(self, state: ShallowWaterState) -> dict[str, np.ndarray]:
        """Grid-space ζ, δ, Φ, U, V for a spectral state."""
        u, v = self.transform.uv_from_vort_div(state.vort, state.div)
        return {
            "vort": self.transform.inverse(state.vort),
            "div": self.transform.inverse(state.div),
            "phi": self.transform.inverse(state.phi),
            "U": u,
            "V": v,
        }

    def total_mass(self, state: ShallowWaterState) -> float:
        """Global mean geopotential — exactly the (0,0) spectral mode."""
        return float(state.phi[self.transform.basis.index(0, 0)].real)

    def total_energy(self, state: ShallowWaterState) -> float:
        """Area-mean total energy  ⟨Φ²/2 + Φ·(u²+v²)/2⟩ / g."""
        fields = self.grid_fields(state)
        cos2 = 1.0 - self.transform.grid.sinlat[:, None] ** 2
        kinetic = (fields["U"] ** 2 + fields["V"] ** 2) / (2.0 * cos2)
        energy = fields["phi"] * kinetic + 0.5 * fields["phi"] ** 2
        return self.transform.grid.area_mean(energy) / GRAVITY

    def max_stable_dt(
        self, phi_scale: float = GRAVITY * 8.0e3, wind_scale: float = 120.0
    ) -> float:
        """CFL limit of the leapfrog: dt < a/(c·T).

        Explicit mode is limited by the gravity-wave speed c = √Φ̄
        (~280 m/s); semi-implicit mode removes that constraint and is
        limited only by advection (``wind_scale``; 120 m/s covers jets
        plus wave perturbations) — the ~2.3x step extension that lets
        CCM2 run Table 4's long steps.
        """
        if phi_scale <= 0:
            raise ValueError(f"phi scale must be positive, got {phi_scale}")
        if wind_scale <= 0:
            raise ValueError(f"wind scale must be positive, got {wind_scale}")
        speed = wind_scale if self.semi_implicit else float(np.sqrt(phi_scale))
        return self.transform.radius / (speed * self.transform.trunc)

    # -- dynamics ---------------------------------------------------------------
    def tendencies(self, state: ShallowWaterState) -> ShallowWaterState:
        """Spectral time tendencies of (ζ, δ, Φ) at one instant."""
        tr = self.transform
        u, v = tr.uv_from_vort_div(state.vort, state.div)
        vort_grid = tr.inverse(state.vort)
        phi_grid = tr.inverse(state.phi)
        eta = vort_grid + self.coriolis_grid

        dvort = -tr.forward_div_pair(u * eta, v * eta)
        cos2 = 1.0 - tr.grid.sinlat[:, None] ** 2
        energy = phi_grid + (u * u + v * v) / (2.0 * cos2)
        ddiv = tr.forward_div_pair(v * eta, -u * eta) - tr.laplacian(tr.forward(energy))
        dphi = -tr.forward_div_pair(u * phi_grid, v * phi_grid)

        if self.nu4 > 0.0:
            eig = tr.basis.laplacian_eigenvalues / tr.radius**2
            damp = -self.nu4 * eig * eig
            dvort = dvort + damp * state.vort
            ddiv = ddiv + damp * state.div
            dphi = dphi + damp * state.phi
        return ShallowWaterState(dvort, ddiv, dphi)

    def _semi_implicit_new(
        self,
        previous: ShallowWaterState,
        current: ShallowWaterState,
        tend: ShallowWaterState,
        dt: float,
    ) -> ShallowWaterState:
        """The semi-implicit leapfrog update.

        With L the spectral Laplacian eigenvalues and Φ̄ the reference
        geopotential, the gravity-wave couple is integrated as

            δ⁺(1 − Δt²Φ̄L) = δ⁻(1 + Δt²Φ̄L) + 2Δt·[N_δ − L(Φ⁻ + Δt·N_Φ)]
            Φ⁺ = Φ⁻ + 2Δt·N_Φ − Δt·Φ̄·(δ⁺ + δ⁻)

        where N_δ = δ̇ + LΦ and N_Φ = Φ̇ + Φ̄δ are the explicit
        (nonlinear + diffusive) remainders.  The denominator
        1 + Δt²Φ̄n(n+1)/a² > 1 damps exactly the fast modes that break
        the explicit CFL, so Table-4-scale steps become stable.
        """
        tr = self.transform
        eig = tr.basis.laplacian_eigenvalues / tr.radius**2  # L (negative)
        n_div = tend.div + eig * current.phi
        n_phi = tend.phi + self.phi_ref * current.div
        denom = 1.0 - dt * dt * self.phi_ref * eig  # >= 1 everywhere
        numer = (
            previous.div * (1.0 + dt * dt * self.phi_ref * eig)
            + 2.0 * dt * (n_div - eig * (previous.phi + dt * n_phi))
        )
        new_div = numer / denom
        new_phi = (
            previous.phi
            + 2.0 * dt * n_phi
            - dt * self.phi_ref * (new_div + previous.div)
        )
        new_vort = previous.vort + 2.0 * dt * tend.vort
        return ShallowWaterState(new_vort, new_div, new_phi)

    def step(
        self,
        previous: ShallowWaterState,
        current: ShallowWaterState,
        dt: float,
    ) -> tuple[ShallowWaterState, ShallowWaterState]:
        """One leapfrog step; returns (filtered current, new).

        The Robert–Asselin filter damps the computational mode:
        ``filtered = current + r·(previous − 2·current + new)``.
        """
        if dt <= 0:
            raise ValueError(f"timestep must be positive, got {dt}")
        tend = self.tendencies(current)
        if self.semi_implicit:
            new = self._semi_implicit_new(previous, current, tend, dt)
        else:
            new = previous + tend.scaled(2.0 * dt)
        filtered = ShallowWaterState(
            current.vort + self.robert * (previous.vort - 2.0 * current.vort + new.vort),
            current.div + self.robert * (previous.div - 2.0 * current.div + new.div),
            current.phi + self.robert * (previous.phi - 2.0 * current.phi + new.phi),
        )
        return filtered, new

    def forward_step(self, state: ShallowWaterState, dt: float) -> ShallowWaterState:
        """A single Euler forward step, used to start the leapfrog."""
        if dt <= 0:
            raise ValueError(f"timestep must be positive, got {dt}")
        return state + self.tendencies(state).scaled(dt)

    def run(
        self, state: ShallowWaterState, dt: float, steps: int
    ) -> ShallowWaterState:
        """Integrate ``steps`` leapfrog steps from ``state``."""
        if steps < 0:
            raise ValueError(f"step count must be >= 0, got {steps}")
        if steps == 0:
            return state.copy()
        previous = state.copy()
        current = self.forward_step(state, dt)
        for _ in range(steps - 1):
            previous, current = self.step(previous, current, dt)
        return current


def initial_solid_body(
    transform: SpectralTransform,
    u0: float = 20.0,
    phi0: float = GRAVITY * 8.0e3,
    omega: float = EARTH_OMEGA,
) -> ShallowWaterState:
    """Williamson test 2: steady zonal geostrophic flow.

    u = u₀·cosφ with the balancing geopotential
    Φ = Φ₀ − (a·Ω·u₀ + u₀²/2)·sin²φ.  An exact steady solution of the
    shallow-water equations — the model should hold it (tested).
    """
    grid = transform.grid
    mu = grid.sinlat[:, None]
    ones = np.ones((1, grid.nlon))
    a = transform.radius
    # Vorticity of u = u0 cosφ: ζ = 2·u0·μ/a (a pure (0,1) harmonic).
    vort_grid = (2.0 * u0 / a) * mu * ones
    phi_grid = (phi0 - (a * omega * u0 + 0.5 * u0 * u0) * mu * mu) * ones
    return ShallowWaterState(
        vort=transform.forward(vort_grid),
        div=transform.zeros_spec(),
        phi=transform.forward(phi_grid),
    )


def initial_rh_wave(
    transform: SpectralTransform,
    wavenumber: int = 4,
    amplitude: float = 8.0e-5,
    phi0: float = GRAVITY * 8.0e3,
) -> ShallowWaterState:
    """A Rossby–Haurwitz-like wave: zonal flow plus one rotating harmonic.

    Used as a non-trivial, smooth initial condition for conservation and
    scaling tests (Williamson test 6 is the classic version).
    """
    if wavenumber < 1 or wavenumber > transform.trunc - 1:
        raise ValueError(
            f"wavenumber must be in [1, T-1]=[1, {transform.trunc - 1}], got {wavenumber}"
        )
    state = initial_solid_body(transform, u0=15.0, phi0=phi0)
    # Superpose a single spherical-harmonic vorticity perturbation.
    i = transform.basis.index(wavenumber, wavenumber + 1)
    state.vort[i] += amplitude
    return state
