"""Gaussian polar grid: Gauss–Legendre quadrature latitudes and weights.

Section 4.7.1: "For accuracy reasons, the spectral transform calculations
are performed on a polar grid which is irregularly spaced in latitude,
called a Gaussian polar grid."  The latitudes are the roots of the
Legendre polynomial P_J(sin φ); the associated weights make the Legendre
transform's meridional integral exact for the triangularly truncated
basis.

Roots are found by Newton iteration on P_J with the standard asymptotic
initial guess — the classic GAUAW algorithm that ships with every
spectral model, reimplemented here with NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["gauss_legendre", "GaussianGrid"]


def gauss_legendre(n: int, tol: float = 1e-14, max_iter: int = 100) -> tuple[np.ndarray, np.ndarray]:
    """Nodes and weights of n-point Gauss–Legendre quadrature on [-1, 1].

    Returns ``(x, w)`` with nodes in *descending* order (north to south
    when x = sin φ, the spectral-model convention).  Exact (to roundoff)
    for polynomials of degree ≤ 2n-1, which the tests verify.
    """
    if n < 1:
        raise ValueError(f"need at least one quadrature point, got {n}")
    k = np.arange(1, n + 1)
    # Asymptotic initial guess for the k-th root (Abramowitz & Stegun 22.16.6).
    x = np.cos(np.pi * (k - 0.25) / (n + 0.5))
    for _ in range(max_iter):
        # Evaluate P_n and P_{n-1} by the three-term recurrence.
        p_prev = np.ones_like(x)
        p = x.copy()
        for j in range(2, n + 1):
            p_prev, p = p, ((2 * j - 1) * x * p - (j - 1) * p_prev) / j
        if n == 1:
            p, p_prev = x, np.ones_like(x)
        dp = n * (x * p - p_prev) / (x * x - 1.0)
        dx = p / dp
        x = x - dx
        if np.max(np.abs(dx)) < tol:
            break
    else:  # pragma: no cover - Newton converges in a handful of steps
        raise RuntimeError(f"Gauss-Legendre iteration failed to converge for n={n}")
    # Final weights from the converged nodes.
    p_prev = np.ones_like(x)
    p = x.copy()
    for j in range(2, n + 1):
        p_prev, p = p, ((2 * j - 1) * x * p - (j - 1) * p_prev) / j
    if n == 1:
        p, p_prev = x, np.ones_like(x)
    dp = n * (x * p - p_prev) / (x * x - 1.0)
    w = 2.0 / ((1.0 - x * x) * dp * dp)
    order = np.argsort(-x)  # descending: north pole first
    return x[order], w[order]


@dataclass
class GaussianGrid:
    """The model grid: ``nlat`` Gaussian latitudes × ``nlon`` even longitudes.

    Attributes
    ----------
    sinlat, weights:
        Gauss–Legendre nodes (sin of latitude, descending) and weights.
    lats:
        Latitudes in radians (north positive).
    lons:
        Longitudes in radians, equally spaced starting at 0.
    """

    nlat: int
    nlon: int
    sinlat: np.ndarray = field(init=False)
    weights: np.ndarray = field(init=False)
    lats: np.ndarray = field(init=False)
    lons: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.nlat < 2 or self.nlat % 2 != 0:
            raise ValueError(f"nlat must be even and >= 2, got {self.nlat}")
        if self.nlon < 4:
            raise ValueError(f"nlon must be >= 4, got {self.nlon}")
        self.sinlat, self.weights = gauss_legendre(self.nlat)
        self.lats = np.arcsin(self.sinlat)
        self.lons = 2.0 * np.pi * np.arange(self.nlon) / self.nlon

    @property
    def coslat(self) -> np.ndarray:
        return np.cos(self.lats)

    @property
    def shape(self) -> tuple[int, int]:
        """Grid-field shape, (nlat, nlon)."""
        return (self.nlat, self.nlon)

    @property
    def columns(self) -> int:
        """Number of vertical columns (the physics' parallel axis)."""
        return self.nlat * self.nlon

    def area_mean(self, field_: np.ndarray) -> float:
        """Area-weighted global mean of a grid field (quadrature-exact)."""
        if field_.shape != self.shape:
            raise ValueError(f"field shape {field_.shape} != grid shape {self.shape}")
        zonal = field_.mean(axis=1)
        return float(np.sum(zonal * self.weights) / np.sum(self.weights))

    def supports_truncation(self, trunc: int) -> bool:
        """Alias-free transform condition for triangular truncation T:
        nlon ≥ 3T+1 and nlat ≥ (3T+1)/2 (the quadratic-term rule)."""
        return self.nlon >= 3 * trunc + 1 and 2 * self.nlat >= 3 * trunc + 1
