"""Normalised associated Legendre functions for the spectral transform.

The spherical-harmonic basis of the spectral transform method (Section
4.7.1) is P̄ₙᵐ(μ)·e^{imλ} with μ = sin(latitude) and the climate-model
normalisation ``(1/2)∫₋₁¹ P̄ₙᵐ P̄ₙ'ᵐ dμ = δₙₙ'``.  This module computes,
by the standard stable recurrences,

* the function table P̄ₙᵐ(μₗ) at the Gaussian latitudes, and
* the meridional-derivative table Hₙᵐ = (1-μ²)·dP̄ₙᵐ/dμ, needed to
  synthesise winds from vorticity/divergence and to integrate the
  ∂/∂μ part of flux divergences by parts onto the basis.

Both tables carry the triangular truncation T with one extra degree
(n = T+1) because the H recurrence reaches one order above the
truncation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["LegendreBasis", "epsilon"]


def epsilon(n: np.ndarray | int, m: np.ndarray | int) -> np.ndarray | float:
    """The recurrence coefficient εₙᵐ = sqrt((n²-m²)/(4n²-1))."""
    n = np.asarray(n, dtype=np.float64)
    m = np.asarray(m, dtype=np.float64)
    return np.sqrt((n * n - m * m) / (4.0 * n * n - 1.0))


@dataclass
class LegendreBasis:
    """P̄ and H tables for triangular truncation ``trunc`` at nodes ``mu``.

    Spectral coefficients are stored m-major: for m = 0…T, n = m…T.  The
    integer arrays :attr:`m_values` / :attr:`n_values` give each slot's
    wavenumbers; :attr:`pnm` and :attr:`hnm` have shape (nspec, nlat).
    """

    trunc: int
    mu: np.ndarray
    m_values: np.ndarray = field(init=False)
    n_values: np.ndarray = field(init=False)
    pnm: np.ndarray = field(init=False)
    hnm: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.trunc < 1:
            raise ValueError(f"truncation must be >= 1, got {self.trunc}")
        self.mu = np.asarray(self.mu, dtype=np.float64)
        if self.mu.ndim != 1 or self.mu.size == 0:
            raise ValueError("mu must be a non-empty 1-D array of sin(lat)")
        if np.any(np.abs(self.mu) >= 1.0):
            raise ValueError("mu must lie strictly inside (-1, 1)")
        trunc, mu = self.trunc, self.mu
        nlat = mu.size
        cos2 = 1.0 - mu * mu
        coslat = np.sqrt(cos2)

        # Full table up to degree T+1 (needed by the H recurrence), indexed
        # [m][n - m] -> array over latitude.
        nmax = trunc + 1
        p: dict[tuple[int, int], np.ndarray] = {}
        p[(0, 0)] = np.ones(nlat)
        for m in range(1, nmax + 1):
            p[(m, m)] = np.sqrt((2.0 * m + 1.0) / (2.0 * m)) * coslat * p[(m - 1, m - 1)]
        for m in range(0, nmax + 1):
            if m + 1 <= nmax:
                p[(m, m + 1)] = mu * p[(m, m)] / epsilon(m + 1, m)
            for n in range(m + 2, nmax + 1):
                p[(m, n)] = (mu * p[(m, n - 1)] - epsilon(n - 1, m) * p[(m, n - 2)]) / epsilon(
                    n, m
                )

        # Pack the triangular (m, n <= T) slots.
        m_list, n_list = [], []
        for m in range(trunc + 1):
            for n in range(m, trunc + 1):
                m_list.append(m)
                n_list.append(n)
        self.m_values = np.array(m_list, dtype=np.int64)
        self.n_values = np.array(n_list, dtype=np.int64)

        self.pnm = np.empty((self.nspec, nlat))
        self.hnm = np.empty((self.nspec, nlat))
        for i, (m, n) in enumerate(zip(m_list, n_list)):
            self.pnm[i] = p[(m, n)]
            below = p[(m, n - 1)] if n - 1 >= m else np.zeros(nlat)
            # Hₙᵐ = (n+1)·εₙᵐ·P̄ₙ₋₁ᵐ − n·εₙ₊₁ᵐ·P̄ₙ₊₁ᵐ
            self.hnm[i] = (n + 1.0) * epsilon(n, m) * below - n * epsilon(n + 1, m) * p[
                (m, n + 1)
            ]

    @property
    def nspec(self) -> int:
        """Number of (m, n) slots: (T+1)(T+2)/2."""
        return (self.trunc + 1) * (self.trunc + 2) // 2

    @property
    def nlat(self) -> int:
        return self.mu.size

    def index(self, m: int, n: int) -> int:
        """Slot of coefficient (m, n) in the packed ordering."""
        if not (0 <= m <= n <= self.trunc):
            raise ValueError(f"(m={m}, n={n}) outside triangular truncation T{self.trunc}")
        # Offset of wavenumber m's block, then n within it.
        block = m * (self.trunc + 1) - m * (m - 1) // 2
        return block + (n - m)

    @property
    def laplacian_eigenvalues(self) -> np.ndarray:
        """-n(n+1) per slot (multiply by 1/a² for the sphere of radius a)."""
        n = self.n_values.astype(np.float64)
        return -n * (n + 1.0)
