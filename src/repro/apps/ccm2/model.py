"""The CCM2 model loop: dynamics + physics + SLT + history accumulation.

One CCM2 timestep (Section 4.7.1) is: spectral dynamics (transforms and
local spectral algebra), grid-point column physics, and semi-Lagrangian
moisture transport, with daily-average history written as the simulation
advances (the Table 5 one-year tests wrote ~15 GB of history and restart
data).  :class:`CCM2Model` wires the functional pieces of this package
into that loop at any supported resolution; tests run it at toy
truncations, the cost model (:mod:`~repro.apps.ccm2.costmodel`) prices it
at the Table 4 resolutions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.ccm2.dynamics import ShallowWaterLayer, ShallowWaterState, initial_rh_wave
from repro.apps.ccm2.gaussian import GaussianGrid
from repro.apps.ccm2.physics import ColumnPhysics
from repro.apps.ccm2.slt import SemiLagrangianTransport
from repro.apps.ccm2.spectral import SpectralTransform

__all__ = ["CCM2Model", "StepDiagnostics"]


@dataclass(frozen=True)
class StepDiagnostics:
    """Per-step health record: the 'correctness check that must be passed
    to verify that the application is running properly as well as fast'."""

    step: int
    mass: float
    energy: float
    moisture_min: float
    moisture_max: float
    heating_max: float

    @property
    def healthy(self) -> bool:
        return (
            np.isfinite(self.mass)
            and np.isfinite(self.energy)
            and self.moisture_min >= -1e-12
            and np.isfinite(self.heating_max)
        )


@dataclass
class CCM2Model:
    """A runnable CCM2 analogue at a given truncation and grid.

    Parameters mirror the benchmark configuration: ``radiation_every``
    steps between full radiation calculations (CCM2 computes full
    radiative transfer on a longer cycle than the dynamics step), and
    ``history_every`` steps between history-average flushes.
    """

    grid: GaussianGrid
    trunc: int
    nlev: int = 4
    #: Number of dynamical layers (the "L" in T42L18): independent
    #: shallow-water layers stacked vertically, each forced by its share
    #: of the column heating.  The benchmark resolutions use 18; the
    #: functional tests use small counts.
    dyn_layers: int = 1
    #: Timestep [s]; ``None`` picks 60% of the explicit gravity-wave CFL
    #: limit for the truncation (the real CCM2 is semi-implicit and runs
    #: the longer Table 4 steps; this explicit core cannot).
    dt: float | None = None
    radiation_every: int = 3
    nu4: float = 1.0e15
    physics_coupling: float = 1.0e-3
    #: Use CCM2's semi-implicit gravity-wave scheme (allows the longer
    #: Table 4-class timesteps the explicit core cannot take).
    semi_implicit: bool = False
    transform: SpectralTransform = field(init=False)
    dynamics: ShallowWaterLayer = field(init=False)
    physics: ColumnPhysics = field(init=False)
    slt: SemiLagrangianTransport = field(init=False)

    def __post_init__(self) -> None:
        if self.nlev < 2:
            raise ValueError(f"need at least 2 levels, got {self.nlev}")
        if self.radiation_every < 1:
            raise ValueError("radiation interval must be >= 1 step")
        self.transform = SpectralTransform(self.grid, self.trunc)
        self.dynamics = ShallowWaterLayer(
            self.transform, nu4=self.nu4, semi_implicit=self.semi_implicit
        )
        limit = self.dynamics.max_stable_dt()
        if self.dt is None:
            self.dt = 0.6 * limit
        if self.dt <= 0:
            raise ValueError(f"timestep must be positive, got {self.dt}")
        if self.dt > limit:
            raise ValueError(
                f"dt={self.dt:.0f}s exceeds the explicit gravity-wave CFL "
                f"limit ~{limit:.0f}s at T{self.trunc} (the real CCM2 is "
                "semi-implicit; this core is not)"
            )
        if self.dyn_layers < 1:
            raise ValueError(f"need at least one dynamical layer, got {self.dyn_layers}")
        self.physics = ColumnPhysics(nlev=self.nlev)
        self.slt = SemiLagrangianTransport(self.grid, radius=self.transform.radius)
        # Prognostic state: a stack of shallow-water layers (layer 0 is
        # the surface layer that drives transport) plus moisture.
        self._layers: list[tuple[ShallowWaterState, ShallowWaterState]] = []
        for k in range(self.dyn_layers):
            wavenumber = 3 + (k % max(1, self.trunc - 4))
            start = initial_rh_wave(self.transform, wavenumber=wavenumber)
            self._layers.append((start, self.dynamics.forward_step(start, self.dt)))
        lon = self.grid.lons[None, :]
        lat = self.grid.lats[:, None]
        self.moisture = 1.0 + 0.5 * np.cos(lat) ** 2 * np.cos(2.0 * lon)
        self._heating: np.ndarray | None = None
        self._layer_heating: list[np.ndarray] = []
        self.step_count = 0
        self.history_sum = np.zeros(self.grid.shape)
        self.history_samples = 0
        self.diagnostics: list[StepDiagnostics] = []

    # -- one timestep ------------------------------------------------------------
    def step(self) -> StepDiagnostics:
        """Advance the coupled system by one timestep."""
        tr = self.transform
        # 1. Dynamics: leapfrog every shallow-water layer.
        self._layers = [
            self.dynamics.step(prev, cur, self.dt) for prev, cur in self._layers
        ]
        # 2. Physics: full radiation on its cycle; the column heating is
        # split over the dynamical layers (layer k gets its slice of the
        # nlev physics levels), perturbing each layer's Φ.
        if self.step_count % self.radiation_every == 0:
            phi_grid = tr.inverse(self.state.phi)
            cols = self.physics.columns_from_geopotential(phi_grid, self.moisture)
            rates = self.physics.heating_rates(cols)
            if not self.physics.heating_is_bounded(rates):
                raise FloatingPointError("physics produced unbounded heating rates")
            self._heating = rates.mean(axis=0).reshape(self.grid.shape)
            per_layer = np.array_split(rates, self.dyn_layers, axis=0)
            self._layer_heating = [
                chunk.mean(axis=0).reshape(self.grid.shape) for chunk in per_layer
            ]
        if self._heating is not None:
            for k, (prev, cur) in enumerate(self._layers):
                forcing = self.physics_coupling * self._layer_heating[k]
                cur.phi = cur.phi + tr.forward(forcing) * self.dt
        # 3. SLT: transport moisture with the surface layer's true winds.
        big_u, big_v = tr.uv_from_vort_div(self.state.vort, self.state.div)
        coslat = np.maximum(self.grid.coslat[:, None], 1e-6)
        u, v = big_u / coslat, big_v / coslat
        self.moisture = self.slt.advect(self.moisture, u, v, self.dt)
        # 4. History accumulation (daily averages in the real model).
        self.history_sum += tr.inverse(self.state.phi)
        self.history_samples += 1
        self.step_count += 1
        heat_max = float(np.max(np.abs(self._heating))) if self._heating is not None else 0.0
        diag = StepDiagnostics(
            step=self.step_count,
            mass=sum(self.dynamics.total_mass(cur) for _, cur in self._layers)
            / self.dyn_layers,
            energy=sum(self.dynamics.total_energy(cur) for _, cur in self._layers),
            moisture_min=float(self.moisture.min()),
            moisture_max=float(self.moisture.max()),
            heating_max=heat_max,
        )
        self.diagnostics.append(diag)
        return diag

    def run(self, steps: int) -> list[StepDiagnostics]:
        """Run ``steps`` timesteps, returning their diagnostics."""
        if steps < 0:
            raise ValueError(f"step count cannot be negative, got {steps}")
        return [self.step() for _ in range(steps)]

    def flush_history(self) -> np.ndarray:
        """Return and reset the accumulated history average."""
        if self.history_samples == 0:
            raise ValueError("no history samples accumulated")
        mean = self.history_sum / self.history_samples
        self.history_sum = np.zeros(self.grid.shape)
        self.history_samples = 0
        return mean

    @property
    def state(self) -> ShallowWaterState:
        """The surface (layer-0) dynamical state."""
        return self._layers[0][1]

    @property
    def layer_states(self) -> list[ShallowWaterState]:
        """Current state of every dynamical layer, surface first."""
        return [cur for _, cur in self._layers]

    # -- checkpoint/restart (SUPER-UX Section 2.6.2 contract) --------------------
    def checkpoint_state(self) -> dict:
        """Complete prognostic state for bit-identical continuation.

        Layer states are stacked along a leading axis, so any
        ``dyn_layers`` count checkpoints through the same keys."""
        state = {
            "prev_vort": np.stack([p.vort for p, _ in self._layers]),
            "prev_div": np.stack([p.div for p, _ in self._layers]),
            "prev_phi": np.stack([p.phi for p, _ in self._layers]),
            "cur_vort": np.stack([c.vort for _, c in self._layers]),
            "cur_div": np.stack([c.div for _, c in self._layers]),
            "cur_phi": np.stack([c.phi for _, c in self._layers]),
            "moisture": self.moisture,
            "step_count": self.step_count,
            "history_sum": self.history_sum,
            "history_samples": self.history_samples,
        }
        if self._heating is not None:
            state["heating"] = self._heating
            state["layer_heating"] = np.stack(self._layer_heating)
        return state

    def restore_state(self, state: dict) -> None:
        prev_v = np.asarray(state["prev_vort"])
        if prev_v.ndim != 2 or prev_v.shape[0] != self.dyn_layers:
            raise ValueError(
                f"checkpoint holds {prev_v.shape[0] if prev_v.ndim == 2 else 1} "
                f"layers; this model has {self.dyn_layers}"
            )
        self._layers = [
            (
                ShallowWaterState(
                    np.asarray(state["prev_vort"])[k],
                    np.asarray(state["prev_div"])[k],
                    np.asarray(state["prev_phi"])[k],
                ),
                ShallowWaterState(
                    np.asarray(state["cur_vort"])[k],
                    np.asarray(state["cur_div"])[k],
                    np.asarray(state["cur_phi"])[k],
                ),
            )
            for k in range(self.dyn_layers)
        ]
        self.moisture = np.asarray(state["moisture"])
        self.step_count = int(state["step_count"])
        self.history_sum = np.asarray(state["history_sum"])
        self.history_samples = int(state["history_samples"])
        if "heating" in state:
            self._heating = np.asarray(state["heating"])
            self._layer_heating = list(np.asarray(state["layer_heating"]))
        else:
            self._heating = None
