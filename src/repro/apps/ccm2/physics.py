"""Column physics: the RADABS-based radiation/adjustment package.

Section 4.7.1: CCM2's "physics" computations "involve only the vertical
column above each grid point and are thus numerically independent of each
other in the horizontal direction" — embarrassingly parallel over the
Gaussian grid, intrinsic-heavy (the RADABS kernel *is* CCM2's radiation
inner loop), and the dominant share of the model's flop budget at
production resolutions.

:class:`ColumnPhysics` turns the RADABS absorptivities into layer heating
rates by a two-stream-flavoured exchange sum plus a Newtonian relaxation
toward a reference profile — physically plausible, bounded, and column-
independent, which is all the benchmark's structure requires (the real
CCM2 physics is ~40 kLoC of parameterisations; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels import radabs

__all__ = ["ColumnPhysics"]


@dataclass
class ColumnPhysics:
    """Column radiation + relaxation physics.

    Parameters
    ----------
    nlev:
        Vertical layers per column.
    solar_constant:
        Top-of-atmosphere forcing scale [K/day equivalent].
    relax_days:
        Newtonian relaxation timescale toward the reference temperature.
    """

    nlev: int = 18
    solar_constant: float = 1.5
    relax_days: float = 20.0

    def __post_init__(self) -> None:
        if self.nlev < 2:
            raise ValueError(f"need at least 2 levels, got {self.nlev}")
        if self.solar_constant < 0:
            raise ValueError("solar forcing cannot be negative")
        if self.relax_days <= 0:
            raise ValueError("relaxation timescale must be positive")

    def heating_rates(self, cols: radabs.RadiationColumns) -> np.ndarray:
        """Layer heating rates [K/day] for every column, shape (nlev, ncol).

        Radiative exchange: each layer pair exchanges energy proportional
        to its absorptivity times the Planck-weight difference; the solar
        term deposits at the top, and relaxation pulls toward the columns'
        vertical-mean temperature.  Columns remain strictly independent.
        """
        if cols.nlev != self.nlev:
            raise ValueError(f"columns have {cols.nlev} levels, physics expects {self.nlev}")
        absorptivity, emissivity = radabs.radabs_kernel(cols)
        t_norm = cols.temperature / 250.0
        planck = t_norm**4
        # Pairwise exchange: sum over the partner level k2 of
        # A(k1,k2) * (B(k2) - B(k1)) — net gain of layer k1.
        exchange = np.einsum("klc,lc->kc", absorptivity, planck) - planck * absorptivity.sum(
            axis=1
        )
        # Cooling to space through the column-top emissivity.
        space = -emissivity * planck
        # Solar deposition decays downward from the top layer.
        profile = np.exp(-np.arange(self.nlev) / max(1.0, self.nlev / 4.0))
        solar = self.solar_constant * profile[:, None] * np.ones_like(planck)
        # Relaxation toward the column-mean temperature.
        relax = (cols.temperature.mean(axis=0) - cols.temperature) / (
            self.relax_days * 250.0
        )
        return exchange + space + solar + relax

    def heating_is_bounded(self, rates: np.ndarray, limit: float = 50.0) -> bool:
        """Sanity bound used by the model loop: |rate| below ``limit`` K/day."""
        return bool(np.all(np.isfinite(rates)) and np.max(np.abs(rates)) < limit)

    def columns_from_geopotential(
        self, phi_grid: np.ndarray, qv_grid: np.ndarray | None = None
    ) -> radabs.RadiationColumns:
        """Build radiation columns from the dynamical state.

        The shallow-water layers carry geopotential, not temperature, so
        the physics derives a plausible temperature profile whose surface
        value scales with Φ (warmer where the fluid is deep) — enough to
        close the dynamics↔physics loop with the correct data flow.
        """
        if phi_grid.ndim != 2:
            raise ValueError(f"phi_grid must be 2-D (nlat, nlon), got {phi_grid.shape}")
        ncol = phi_grid.size
        base = radabs.make_columns(ncol=ncol, nlev=self.nlev)
        scale = (phi_grid / max(1.0, float(np.mean(phi_grid)))).reshape(1, ncol)
        temperature = base.temperature * (0.9 + 0.1 * np.clip(scale, 0.0, 2.0))
        qv = base.qv if qv_grid is None else np.clip(
            base.qv * (0.5 + qv_grid.reshape(1, ncol)), 1e-9, 0.05
        )
        return radabs.RadiationColumns(
            pressure=base.pressure, dp=base.dp, temperature=temperature, qv=qv
        )
