"""CCM2 benchmark resolutions (Table 4).

"For spectral climate models such as CCM2 it is canonical to denote the
resolution by the truncation wave number and the number of vertical
layers": T42L18 is triangular truncation 42 with 18 levels on the
64×128 Gaussian grid.  Table 4 lists the five resolutions the benchmark
runs, their grids, nominal spacings and timesteps — regenerated verbatim
by ``benchmarks/bench_table4_resolutions.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Resolution", "RESOLUTIONS", "resolution"]


@dataclass(frozen=True)
class Resolution:
    """One CCM2 resolution: truncation, grid, timestep."""

    name: str
    trunc: int
    nlat: int
    nlon: int
    nlev: int
    timestep_minutes: float

    def __post_init__(self) -> None:
        if self.nlon != 2 * self.nlat:
            raise ValueError(f"{self.name}: CCM2 grids have nlon = 2·nlat")
        if self.timestep_minutes <= 0:
            raise ValueError(f"{self.name}: timestep must be positive")

    @property
    def timestep_seconds(self) -> float:
        return self.timestep_minutes * 60.0

    @property
    def grid_spacing_degrees(self) -> float:
        """Nominal spacing, 360°/nlon (Table 4's 'Nominal Grid Spacing')."""
        return 360.0 / self.nlon

    @property
    def columns(self) -> int:
        return self.nlat * self.nlon

    @property
    def nspec(self) -> int:
        """Spectral coefficients under triangular truncation."""
        return (self.trunc + 1) * (self.trunc + 2) // 2

    @property
    def steps_per_day(self) -> int:
        steps = 24 * 60 / self.timestep_minutes
        return int(round(steps))

    def steps_for_days(self, days: float) -> int:
        if days < 0:
            raise ValueError(f"day count cannot be negative, got {days}")
        return int(round(days * self.steps_per_day))

    @property
    def horizontal_grid_label(self) -> str:
        """Table 4's 'Horizontal Grid Size' column, e.g. '64 x 128'."""
        return f"{self.nlat} x {self.nlon}"


#: Table 4 verbatim: resolution, grid, nominal spacing, timestep.
RESOLUTIONS: dict[str, Resolution] = {
    res.name: res
    for res in (
        Resolution("T42L18", trunc=42, nlat=64, nlon=128, nlev=18, timestep_minutes=20.0),
        Resolution("T63L18", trunc=63, nlat=96, nlon=192, nlev=18, timestep_minutes=12.0),
        Resolution("T85L18", trunc=85, nlat=128, nlon=256, nlev=18, timestep_minutes=10.0),
        Resolution("T106L18", trunc=106, nlat=160, nlon=320, nlev=18, timestep_minutes=7.5),
        Resolution("T170L18", trunc=170, nlat=256, nlon=512, nlev=18, timestep_minutes=5.0),
    )
}


def resolution(name: str) -> Resolution:
    """Look up a Table 4 resolution by name (e.g. ``"T42L18"`` or ``"T42"``)."""
    if name in RESOLUTIONS:
        return RESOLUTIONS[name]
    with_levels = f"{name}L18"
    if with_levels in RESOLUTIONS:
        return RESOLUTIONS[with_levels]
    raise KeyError(f"unknown resolution {name!r}; Table 4 defines {sorted(RESOLUTIONS)}")
