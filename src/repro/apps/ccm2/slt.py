"""Shape-preserving semi-Lagrangian transport (SLT) on the Gaussian grid.

Section 4.7.1: "trace gases, including water vapor, are transported by
the wind fields using a shape preserving SLT scheme.  This transport
involves indirect addressing on the Gaussian polar grid."  (References
[12, 15]: Rasch & Williamson; Williamson & Rasch.)

The scheme here follows that construction:

* departure points by a two-iteration midpoint trajectory integration,
* bicubic Lagrange interpolation in (λ, φ) at the departure point,
* a shape-preserving (monotone) limiter that clamps each interpolated
  value to the min/max of its four surrounding grid values — Williamson &
  Rasch's "shape preservation": the transport creates no new extrema,
* indirect addressing: the interpolation is a gather through computed
  index arrays, the access pattern the IA kernel benchmarks.

Longitude is periodic; latitude rows are clamped at the poleward-most
Gaussian rows (trajectories at these resolutions stay well inside).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.ccm2.gaussian import GaussianGrid

__all__ = ["SemiLagrangianTransport"]


def _lagrange_weights(t: np.ndarray) -> tuple[np.ndarray, ...]:
    """Cubic Lagrange weights for nodes {-1, 0, 1, 2} at parameter t∈[0,1]."""
    return (
        -t * (t - 1.0) * (t - 2.0) / 6.0,
        (t * t - 1.0) * (t - 2.0) / 2.0,
        -t * (t + 1.0) * (t - 2.0) / 2.0,
        t * (t * t - 1.0) / 6.0,
    )


@dataclass
class SemiLagrangianTransport:
    """SLT advection of a scalar on a :class:`GaussianGrid`."""

    grid: GaussianGrid
    radius: float
    iterations: int = 2
    monotone: bool = True

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError(f"radius must be positive, got {self.radius}")
        if self.iterations < 1:
            raise ValueError(f"need >= 1 trajectory iteration, got {self.iterations}")

    # -- departure points -------------------------------------------------------
    def departure_points(
        self, u: np.ndarray, v: np.ndarray, dt: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Departure (λ_d, φ_d) for every arrival grid point.

        ``u``/``v`` are true winds [m/s] on the grid.  The midpoint method
        evaluates the wind at the estimated trajectory midpoint (by
        interpolation) and re-integrates, as in Rasch & Williamson.
        """
        if dt <= 0:
            raise ValueError(f"timestep must be positive, got {dt}")
        lam = self.grid.lons[None, :] * np.ones((self.grid.nlat, 1))
        phi = self.grid.lats[:, None] * np.ones((1, self.grid.nlon))
        coslat = np.maximum(self.grid.coslat[:, None], 1e-6)
        lam_d, phi_d = lam, phi
        for _ in range(self.iterations):
            lam_mid = lam - 0.5 * (lam - lam_d)
            phi_mid = phi - 0.5 * (phi - phi_d)
            u_mid = self._interpolate(u, lam_mid, phi_mid, monotone=False)
            v_mid = self._interpolate(v, lam_mid, phi_mid, monotone=False)
            lam_d = lam - dt * u_mid / (self.radius * coslat)
            phi_d = phi - dt * v_mid / self.radius
        return lam_d, phi_d

    # -- interpolation (the indirect-addressing gather) ---------------------------
    def _interpolate(
        self,
        field: np.ndarray,
        lam: np.ndarray,
        phi: np.ndarray,
        monotone: bool | None = None,
    ) -> np.ndarray:
        if field.shape != self.grid.shape:
            raise ValueError(f"field shape {field.shape} != grid shape {self.grid.shape}")
        monotone = self.monotone if monotone is None else monotone
        nlat, nlon = self.grid.shape
        dlam = 2.0 * np.pi / nlon
        # Longitude: periodic, uniform spacing.
        x = np.mod(lam, 2.0 * np.pi) / dlam
        j0 = np.floor(x).astype(np.int64)
        tx = x - j0
        # Latitude: Gaussian rows descend from north; find the bracketing
        # row by search (rows are monotone in latitude).
        lats_desc = self.grid.lats  # descending
        idx = np.searchsorted(-lats_desc, -phi.ravel()).reshape(phi.shape)
        i0 = np.clip(idx - 1, 0, nlat - 2)
        lat_hi = lats_desc[i0]
        lat_lo = lats_desc[i0 + 1]
        ty = np.clip((lat_hi - phi) / (lat_hi - lat_lo), 0.0, 1.0)

        wx = _lagrange_weights(tx)
        wy = _lagrange_weights(ty)
        result = np.zeros_like(phi)
        for a, wya in zip((-1, 0, 1, 2), wy):
            row = np.clip(i0 + a, 0, nlat - 1)
            row_val = np.zeros_like(phi)
            for b, wxb in zip((-1, 0, 1, 2), wx):
                col = np.mod(j0 + b, nlon)
                row_val += wxb * field[row, col]  # the gather
            result += wya * row_val
        if monotone:
            # Shape preservation: clamp to the 2x2 cell surrounding the
            # departure point (Williamson & Rasch's monotonic limiter).
            i1 = np.clip(i0 + 1, 0, nlat - 1)
            j1 = np.mod(j0 + 1, nlon)
            corners = np.stack(
                [field[i0, j0], field[i0, j1], field[i1, j0], field[i1, j1]]
            )
            result = np.clip(result, corners.min(axis=0), corners.max(axis=0))
        return result

    def advect(
        self, field: np.ndarray, u: np.ndarray, v: np.ndarray, dt: float
    ) -> np.ndarray:
        """One SLT step: interpolate the field at the departure points."""
        lam_d, phi_d = self.departure_points(u, v, dt)
        return self._interpolate(field, lam_d, phi_d)

    def creates_no_new_extrema(self, before: np.ndarray, after: np.ndarray) -> bool:
        """The shape-preservation invariant the tests check."""
        return bool(
            after.min() >= before.min() - 1e-12 and after.max() <= before.max() + 1e-12
        )
