"""The spherical-harmonic (spectral) transform (Section 4.7.1).

"The spherical harmonic transform (spectral transform) method is employed
to compute the dry dynamics of CCM2 ... It consists of computing the
spherical harmonic function coefficient representation of the atmospheric
state variables through a series of highly non-local operations."

The transform pairs here are the series of operations CCM2 performs each
timestep:

* :meth:`SpectralTransform.forward` — grid → spectral: a real FFT in
  longitude (our own mixed-radix FFTPACK) followed by Gauss–Legendre
  quadrature against P̄ₙᵐ in latitude;
* :meth:`SpectralTransform.inverse` — spectral → grid;
* :meth:`SpectralTransform.uv_from_vort_div` — wind synthesis from
  vorticity and divergence through the inverse Laplacian
  (streamfunction/velocity-potential) and the derivative table H;
* :meth:`SpectralTransform.forward_div_pair` — the flux-divergence
  forward transform with ∂/∂μ integrated by parts onto the basis, the
  operation the nonlinear dynamics terms go through.

Grid fields are (nlat, nlon); spectral states are packed complex vectors
(see :class:`~repro.apps.ccm2.legendre.LegendreBasis` for the ordering).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.ccm2.gaussian import GaussianGrid
from repro.apps.ccm2.legendre import LegendreBasis
from repro.kernels import fftpack

__all__ = ["SpectralTransform", "EARTH_RADIUS", "EARTH_OMEGA"]

#: Earth's radius [m] and rotation rate [1/s], the sphere all resolutions share.
EARTH_RADIUS = 6.37122e6
EARTH_OMEGA = 7.292e-5


@dataclass
class SpectralTransform:
    """Spectral transform at triangular truncation ``trunc`` on ``grid``."""

    grid: GaussianGrid
    trunc: int
    radius: float = EARTH_RADIUS
    basis: LegendreBasis = field(init=False)

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError(f"radius must be positive, got {self.radius}")
        if not self.grid.supports_truncation(self.trunc):
            raise ValueError(
                f"grid {self.grid.nlat}x{self.grid.nlon} cannot carry T{self.trunc} "
                "without aliasing (needs nlon >= 3T+1, 2*nlat >= 3T+1)"
            )
        if not fftpack.is_supported_size(self.grid.nlon):
            raise ValueError(
                f"nlon={self.grid.nlon} has prime factors outside 2/3/5; the "
                "FFTPACK-style longitude transform cannot handle it"
            )
        self.basis = LegendreBasis(self.trunc, self.grid.sinlat)
        # Weighted basis for the forward quadrature: (1/2)·w·P̄.
        self._wpnm = 0.5 * self.basis.pnm * self.grid.weights
        cos2 = 1.0 - self.grid.sinlat**2
        self._wpnm_over_cos2 = self._wpnm / cos2
        self._whnm_over_cos2 = 0.5 * self.basis.hnm * self.grid.weights / cos2

    # -- shapes & bookkeeping ------------------------------------------------
    @property
    def nspec(self) -> int:
        return self.basis.nspec

    def zeros_spec(self) -> np.ndarray:
        return np.zeros(self.nspec, dtype=np.complex128)

    # -- Fourier stage ---------------------------------------------------------
    def _analyse_fourier(self, grid_field: np.ndarray) -> np.ndarray:
        """Real FFT in longitude: (nlat, nlon) → Fm of shape (T+1, nlat),
        normalised so field(λ) = Σ_m Fm·e^{imλ} over m = -T…T."""
        if grid_field.shape != self.grid.shape:
            raise ValueError(
                f"field shape {grid_field.shape} != grid shape {self.grid.shape}"
            )
        spectrum = fftpack.real_forward(grid_field.T)  # (nlon//2+1, nlat)
        return spectrum[: self.trunc + 1] / self.grid.nlon

    def _synthesise_fourier(self, fm: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`_analyse_fourier`: Fm (T+1, nlat) → (nlat, nlon)."""
        nlon = self.grid.nlon
        full = np.zeros((nlon // 2 + 1, self.grid.nlat), dtype=np.complex128)
        full[: self.trunc + 1] = fm * nlon
        return fftpack.real_inverse(full, nlon).T

    # -- full transforms ---------------------------------------------------------
    def forward(self, grid_field: np.ndarray) -> np.ndarray:
        """Grid → spectral: sₙᵐ = (1/2) Σₗ wₗ · Fm(μₗ) · P̄ₙᵐ(μₗ)."""
        fm = self._analyse_fourier(grid_field)
        return np.einsum("il,il->i", self._wpnm, fm[self.basis.m_values])

    def inverse(self, spec: np.ndarray) -> np.ndarray:
        """Spectral → grid: Fm(μₗ) = Σₙ sₙᵐ P̄ₙᵐ(μₗ), then inverse FFT."""
        spec = self._check_spec(spec)
        fm = np.zeros((self.trunc + 1, self.grid.nlat), dtype=np.complex128)
        np.add.at(fm, self.basis.m_values, spec[:, None] * self.basis.pnm)
        return self._synthesise_fourier(fm)

    def _check_spec(self, spec: np.ndarray) -> np.ndarray:
        spec = np.asarray(spec, dtype=np.complex128)
        if spec.shape != (self.nspec,):
            raise ValueError(f"spectral state must have shape ({self.nspec},), got {spec.shape}")
        return spec

    # -- differential operators ---------------------------------------------------
    def laplacian(self, spec: np.ndarray) -> np.ndarray:
        """∇² in spectral space: multiply by -n(n+1)/a²."""
        return self._check_spec(spec) * (self.basis.laplacian_eigenvalues / self.radius**2)

    def inverse_laplacian(self, spec: np.ndarray) -> np.ndarray:
        """∇⁻²: zero the (0,0) mode (its inverse is undefined)."""
        spec = self._check_spec(spec).copy()
        eig = self.basis.laplacian_eigenvalues / self.radius**2
        nonzero = eig != 0.0
        spec[nonzero] /= eig[nonzero]
        spec[~nonzero] = 0.0
        return spec

    def uv_from_vort_div(
        self, vort: np.ndarray, div: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Grid winds (U, V) = (u·cosφ, v·cosφ) from spectral ζ and δ.

        Uses ψ = ∇⁻²ζ and χ = ∇⁻²δ, then
        ``U = (1/a)[∂χ/∂λ − (1−μ²)∂ψ/∂μ]``,
        ``V = (1/a)[∂ψ/∂λ + (1−μ²)∂χ/∂μ]``.
        """
        psi = self.inverse_laplacian(vort)
        chi = self.inverse_laplacian(div)
        im = 1j * self.basis.m_values
        fm_u = np.zeros((self.trunc + 1, self.grid.nlat), dtype=np.complex128)
        fm_v = np.zeros_like(fm_u)
        pnm, hnm, mv = self.basis.pnm, self.basis.hnm, self.basis.m_values
        np.add.at(fm_u, mv, ((im * chi)[:, None] * pnm - psi[:, None] * hnm))
        np.add.at(fm_v, mv, ((im * psi)[:, None] * pnm + chi[:, None] * hnm))
        return (
            self._synthesise_fourier(fm_u / self.radius),
            self._synthesise_fourier(fm_v / self.radius),
        )

    def forward_div_pair(self, a_grid: np.ndarray, b_grid: np.ndarray) -> np.ndarray:
        """Spectral coefficients of
        ``(1/(a(1−μ²)))·∂A/∂λ + (1/a)·∂B/∂μ``
        with the μ-derivative integrated by parts onto the basis:
        Fₙᵐ = (1/2a) Σₗ wₗ/(1−μₗ²) · [im·Am·P̄ₙᵐ − Bm·Hₙᵐ].

        This is the operator every nonlinear flux term of the dynamics
        passes through (vorticity, divergence and continuity equations).
        """
        am = self._analyse_fourier(a_grid)[self.basis.m_values]
        bm = self._analyse_fourier(b_grid)[self.basis.m_values]
        im = (1j * self.basis.m_values)[:, None]
        return (
            np.einsum("il,il->i", self._wpnm_over_cos2, im * am)
            - np.einsum("il,il->i", self._whnm_over_cos2, bm)
        ) / self.radius

    def coriolis_spec(self, omega: float = EARTH_OMEGA) -> np.ndarray:
        """Spectral representation of f = 2Ω·μ: a single (0,1) coefficient
        (μ = P̄₁⁰/√3)."""
        spec = self.zeros_spec()
        spec[self.basis.index(0, 1)] = 2.0 * omega / np.sqrt(3.0)
        return spec
