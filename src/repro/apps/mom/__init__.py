"""MOM: the GFDL Modular Ocean Model analogue (Section 4.7.2).

The benchmark code is "a finite difference formulation of the rigid-lid,
boussinesq primitive equations on the sphere, formulated in
latitude-longitude-depth coordinates", predicting "temperature, salinity,
three components of velocity and a number of related diagnostic
quantities".  This package reproduces that structure:

* :mod:`~repro.apps.mom.grid` — the lat-lon-depth grid (global in
  longitude, walls at the polar caps, as ocean configurations run it);
* :mod:`~repro.apps.mom.baroclinic` — tracer advection/diffusion,
  the linear equation of state, hydrostatic pressure and the baroclinic
  momentum tendencies;
* :mod:`~repro.apps.mom.barotropic` — the rigid-lid streamfunction
  solved by SOR relaxation, the Bryan–Cox barotropic mode;
* :mod:`~repro.apps.mom.model` — the leapfrog time loop with the
  every-10-timesteps diagnostics print the paper blames for part of the
  "modest level of scalability" (Table 7);
* :mod:`~repro.apps.mom.costmodel` — the machine-model cost of the 1°,
  45-level benchmark configuration, calibrated to Table 7's times and
  speedups.
"""

from repro.apps.mom.grid import OceanGrid
from repro.apps.mom.state import OceanState, resting_state, warm_pool_state
from repro.apps.mom.barotropic import poisson_residual, solve_streamfunction
from repro.apps.mom.model import MOMModel

__all__ = [
    "OceanGrid",
    "OceanState",
    "resting_state",
    "warm_pool_state",
    "solve_streamfunction",
    "poisson_residual",
    "MOMModel",
]
