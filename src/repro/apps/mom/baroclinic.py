"""Baroclinic tendencies: tracers, density, pressure and momentum.

The interior physics of the Bryan–Cox formulation:

* **tracers** — flux-form centred advection (exactly conservative on the
  periodic-in-x grid up to the wall fluxes, which are zero) plus Laplacian
  diffusion,
* **density** — a linear equation of state ρ(T, S),
* **pressure** — hydrostatic integration of the density field,
* **momentum** — Coriolis, baroclinic pressure gradient, horizontal
  Laplacian friction and Rayleigh bottom drag.

All operators are NumPy-vectorised over the full 3-D fields, with
longitude periodic and zero-flux walls at the poleward rows.
"""

from __future__ import annotations

import numpy as np

from repro.apps.mom.grid import OceanGrid

__all__ = [
    "density",
    "hydrostatic_pressure",
    "tracer_tendency",
    "momentum_tendency",
    "RHO0",
]

RHO0 = 1025.0  # Boussinesq reference density [kg/m^3]
_ALPHA = 2.0e-4  # thermal expansion [1/K]
_BETA = 7.6e-4  # haline contraction [1/psu]
_T_REF = 10.0
_S_REF = 34.7
_GRAV = 9.806


def density(temperature: np.ndarray, salinity: np.ndarray) -> np.ndarray:
    """Linear equation of state: ρ = ρ₀(1 − α(T−T₀) + β(S−S₀))."""
    return RHO0 * (1.0 - _ALPHA * (temperature - _T_REF) + _BETA * (salinity - _S_REF))


def hydrostatic_pressure(grid: OceanGrid, rho: np.ndarray) -> np.ndarray:
    """Pressure from hydrostatic integration downward from the rigid lid."""
    if rho.shape != grid.shape3d:
        raise ValueError(f"rho shape {rho.shape} != {grid.shape3d}")
    dz = grid.dz[:, None, None]
    # Pressure at cell centres: half the local layer plus everything above.
    cumulative = np.cumsum(rho * dz, axis=0)
    return _GRAV * (cumulative - 0.5 * rho * dz)


def _ddx(grid: OceanGrid, field: np.ndarray) -> np.ndarray:
    """Centred zonal derivative, periodic in longitude."""
    dx = grid.dx[None, :, None] if field.ndim == 3 else grid.dx[:, None]
    return (np.roll(field, -1, axis=-1) - np.roll(field, 1, axis=-1)) / (2.0 * dx)


def _ddy(grid: OceanGrid, field: np.ndarray) -> np.ndarray:
    """Centred meridional derivative, one-sided at the walls."""
    out = np.zeros_like(field)
    out[..., 1:-1, :] = (field[..., 2:, :] - field[..., :-2, :]) / (2.0 * grid.dy)
    out[..., 0, :] = (field[..., 1, :] - field[..., 0, :]) / grid.dy
    out[..., -1, :] = (field[..., -1, :] - field[..., -2, :]) / grid.dy
    return out


def _laplacian(grid: OceanGrid, field: np.ndarray) -> np.ndarray:
    """Horizontal Laplacian with periodic x and no-flux walls in y."""
    dx = grid.dx[None, :, None] if field.ndim == 3 else grid.dx[:, None]
    d2x = (np.roll(field, -1, axis=-1) - 2.0 * field + np.roll(field, 1, axis=-1)) / dx**2
    d2y = np.zeros_like(field)
    d2y[..., 1:-1, :] = (
        field[..., 2:, :] - 2.0 * field[..., 1:-1, :] + field[..., :-2, :]
    ) / grid.dy**2
    d2y[..., 0, :] = (field[..., 1, :] - field[..., 0, :]) / grid.dy**2
    d2y[..., -1, :] = (field[..., -2, :] - field[..., -1, :]) / grid.dy**2
    return d2x + d2y


def _laplacian_conservative(grid: OceanGrid, field: np.ndarray) -> np.ndarray:
    """Flux-form Laplacian with the cosφ metric: conserves the volume
    integral exactly (used for tracer diffusion); no-flux walls."""
    dx = grid.dx[None, :, None]
    # Zonal diffusive fluxes at east faces.
    flux_x = (np.roll(field, -1, axis=2) - field) / dx
    d2x = (flux_x - np.roll(flux_x, 1, axis=2)) / dx
    # Meridional diffusive fluxes at north faces, cosφ-weighted.
    nlev, nlat, nlon = field.shape
    cos_centre = np.cos(grid.lats)
    cos_face = 0.5 * (cos_centre[:-1] + cos_centre[1:])
    flux_y = np.zeros((nlev, nlat + 1, nlon))
    flux_y[:, 1:-1, :] = (
        cos_face[None, :, None] * (field[:, 1:, :] - field[:, :-1, :]) / grid.dy
    )
    d2y = (flux_y[:, 1:, :] - flux_y[:, :-1, :]) / (grid.dy * cos_centre[None, :, None])
    return d2x + d2y


def tracer_tendency(
    grid: OceanGrid,
    tracer: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    diffusivity: float = 1.0e3,
) -> np.ndarray:
    """Flux-form advection plus Laplacian diffusion of a tracer.

    The zonal flux divergence telescopes exactly around the periodic
    circle and the meridional wall fluxes are zero, so the volume
    integral of the tendency vanishes — tracer content is conserved
    (a property-based test).
    """
    if diffusivity < 0:
        raise ValueError(f"diffusivity cannot be negative, got {diffusivity}")
    dx = grid.dx[None, :, None]
    # Zonal flux at east faces: average tracer to the face.
    u_face = 0.5 * (u + np.roll(u, -1, axis=2))
    flux_x = u_face * 0.5 * (tracer + np.roll(tracer, -1, axis=2))
    div_x = (flux_x - np.roll(flux_x, 1, axis=2)) / dx
    # Meridional flux at north faces with the spherical cosφ metric, so
    # that the volume integral (cell areas ∝ cosφ) telescopes exactly;
    # wall fluxes are zero.
    nlev, nlat, nlon = tracer.shape
    cos_centre = np.cos(grid.lats)
    cos_face = 0.5 * (cos_centre[:-1] + cos_centre[1:])
    flux_y = np.zeros((nlev, nlat + 1, nlon))
    v_face = 0.5 * (v[:, :-1, :] + v[:, 1:, :])
    flux_y[:, 1:-1, :] = (
        cos_face[None, :, None]
        * v_face
        * 0.5
        * (tracer[:, :-1, :] + tracer[:, 1:, :])
    )
    div_y = (flux_y[:, 1:, :] - flux_y[:, :-1, :]) / (
        grid.dy * cos_centre[None, :, None]
    )
    return -(div_x + div_y) + diffusivity * _laplacian_conservative(grid, tracer)


def momentum_tendency(
    grid: OceanGrid,
    state_u: np.ndarray,
    state_v: np.ndarray,
    pressure: np.ndarray,
    viscosity: float = 1.0e4,
    bottom_drag: float = 1.0e-6,
) -> tuple[np.ndarray, np.ndarray]:
    """(du/dt, dv/dt) from Coriolis, pressure gradient, friction, drag."""
    if viscosity < 0 or bottom_drag < 0:
        raise ValueError("viscosity and drag cannot be negative")
    f = grid.coriolis[None, :, None]
    dpdx = _ddx(grid, pressure)
    dpdy = _ddy(grid, pressure)
    du = f * state_v - dpdx / RHO0 + viscosity * _laplacian(grid, state_u) - bottom_drag * state_u
    dv = -f * state_u - dpdy / RHO0 + viscosity * _laplacian(grid, state_v) - bottom_drag * state_v
    return du, dv
