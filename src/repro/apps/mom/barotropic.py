"""The rigid-lid barotropic streamfunction solver.

Under the rigid-lid approximation the vertically integrated flow is
non-divergent and derives from a streamfunction ψ: U̅ = -∂ψ/∂y,
V̅ = ∂ψ/∂x (per unit depth here).  Each timestep MOM solves an elliptic
problem ∇²ψ = ζ (the curl of the vertically integrated tendencies) —
historically by successive over-relaxation, which is what made the
barotropic mode the scalability-limiting phase of rigid-lid oceans
(domain-decomposed relaxation needs more sweeps as the subdomain count
grows; see :mod:`~repro.apps.mom.costmodel`).

The solver here is red-black SOR on the lat-lon grid, periodic in
longitude, ψ = 0 on the polar walls.
"""

from __future__ import annotations

import numpy as np

from repro.apps.mom.grid import OceanGrid

__all__ = ["solve_streamfunction", "poisson_residual", "laplacian_latlon"]


def laplacian_latlon(grid: OceanGrid, psi: np.ndarray) -> np.ndarray:
    """Five-point ∇² on the lat-lon grid (periodic in x, walls in y)."""
    if psi.shape != grid.shape2d:
        raise ValueError(f"psi shape {psi.shape} != {grid.shape2d}")
    dx = grid.dx[:, None]
    dy = grid.dy
    east = np.roll(psi, -1, axis=1)
    west = np.roll(psi, 1, axis=1)
    d2x = (east - 2.0 * psi + west) / dx**2
    north = np.zeros_like(psi)
    south = np.zeros_like(psi)
    north[:-1] = psi[1:]
    south[1:] = psi[:-1]
    d2y = (north - 2.0 * psi + south) / dy**2
    return d2x + d2y


def poisson_residual(grid: OceanGrid, psi: np.ndarray, rhs: np.ndarray) -> float:
    """Max-norm residual of ∇²ψ = rhs over the interior rows.

    The poleward rows carry the Dirichlet condition ψ = 0, where the PDE
    itself is not imposed, so they are excluded from the norm.
    """
    residual = laplacian_latlon(grid, psi) - rhs
    return float(np.max(np.abs(residual[1:-1])))


def solve_streamfunction(
    grid: OceanGrid,
    rhs: np.ndarray,
    psi0: np.ndarray | None = None,
    omega: float = 1.7,
    tol: float = 1e-9,
    max_iter: int = 20_000,
) -> tuple[np.ndarray, int]:
    """Solve ∇²ψ = rhs by red-black SOR; returns (ψ, iterations).

    ``tol`` is relative to the right-hand side's scale.  Starting from
    the previous step's ψ (``psi0``) is what keeps the per-step iteration
    count manageable in the time loop.
    """
    if rhs.shape != grid.shape2d:
        raise ValueError(f"rhs shape {rhs.shape} != {grid.shape2d}")
    if not 0.0 < omega < 2.0:
        raise ValueError(f"SOR relaxation must be in (0, 2), got {omega}")
    if max_iter < 1:
        raise ValueError(f"max_iter must be >= 1, got {max_iter}")
    psi = np.zeros_like(rhs) if psi0 is None else psi0.copy()
    dx2 = (grid.dx[:, None]) ** 2
    dy2 = grid.dy**2
    diag = -2.0 / dx2 - 2.0 / dy2
    scale = max(float(np.max(np.abs(rhs))), 1e-30)

    nlat, nlon = grid.shape2d
    ii, jj = np.meshgrid(np.arange(nlat), np.arange(nlon), indexing="ij")
    # Red/black checkerboards restricted to the interior rows: the wall
    # rows hold the Dirichlet value and must never be relaxed, or the
    # neighbouring rows converge against stale wall values.
    interior = (ii > 0) & (ii < nlat - 1)
    masks = [((ii + jj) % 2 == 0) & interior, ((ii + jj) % 2 == 1) & interior]

    psi[0] = 0.0
    psi[-1] = 0.0
    iterations = 0
    for iterations in range(1, max_iter + 1):
        for mask in masks:
            east = np.roll(psi, -1, axis=1)
            west = np.roll(psi, 1, axis=1)
            north = np.zeros_like(psi)
            south = np.zeros_like(psi)
            north[:-1] = psi[1:]
            south[1:] = psi[:-1]
            gs = (rhs - (east + west) / dx2 - (north + south) / dy2) / diag
            psi[mask] = (1.0 - omega) * psi[mask] + omega * gs[mask]
        if iterations % 10 == 0 and poisson_residual(grid, psi, rhs) <= tol * scale:
            break
    return psi, iterations
