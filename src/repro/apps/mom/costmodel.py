"""Machine-model cost of the MOM benchmark (Table 7).

The benchmark is the 1°, 45-level global configuration run for 350
timesteps (measured as 390 minus 40 to remove initialisation).  Three
components set the Table 7 scalability shape:

* **baroclinic interior** — tracer and momentum updates, vectorised over
  longitude but broken into short segments by land masking; distributes
  cleanly over latitude rows,
* **barotropic SOR** — the rigid-lid streamfunction relaxation.  Under
  latitude-strip domain decomposition each processor relaxes its strip
  against lagged neighbour boundaries (block-Jacobi between strips), and
  the iteration count needed for convergence grows ≈ √p with the strip
  count — the classic degradation of decoupled relaxation without a
  coarse-grid correction.  Net effect: this phase scales only as √p,
* **diagnostics** — "the benchmark prints out model diagnostics every 10
  timesteps": global reductions plus formatted output, serial.

Together these produce the paper's "modest level of scalability"
(speedup 9.06 on 32 CPUs) without any per-machine fudge: the 1-CPU step
time calibrates to Table 7's 1861.25 s / 350 steps, and the speedup
curve follows.
"""

from __future__ import annotations


from repro.apps.mom.grid import OceanGrid
from repro.machine.node import Node, ParallelReport
from repro.machine.operations import ScalarOp, Trace, VectorOp
from repro.machine.presets import sx4_node

__all__ = [
    "baroclinic_trace",
    "barotropic_trace",
    "diagnostics_trace",
    "sor_iterations_for",
    "parallel_step",
    "benchmark_time",
    "speedup_table",
    "PAPER_TABLE7",
]

#: Table 7 verbatim: CPUs -> (seconds for 350 steps, speedup).  The paper
#: made no 2-CPU measurement ("for expediency").
PAPER_TABLE7 = {
    1: (1861.25, 1.00),
    4: (696.92, 2.70),
    8: (519.74, 3.66),
    16: (331.67, 5.88),
    32: (226.62, 9.06),
}

#: Vectorised segment length: land masking breaks the 360-point zonal
#: loops into open-ocean segments.
SEGMENT_LENGTH = 72
SEGMENTS_PER_ROW = 6
#: Vector statements per (row, level) across the baroclinic stages.
BAROCLINIC_LOOPS = 90
#: SOR iterations per step on one processor (warm-started rigid-lid
#: solve on the 360x150 barotropic grid).
SOR_ITERATIONS = 4800
#: Block-Jacobi convergence degradation exponent: iterations x p^0.5.
SOR_DECOMPOSITION_EXPONENT = 0.5
#: Serial instructions per grid point for the every-10-step diagnostics
#: (global sums, extrema searches, formatted print).
DIAG_INSTRUCTIONS_PER_POINT = 120.0
DIAGNOSTIC_INTERVAL = 10
REGIONS_PER_STEP = 20.0


def baroclinic_trace(grid: OceanGrid) -> Trace:
    """The per-step interior work: tracers, density/pressure, momentum."""
    count = grid.nlat * grid.nlev * SEGMENTS_PER_ROW * BAROCLINIC_LOOPS
    return Trace(
        [
            VectorOp(
                "mom baroclinic",
                length=SEGMENT_LENGTH,
                count=float(count),
                flops_per_element=2.5,
                loads_per_element=6.0,
                stores_per_element=2.0,
            )
        ],
        name="mom baroclinic",
    )


def barotropic_trace(grid: OceanGrid, iterations: int) -> Trace:
    """``iterations`` red-black SOR sweeps of the streamfunction solve."""
    if iterations < 1:
        raise ValueError(f"need at least one iteration, got {iterations}")
    # Two half-sweeps per iteration, one vector op per row each.
    return Trace(
        [
            VectorOp(
                "mom sor sweep",
                length=grid.nlon // 2,
                count=float(2 * grid.nlat * iterations),
                flops_per_element=6.0,
                loads_per_element=5.0,
                stores_per_element=1.0,
            )
        ],
        name="mom barotropic",
    )


def diagnostics_trace(grid: OceanGrid) -> Trace:
    """One diagnostics event: serial global reductions plus the print."""
    points = grid.nlev * grid.nlat * grid.nlon
    return Trace(
        [
            ScalarOp(
                "mom diagnostics print",
                instructions=DIAG_INSTRUCTIONS_PER_POINT * points,
                flops=4.0 * points,
                memory_words=3.0 * points,
            )
        ],
        name="mom diagnostics",
    )


def sor_iterations_for(cpus: int) -> int:
    """Iterations to converge with ``cpus`` latitude strips (√p growth)."""
    if cpus < 1:
        raise ValueError(f"need at least one CPU, got {cpus}")
    return round(SOR_ITERATIONS * cpus**SOR_DECOMPOSITION_EXPONENT)


def parallel_step(
    node: Node, grid: OceanGrid | None = None, cpus: int = 1, with_diagnostics: bool = True
) -> ParallelReport:
    """Average per-step wall time on ``cpus`` processors.

    Rows are dealt in blocks; the SOR runs more iterations as the strip
    count grows; the diagnostics event is serial and amortised over its
    10-step cycle.
    """
    grid = grid or OceanGrid.benchmark()
    base, rem = divmod(grid.nlat, cpus)
    iterations = sor_iterations_for(cpus)
    traces = []
    for i in range(cpus):
        rows = base + (1 if i < rem else 0)
        share = rows / grid.nlat
        traces.append(
            baroclinic_trace(grid).scaled(share)
            + barotropic_trace(grid, iterations).scaled(share)
        )
    serial = None
    if with_diagnostics:
        serial = diagnostics_trace(grid).scaled(1.0 / DIAGNOSTIC_INTERVAL)
    return node.run_parallel(
        traces,
        serial=serial,
        regions=REGIONS_PER_STEP,
        trace_name=f"MOM step/{cpus}cpu",
    )


def benchmark_time(node: Node | None = None, cpus: int = 1, steps: int = 350) -> float:
    """Wall-clock seconds for the Table 7 measurement (350 steps)."""
    node = node or sx4_node()
    if steps < 1:
        raise ValueError(f"need at least one step, got {steps}")
    return parallel_step(node, cpus=cpus).seconds * steps


def speedup_table(
    node: Node | None = None, cpu_counts: tuple[int, ...] = (1, 4, 8, 16, 32)
) -> dict[int, tuple[float, float]]:
    """Regenerate Table 7: CPUs -> (time for 350 steps, speedup)."""
    node = node or sx4_node()
    times = {p: benchmark_time(node, cpus=p) for p in cpu_counts}
    base = times[min(cpu_counts)] * min(cpu_counts)  # normalise to 1 CPU
    one_cpu = times.get(1, base)
    return {p: (t, one_cpu / t) for p, t in times.items()}
