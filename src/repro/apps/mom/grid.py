"""Latitude-longitude-depth ocean grid.

MOM's benchmark configurations (Section 4.7.2): a low-resolution 3°
global grid with 25 levels "for familiarization and porting
verification", and the 1°, 45-level grid used as the benchmark.  The
grid is periodic in longitude with solid walls at the poleward
boundaries (the rigid-lid streamfunction needs a simply-connected
boundary; real configurations close the Arctic the same way).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["OceanGrid", "EARTH_RADIUS_OCEAN"]

EARTH_RADIUS_OCEAN = 6.371e6


@dataclass
class OceanGrid:
    """A uniform lat-lon grid with ``nlev`` flat-bottomed depth levels."""

    nlon: int
    nlat: int
    nlev: int
    lat_max_deg: float = 75.0
    depth_m: float = 4000.0
    radius: float = EARTH_RADIUS_OCEAN
    lats: np.ndarray = field(init=False)
    lons: np.ndarray = field(init=False)
    dz: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.nlon < 4 or self.nlat < 4 or self.nlev < 2:
            raise ValueError(
                f"grid too small: nlon={self.nlon}, nlat={self.nlat}, nlev={self.nlev}"
            )
        if not 0.0 < self.lat_max_deg < 90.0:
            raise ValueError(f"lat_max_deg must be in (0, 90), got {self.lat_max_deg}")
        if self.depth_m <= 0:
            raise ValueError(f"depth must be positive, got {self.depth_m}")
        # Cell-centre latitudes between the walls, uniform spacing.
        edges = np.linspace(-self.lat_max_deg, self.lat_max_deg, self.nlat + 1)
        self.lats = np.deg2rad(0.5 * (edges[:-1] + edges[1:]))
        self.lons = 2.0 * np.pi * np.arange(self.nlon) / self.nlon
        self.dz = np.full(self.nlev, self.depth_m / self.nlev)

    @property
    def shape3d(self) -> tuple[int, int, int]:
        return (self.nlev, self.nlat, self.nlon)

    @property
    def shape2d(self) -> tuple[int, int]:
        return (self.nlat, self.nlon)

    @property
    def dlat(self) -> float:
        """Meridional spacing in radians."""
        return float(self.lats[1] - self.lats[0])

    @property
    def dlon(self) -> float:
        """Zonal spacing in radians."""
        return 2.0 * np.pi / self.nlon

    @property
    def dy(self) -> float:
        """Meridional spacing in metres."""
        return self.radius * self.dlat

    @property
    def dx(self) -> np.ndarray:
        """Zonal spacing in metres per latitude row, shape (nlat,)."""
        return self.radius * np.cos(self.lats) * self.dlon

    @property
    def coriolis(self) -> np.ndarray:
        """f = 2Ω·sinφ per latitude row."""
        return 2.0 * 7.292e-5 * np.sin(self.lats)

    def cell_volumes(self) -> np.ndarray:
        """Cell volumes [m³], shape (nlev, nlat, nlon) — the weights of
        every conservation diagnostic."""
        area = (self.dx * self.dy)[None, :, None]
        return area * self.dz[:, None, None] * np.ones(self.shape3d)

    def volume_mean(self, field3d: np.ndarray) -> float:
        """Volume-weighted mean of a 3-D tracer field."""
        if field3d.shape != self.shape3d:
            raise ValueError(f"field shape {field3d.shape} != {self.shape3d}")
        vol = self.cell_volumes()
        return float(np.sum(field3d * vol) / np.sum(vol))

    @staticmethod
    def low_resolution() -> "OceanGrid":
        """The 3°, 25-level familiarization configuration."""
        return OceanGrid(nlon=120, nlat=50, nlev=25)

    @staticmethod
    def benchmark() -> "OceanGrid":
        """The 1°, 45-level benchmark configuration (Table 7)."""
        return OceanGrid(nlon=360, nlat=150, nlev=45)
