"""The MOM time loop: leapfrog baroclinic step + rigid-lid barotropic mode.

Each timestep (Bryan–Cox structure):

1. density and hydrostatic pressure from the tracers,
2. leapfrog tracer and baroclinic momentum updates (Robert-filtered),
3. the rigid-lid constraint: the vertical-mean flow is replaced by the
   non-divergent flow of a streamfunction obtained from an SOR solve of
   ∇²ψ = ζ̄ (the curl of the provisional vertical-mean velocity),
4. every ``diagnostic_interval`` (10) steps, global diagnostics are
   computed and recorded — the print the paper identifies as a
   scalability limiter of the benchmark (Section 4.7.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.mom import baroclinic, barotropic
from repro.apps.mom.grid import OceanGrid
from repro.apps.mom.state import OceanState, resting_state

__all__ = ["MOMModel", "OceanDiagnostics"]


@dataclass(frozen=True)
class OceanDiagnostics:
    """The every-10-steps global diagnostics record."""

    step: int
    mean_temperature: float
    mean_salinity: float
    kinetic_energy: float
    max_speed: float
    sor_iterations: int

    @property
    def healthy(self) -> bool:
        return (
            np.isfinite(self.mean_temperature)
            and np.isfinite(self.kinetic_energy)
            and self.max_speed < 10.0  # m/s; ocean currents stay well under
        )


@dataclass
class MOMModel:
    """A runnable rigid-lid ocean at any :class:`OceanGrid` size."""

    grid: OceanGrid
    dt: float = 3600.0
    diffusivity: float = 1.0e3
    viscosity: float = 1.0e4
    robert: float = 0.05
    diagnostic_interval: int = 10
    state: OceanState = field(init=False)
    _previous: OceanState = field(init=False)
    step_count: int = 0
    diagnostics: list[OceanDiagnostics] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ValueError(f"timestep must be positive, got {self.dt}")
        if self.diagnostic_interval < 1:
            raise ValueError("diagnostic interval must be >= 1")
        max_speed = 2.0  # m/s advective scale for the CFL guard
        min_dx = float(np.min(self.grid.dx))
        cfl_limit = min_dx / max_speed
        if self.dt > cfl_limit:
            raise ValueError(
                f"dt={self.dt}s exceeds the advective CFL limit ~{cfl_limit:.0f}s "
                f"for this grid (min dx {min_dx:.0f} m)"
            )
        self.state = resting_state(self.grid)
        self._previous = self.state.copy()

    def set_state(self, state: OceanState) -> None:
        """Install an initial condition (both leapfrog time levels)."""
        self.state = state.copy()
        self._previous = state.copy()

    # -- rigid lid ---------------------------------------------------------------
    def _apply_rigid_lid(self, state: OceanState) -> int:
        """Project the vertical-mean flow onto its non-divergent part.

        Computes the curl of the provisional vertical-mean velocity,
        solves ∇²ψ = ζ̄ (SOR, warm-started from the previous ψ), and
        replaces the vertical mean with the streamfunction flow.
        """
        dz = self.grid.dz[:, None, None]
        depth = self.grid.depth_m
        ubar = np.sum(state.u * dz, axis=0) / depth
        vbar = np.sum(state.v * dz, axis=0) / depth
        # ζ̄ = ∂v̄/∂x − ∂ū/∂y on the grid.
        dvdx = (np.roll(vbar, -1, axis=1) - np.roll(vbar, 1, axis=1)) / (
            2.0 * self.grid.dx[:, None]
        )
        dudy = np.zeros_like(ubar)
        dudy[1:-1] = (ubar[2:] - ubar[:-2]) / (2.0 * self.grid.dy)
        zeta = dvdx - dudy
        psi, iterations = barotropic.solve_streamfunction(
            self.grid, zeta, psi0=state.psi, tol=1e-8
        )
        # Non-divergent barotropic flow from ψ.
        u_bt = np.zeros_like(ubar)
        u_bt[1:-1] = -(psi[2:] - psi[:-2]) / (2.0 * self.grid.dy)
        v_bt = (np.roll(psi, -1, axis=1) - np.roll(psi, 1, axis=1)) / (
            2.0 * self.grid.dx[:, None]
        )
        state.u += (u_bt - ubar)[None, :, :]
        state.v += (v_bt - vbar)[None, :, :]
        state.psi = psi
        return iterations

    # -- timestep -----------------------------------------------------------------
    def step(self) -> OceanDiagnostics | None:
        """Advance one leapfrog step; returns diagnostics on their cycle."""
        grid, dt = self.grid, self.dt
        cur, prev = self.state, self._previous
        rho = baroclinic.density(cur.temperature, cur.salinity)
        pressure = baroclinic.hydrostatic_pressure(grid, rho)
        dtemp = baroclinic.tracer_tendency(
            grid, cur.temperature, cur.u, cur.v, self.diffusivity
        )
        dsalt = baroclinic.tracer_tendency(
            grid, cur.salinity, cur.u, cur.v, self.diffusivity
        )
        du, dv = baroclinic.momentum_tendency(
            grid, cur.u, cur.v, pressure, self.viscosity
        )
        new = OceanState(
            temperature=prev.temperature + 2.0 * dt * dtemp,
            salinity=prev.salinity + 2.0 * dt * dsalt,
            u=prev.u + 2.0 * dt * du,
            v=prev.v + 2.0 * dt * dv,
            psi=cur.psi.copy(),
        )
        # No-slip walls for the meridional velocity.
        new.v[:, 0, :] = 0.0
        new.v[:, -1, :] = 0.0
        sor_iterations = self._apply_rigid_lid(new)
        # Robert–Asselin filter on the central level.
        r = self.robert
        for name in ("temperature", "salinity", "u", "v"):
            c = getattr(cur, name)
            c += r * (getattr(prev, name) - 2.0 * c + getattr(new, name))
        self._previous, self.state = cur, new
        self.step_count += 1
        if self.step_count % self.diagnostic_interval == 0:
            diag = OceanDiagnostics(
                step=self.step_count,
                mean_temperature=grid.volume_mean(new.temperature),
                mean_salinity=grid.volume_mean(new.salinity),
                kinetic_energy=new.kinetic_energy,
                max_speed=float(
                    np.max(np.sqrt(new.u**2 + new.v**2))
                ),
                sor_iterations=sor_iterations,
            )
            self.diagnostics.append(diag)
            return diag
        return None

    def run(self, steps: int) -> list[OceanDiagnostics]:
        """Run ``steps`` timesteps; returns the diagnostics records."""
        if steps < 0:
            raise ValueError(f"step count cannot be negative, got {steps}")
        out = []
        for _ in range(steps):
            diag = self.step()
            if diag is not None:
                out.append(diag)
        return out

    # -- checkpoint/restart (SUPER-UX Section 2.6.2 contract) --------------------
    def checkpoint_state(self) -> dict:
        """Both leapfrog time levels plus the step counter."""
        state = {"step_count": self.step_count}
        for prefix, level in (("cur", self.state), ("prev", self._previous)):
            state[f"{prefix}_temperature"] = level.temperature
            state[f"{prefix}_salinity"] = level.salinity
            state[f"{prefix}_u"] = level.u
            state[f"{prefix}_v"] = level.v
            state[f"{prefix}_psi"] = level.psi
        return state

    def restore_state(self, state: dict) -> None:
        import numpy as _np

        def level(prefix: str) -> OceanState:
            return OceanState(
                _np.asarray(state[f"{prefix}_temperature"]),
                _np.asarray(state[f"{prefix}_salinity"]),
                _np.asarray(state[f"{prefix}_u"]),
                _np.asarray(state[f"{prefix}_v"]),
                _np.asarray(state[f"{prefix}_psi"]),
            )

        self.state = level("cur")
        self._previous = level("prev")
        self.step_count = int(state["step_count"])
