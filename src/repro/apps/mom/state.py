"""Ocean prognostic state and initial conditions.

MOM predicts "temperature, salinity, three components of velocity and a
number of related diagnostic quantities (pressure, diffusivities, ...)".
The state here carries the prognostic fields: tracers T and S, the
baroclinic horizontal velocities, and the rigid-lid barotropic
streamfunction (vertical velocity is diagnostic via continuity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.mom.grid import OceanGrid

__all__ = ["OceanState", "resting_state", "warm_pool_state"]


@dataclass
class OceanState:
    """Prognostic fields on an :class:`OceanGrid`."""

    temperature: np.ndarray  # [degC], (nlev, nlat, nlon)
    salinity: np.ndarray  # [psu], (nlev, nlat, nlon)
    u: np.ndarray  # zonal velocity [m/s]
    v: np.ndarray  # meridional velocity [m/s]
    psi: np.ndarray  # barotropic streamfunction [m^3/s], (nlat, nlon)

    def __post_init__(self) -> None:
        shape = self.temperature.shape
        for name in ("salinity", "u", "v"):
            if getattr(self, name).shape != shape:
                raise ValueError(f"{name} shape {getattr(self, name).shape} != {shape}")
        if self.psi.shape != shape[1:]:
            raise ValueError(f"psi shape {self.psi.shape} != {shape[1:]}")

    def copy(self) -> "OceanState":
        return OceanState(
            self.temperature.copy(),
            self.salinity.copy(),
            self.u.copy(),
            self.v.copy(),
            self.psi.copy(),
        )

    @property
    def kinetic_energy(self) -> float:
        """Mean baroclinic kinetic energy density [m²/s²]."""
        return float(np.mean(0.5 * (self.u**2 + self.v**2)))

    def is_finite(self) -> bool:
        return all(
            bool(np.all(np.isfinite(getattr(self, f))))
            for f in ("temperature", "salinity", "u", "v", "psi")
        )


def resting_state(grid: OceanGrid) -> OceanState:
    """A stably stratified ocean at rest: exponential thermocline, uniform
    salinity, no motion.  An exact steady state of the model (tested)."""
    depth = (np.cumsum(grid.dz) - 0.5 * grid.dz)[:, None, None]
    temperature = (2.0 + 18.0 * np.exp(-depth / 800.0)) * np.ones(grid.shape3d)
    salinity = np.full(grid.shape3d, 34.7)
    return OceanState(
        temperature=temperature,
        salinity=salinity,
        u=np.zeros(grid.shape3d),
        v=np.zeros(grid.shape3d),
        psi=np.zeros(grid.shape2d),
    )


def warm_pool_state(grid: OceanGrid, anomaly_deg: float = 3.0) -> OceanState:
    """The resting state plus a warm surface pool in mid-basin — a
    baroclinic pressure anomaly that must spin up a circulation."""
    state = resting_state(grid)
    lat = grid.lats[:, None]
    lon = grid.lons[None, :]
    lat0 = 0.5 * (grid.lats.max() + grid.lats.min())
    pool = anomaly_deg * np.exp(
        -((lat - lat0) ** 2) / 0.05 - (np.minimum(np.abs(lon - np.pi), 2 * np.pi - np.abs(lon - np.pi)) ** 2) / 0.5
    )
    depth_decay = np.exp(-(np.cumsum(grid.dz) - 0.5 * grid.dz) / 500.0)
    state.temperature += depth_decay[:, None, None] * pool[None, :, :]
    return state
