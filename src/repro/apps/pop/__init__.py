"""POP: the Los Alamos Parallel Ocean Program analogue (Section 4.7.3).

POP is "a stand-alone code with a free surface formulation and flat
bottom topography", written in Fortran 90 with heavy use of array syntax
and the CSHIFT intrinsic.  Its defining computational feature — and the
paper's headline observation — is the implicit free-surface solver of
Dukowicz & Smith: an elliptic system for the surface pressure solved by
preconditioned conjugate gradients over 9-point stencil operators built
from circular shifts.

The paper benchmarked the 2° configuration with a *pre-release* NEC F90
compiler in which "the CSHIFT intrinsic did not vectorize", and still
observed 537 Mflops on one processor; the cost model carries that
compiler flag as an ablation switch.

Modules: :mod:`~repro.apps.pop.operators` (cshift + stencils),
:mod:`~repro.apps.pop.solver` (preconditioned CG),
:mod:`~repro.apps.pop.model` (the free-surface time loop),
:mod:`~repro.apps.pop.costmodel` (the 537 Mflops anchor and the
vectorised-CSHIFT ablation).
"""

from repro.apps.pop.operators import cshift, nine_point_apply, NinePointStencil
from repro.apps.pop.solver import conjugate_gradient, CGResult
from repro.apps.pop.model import POPModel

__all__ = [
    "cshift",
    "NinePointStencil",
    "nine_point_apply",
    "conjugate_gradient",
    "CGResult",
    "POPModel",
]
