"""Machine-model cost of the POP benchmark (Section 4.7.3).

Anchor: "A pre-release of the NEC F90 compiler was used ... the CSHIFT
intrinsic did not vectorize.  Even so, we observed 537 Mflops on the
2-degree POP benchmark on one processor of the SX-4."

The model prices one POP step as:

* **vectorised array syntax** — the baroclinic interior and the CG
  AXPYs/dot products, which the F90 compiler vectorised normally,
* **CSHIFT traffic** — one whole-array copy per shift.  With the
  pre-release compiler each copy runs as a scalar element loop
  (``cshift_vectorized=False``, the benchmarked configuration); with a
  production compiler it is a unit-stride vector copy.  The ablation
  bench flips the flag to show what the compiler fix is worth.
"""

from __future__ import annotations

from repro.apps.mom.grid import OceanGrid
from repro.machine.operations import ScalarOp, Trace, VectorOp
from repro.machine.processor import Processor
from repro.machine.presets import sx4_processor
from repro.units import MEGA

__all__ = [
    "two_degree_grid",
    "step_trace",
    "model_mflops",
    "PAPER_MFLOPS",
    "CSHIFTS_PER_POINT",
]

#: The paper's single-processor result at 2 degrees.
PAPER_MFLOPS = 537.0

#: Vectorised flops per (3-D) grid point per step: tracers, momentum,
#: EOS/pressure, CG arithmetic (dot products, AXPYs, stencil multiplies).
FLOPS_PER_POINT = 100.0
#: Memory words per point moved by the vectorised array syntax.
WORDS_PER_POINT = 7.0
#: Whole-array CSHIFT copies per point per step (stencil assemblies in
#: the CG operator plus the barotropic gradients/divergences).
CSHIFTS_PER_POINT = 2.8
#: Scalar instructions per element of an unvectorised CSHIFT copy loop
#: (load, store, index increment, bounds branch).
CSHIFT_SCALAR_INSTRUCTIONS = 4.0


def two_degree_grid() -> OceanGrid:
    """The 2° benchmark configuration (flat bottom, 20 levels)."""
    return OceanGrid(nlon=180, nlat=76, nlev=20)


def step_trace(grid: OceanGrid | None = None, cshift_vectorized: bool = False) -> Trace:
    """One POP step: vectorised arithmetic plus CSHIFT data motion."""
    grid = grid or two_degree_grid()
    points = grid.nlev * grid.nlat * grid.nlon
    rows = grid.nlev * grid.nlat
    statements = 25  # vector statements per (row, level) per step
    ops: list = [
        VectorOp(
            "pop array syntax",
            length=grid.nlon,
            count=float(rows * statements),
            flops_per_element=FLOPS_PER_POINT / statements,
            loads_per_element=WORDS_PER_POINT * 0.7 / statements,
            stores_per_element=WORDS_PER_POINT * 0.3 / statements,
        )
    ]
    shift_words = CSHIFTS_PER_POINT * points
    if cshift_vectorized:
        ops.append(
            VectorOp(
                "cshift (vector copy)",
                length=grid.nlon,
                count=float(shift_words / grid.nlon),
                loads_per_element=1.0,
                stores_per_element=1.0,
            )
        )
    else:
        ops.append(
            ScalarOp(
                "cshift (scalar loop)",
                instructions=CSHIFT_SCALAR_INSTRUCTIONS,
                memory_words=2.0,
                count=float(shift_words),
            )
        )
    return Trace(ops, name=f"POP step ({'vector' if cshift_vectorized else 'scalar'} cshift)")


def model_mflops(
    processor: Processor | None = None,
    grid: OceanGrid | None = None,
    cshift_vectorized: bool = False,
) -> float:
    """Sustained Mflops of the POP step on one processor.

    Flop accounting follows the benchmark convention: CSHIFT moves data
    but performs no arithmetic, so a slow CSHIFT shows up purely as lost
    sustained rate — which is how the paper's 537 Mflops arose.
    """
    processor = processor or sx4_processor()
    grid = grid or two_degree_grid()
    trace = step_trace(grid, cshift_vectorized)
    points = grid.nlev * grid.nlat * grid.nlon
    seconds = processor.time(trace)
    return FLOPS_PER_POINT * points / seconds / MEGA
