"""The POP time loop: free-surface barotropic mode + baroclinic interior.

POP's distinguishing step (vs MOM's rigid lid) is the implicit free
surface: each timestep assembles the SPD Helmholtz system
``(I − α∇²)η = rhs`` for the surface height and solves it by CG, then
corrects the barotropic flow with the surface-pressure gradient.  The
benchmark configuration is flat-bottomed; this analogue runs on a
doubly-periodic 2° grid (POP's own benchmark avoids pole complications
with flat bottom and preprocessor-selected options).

The baroclinic interior (tracer advection/diffusion) reuses the ocean
substrate of :mod:`repro.apps.mom.baroclinic` — the two models share it
in reality too (both are Bryan–Cox descendants).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.mom import baroclinic
from repro.apps.mom.grid import OceanGrid
from repro.apps.pop.operators import NinePointStencil, cshift
from repro.apps.pop.solver import CGResult, conjugate_gradient

__all__ = ["POPModel", "POPDiagnostics"]

_GRAV = 9.806


@dataclass(frozen=True)
class POPDiagnostics:
    """Per-step health record for the free-surface model."""

    step: int
    mean_eta: float
    max_eta: float
    mean_temperature: float
    cg_iterations: int
    cg_converged: bool

    @property
    def healthy(self) -> bool:
        return (
            self.cg_converged
            and np.isfinite(self.mean_eta)
            and abs(self.max_eta) < 50.0  # metres; surface height stays sane
        )


@dataclass
class POPModel:
    """A runnable implicit-free-surface ocean."""

    grid: OceanGrid
    dt: float = 3600.0
    diffusivity: float = 1.0e3
    cg_tol: float = 1e-9
    eta: np.ndarray = field(init=False)
    temperature: np.ndarray = field(init=False)
    u: np.ndarray = field(init=False)
    v: np.ndarray = field(init=False)
    step_count: int = 0
    diagnostics: list[POPDiagnostics] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ValueError(f"timestep must be positive, got {self.dt}")
        depth = (np.cumsum(self.grid.dz) - 0.5 * self.grid.dz)[:, None, None]
        self.temperature = (2.0 + 18.0 * np.exp(-depth / 800.0)) * np.ones(
            self.grid.shape3d
        )
        self.eta = np.zeros(self.grid.shape2d)
        self.u = np.zeros(self.grid.shape3d)
        self.v = np.zeros(self.grid.shape3d)
        self._stencil = NinePointStencil.helmholtz(
            self.grid.nlat,
            self.grid.nlon,
            dx=self.grid.dx,
            dy=self.grid.dy,
            alpha=_GRAV * self.grid.depth_m * self.dt**2,
        )

    def set_surface_anomaly(self, eta: np.ndarray) -> None:
        """Install a surface-height anomaly (e.g. a Gaussian bump)."""
        if eta.shape != self.grid.shape2d:
            raise ValueError(f"eta shape {eta.shape} != {self.grid.shape2d}")
        self.eta = eta.copy()

    # -- free-surface barotropic step ---------------------------------------------
    def _surface_step(self) -> CGResult:
        """Implicit free-surface update.

        Semi-implicit continuity + momentum give the Helmholtz system
        ``(I − gHΔt²∇²) η⁺ = η − Δt·H∇·ū`` — SPD, solved by CG with a
        warm start from the current η.
        """
        dz = self.grid.dz[:, None, None]
        depth = self.grid.depth_m
        ubar = np.sum(self.u * dz, axis=0) / depth
        vbar = np.sum(self.v * dz, axis=0) / depth
        dx = self.grid.dx[:, None]
        div = (cshift(ubar, 1, 1) - cshift(ubar, -1, 1)) / (2.0 * dx) + (
            cshift(vbar, 1, 0) - cshift(vbar, -1, 0)
        ) / (2.0 * self.grid.dy)
        rhs = self.eta - self.dt * depth * div
        result = conjugate_gradient(
            self._stencil, rhs, x0=self.eta, tol=self.cg_tol
        )
        new_eta = result.solution
        # Barotropic velocity correction from the surface-pressure gradient.
        detadx = (cshift(new_eta, 1, 1) - cshift(new_eta, -1, 1)) / (2.0 * dx)
        detady = (cshift(new_eta, 1, 0) - cshift(new_eta, -1, 0)) / (2.0 * self.grid.dy)
        self.u -= (_GRAV * self.dt * detadx)[None, :, :]
        self.v -= (_GRAV * self.dt * detady)[None, :, :]
        self.eta = new_eta
        return result

    # -- timestep -------------------------------------------------------------------
    def step(self) -> POPDiagnostics:
        """One forward step: tracers, then the implicit surface mode."""
        dtemp = baroclinic.tracer_tendency(
            self.grid, self.temperature, self.u, self.v, self.diffusivity
        )
        self.temperature = self.temperature + self.dt * dtemp
        cg = self._surface_step()
        self.step_count += 1
        diag = POPDiagnostics(
            step=self.step_count,
            mean_eta=float(np.mean(self.eta)),
            max_eta=float(np.max(np.abs(self.eta))),
            mean_temperature=self.grid.volume_mean(self.temperature),
            cg_iterations=cg.iterations,
            cg_converged=cg.converged,
        )
        self.diagnostics.append(diag)
        return diag

    def run(self, steps: int) -> list[POPDiagnostics]:
        if steps < 0:
            raise ValueError(f"step count cannot be negative, got {steps}")
        return [self.step() for _ in range(steps)]

    # -- checkpoint/restart (SUPER-UX Section 2.6.2 contract) --------------------
    def checkpoint_state(self) -> dict:
        return {
            "eta": self.eta,
            "temperature": self.temperature,
            "u": self.u,
            "v": self.v,
            "step_count": self.step_count,
        }

    def restore_state(self, state: dict) -> None:
        self.eta = np.asarray(state["eta"])
        self.temperature = np.asarray(state["temperature"])
        self.u = np.asarray(state["u"])
        self.v = np.asarray(state["v"])
        self.step_count = int(state["step_count"])
