"""CSHIFT and 9-point stencil operators, POP's F90 building blocks.

POP expresses its horizontal operators in Fortran-90 array syntax using
the CSHIFT intrinsic; every finite-difference stencil is a weighted sum
of circularly shifted copies of the field.  :func:`cshift` reimplements
the intrinsic's semantics explicitly (it is also the operation whose
failure to vectorise under the pre-release NEC compiler capped the
paper's POP result at 537 Mflops), and :class:`NinePointStencil` is the
operator shape of the implicit free-surface system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["cshift", "NinePointStencil", "nine_point_apply"]


def cshift(field: np.ndarray, shift: int, axis: int) -> np.ndarray:
    """Fortran-90 CSHIFT: circular shift of ``field`` by ``shift`` along
    ``axis``; CSHIFT(a, 1) brings element i+1 into position i.

    Implemented with explicit slice assembly (not ``np.roll``) to mirror
    the intrinsic's data movement — a whole-array copy, the operation the
    POP benchmark stresses.
    """
    if field.ndim == 0:
        raise ValueError("cannot shift a scalar")
    axis = axis if axis >= 0 else field.ndim + axis
    if not 0 <= axis < field.ndim:
        raise ValueError(f"axis {axis} out of range for ndim {field.ndim}")
    n = field.shape[axis]
    if n == 0:
        raise ValueError("cannot shift an empty axis")
    k = shift % n
    if k == 0:
        return field.copy()
    out = np.empty_like(field)
    src_head = [slice(None)] * field.ndim
    src_tail = [slice(None)] * field.ndim
    dst_head = [slice(None)] * field.ndim
    dst_tail = [slice(None)] * field.ndim
    src_head[axis] = slice(k, None)
    dst_head[axis] = slice(0, n - k)
    src_tail[axis] = slice(0, k)
    dst_tail[axis] = slice(n - k, None)
    out[tuple(dst_head)] = field[tuple(src_head)]
    out[tuple(dst_tail)] = field[tuple(src_tail)]
    return out


@dataclass(frozen=True)
class NinePointStencil:
    """A 9-point operator with spatially varying coefficients.

    ``A(η) = Σ_{di,dj ∈ {-1,0,1}} c[di,dj] · cshift(cshift(η, di, 0), dj, 1)``

    with coefficient arrays ``c`` of the field's shape.  The implicit
    free-surface operator of Dukowicz & Smith has this shape (a Laplacian
    plus metric cross-terms on the B-grid).
    """

    coefficients: dict[tuple[int, int], np.ndarray]

    def __post_init__(self) -> None:
        if (0, 0) not in self.coefficients:
            raise ValueError("a 9-point stencil needs a centre coefficient")
        shapes = {c.shape for c in self.coefficients.values()}
        if len(shapes) != 1:
            raise ValueError(f"coefficient shapes differ: {shapes}")
        for offset in self.coefficients:
            if not (abs(offset[0]) <= 1 and abs(offset[1]) <= 1):
                raise ValueError(f"offset {offset} outside the 9-point neighbourhood")

    @property
    def shape(self) -> tuple[int, ...]:
        return self.coefficients[(0, 0)].shape

    def apply(self, field: np.ndarray) -> np.ndarray:
        return nine_point_apply(self.coefficients, field)

    @staticmethod
    def helmholtz(
        nlat: int, nlon: int, dx: np.ndarray, dy: float, alpha: float
    ) -> "NinePointStencil":
        """The SPD operator (I − α∇²) of the implicit free surface.

        ``dx`` varies with latitude (shape (nlat,)); the operator is
        symmetric positive definite for α > 0, which CG requires.
        """
        if alpha <= 0:
            raise ValueError(f"alpha must be positive for an SPD operator, got {alpha}")
        if dx.shape != (nlat,):
            raise ValueError(f"dx must have shape ({nlat},), got {dx.shape}")
        cx = alpha / (dx**2)[:, None] * np.ones((nlat, nlon))
        cy = alpha / dy**2 * np.ones((nlat, nlon))
        centre = 1.0 + 2.0 * cx + 2.0 * cy
        return NinePointStencil(
            coefficients={
                (0, 0): centre,
                (0, 1): -cx,
                (0, -1): -cx,
                (1, 0): -cy,
                (-1, 0): -cy,
            }
        )


def nine_point_apply(
    coefficients: dict[tuple[int, int], np.ndarray], field: np.ndarray
) -> np.ndarray:
    """Apply a 9-point operator as POP does: a cshift per off-centre
    coefficient and an array multiply-accumulate per term."""
    centre = coefficients[(0, 0)]
    if field.shape != centre.shape:
        raise ValueError(f"field shape {field.shape} != stencil shape {centre.shape}")
    out = centre * field
    for (di, dj), coeff in coefficients.items():
        if (di, dj) == (0, 0):
            continue
        shifted = field
        if di:
            shifted = cshift(shifted, di, axis=0)
        if dj:
            shifted = cshift(shifted, dj, axis=1)
        out += coeff * shifted
    return out
