"""Preconditioned conjugate-gradient solver for the free-surface system.

Dukowicz & Smith's implicit free-surface method replaces MOM's rigid-lid
streamfunction solve with an SPD elliptic system for the surface
pressure, solved by preconditioned conjugate gradients — an algorithm of
9-point operator applications (cshift-based), dot products and AXPYs.
That structure made POP "portable and scalable" (it runs on the CM-5 and
T3D); it is also exactly the mix the SX-4 benchmark exercises.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.pop.operators import NinePointStencil

__all__ = ["CGResult", "conjugate_gradient"]


@dataclass(frozen=True)
class CGResult:
    """Solution and convergence record of one CG solve."""

    solution: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    residual_history: tuple[float, ...]


def conjugate_gradient(
    stencil: NinePointStencil,
    rhs: np.ndarray,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iter: int = 1000,
) -> CGResult:
    """Solve ``A x = rhs`` for the SPD 9-point operator ``A``.

    Diagonal (Jacobi) preconditioning, as POP uses by default.  ``tol``
    is relative to ``‖rhs‖``.  Raises if the operator turns out not to
    be positive definite (a misassembled stencil).
    """
    if rhs.shape != stencil.shape:
        raise ValueError(f"rhs shape {rhs.shape} != stencil shape {stencil.shape}")
    if max_iter < 1:
        raise ValueError(f"max_iter must be >= 1, got {max_iter}")
    diag = stencil.coefficients[(0, 0)]
    if np.any(diag <= 0):
        raise ValueError("stencil centre must be positive for Jacobi preconditioning")
    x = np.zeros_like(rhs) if x0 is None else x0.copy()
    r = rhs - stencil.apply(x)
    z = r / diag
    p = z.copy()
    rz = float(np.sum(r * z))
    rhs_norm = float(np.linalg.norm(rhs))
    threshold = tol * max(rhs_norm, 1e-300)
    history = [float(np.linalg.norm(r))]
    iterations = 0
    converged = history[-1] <= threshold
    while not converged and iterations < max_iter:
        ap = stencil.apply(p)
        pap = float(np.sum(p * ap))
        if pap <= 0:
            raise ValueError(
                "operator is not positive definite (p'Ap <= 0); check the stencil"
            )
        alpha = rz / pap
        x += alpha * p
        r -= alpha * ap
        z = r / diag
        rz_new = float(np.sum(r * z))
        p = z + (rz_new / rz) * p
        rz = rz_new
        iterations += 1
        history.append(float(np.linalg.norm(r)))
        converged = history[-1] <= threshold
    return CGResult(
        solution=x,
        iterations=iterations,
        residual_norm=history[-1],
        converged=converged,
        residual_history=tuple(history),
    )
