"""Suite execution engine: parallel fan-out, result cache, incremental re-runs.

The measurement campaign is a batch of independent experiments; this
package is the harness that treats it that way:

``deps``
    static dependency tracing — each experiment's digest covers its id,
    the source of every ``repro.*`` module its builder transitively
    imports, and the machine-preset configuration;
``store``
    the content-addressed result store under ``.repro-cache/``, with
    atomic writes and corrupt-entry tolerance;
``plan``
    the incremental planner — diff digests against the store, classify
    hit/miss/stale, schedule only what changed;
``executor``
    parallel fan-out over a process pool with per-job timeouts and
    crash isolation (a dying worker yields a :class:`JobFailure`, never
    kills the run), results always in deterministic paper order;
``jobs``
    the bridge feeding measured job metadata to the NQS batch model
    and the PRODLOAD job shapes;
``cli``
    ``python -m repro.engine run|plan|gc|stats``.

The determinism contract: serial (``jobs=1``), parallel, and cache-hit
paths produce byte-identical results (``run --verify`` asserts it).
"""

from repro.engine.deps import ExperimentDigest, experiment_digest, suite_digests
from repro.engine.executor import (
    EngineReport,
    JobFailure,
    JobResult,
    execute_jobs,
    run_engine,
)
from repro.engine.plan import ExecutionPlan, PlanEntry, plan_suite
from repro.engine.store import CachedResult, ChunkStore, ResultStore, canonical_bytes

__all__ = [
    "ExperimentDigest",
    "experiment_digest",
    "suite_digests",
    "EngineReport",
    "JobFailure",
    "JobResult",
    "execute_jobs",
    "run_engine",
    "ExecutionPlan",
    "PlanEntry",
    "plan_suite",
    "CachedResult",
    "ChunkStore",
    "ResultStore",
    "canonical_bytes",
]
