"""``python -m repro.engine`` entry point."""

from repro.engine.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
