"""Command-line interface for the suite execution engine.

Usage::

    python -m repro.engine run  [ids...] [--jobs N] [--no-cache]
                                [--timeout S] [--verify] [--json]
    python -m repro.engine plan [ids...] [--json]
    python -m repro.engine stats [--json]
    python -m repro.engine gc   [--dry-run]

All commands accept ``--cache-dir`` (default ``.repro-cache``).
``run`` exits 0 only when every experiment produced a result and every
shape check passed; its non-zero exits distinguish the failure kind::

    1   all jobs ran, but a shape check failed
    2   the request itself is invalid (unknown experiment id)
    3   at least one job errored (builder raised)
    4   at least one worker crashed
    5   at least one job timed out

Mixed failures report the highest applicable code.  ``plan``/
``stats``/``gc`` are bookkeeping and exit 0 unless the request is
invalid (exit 2, listing the valid ids).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.engine.executor import EngineReport, JobFailure, run_engine
from repro.engine.plan import plan_suite
from repro.engine.store import ResultStore
from repro.suite.experiments import EXPERIMENTS

__all__ = [
    "main",
    "engine_report_to_dict",
    "validate_experiment_ids",
    "FAILURE_EXIT_CODES",
]

#: ``engine run`` exit code per failure kind (a shape-check failure
#: alone is 1; usage errors are 2; mixed kinds take the max).
FAILURE_EXIT_CODES = {"error": 3, "crash": 4, "timeout": 5}


def validate_experiment_ids(exp_ids: list[str]) -> str | None:
    """An error message naming the valid ids, or None when all are known."""
    unknown = [exp_id for exp_id in exp_ids if exp_id not in EXPERIMENTS]
    if not unknown:
        return None
    return (
        f"unknown experiment id(s): {', '.join(sorted(unknown))}\n"
        f"valid ids: {', '.join(EXPERIMENTS)}"
    )


def engine_report_to_dict(report: EngineReport) -> dict:
    """Machine-readable form of an engine run (cache + suite verdicts)."""
    from repro.suite.runner import SuiteReport, suite_report_to_dict

    suite = SuiteReport(
        experiments=report.experiments,
        timings={r.exp_id: r.elapsed_s for r in report.successes},
    )
    return {
        "schema": 1,
        "engine": {
            "jobs": report.jobs,
            "wall_s": report.wall_s,
            "cache": report.cache_counts(),
            "plan": report.plan.counts(),
            "sources": {r.exp_id: r.source for r in report.successes},
            "failures": [
                {
                    "exp_id": f.exp_id,
                    "kind": f.kind,
                    "message": f.message,
                }
                for f in report.failures
            ],
            "resilience": {
                "retry_rounds": report.retry_rounds,
                "serial_fallback": report.serial_fallback,
                "attempts": {
                    exp_id: n for exp_id, n in sorted(report.attempts.items()) if n > 1
                },
            },
        },
        "suite": suite_report_to_dict(suite),
    }


def _add_common(parser: argparse.ArgumentParser, with_ids: bool = True) -> None:
    if with_ids:
        parser.add_argument("ids", nargs="*", metavar="exp_id",
                            help="experiment ids (default: the whole suite)")
    parser.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="result store root (default: .repro-cache)")
    parser.add_argument("--json", action="store_true",
                        help="emit a machine-readable report")


def _store(args: argparse.Namespace) -> ResultStore:
    return ResultStore(args.cache_dir) if args.cache_dir else ResultStore()


def _cmd_run(args: argparse.Namespace) -> int:
    report = run_engine(
        args.ids or None,
        jobs=args.jobs,
        use_cache=not args.no_cache,
        store=_store(args),
        timeout_s=args.timeout,
        verify=args.verify,
    )
    if args.json:
        print(json.dumps(engine_report_to_dict(report), indent=1, sort_keys=True))
    else:
        for result in report.results:
            if isinstance(result, JobFailure):
                print(result.summary_line())
            else:
                tag = "cached  " if result.source == "cache" else "executed"
                print(f"{tag} {result.experiment.summary_line()}")
        print(report.summary())
    checks_ok = all(exp.passed for exp in report.experiments)
    if report.failures:
        return max(FAILURE_EXIT_CODES.get(f.kind, 3) for f in report.failures)
    return 0 if checks_ok else 1


def _cmd_plan(args: argparse.Namespace) -> int:
    plan = plan_suite(_store(args), args.ids or None)
    if args.json:
        payload = {
            "counts": plan.counts(),
            "entries": [
                {"exp_id": e.exp_id, "status": e.status, "key": e.digest.key}
                for e in plan.entries
            ],
        }
        print(json.dumps(payload, indent=1, sort_keys=True))
    else:
        for entry in plan.entries:
            print(f"{entry.status:<6} {entry.exp_id:<10} {entry.digest.key[:16]}")
        print(plan.summary())
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.engine.deps import suite_digests

    store = _store(args)
    stats = store.stats(suite_digests())
    if args.json:
        payload = {
            "entries": stats.entries,
            "total_bytes": stats.total_bytes,
            "by_experiment": stats.by_experiment,
            "live": stats.live,
            "stale": stats.stale,
            "corrupt": stats.corrupt,
            "quarantined": stats.quarantined,
        }
        print(json.dumps(payload, indent=1, sort_keys=True))
    else:
        for exp_id, count in sorted(stats.by_experiment.items()):
            print(f"{exp_id:<10} {count} entr{'y' if count == 1 else 'ies'}")
        print(f"store: {stats.summary()}")
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    from repro.engine.deps import suite_digests
    from repro.units import fmt_bytes

    store = _store(args)
    removed = store.gc(suite_digests(), dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    q_verb = "would quarantine" if args.dry_run else "quarantined"
    for entry in removed:
        action = q_verb if entry.corrupt else verb
        print(f"{action} {entry.path} ({fmt_bytes(entry.size_bytes)})")
    total = fmt_bytes(sum(entry.size_bytes for entry in removed))
    corrupt = sum(entry.corrupt for entry in removed)
    tail = f", {corrupt} corrupt -> quarantine" if corrupt else ""
    print(
        f"gc: {verb} {len(removed)} entr{'y' if len(removed) == 1 else 'ies'}"
        f" ({total}){tail}"
    )
    from repro.service.spool import JobSpool

    swept = JobSpool(store.root).sweep_expired(dry_run=args.dry_run)
    print(
        f"gc: {verb} {len(swept)} expired service job "
        f"record{'' if len(swept) == 1 else 's'}"
    )
    from repro.engine.store import ColumnCache

    orphaned = ColumnCache(store.root).sweep_orphans(dry_run=args.dry_run)
    for segment in orphaned:
        print(
            f"{verb} orphaned column segment {segment.key[:16]} "
            f"({segment.kind}, {fmt_bytes(segment.size_bytes)}, "
            f"publisher pid {segment.owner_pid} dead)"
        )
    print(
        f"gc: {verb} {len(orphaned)} orphaned column "
        f"segment{'' if len(orphaned) == 1 else 's'}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine",
        description="Parallel, cached, incremental suite execution.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="execute the suite through the engine")
    _add_common(p_run)
    p_run.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (default: 1, serial in-process)")
    p_run.add_argument("--no-cache", action="store_true",
                       help="neither read nor write the result store")
    p_run.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-job timeout in seconds")
    p_run.add_argument("--verify", action="store_true",
                       help="re-derive every result serially and assert "
                            "byte-identity (the determinism contract)")

    p_plan = sub.add_parser("plan", help="show hit/miss/stale without running")
    _add_common(p_plan)

    p_stats = sub.add_parser("stats", help="result-store contents and liveness")
    _add_common(p_stats, with_ids=False)

    p_gc = sub.add_parser("gc", help="drop entries no current digest addresses")
    _add_common(p_gc, with_ids=False)
    p_gc.add_argument("--dry-run", action="store_true",
                      help="report what would be removed, remove nothing")

    args = parser.parse_args(argv)
    error = validate_experiment_ids(getattr(args, "ids", []) or [])
    if error:
        print(error, file=sys.stderr)
        return 2
    handlers = {"run": _cmd_run, "plan": _cmd_plan, "stats": _cmd_stats,
                "gc": _cmd_gc}
    return handlers[args.command](args)
