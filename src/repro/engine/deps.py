"""Static dependency tracing and content-addressed experiment digests.

The cache key for an experiment must change exactly when its result
could: the engine never *runs* anything to decide staleness.  So the
key is a digest over

1. the experiment id,
2. the source bytes of every ``repro.*`` module the experiment's
   builder function *transitively* imports (traced statically, below),
3. the machine-preset configuration fingerprint (the clock periods the
   calibrated presets are built around), and
4. a digest schema version, so a change to the keying scheme itself
   invalidates every prior entry.

Tracing is per-builder, not per-module: ``repro.suite.experiments``
imports every kernel, so hashing *its* import closure would make any
kernel edit invalidate the whole suite.  Instead we walk the builder
function's AST, resolve the names it references against the module's
import table (following module-local helpers like ``_sx4``), and take
the transitive ``repro.*`` closure of only those seeds.  Editing
``rfft.py`` therefore invalidates ``figure6`` and ``figure7`` but not
``table1``.  The experiments module itself is always part of the key —
an edit there conservatively invalidates everything.
"""

from __future__ import annotations

import ast
import hashlib
from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

import repro
from repro.machine import presets

__all__ = [
    "DIGEST_SCHEMA",
    "EXPERIMENTS_MODULE",
    "SERVICE_RESOLVE_MODULE",
    "ExperimentDigest",
    "builder_entry_points",
    "package_root",
    "module_path",
    "dependency_closure",
    "closure_digest",
    "experiment_dependencies",
    "machine_fingerprint",
    "experiment_digest",
    "suite_digests",
]

#: Bump when the keying scheme changes: old cache entries become stale.
DIGEST_SCHEMA = 1

#: The module whose builder functions define the suite.
EXPERIMENTS_MODULE = "repro.suite.experiments"

#: The service's request-resolution registry; its resolvers join the
#: builder entry points so the effect analyzer holds the HTTP surface
#: to the same determinism contract as the experiment builders.
SERVICE_RESOLVE_MODULE = "repro.service.resolve"

_PACKAGE = "repro"


def package_root() -> Path:
    """Directory holding the installed ``repro`` package sources."""
    return Path(repro.__file__).resolve().parent


def module_path(dotted: str) -> Path | None:
    """File for a dotted ``repro.*`` module name, or None if no such module."""
    if dotted != _PACKAGE and not dotted.startswith(_PACKAGE + "."):
        return None
    parts = dotted.split(".")[1:]
    base = package_root().joinpath(*parts) if parts else package_root()
    if base.with_suffix(".py").is_file():
        return base.with_suffix(".py")
    init = base / "__init__.py"
    if init.is_file():
        return init
    return None


def _imported_modules(tree: ast.AST, current_package: str) -> set[str]:
    """Every ``repro.*`` module a parsed source imports (anywhere in it).

    ``from repro.kernels import hint`` names the *submodule* — resolve
    each alias against the filesystem to tell submodules from symbols.
    """
    found: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if module_path(alias.name) is not None:
                    found.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level:  # relative import: resolve against this package
                pkg_parts = current_package.split(".")
                module = ".".join(pkg_parts[: len(pkg_parts) - node.level + 1]
                                  + ([module] if module else []))
            if module_path(module) is None:
                continue
            for alias in node.names:
                submodule = f"{module}.{alias.name}"
                found.add(submodule if module_path(submodule) is not None else module)
    return found


def dependency_closure(
    seeds: Iterable[str], no_traverse: Iterable[str] = ()
) -> dict[str, Path]:
    """Transitive ``repro.*`` import closure of the seed modules.

    Package ``__init__`` files are *hashed but never traversed*: they run
    on import (so their bytes belong in the key), but they re-export
    wide — ``repro.kernels`` imports every kernel — and following them
    would collapse every experiment's closure into the whole repo.  This
    repo's modules import submodules directly, which is the path the
    tracer follows.  ``no_traverse`` marks additional hash-only modules
    (the experiments module, whose imports span the suite by design).
    """
    closure: dict[str, Path] = {}
    hash_only = set(no_traverse)
    frontier = [s for s in seeds if module_path(s) is not None]
    while frontier:
        name = frontier.pop()
        if name in closure:
            continue
        path = module_path(name)
        if path is None:
            continue
        closure[name] = path
        # A module implies its ancestor packages (their __init__ runs on
        # import) — included hash-only.
        parts = name.split(".")
        for i in range(1, len(parts)):
            ancestor = ".".join(parts[:i])
            ancestor_path = module_path(ancestor)
            if ancestor_path is not None:
                closure.setdefault(ancestor, ancestor_path)
        if name in hash_only or path.name == "__init__.py":
            continue
        tree = _parse(path)
        frontier.extend(_imported_modules(tree, name.rsplit(".", 1)[0]))
    return closure


@lru_cache(maxsize=None)
def _parse(path: Path) -> ast.Module:
    return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))


@lru_cache(maxsize=1)
def _experiments_module_index() -> tuple[dict[str, str], dict[str, ast.FunctionDef]]:
    """(import table: local name -> module, top-level functions by name)."""
    tree = _parse(module_path(EXPERIMENTS_MODULE))
    imports: dict[str, str] = {}
    functions: dict[str, ast.FunctionDef] = {}
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if module_path(alias.name) is not None:
                    imports[(alias.asname or alias.name).split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module_path(module) is None:
                continue
            for alias in node.names:
                submodule = f"{module}.{alias.name}"
                target = submodule if module_path(submodule) is not None else module
                imports[alias.asname or alias.name] = target
        elif isinstance(node, ast.FunctionDef):
            functions[node.name] = node
    return imports, functions


def builder_entry_points() -> tuple[tuple[str, str, str], ...]:
    """``(exp_id, module, function)`` for every registered builder.

    Enumerated *statically* from the ``EXPERIMENTS`` dict literal in the
    experiments module — no builder runs, mirroring how the rest of this
    module treats staleness.  This is the contract surface the effect
    analyzer (:mod:`repro.analysis.effects`) checks: each entry point
    must be transitively deterministic (DET001–DET004) and, because the
    executor dispatches these same functions into pool workers, free of
    module-global mutation (DET005).
    """
    entries = list(_registry_entry_points(EXPERIMENTS_MODULE, "EXPERIMENTS"))
    entries.extend(
        (f"service:{kind}", module, func)
        for kind, module, func in _registry_entry_points(
            SERVICE_RESOLVE_MODULE, "JOB_RESOLVERS"
        )
    )
    return tuple(entries)


def _registry_entry_points(
    module: str, registry: str
) -> tuple[tuple[str, str, str], ...]:
    """Statically enumerate a module-level ``{str: function}`` dict literal.

    Returns ``(key, module, function)`` for every entry whose key is a
    string constant and whose value names a top-level function of the
    module.  An absent module yields no entries — the engine must keep
    working in trees that ship without the optional registries.
    """
    path = module_path(module)
    if path is None:
        return ()
    tree = _parse(path)
    functions = {
        node.name for node in tree.body if isinstance(node, ast.FunctionDef)
    }
    entries: list[tuple[str, str, str]] = []
    for node in tree.body:
        value: ast.expr | None = None
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == registry for t in node.targets
        ):
            value = node.value
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == registry
        ):
            value = node.value
        if not isinstance(value, ast.Dict):
            continue
        for key, builder in zip(value.keys, value.values):
            if (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and isinstance(builder, ast.Name)
                and builder.id in functions
            ):
                entries.append((key.value, module, builder.id))
    return tuple(entries)


def _builder_seeds(builder_name: str) -> set[str]:
    """Modules a builder function references, following local helpers."""
    imports, functions = _experiments_module_index()
    seeds: set[str] = set()
    visited: set[str] = set()

    def visit(name: str) -> None:
        if name in visited:
            return
        visited.add(name)
        fn = functions.get(name)
        if fn is None:
            raise KeyError(
                f"no builder function {name!r} in {EXPERIMENTS_MODULE}"
            )
        seeds.update(_imported_modules(fn, EXPERIMENTS_MODULE.rsplit(".", 1)[0]))
        for node in ast.walk(fn):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in imports:
                    seeds.add(imports[node.id])
                elif node.id in functions and node.id != name:
                    visit(node.id)

    visit(builder_name)
    return seeds


def _seeds_for(exp_id: str) -> set[str]:
    from repro.suite.experiments import EXPERIMENTS

    if exp_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    builder = EXPERIMENTS[exp_id]
    module = getattr(builder, "__module__", "")
    if module == EXPERIMENTS_MODULE:
        return _builder_seeds(builder.__name__)
    # A builder registered from elsewhere (tests, extensions): seed from
    # its defining module if that is a repro module, else nothing — the
    # experiments module below still anchors the digest.
    return {module} if module_path(module) is not None else set()


def closure_digest(seeds: Iterable[str]) -> str:
    """Digest over the source bytes of the seeds' transitive closure.

    The generic form of :func:`experiment_digest`'s module section:
    callers that key a cache on "the code that computes this value"
    (``repro.explore`` keys grid-sweep chunks this way) fold it into
    their own content hash, so any edit to a costing module invalidates
    exactly the chunks it could have changed.
    """
    deps = dependency_closure(seeds)
    hasher = hashlib.sha256()
    hasher.update(f"schema={DIGEST_SCHEMA}\x00".encode())
    for name in sorted(deps):
        hasher.update(f"{name}\x00".encode())
        hasher.update(hashlib.sha256(deps[name].read_bytes()).digest())
        hasher.update(b"\x00")
    return hasher.hexdigest()


def experiment_dependencies(exp_id: str) -> dict[str, Path]:
    """Module name -> source file for everything the experiment depends on."""
    seeds = _seeds_for(exp_id)
    seeds.add(EXPERIMENTS_MODULE)
    return dependency_closure(seeds, no_traverse={EXPERIMENTS_MODULE})


def machine_fingerprint() -> str:
    """Digest of the machine-preset configuration the suite is built on."""
    config = {
        "benchmark_clock_ns": presets.BENCHMARK_CLOCK_NS,
        "production_clock_ns": presets.PRODUCTION_CLOCK_NS,
    }
    text = ",".join(f"{k}={v!r}" for k, v in sorted(config.items()))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ExperimentDigest:
    """The content-addressed identity of one experiment's result."""

    exp_id: str
    key: str  # sha256 hex over id + dep sources + machine config
    modules: tuple[str, ...]  # sorted dependency module names


def experiment_digest(
    exp_id: str, sources: Mapping[str, bytes] | None = None
) -> ExperimentDigest:
    """Digest for one experiment.

    ``sources`` overrides the on-disk bytes per module name — the seam
    tests (and ``plan --what-if`` style tooling) use to ask "what would
    an edit to module X invalidate?" without touching the tree.
    """
    deps = experiment_dependencies(exp_id)
    hasher = hashlib.sha256()
    hasher.update(f"schema={DIGEST_SCHEMA}\x00".encode())
    hasher.update(f"exp_id={exp_id}\x00".encode())
    hasher.update(f"machine={machine_fingerprint()}\x00".encode())
    for name in sorted(deps):
        if sources is not None and name in sources:
            blob = sources[name]
        else:
            blob = deps[name].read_bytes()
        hasher.update(f"{name}\x00".encode())
        hasher.update(hashlib.sha256(blob).digest())
        hasher.update(b"\x00")
    return ExperimentDigest(exp_id=exp_id, key=hasher.hexdigest(),
                            modules=tuple(sorted(deps)))


def suite_digests(
    exp_ids: Iterable[str] | None = None,
    sources: Mapping[str, bytes] | None = None,
) -> dict[str, ExperimentDigest]:
    """Digests for the requested experiments (default: all, paper order)."""
    from repro.suite.experiments import EXPERIMENTS

    ids = list(EXPERIMENTS) if exp_ids is None else list(exp_ids)
    return {exp_id: experiment_digest(exp_id, sources) for exp_id in ids}
