"""Parallel experiment execution with crash isolation and retry.

``execute_jobs`` fans experiment builders out over a
``ProcessPoolExecutor`` (forked workers where the platform has them, so
the registry state the parent sees is exactly what workers see).  The
isolation contract:

* a builder that **raises** comes back as a structured
  :class:`JobFailure` (kind ``error``) carrying the traceback;
* a worker process that **dies** (segfault, ``os._exit``, OOM-kill)
  surfaces as kind ``crash``;
* a job that exceeds its **timeout** surfaces as kind ``timeout``,
  naming the job and the measured elapsed time;
* in every case the remaining jobs keep running and results come back
  in the order the ids were requested — never completion order.

Pool workers share the suite's stacked costing columns: the parent
packs the registered traces once (:mod:`repro.machine.suitebatch`),
publishes the bytes through a :class:`~repro.engine.store.ColumnCache`
(shared memory, file fallback), and each worker's initializer attaches
and registers the suite instead of re-deriving it per process.  The
segment is released when the pool winds down; ``engine gc`` sweeps
segments orphaned by killed publishers.

``run_engine`` is the orchestrator the CLI and the suite runner call:
plan against the store, execute only stale/missing experiments,
persist what ran, and splice cache hits back in.  Given a
:class:`~repro.faults.retry.RetryPolicy` it re-runs transient failures
in backoff-spaced rounds, degrading from the process pool to serial
in-process execution when the pool keeps dying — the host-side
analogue of NQS requeueing (Section 2.6.3).  A
:class:`~repro.faults.inject.FaultInjector` threads seeded faults
through both the submission path and the store writes; all injection
decisions are made in the parent, so runs are reproducible.

With ``verify=True`` every result (executed or cached) is re-derived
serially in-process and byte-compared against
:func:`repro.engine.store.canonical_bytes` — the simulator is
deterministic, and this asserts it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
import os
import time
import traceback
from collections.abc import Iterable
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field

from repro.engine.deps import ExperimentDigest
from repro.engine.plan import HIT, ExecutionPlan, plan_suite
from repro.engine.store import ColumnCache, ResultStore, canonical_bytes
from repro.perfmon.collector import record as perfmon_record
from repro.perfmon.collector import span as perfmon_span
from repro.perfmon.counters import declare_counters
from repro.suite.results import Experiment

__all__ = [
    "EXECUTED",
    "CACHE",
    "JobResult",
    "JobFailure",
    "DeterminismError",
    "EngineReport",
    "execute_jobs",
    "run_engine",
]

EXECUTED = "executed"
CACHE = "cache"

declare_counters("fault", ("retries", "backoff_s", "serial_fallbacks"))


@dataclass(frozen=True)
class JobResult:
    """One experiment that produced a result."""

    exp_id: str
    experiment: Experiment
    elapsed_s: float  # wall seconds the (original) execution took
    source: str  # EXECUTED or CACHE
    worker_pid: int = 0
    #: wall seconds this run spent obtaining the result (queue + execute
    #: for executed jobs, store read for cache hits); ``elapsed_s`` can
    #: predate this run when the result came from cache.
    host_elapsed_s: float | None = None


@dataclass(frozen=True)
class JobFailure:
    """One experiment that did not: error, crash, or timeout.

    A failure never propagates as an exception out of the executor —
    it is a value in the result list, in the failed job's slot.
    """

    exp_id: str
    kind: str  # "error" | "crash" | "timeout"
    message: str
    traceback: str = ""

    def summary_line(self) -> str:
        return f"FAIL {self.exp_id:<10} [{self.kind}] {self.message}"


class DeterminismError(AssertionError):
    """Serial, parallel, and cached bytes disagreed — should be impossible."""


def _apply_worker_fault(exp_id: str, fault: dict, start: float) -> dict | None:
    """Act on an injected fault directive inside the worker.

    Returns a failure payload, or None when the job should proceed
    (``slow`` faults stall, then run normally).  A ``crash`` really
    kills the process only when the directive says we are a pool
    worker; in the parent (serial mode) it is simulated as data —
    taking down the whole engine is not part of the model.
    """
    kind = fault["kind"]
    if kind == "slow":
        time.sleep(fault.get("delay_s", 0.0))
        return None
    if kind == "error":
        message = "InjectedFault: builder error (fault injection)"
        return {"ok": False, "exp_id": exp_id, "kind": "error",
                "message": message, "traceback": message}
    if kind == "crash":
        if fault.get("in_worker"):
            os._exit(70)
        return {
            "ok": False,
            "exp_id": exp_id,
            "kind": "crash",
            "message": "worker died: injected crash (simulated in-process)",
            "traceback": "",
        }
    if kind == "timeout":
        time.sleep(fault.get("delay_s", 0.0))
        elapsed = time.perf_counter() - start
        return {
            "ok": False,
            "exp_id": exp_id,
            "kind": "timeout",
            "message": (
                f"job {exp_id} exceeded its injected time limit "
                f"after {elapsed:.2f} s"
            ),
            "traceback": "",
        }
    raise ValueError(f"unknown fault kind {kind!r}")


def _execute_job(exp_id: str, fault: dict | None = None) -> dict:
    """Worker entry: build one experiment, serialized for the pipe.

    Returns a plain dict (picklable regardless of what the builder
    touched); builder exceptions are caught here so they come back as
    data, not as a poisoned future.  ``fault`` is an injected-fault
    directive decided by the parent (see :mod:`repro.faults.inject`).
    """
    from repro.suite.archive import experiment_to_dict
    from repro.suite.experiments import EXPERIMENTS

    start = time.perf_counter()
    if fault is not None:
        payload = _apply_worker_fault(exp_id, fault, start)
        if payload is not None:
            return payload
    try:
        experiment = EXPERIMENTS[exp_id]()
        return {
            "ok": True,
            "exp_id": exp_id,
            "experiment": experiment_to_dict(experiment),
            "elapsed_s": time.perf_counter() - start,
            "pid": os.getpid(),
        }
    except Exception as exc:
        return {
            "ok": False,
            "exp_id": exp_id,
            "kind": "error",
            "message": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }


def _from_payload(payload: dict) -> JobResult | JobFailure:
    from repro.suite.archive import experiment_from_dict

    if payload["ok"]:
        return JobResult(
            exp_id=payload["exp_id"],
            experiment=experiment_from_dict(payload["experiment"]),
            elapsed_s=payload["elapsed_s"],
            source=EXECUTED,
            worker_pid=payload["pid"],
        )
    return JobFailure(
        exp_id=payload["exp_id"],
        kind=payload.get("kind", "error"),
        message=payload["message"],
        traceback=payload.get("traceback", ""),
    )


def _pool_context():
    """Fork where available: workers inherit the parent's module state."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


#: Parent-only memo of the packed suite columns: ``(key, payload)``.
#: The stack depends only on the trace registry, so one pack serves
#: every pool this process creates.
_PACKED_SUITE: tuple[str, bytes] | None = None


def _publish_suite_columns(cache: ColumnCache) -> str | None:
    """Pack the registered-trace suite once and publish it for workers.

    Runs in the parent, before any pool exists — the registry write in
    :func:`repro.machine.suitebatch.register_suite` stays off the worker
    call graph (the purity contract DET005 enforces).  Returns the
    content key workers attach under, or None when publishing failed
    (workers then derive their own columns; slower, never wrong).
    """
    global _PACKED_SUITE
    from repro.analysis.traces import build_suite_columns
    from repro.machine import suitebatch

    if _PACKED_SUITE is None:
        suite = build_suite_columns()
        payload = suitebatch.pack_suite(suite)
        key = hashlib.sha256(payload).hexdigest()
        # Register in the parent too: forked workers inherit the suite
        # directly and skip the attach in their initializer.
        suitebatch.register_suite(suite, key=key)
        _PACKED_SUITE = (key, payload)
    key, payload = _PACKED_SUITE
    try:
        published = cache.publish(payload)
    except OSError:
        return None
    return published


def _attach_suite_columns(cache_root: str, key: str) -> None:
    """Pool-worker initializer: adopt the parent's published columns.

    Forked workers arrive with the parent's suite already registered
    and return immediately; spawned workers attach to the shared
    segment, unpack, and register.  A failed attach is silent — the
    worker falls back to deriving columns itself.  This runs once per
    worker process, outside :func:`_execute_job`'s call graph, so the
    registry write does not violate worker purity (DET005).
    """
    from repro.machine import suitebatch

    if suitebatch.registered_suite_key() == key:
        return
    payload = ColumnCache(cache_root).attach(key)
    if payload is None:
        return
    try:
        suite = suitebatch.unpack_suite(payload)
    except ValueError:
        return
    suitebatch.register_suite(suite, key=key)


def _finish_span(span, outcome: JobResult | JobFailure, queue_s: float | None = None):
    """Annotate an engine:job span with how the job went (span may be
    None when no profile is active)."""
    if span is None:
        return
    if isinstance(outcome, JobResult):
        span.attrs["status"] = "ok"
        span.attrs["execute_s"] = outcome.elapsed_s
    else:
        span.attrs["status"] = outcome.kind
    if queue_s is not None:
        span.attrs["queue_s"] = queue_s


def _poll_fault(injector, exp_id: str, in_worker: bool) -> dict | None:
    """The parent-side injection decision for one job submission."""
    if injector is None:
        return None
    from repro.faults.inject import fault_point

    action = fault_point("executor_job", injector, exp_id)
    return None if action is None else action.directive(in_worker)


def execute_jobs(
    exp_ids: Iterable[str],
    jobs: int = 1,
    timeout_s: float | None = None,
    cache_status: dict[str, str] | None = None,
    injector=None,
    column_cache: ColumnCache | None = None,
) -> list[JobResult | JobFailure]:
    """Run builders, ``jobs`` at a time; results in request order.

    ``jobs=1`` runs inline in this process (no pool, no pickling) —
    the serial reference path the parallel one must byte-match.
    ``timeout_s`` is per job, measured while the engine waits on it.
    ``cache_status`` (exp_id -> plan status, e.g. ``miss``/``stale``)
    only annotates the perfmon spans; execution ignores it.
    ``injector`` (a :class:`~repro.faults.inject.FaultInjector`)
    threads planned faults into submissions; decisions happen here in
    the parent, in request order, so runs replay identically.
    ``column_cache`` (a :class:`~repro.engine.store.ColumnCache`)
    shares the suite's stacked columns with pool workers: the parent
    publishes once, each worker's initializer attaches instead of
    re-deriving; released when the pool winds down.  Ignored when
    ``jobs=1`` (no pool to share with).

    When a :mod:`repro.perfmon` profile is active, every job gets an
    ``engine:job:<exp_id>`` host span with cache/status/queue/execute
    attributes, and each :class:`JobResult` carries ``host_elapsed_s``
    (submit-to-result wall time as seen by this process).
    """
    ids = list(exp_ids)
    if jobs < 1:
        raise ValueError(f"need at least one job slot, got {jobs}")
    if not ids:
        return []
    status_of = cache_status or {}
    if jobs == 1:
        results: list[JobResult | JobFailure] = []
        for exp_id in ids:
            start = time.perf_counter()
            fault = _poll_fault(injector, exp_id, in_worker=False)
            with perfmon_span(
                f"engine:job:{exp_id}",
                exp_id=exp_id,
                source=EXECUTED,
                cache=status_of.get(exp_id, "bypass"),
            ) as job_span:
                outcome = _from_payload(_execute_job(exp_id, fault))
            _finish_span(job_span, outcome, queue_s=0.0)
            if isinstance(outcome, JobResult):
                outcome = dataclasses.replace(
                    outcome, host_elapsed_s=time.perf_counter() - start
                )
            results.append(outcome)
        return results

    results = []
    shared_key = None
    pool_kwargs = {}
    if column_cache is not None:
        shared_key = _publish_suite_columns(column_cache)
        if shared_key is not None:
            pool_kwargs = {
                "initializer": _attach_suite_columns,
                "initargs": (str(column_cache.root), shared_key),
            }
    pool = ProcessPoolExecutor(
        max_workers=min(jobs, len(ids)), mp_context=_pool_context(), **pool_kwargs
    )
    try:
        submitted = time.perf_counter()
        futures = [
            (
                exp_id,
                pool.submit(
                    _execute_job,
                    exp_id,
                    _poll_fault(injector, exp_id, in_worker=True),
                ),
            )
            for exp_id in ids
        ]
        for exp_id, future in futures:
            with perfmon_span(
                f"engine:job:{exp_id}",
                exp_id=exp_id,
                source=EXECUTED,
                cache=status_of.get(exp_id, "bypass"),
            ) as job_span:
                try:
                    outcome = _from_payload(future.result(timeout=timeout_s))
                except FutureTimeoutError:
                    future.cancel()
                    elapsed = time.perf_counter() - submitted
                    outcome = JobFailure(
                        exp_id=exp_id,
                        kind="timeout",
                        message=(
                            f"job {exp_id} exceeded the {timeout_s:g} s limit "
                            f"after {elapsed:.2f} s"
                        ),
                    )
                except Exception as exc:  # worker died: BrokenProcessPool etc.
                    outcome = JobFailure(
                        exp_id=exp_id,
                        kind="crash",
                        message=f"worker died: {type(exc).__name__}: {exc}",
                    )
            host_elapsed = time.perf_counter() - submitted
            if isinstance(outcome, JobResult):
                queue_s = max(0.0, host_elapsed - outcome.elapsed_s)
                _finish_span(job_span, outcome, queue_s=queue_s)
                outcome = dataclasses.replace(outcome, host_elapsed_s=host_elapsed)
            else:
                _finish_span(job_span, outcome)
            results.append(outcome)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
        if shared_key is not None:
            column_cache.release(shared_key)
    return results


@dataclass
class EngineReport:
    """Everything one engine invocation did, in deterministic order."""

    plan: ExecutionPlan
    results: list[JobResult | JobFailure] = field(default_factory=list)
    jobs: int = 1
    wall_s: float = 0.0
    #: executions per exp_id (only ids that ran; 1 = first try sufficed).
    attempts: dict[str, int] = field(default_factory=dict)
    retry_rounds: int = 0
    serial_fallback: bool = False

    @property
    def successes(self) -> list[JobResult]:
        return [r for r in self.results if isinstance(r, JobResult)]

    @property
    def failures(self) -> list[JobFailure]:
        return [r for r in self.results if isinstance(r, JobFailure)]

    @property
    def cache_hits(self) -> list[JobResult]:
        return [r for r in self.successes if r.source == CACHE]

    @property
    def executed(self) -> list[JobResult]:
        return [r for r in self.successes if r.source == EXECUTED]

    @property
    def experiments(self) -> list[Experiment]:
        return [r.experiment for r in self.successes]

    @property
    def retried(self) -> list[str]:
        return [exp_id for exp_id, n in self.attempts.items() if n > 1]

    def cache_counts(self) -> dict[str, int]:
        return {
            "hits": len(self.cache_hits),
            "executed": len(self.executed),
            "failed": len(self.failures),
            "total": len(self.results),
        }

    def summary(self) -> str:
        c = self.cache_counts()
        plan = self.plan.counts()
        retries = (
            f", {len(self.retried)} retried"
            f"{' (serial fallback)' if self.serial_fallback else ''}"
            if self.retried
            else ""
        )
        return (
            f"engine: {c['total']} experiments — {c['hits']} cache hits, "
            f"{c['executed']} executed ({plan['stale']} stale, "
            f"{plan['miss']} new), {c['failed']} failed{retries} "
            f"[jobs={self.jobs}, {self.wall_s:.2f}s]"
        )


def _verify_results(report: EngineReport) -> None:
    """Re-derive every success serially; byte-compare against it."""
    mismatched = []
    for result in report.successes:
        reference = _from_payload(_execute_job(result.exp_id))
        if isinstance(reference, JobFailure):
            mismatched.append(f"{result.exp_id} (re-run failed: {reference.message})")
        elif canonical_bytes(reference.experiment) != canonical_bytes(result.experiment):
            mismatched.append(f"{result.exp_id} ({result.source} path)")
    if mismatched:
        raise DeterminismError(
            "results are not byte-identical to a serial re-run: "
            + ", ".join(mismatched)
        )


def run_engine(
    exp_ids: Iterable[str] | None = None,
    jobs: int = 1,
    use_cache: bool = True,
    store: ResultStore | None = None,
    timeout_s: float | None = None,
    verify: bool = False,
    retry=None,
    injector=None,
) -> EngineReport:
    """Plan, execute what's stale, persist, splice cache hits back in.

    ``retry`` (a :class:`~repro.faults.retry.RetryPolicy`) re-runs
    transient failures in backoff-spaced rounds until they succeed or
    the attempt budget runs out; repeated crash rounds degrade the
    pool to serial execution.  ``injector`` threads a seeded fault
    plan through submissions and store writes; with neither set the
    behavior is exactly the pre-resilience engine.
    """
    store = store if store is not None else ResultStore()
    if injector is not None:
        store.fault_injector = injector
    start = time.perf_counter()
    plan = plan_suite(store, exp_ids)
    digests: dict[str, ExperimentDigest] = {
        e.exp_id: e.digest for e in plan.entries
    }

    by_id: dict[str, JobResult | JobFailure] = {}
    run_ids = []
    cache_status = {e.exp_id: e.status for e in plan.entries}
    for entry in plan.entries:
        if use_cache and entry.status == HIT:
            read_start = time.perf_counter()
            with perfmon_span(
                f"engine:job:{entry.exp_id}",
                exp_id=entry.exp_id,
                source=CACHE,
                cache="hit",
                status="ok",
            ):
                cached = store.get(entry.digest)
        else:
            cached = None
        if cached is not None:
            by_id[entry.exp_id] = JobResult(
                exp_id=cached.exp_id,
                experiment=cached.experiment,
                elapsed_s=cached.elapsed_s,
                source=CACHE,
                host_elapsed_s=time.perf_counter() - read_start,
            )
        else:
            run_ids.append(entry.exp_id)

    attempts: dict[str, int] = {exp_id: 0 for exp_id in run_ids}
    # Pool rounds share the suite's stacked columns through the store
    # root; serial rounds (and the serial fallback) never touch it.
    column_cache = ColumnCache(store.root) if jobs > 1 else None

    def run_round(ids: list[str], round_jobs: int) -> list[JobResult | JobFailure]:
        outcomes = execute_jobs(
            ids, jobs=round_jobs, timeout_s=timeout_s,
            cache_status=cache_status, injector=injector,
            column_cache=column_cache,
        )
        for outcome in outcomes:
            attempts[outcome.exp_id] += 1
            by_id[outcome.exp_id] = outcome
            if use_cache and isinstance(outcome, JobResult):
                store.put(
                    digests[outcome.exp_id], outcome.experiment, outcome.elapsed_s
                )
        return outcomes

    def round_crashed(outcomes: list[JobResult | JobFailure]) -> bool:
        return any(isinstance(o, JobFailure) and o.kind == "crash" for o in outcomes)

    outcomes = run_round(run_ids, jobs)
    retry_rounds = 0
    serial_fallback = False
    if retry is not None and run_ids:
        current_jobs = jobs
        crash_streak = 1 if round_crashed(outcomes) else 0
        while True:
            pending = [
                exp_id
                for exp_id in run_ids
                if isinstance(by_id[exp_id], JobFailure)
                and retry.is_transient(by_id[exp_id].kind)
                and attempts[exp_id] < retry.max_attempts
            ]
            if not pending:
                break
            if current_jobs > 1 and crash_streak >= retry.crash_rounds_before_serial:
                current_jobs = 1
                serial_fallback = True
                perfmon_record("fault", {"serial_fallbacks": 1.0})
            delay = max(retry.delay_s(exp_id, attempts[exp_id]) for exp_id in pending)
            if delay > 0:
                retry.sleep(delay)
            perfmon_record(
                "fault", {"retries": float(len(pending)), "backoff_s": delay}
            )
            retry_rounds += 1
            outcomes = run_round(pending, current_jobs)
            crash_streak = crash_streak + 1 if round_crashed(outcomes) else 0

    report = EngineReport(
        plan=plan,
        results=[by_id[e.exp_id] for e in plan.entries],
        jobs=jobs,
        wall_s=time.perf_counter() - start,
        attempts=dict(attempts),
        retry_rounds=retry_rounds,
        serial_fallback=serial_fallback,
    )
    if verify:
        _verify_results(report)
    return report
