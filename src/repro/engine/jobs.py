"""Bridge from engine runs to the repo's scheduler models.

The engine measures real job metadata — which experiments ran and how
long each took.  This module feeds that metadata to the two existing
scheduler models so they can be exercised against *measured* work, not
synthetic durations:

* :func:`suite_jobspec` packs the run into a
  :class:`repro.scheduler.jobs.JobSpec` (the PRODLOAD job shape:
  components that start together, done when the last finishes);
* :func:`replay_through_nqs` submits one
  :class:`~repro.superux.nqs.BatchJob` per experiment to a
  :class:`~repro.superux.nqs.QueueComplex` and runs the Section 2.6.3
  NQS model to completion, returning makespan and accounting.

Durations come from :class:`~repro.engine.executor.JobResult.elapsed_s`
— for cache hits, that is the wall time of the *original* execution,
preserved in the store, so a fully-warm replay still reflects the real
cost profile of the suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.executor import EngineReport
from repro.scheduler.jobs import Component, JobSpec
from repro.superux.nqs import AccountingRecord, BatchJob, NQSQueue, QueueComplex

__all__ = [
    "MIN_DURATION_S",
    "NQSReplay",
    "suite_jobspec",
    "suite_batch_jobs",
    "replay_through_nqs",
]

#: Floor for component durations: the scheduler models reject zero, and
#: a cache-hit recorded before timing existed may carry elapsed 0.0.
MIN_DURATION_S = 1e-6


def _duration(elapsed_s: float, time_scale: float) -> float:
    return max(elapsed_s * time_scale, MIN_DURATION_S)


def suite_jobspec(
    report: EngineReport,
    name: str = "suite",
    cpus_per_experiment: int = 1,
    time_scale: float = 1.0,
) -> JobSpec:
    """The run as one PRODLOAD-shaped job: one component per experiment."""
    if not report.successes:
        raise ValueError("the engine report holds no successful results")
    return JobSpec(
        name=name,
        components=tuple(
            Component(
                name=f"{name}/{r.exp_id}",
                cpus=cpus_per_experiment,
                duration_s=_duration(r.elapsed_s, time_scale),
            )
            for r in report.successes
        ),
    )


def suite_batch_jobs(
    report: EngineReport,
    cpus_per_experiment: int = 1,
    memory_gb: float = 0.5,
    time_scale: float = 1.0,
) -> list[BatchJob]:
    """One NQS batch request per successful experiment."""
    return [
        BatchJob(
            name=r.exp_id,
            cpus=cpus_per_experiment,
            memory_gb=memory_gb,
            duration_s=_duration(r.elapsed_s, time_scale),
        )
        for r in report.successes
    ]


@dataclass(frozen=True)
class NQSReplay:
    """Outcome of replaying an engine run through the NQS model."""

    makespan_s: float
    jobs: tuple[BatchJob, ...]
    accounting: tuple[AccountingRecord, ...]

    @property
    def cpu_seconds(self) -> float:
        return sum(rec.cpu_seconds for rec in self.accounting)


def replay_through_nqs(
    report: EngineReport,
    node_cpus: int = 32,
    run_limit: int = 8,
    cpus_per_experiment: int = 1,
    time_scale: float = 1.0,
) -> NQSReplay:
    """Run the measured suite workload through the NQS batch model.

    Each experiment becomes a batch job whose duration is its measured
    wall time; the queue complex schedules them priority-then-FIFO under
    its run limit, exactly as Section 2.6.3 describes.
    """
    jobs = suite_batch_jobs(
        report, cpus_per_experiment=cpus_per_experiment, time_scale=time_scale
    )
    if not jobs:
        raise ValueError("the engine report holds no successful results")
    queue = NQSQueue(name="suite", run_limit=run_limit,
                     max_cpus_per_job=node_cpus)
    complex_ = QueueComplex(queues=[queue], node_cpus=node_cpus)
    for job in jobs:
        complex_.submit(job, "suite")
    makespan = complex_.run()
    return NQSReplay(
        makespan_s=makespan,
        jobs=tuple(jobs),
        accounting=tuple(complex_.accounting),
    )
