"""Incremental planner: diff current digests against the result store.

``plan_suite`` classifies every requested experiment:

``hit``
    the store holds a result under the experiment's *current* digest —
    nothing to run;
``stale``
    the store holds results for this experiment, but only under old
    digests (a source file it depends on changed) — re-run;
``miss``
    the store has never seen this experiment — run.

The planner is pure bookkeeping — it never executes an experiment —
so ``python -m repro.engine plan`` is safe to run anywhere, including
a dirty tree mid-edit.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.engine.deps import ExperimentDigest, suite_digests
from repro.engine.store import ResultStore

__all__ = ["HIT", "MISS", "STALE", "PlanEntry", "ExecutionPlan", "plan_suite"]

HIT = "hit"
MISS = "miss"
STALE = "stale"


@dataclass(frozen=True)
class PlanEntry:
    """One experiment's scheduling decision."""

    exp_id: str
    digest: ExperimentDigest
    status: str  # HIT, MISS, or STALE

    @property
    def needs_run(self) -> bool:
        return self.status != HIT


@dataclass(frozen=True)
class ExecutionPlan:
    """What an engine run would do, in deterministic (paper) order."""

    entries: tuple[PlanEntry, ...]

    @property
    def hits(self) -> tuple[PlanEntry, ...]:
        return tuple(e for e in self.entries if e.status == HIT)

    @property
    def misses(self) -> tuple[PlanEntry, ...]:
        return tuple(e for e in self.entries if e.status == MISS)

    @property
    def stale(self) -> tuple[PlanEntry, ...]:
        return tuple(e for e in self.entries if e.status == STALE)

    @property
    def to_run(self) -> tuple[PlanEntry, ...]:
        return tuple(e for e in self.entries if e.needs_run)

    def counts(self) -> dict[str, int]:
        return {
            "hit": len(self.hits),
            "miss": len(self.misses),
            "stale": len(self.stale),
            "total": len(self.entries),
        }

    def summary(self) -> str:
        c = self.counts()
        return (
            f"plan: {c['total']} experiments — {c['hit']} cached, "
            f"{c['miss']} never run, {c['stale']} stale "
            f"({len(self.to_run)} to execute)"
        )


def plan_suite(
    store: ResultStore,
    exp_ids: Iterable[str] | None = None,
    sources: Mapping[str, bytes] | None = None,
) -> ExecutionPlan:
    """Classify the requested experiments against the store.

    ``sources`` flows through to the digest computation (see
    :func:`repro.engine.deps.experiment_digest`) so callers can ask
    what a hypothetical edit would invalidate.
    """
    digests = suite_digests(exp_ids, sources)
    cached_ids = {entry.exp_id for entry in store.entries()}
    entries = []
    for exp_id, digest in digests.items():
        if store.contains(digest):
            status = HIT
        elif exp_id in cached_ids:
            status = STALE
        else:
            status = MISS
        entries.append(PlanEntry(exp_id=exp_id, digest=digest, status=status))
    return ExecutionPlan(entries=tuple(entries))
