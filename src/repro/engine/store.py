"""Content-addressed result store for suite experiments.

Layout, under the store root (default ``.repro-cache/``)::

    results/<exp_id>.<sha256-key>.json    one entry per (experiment, digest)
    tmp/                                  staging for atomic writes

Entries are written to ``tmp/`` and moved into place with
:func:`os.replace`, so a reader never sees a torn file and two writers
racing on the same key both leave a complete entry.  Corrupt or
unreadable entries behave as misses — the engine recomputes and
overwrites them.

Payloads serialize through :mod:`repro.suite.archive`, the same
schema the run-archiving CLI uses; :func:`canonical_bytes` is the
byte-identity yardstick the determinism contract is asserted against
(serial, parallel, and cache-hit paths must all produce it verbatim).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.engine.deps import ExperimentDigest
from repro.suite.archive import experiment_from_dict, experiment_to_dict
from repro.suite.results import Experiment

__all__ = [
    "DEFAULT_STORE_ROOT",
    "STORE_SCHEMA",
    "CachedResult",
    "StoreEntry",
    "StoreStats",
    "ResultStore",
    "canonical_bytes",
]

DEFAULT_STORE_ROOT = ".repro-cache"
STORE_SCHEMA = 1


def canonical_bytes(experiment: Experiment) -> bytes:
    """The canonical serialized form of a result, for byte-identity checks."""
    payload = experiment_to_dict(experiment)
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


@dataclass(frozen=True)
class CachedResult:
    """One deserialized store hit."""

    exp_id: str
    key: str
    experiment: Experiment
    elapsed_s: float  # wall seconds the original execution took


@dataclass(frozen=True)
class StoreEntry:
    """One on-disk entry, without deserializing its payload."""

    exp_id: str
    key: str
    path: Path
    size_bytes: int


@dataclass(frozen=True)
class StoreStats:
    """Aggregate view of the store, optionally against current digests."""

    entries: int
    total_bytes: int
    by_experiment: dict[str, int]
    live: int | None = None  # entries matching a current digest
    stale: int | None = None  # entries for known experiments, old digests

    def summary(self) -> str:
        parts = [f"{self.entries} entries, {self.total_bytes} bytes"]
        if self.live is not None:
            parts.append(f"{self.live} live, {self.stale} stale")
        return "; ".join(parts)


class ResultStore:
    """Digest-keyed experiment results with atomic, crash-safe writes."""

    def __init__(self, root: str | Path = DEFAULT_STORE_ROOT) -> None:
        self.root = Path(root)
        self.results_dir = self.root / "results"
        self.tmp_dir = self.root / "tmp"

    # ------------------------------------------------------------ paths
    def entry_path(self, digest: ExperimentDigest) -> Path:
        return self.results_dir / f"{digest.exp_id}.{digest.key}.json"

    def _ensure_layout(self) -> None:
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self.tmp_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------ access
    def contains(self, digest: ExperimentDigest) -> bool:
        return self.entry_path(digest).is_file()

    def get(self, digest: ExperimentDigest) -> CachedResult | None:
        """The cached result for a digest, or None (missing or corrupt)."""
        path = self.entry_path(digest)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload.get("schema") != STORE_SCHEMA:
                return None
            return CachedResult(
                exp_id=payload["exp_id"],
                key=payload["key"],
                experiment=experiment_from_dict(payload["experiment"]),
                elapsed_s=float(payload.get("elapsed_s", 0.0)),
            )
        except (OSError, ValueError, KeyError):
            return None

    def put(
        self, digest: ExperimentDigest, experiment: Experiment, elapsed_s: float
    ) -> Path:
        """Persist one result atomically; returns the entry path."""
        if experiment.exp_id != digest.exp_id:
            raise ValueError(
                f"digest is for {digest.exp_id!r} but the result is "
                f"{experiment.exp_id!r}"
            )
        self._ensure_layout()
        payload = {
            "schema": STORE_SCHEMA,
            "exp_id": digest.exp_id,
            "key": digest.key,
            "modules": list(digest.modules),
            "elapsed_s": elapsed_s,
            "experiment": experiment_to_dict(experiment),
        }
        final = self.entry_path(digest)
        staging = self.tmp_dir / f"{digest.key}.{os.getpid()}.tmp"
        staging.write_text(
            json.dumps(payload, indent=1, sort_keys=True), encoding="utf-8"
        )
        os.replace(staging, final)
        return final

    # ------------------------------------------------------------ survey
    def entries(self) -> list[StoreEntry]:
        """Every entry on disk, cheapest-first metadata only."""
        if not self.results_dir.is_dir():
            return []
        found = []
        for path in sorted(self.results_dir.glob("*.json")):
            stem = path.name[: -len(".json")]
            exp_id, _, key = stem.rpartition(".")
            if not exp_id or len(key) != 64:
                continue
            found.append(
                StoreEntry(exp_id=exp_id, key=key, path=path,
                           size_bytes=path.stat().st_size)
            )
        return found

    def stats(self, current: dict[str, ExperimentDigest] | None = None) -> StoreStats:
        """Store size, and liveness against the given current digests."""
        entries = self.entries()
        by_exp: dict[str, int] = {}
        for entry in entries:
            by_exp[entry.exp_id] = by_exp.get(entry.exp_id, 0) + 1
        live = stale = None
        if current is not None:
            live_keys = {d.key for d in current.values()}
            live = sum(e.key in live_keys for e in entries)
            stale = len(entries) - live
        return StoreStats(
            entries=len(entries),
            total_bytes=sum(e.size_bytes for e in entries),
            by_experiment=by_exp,
            live=live,
            stale=stale,
        )

    # ------------------------------------------------------------ hygiene
    def gc(
        self, current: dict[str, ExperimentDigest], dry_run: bool = False
    ) -> list[StoreEntry]:
        """Drop entries no current digest addresses; returns what went."""
        live_keys = {d.key for d in current.values()}
        removed = []
        for entry in self.entries():
            if entry.key in live_keys:
                continue
            if not dry_run:
                entry.path.unlink(missing_ok=True)
            removed.append(entry)
        if not dry_run and self.tmp_dir.is_dir():
            for leftover in self.tmp_dir.glob("*.tmp"):
                leftover.unlink(missing_ok=True)
        return removed

    def clear(self) -> int:
        """Remove every entry; returns how many were dropped."""
        entries = self.entries()
        for entry in entries:
            entry.path.unlink(missing_ok=True)
        if self.tmp_dir.is_dir():
            for leftover in self.tmp_dir.glob("*.tmp"):
                leftover.unlink(missing_ok=True)
        return len(entries)
