"""Content-addressed result store for suite experiments.

Layout, under the store root (default ``.repro-cache/``)::

    results/<exp_id>.<sha256-key>.json    one entry per (experiment, digest)
    quarantine/                           corrupt entries, moved aside
    tmp/                                  staging for atomic writes

Entries are written to ``tmp/`` and moved into place with
:func:`os.replace`, so a reader never sees a torn file and two writers
racing on the same key both leave a complete entry.

Every entry carries a sha256 checksum of its canonical experiment
payload (schema 2).  An entry that fails integrity checking — torn
JSON, missing fields, checksum mismatch — is **quarantined**: moved
into ``quarantine/`` (keeping the evidence) and reported as a miss, so
the engine recomputes while :meth:`ResultStore.stats` still shows the
damage.  Entries from older schemas are plain misses, not corruption.

Payloads serialize through :mod:`repro.suite.archive`, the same
schema the run-archiving CLI uses; :func:`canonical_bytes` is the
byte-identity yardstick the determinism contract is asserted against
(serial, parallel, and cache-hit paths must all produce it verbatim).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.engine.deps import ExperimentDigest
from repro.perfmon.collector import record as perfmon_record
from repro.perfmon.counters import declare_counters
from repro.suite.archive import experiment_from_dict, experiment_to_dict
from repro.suite.results import Experiment

__all__ = [
    "DEFAULT_STORE_ROOT",
    "STORE_SCHEMA",
    "CHUNK_SCHEMA",
    "CachedResult",
    "StoreEntry",
    "StoreStats",
    "ResultStore",
    "ChunkStore",
    "canonical_bytes",
    "payload_checksum",
]

DEFAULT_STORE_ROOT = ".repro-cache"
STORE_SCHEMA = 2
CHUNK_SCHEMA = 1

declare_counters("fault", ("quarantined",))


def canonical_bytes(experiment: Experiment) -> bytes:
    """The canonical serialized form of a result, for byte-identity checks."""
    payload = experiment_to_dict(experiment)
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def payload_checksum(experiment_payload: dict) -> str:
    """sha256 of an experiment payload's canonical JSON form.

    Computed over the serialized dict directly (not a model round-trip)
    so verification is a pure disk-integrity check.
    """
    canonical = json.dumps(
        experiment_payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(canonical).hexdigest()


@dataclass(frozen=True)
class CachedResult:
    """One deserialized store hit."""

    exp_id: str
    key: str
    experiment: Experiment
    elapsed_s: float  # wall seconds the original execution took


@dataclass(frozen=True)
class StoreEntry:
    """One on-disk entry, without deserializing its payload."""

    exp_id: str
    key: str
    path: Path
    size_bytes: int
    corrupt: bool = False


@dataclass(frozen=True)
class StoreStats:
    """Aggregate view of the store, optionally against current digests."""

    entries: int
    total_bytes: int
    by_experiment: dict[str, int]
    live: int | None = None  # entries matching a current digest
    stale: int | None = None  # entries for known experiments, old digests
    corrupt: int = 0  # entries failing integrity checks, still in results/
    quarantined: int = 0  # entries already moved to quarantine/

    def summary(self) -> str:
        parts = [f"{self.entries} entries, {self.total_bytes} bytes"]
        if self.live is not None:
            parts.append(f"{self.live} live, {self.stale} stale")
        if self.corrupt:
            parts.append(f"{self.corrupt} corrupt")
        if self.quarantined:
            parts.append(f"{self.quarantined} quarantined")
        return "; ".join(parts)


class ResultStore:
    """Digest-keyed experiment results with atomic, crash-safe writes.

    ``fault_injector`` (normally None) is the hook the chaos harness
    uses to corrupt freshly written entries; see
    :mod:`repro.faults.inject`.  ``quarantine_log`` records every
    quarantine this instance performed as ``(file name, reason)``.
    """

    def __init__(self, root: str | Path = DEFAULT_STORE_ROOT) -> None:
        self.root = Path(root)
        self.results_dir = self.root / "results"
        self.quarantine_dir = self.root / "quarantine"
        self.tmp_dir = self.root / "tmp"
        self.fault_injector = None
        self.quarantine_log: list[tuple[str, str]] = []

    # ------------------------------------------------------------ paths
    def entry_path(self, digest: ExperimentDigest) -> Path:
        return self.results_dir / f"{digest.exp_id}.{digest.key}.json"

    def _ensure_layout(self) -> None:
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self.tmp_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------ integrity
    @staticmethod
    def _payload_problem(payload: object) -> str | None:
        """Why a parsed schema-2 payload fails integrity, or None."""
        if not isinstance(payload, dict):
            return "payload is not an object"
        for key in ("exp_id", "key", "checksum", "experiment"):
            if key not in payload:
                return f"missing field {key!r}"
        if not isinstance(payload["experiment"], dict):
            return "experiment payload is not an object"
        if payload_checksum(payload["experiment"]) != payload["checksum"]:
            return "checksum mismatch"
        return None

    def _entry_problem(self, path: Path) -> str | None:
        """Why an on-disk entry is corrupt, or None (valid or old schema)."""
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None  # vanished under us: a miss, not corruption
        try:
            payload = json.loads(text)
        except ValueError:
            return "unparseable JSON"
        if isinstance(payload, dict) and payload.get("schema") != STORE_SCHEMA:
            return None  # older schema: a plain miss, never corrupt
        return self._payload_problem(payload)

    def _quarantine(self, path: Path, reason: str) -> Path | None:
        """Move a corrupt entry aside, keeping the evidence."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_dir / path.name
        try:
            os.replace(path, target)
        except OSError:
            return None  # already gone (racing reader quarantined it)
        self.quarantine_log.append((path.name, reason))
        perfmon_record("fault", {"quarantined": 1.0})
        return target

    # ------------------------------------------------------------ access
    def contains(self, digest: ExperimentDigest) -> bool:
        return self.entry_path(digest).is_file()

    def get(self, digest: ExperimentDigest) -> CachedResult | None:
        """The cached result for a digest, or None (missing or corrupt).

        A corrupt entry is quarantined on the way out — it reads as a
        miss (the engine recomputes), but the evidence moves to
        ``quarantine/`` instead of being silently overwritten.
        """
        path = self.entry_path(digest)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            self._quarantine(path, "unparseable JSON")
            return None
        if isinstance(payload, dict) and payload.get("schema") != STORE_SCHEMA:
            return None  # older schema: recompute overwrites it in place
        problem = self._payload_problem(payload)
        if problem is not None:
            self._quarantine(path, problem)
            return None
        try:
            return CachedResult(
                exp_id=payload["exp_id"],
                key=payload["key"],
                experiment=experiment_from_dict(payload["experiment"]),
                elapsed_s=float(payload.get("elapsed_s", 0.0)),
            )
        except (ValueError, KeyError, TypeError):
            self._quarantine(path, "payload does not deserialize")
            return None

    def put(
        self, digest: ExperimentDigest, experiment: Experiment, elapsed_s: float
    ) -> Path:
        """Persist one result atomically; returns the entry path."""
        if experiment.exp_id != digest.exp_id:
            raise ValueError(
                f"digest is for {digest.exp_id!r} but the result is "
                f"{experiment.exp_id!r}"
            )
        self._ensure_layout()
        experiment_payload = experiment_to_dict(experiment)
        payload = {
            "schema": STORE_SCHEMA,
            "exp_id": digest.exp_id,
            "key": digest.key,
            "modules": list(digest.modules),
            "elapsed_s": elapsed_s,
            "checksum": payload_checksum(experiment_payload),
            "experiment": experiment_payload,
        }
        final = self.entry_path(digest)
        staging = self.tmp_dir / f"{digest.key}.{os.getpid()}.tmp"
        staging.write_text(
            json.dumps(payload, indent=1, sort_keys=True), encoding="utf-8"
        )
        os.replace(staging, final)
        if self.fault_injector is not None:
            from repro.faults.inject import corrupt_file, fault_point

            action = fault_point("store_entry", self.fault_injector, digest.exp_id)
            if action is not None:
                corrupt_file(final)
        return final

    # ------------------------------------------------------------ survey
    def entries(self) -> list[StoreEntry]:
        """Every entry on disk, cheapest-first metadata only."""
        return self._scan(self.results_dir)

    def quarantined_entries(self) -> list[StoreEntry]:
        """What has been moved aside; all flagged corrupt."""
        return [
            dataclasses.replace(entry, corrupt=True)
            for entry in self._scan(self.quarantine_dir)
        ]

    def _scan(self, directory: Path) -> list[StoreEntry]:
        if not directory.is_dir():
            return []
        found = []
        for path in sorted(directory.glob("*.json")):
            stem = path.name[: -len(".json")]
            exp_id, _, key = stem.rpartition(".")
            if not exp_id or len(key) != 64:
                continue
            found.append(
                StoreEntry(exp_id=exp_id, key=key, path=path,
                           size_bytes=path.stat().st_size)
            )
        return found

    def stats(self, current: dict[str, ExperimentDigest] | None = None) -> StoreStats:
        """Store size, integrity, and liveness against current digests."""
        entries = self.entries()
        by_exp: dict[str, int] = {}
        corrupt = 0
        for entry in entries:
            by_exp[entry.exp_id] = by_exp.get(entry.exp_id, 0) + 1
            if self._entry_problem(entry.path) is not None:
                corrupt += 1
        live = stale = None
        if current is not None:
            live_keys = {d.key for d in current.values()}
            live = sum(e.key in live_keys for e in entries)
            stale = len(entries) - live
        return StoreStats(
            entries=len(entries),
            total_bytes=sum(e.size_bytes for e in entries),
            by_experiment=by_exp,
            live=live,
            stale=stale,
            corrupt=corrupt,
            quarantined=len(self.quarantined_entries()),
        )

    # ------------------------------------------------------------ hygiene
    def gc(
        self, current: dict[str, ExperimentDigest], dry_run: bool = False
    ) -> list[StoreEntry]:
        """Drop dead entries, quarantine corrupt ones; returns what went.

        Corrupt entries are quarantined even when their key is live —
        a live address holding damaged bytes is exactly what must not
        sit in the cache.  Returned entries carry ``corrupt=True`` when
        they went to quarantine rather than the bin.
        """
        live_keys = {d.key for d in current.values()}
        removed = []
        for entry in self.entries():
            problem = self._entry_problem(entry.path)
            if problem is not None:
                if not dry_run:
                    self._quarantine(entry.path, problem)
                removed.append(
                    StoreEntry(entry.exp_id, entry.key, entry.path,
                               entry.size_bytes, corrupt=True)
                )
                continue
            if entry.key in live_keys:
                continue
            if not dry_run:
                entry.path.unlink(missing_ok=True)
            removed.append(entry)
        if not dry_run and self.tmp_dir.is_dir():
            for leftover in self.tmp_dir.glob("*.tmp"):
                leftover.unlink(missing_ok=True)
        return removed

    def clear(self) -> int:
        """Remove every entry (quarantine included); returns results dropped."""
        entries = self.entries()
        for entry in entries:
            entry.path.unlink(missing_ok=True)
        for entry in self.quarantined_entries():
            entry.path.unlink(missing_ok=True)
        if self.tmp_dir.is_dir():
            for leftover in self.tmp_dir.glob("*.tmp"):
                leftover.unlink(missing_ok=True)
        return len(entries)


class ChunkStore:
    """Content-addressed JSON chunks, for callers keyed by a content hash.

    :class:`ResultStore` caches suite :class:`Experiment` payloads; this
    is the same store discipline — atomic ``tmp/`` + :func:`os.replace`
    writes, sha256 payload checksums verified on read, corrupt entries
    quarantined and reported as misses — for arbitrary JSON payloads
    whose key the caller derives itself (``repro.explore`` keys grid
    sweep chunks on source digests + grid fingerprint + trace ids).

    Layout, sharing the root with the result store::

        chunks/<namespace>.<sha256-key>.json
        quarantine/                            shared with ResultStore
        tmp/                                   shared with ResultStore
    """

    def __init__(self, root: str | Path = DEFAULT_STORE_ROOT) -> None:
        self.root = Path(root)
        self.chunks_dir = self.root / "chunks"
        self.quarantine_dir = self.root / "quarantine"
        self.tmp_dir = self.root / "tmp"
        self.quarantine_log: list[tuple[str, str]] = []

    # ------------------------------------------------------------ paths
    @staticmethod
    def _check_address(namespace: str, key: str) -> None:
        if not namespace or "." in namespace or "/" in namespace:
            raise ValueError(f"invalid chunk namespace {namespace!r}")
        if len(key) != 64 or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"chunk key must be 64 lowercase hex chars, got {key!r}")

    def entry_path(self, namespace: str, key: str) -> Path:
        self._check_address(namespace, key)
        return self.chunks_dir / f"{namespace}.{key}.json"

    # ------------------------------------------------------------ access
    def contains(self, namespace: str, key: str) -> bool:
        return self.entry_path(namespace, key).is_file()

    def _quarantine(self, path: Path, reason: str) -> None:
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(path, self.quarantine_dir / path.name)
        except OSError:
            return  # already gone (racing reader quarantined it)
        self.quarantine_log.append((path.name, reason))
        perfmon_record("fault", {"quarantined": 1.0})

    def get(self, namespace: str, key: str) -> dict | None:
        """The chunk payload for a key, or None (missing or corrupt)."""
        path = self.entry_path(namespace, key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            self._quarantine(path, "unparseable JSON")
            return None
        if isinstance(payload, dict) and payload.get("schema") != CHUNK_SCHEMA:
            return None  # older schema: recompute overwrites it in place
        problem = None
        if not isinstance(payload, dict):
            problem = "payload is not an object"
        elif any(field not in payload for field in ("key", "checksum", "chunk")):
            problem = "missing field"
        elif not isinstance(payload["chunk"], dict):
            problem = "chunk payload is not an object"
        elif payload_checksum(payload["chunk"]) != payload["checksum"]:
            problem = "checksum mismatch"
        if problem is not None:
            self._quarantine(path, problem)
            return None
        return payload["chunk"]

    def put(self, namespace: str, key: str, chunk: dict) -> Path:
        """Persist one chunk atomically; returns the entry path."""
        final = self.entry_path(namespace, key)
        self.chunks_dir.mkdir(parents=True, exist_ok=True)
        self.tmp_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CHUNK_SCHEMA,
            "namespace": namespace,
            "key": key,
            "checksum": payload_checksum(chunk),
            "chunk": chunk,
        }
        staging = self.tmp_dir / f"{namespace}.{key}.{os.getpid()}.tmp"
        staging.write_text(
            json.dumps(payload, indent=1, sort_keys=True), encoding="utf-8"
        )
        os.replace(staging, final)
        return final

    # ------------------------------------------------------------ survey
    def entries(self) -> list[StoreEntry]:
        """Every chunk on disk (``exp_id`` carries the namespace)."""
        if not self.chunks_dir.is_dir():
            return []
        found = []
        for path in sorted(self.chunks_dir.glob("*.json")):
            stem = path.name[: -len(".json")]
            namespace, _, key = stem.rpartition(".")
            if not namespace or len(key) != 64:
                continue
            found.append(
                StoreEntry(exp_id=namespace, key=key, path=path,
                           size_bytes=path.stat().st_size)
            )
        return found

    def clear(self) -> int:
        """Remove every chunk; returns how many were dropped."""
        entries = self.entries()
        for entry in entries:
            entry.path.unlink(missing_ok=True)
        return len(entries)
