"""Content-addressed result store for suite experiments.

Layout, under the store root (default ``.repro-cache/``)::

    results/<exp_id>.<sha256-key>.json    one entry per (experiment, digest)
    quarantine/                           corrupt entries, moved aside
    tmp/                                  staging for atomic writes

Entries are written to ``tmp/`` and moved into place with
:func:`os.replace`, so a reader never sees a torn file and two writers
racing on the same key both leave a complete entry.

Every entry carries a sha256 checksum of its canonical experiment
payload (schema 2).  An entry that fails integrity checking — torn
JSON, missing fields, checksum mismatch — is **quarantined**: moved
into ``quarantine/`` (keeping the evidence) and reported as a miss, so
the engine recomputes while :meth:`ResultStore.stats` still shows the
damage.  Entries from older schemas are plain misses, not corruption.

Payloads serialize through :mod:`repro.suite.archive`, the same
schema the run-archiving CLI uses; :func:`canonical_bytes` is the
byte-identity yardstick the determinism contract is asserted against
(serial, parallel, and cache-hit paths must all produce it verbatim).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.engine.deps import ExperimentDigest
from repro.perfmon.collector import record as perfmon_record
from repro.perfmon.counters import declare_counters
from repro.suite.archive import experiment_from_dict, experiment_to_dict
from repro.suite.results import Experiment

__all__ = [
    "DEFAULT_STORE_ROOT",
    "STORE_SCHEMA",
    "CHUNK_SCHEMA",
    "COLUMN_SCHEMA",
    "CachedResult",
    "StoreEntry",
    "StoreStats",
    "ResultStore",
    "ChunkStore",
    "ColumnCache",
    "ColumnSegment",
    "canonical_bytes",
    "payload_checksum",
]

DEFAULT_STORE_ROOT = ".repro-cache"
STORE_SCHEMA = 2
CHUNK_SCHEMA = 1
COLUMN_SCHEMA = 1

declare_counters("fault", ("quarantined",))
declare_counters("colcache", ("publishes", "attaches", "orphans_swept"))


def canonical_bytes(experiment: Experiment) -> bytes:
    """The canonical serialized form of a result, for byte-identity checks."""
    payload = experiment_to_dict(experiment)
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def payload_checksum(experiment_payload: dict) -> str:
    """sha256 of an experiment payload's canonical JSON form.

    Computed over the serialized dict directly (not a model round-trip)
    so verification is a pure disk-integrity check.
    """
    canonical = json.dumps(
        experiment_payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(canonical).hexdigest()


@dataclass(frozen=True)
class CachedResult:
    """One deserialized store hit."""

    exp_id: str
    key: str
    experiment: Experiment
    elapsed_s: float  # wall seconds the original execution took


@dataclass(frozen=True)
class StoreEntry:
    """One on-disk entry, without deserializing its payload."""

    exp_id: str
    key: str
    path: Path
    size_bytes: int
    corrupt: bool = False


@dataclass(frozen=True)
class StoreStats:
    """Aggregate view of the store, optionally against current digests."""

    entries: int
    total_bytes: int
    by_experiment: dict[str, int]
    live: int | None = None  # entries matching a current digest
    stale: int | None = None  # entries for known experiments, old digests
    corrupt: int = 0  # entries failing integrity checks, still in results/
    quarantined: int = 0  # entries already moved to quarantine/

    def summary(self) -> str:
        parts = [f"{self.entries} entries, {self.total_bytes} bytes"]
        if self.live is not None:
            parts.append(f"{self.live} live, {self.stale} stale")
        if self.corrupt:
            parts.append(f"{self.corrupt} corrupt")
        if self.quarantined:
            parts.append(f"{self.quarantined} quarantined")
        return "; ".join(parts)


class ResultStore:
    """Digest-keyed experiment results with atomic, crash-safe writes.

    ``fault_injector`` (normally None) is the hook the chaos harness
    uses to corrupt freshly written entries; see
    :mod:`repro.faults.inject`.  ``quarantine_log`` records every
    quarantine this instance performed as ``(file name, reason)``.
    """

    def __init__(self, root: str | Path = DEFAULT_STORE_ROOT) -> None:
        self.root = Path(root)
        self.results_dir = self.root / "results"
        self.quarantine_dir = self.root / "quarantine"
        self.tmp_dir = self.root / "tmp"
        self.fault_injector = None
        self.quarantine_log: list[tuple[str, str]] = []

    # ------------------------------------------------------------ paths
    def entry_path(self, digest: ExperimentDigest) -> Path:
        return self.results_dir / f"{digest.exp_id}.{digest.key}.json"

    def _ensure_layout(self) -> None:
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self.tmp_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------ integrity
    @staticmethod
    def _payload_problem(payload: object) -> str | None:
        """Why a parsed schema-2 payload fails integrity, or None."""
        if not isinstance(payload, dict):
            return "payload is not an object"
        for key in ("exp_id", "key", "checksum", "experiment"):
            if key not in payload:
                return f"missing field {key!r}"
        if not isinstance(payload["experiment"], dict):
            return "experiment payload is not an object"
        if payload_checksum(payload["experiment"]) != payload["checksum"]:
            return "checksum mismatch"
        return None

    def _entry_problem(self, path: Path) -> str | None:
        """Why an on-disk entry is corrupt, or None (valid or old schema)."""
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None  # vanished under us: a miss, not corruption
        try:
            payload = json.loads(text)
        except ValueError:
            return "unparseable JSON"
        if isinstance(payload, dict) and payload.get("schema") != STORE_SCHEMA:
            return None  # older schema: a plain miss, never corrupt
        return self._payload_problem(payload)

    def _quarantine(self, path: Path, reason: str) -> Path | None:
        """Move a corrupt entry aside, keeping the evidence."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_dir / path.name
        try:
            os.replace(path, target)
        except OSError:
            return None  # already gone (racing reader quarantined it)
        self.quarantine_log.append((path.name, reason))
        perfmon_record("fault", {"quarantined": 1.0})
        return target

    # ------------------------------------------------------------ access
    def contains(self, digest: ExperimentDigest) -> bool:
        return self.entry_path(digest).is_file()

    def get(self, digest: ExperimentDigest) -> CachedResult | None:
        """The cached result for a digest, or None (missing or corrupt).

        A corrupt entry is quarantined on the way out — it reads as a
        miss (the engine recomputes), but the evidence moves to
        ``quarantine/`` instead of being silently overwritten.
        """
        path = self.entry_path(digest)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            self._quarantine(path, "unparseable JSON")
            return None
        if isinstance(payload, dict) and payload.get("schema") != STORE_SCHEMA:
            return None  # older schema: recompute overwrites it in place
        problem = self._payload_problem(payload)
        if problem is not None:
            self._quarantine(path, problem)
            return None
        try:
            return CachedResult(
                exp_id=payload["exp_id"],
                key=payload["key"],
                experiment=experiment_from_dict(payload["experiment"]),
                elapsed_s=float(payload.get("elapsed_s", 0.0)),
            )
        except (ValueError, KeyError, TypeError):
            self._quarantine(path, "payload does not deserialize")
            return None

    def put(
        self, digest: ExperimentDigest, experiment: Experiment, elapsed_s: float
    ) -> Path:
        """Persist one result atomically; returns the entry path."""
        if experiment.exp_id != digest.exp_id:
            raise ValueError(
                f"digest is for {digest.exp_id!r} but the result is "
                f"{experiment.exp_id!r}"
            )
        self._ensure_layout()
        experiment_payload = experiment_to_dict(experiment)
        payload = {
            "schema": STORE_SCHEMA,
            "exp_id": digest.exp_id,
            "key": digest.key,
            "modules": list(digest.modules),
            "elapsed_s": elapsed_s,
            "checksum": payload_checksum(experiment_payload),
            "experiment": experiment_payload,
        }
        final = self.entry_path(digest)
        staging = self.tmp_dir / f"{digest.key}.{os.getpid()}.tmp"
        staging.write_text(
            json.dumps(payload, indent=1, sort_keys=True), encoding="utf-8"
        )
        os.replace(staging, final)
        if self.fault_injector is not None:
            from repro.faults.inject import corrupt_file, fault_point

            action = fault_point("store_entry", self.fault_injector, digest.exp_id)
            if action is not None:
                corrupt_file(final)
        return final

    # ------------------------------------------------------------ survey
    def entries(self) -> list[StoreEntry]:
        """Every entry on disk, cheapest-first metadata only."""
        return self._scan(self.results_dir)

    def quarantined_entries(self) -> list[StoreEntry]:
        """What has been moved aside; all flagged corrupt."""
        return [
            dataclasses.replace(entry, corrupt=True)
            for entry in self._scan(self.quarantine_dir)
        ]

    def _scan(self, directory: Path) -> list[StoreEntry]:
        if not directory.is_dir():
            return []
        found = []
        for path in sorted(directory.glob("*.json")):
            stem = path.name[: -len(".json")]
            exp_id, _, key = stem.rpartition(".")
            if not exp_id or len(key) != 64:
                continue
            found.append(
                StoreEntry(exp_id=exp_id, key=key, path=path,
                           size_bytes=path.stat().st_size)
            )
        return found

    def stats(self, current: dict[str, ExperimentDigest] | None = None) -> StoreStats:
        """Store size, integrity, and liveness against current digests."""
        entries = self.entries()
        by_exp: dict[str, int] = {}
        corrupt = 0
        for entry in entries:
            by_exp[entry.exp_id] = by_exp.get(entry.exp_id, 0) + 1
            if self._entry_problem(entry.path) is not None:
                corrupt += 1
        live = stale = None
        if current is not None:
            live_keys = {d.key for d in current.values()}
            live = sum(e.key in live_keys for e in entries)
            stale = len(entries) - live
        return StoreStats(
            entries=len(entries),
            total_bytes=sum(e.size_bytes for e in entries),
            by_experiment=by_exp,
            live=live,
            stale=stale,
            corrupt=corrupt,
            quarantined=len(self.quarantined_entries()),
        )

    # ------------------------------------------------------------ hygiene
    def gc(
        self, current: dict[str, ExperimentDigest], dry_run: bool = False
    ) -> list[StoreEntry]:
        """Drop dead entries, quarantine corrupt ones; returns what went.

        Corrupt entries are quarantined even when their key is live —
        a live address holding damaged bytes is exactly what must not
        sit in the cache.  Returned entries carry ``corrupt=True`` when
        they went to quarantine rather than the bin.
        """
        live_keys = {d.key for d in current.values()}
        removed = []
        for entry in self.entries():
            problem = self._entry_problem(entry.path)
            if problem is not None:
                if not dry_run:
                    self._quarantine(entry.path, problem)
                removed.append(
                    StoreEntry(entry.exp_id, entry.key, entry.path,
                               entry.size_bytes, corrupt=True)
                )
                continue
            if entry.key in live_keys:
                continue
            if not dry_run:
                entry.path.unlink(missing_ok=True)
            removed.append(entry)
        if not dry_run and self.tmp_dir.is_dir():
            for leftover in self.tmp_dir.glob("*.tmp"):
                leftover.unlink(missing_ok=True)
        return removed

    def clear(self) -> int:
        """Remove every entry (quarantine included); returns results dropped."""
        entries = self.entries()
        for entry in entries:
            entry.path.unlink(missing_ok=True)
        for entry in self.quarantined_entries():
            entry.path.unlink(missing_ok=True)
        if self.tmp_dir.is_dir():
            for leftover in self.tmp_dir.glob("*.tmp"):
                leftover.unlink(missing_ok=True)
        return len(entries)


class ChunkStore:
    """Content-addressed JSON chunks, for callers keyed by a content hash.

    :class:`ResultStore` caches suite :class:`Experiment` payloads; this
    is the same store discipline — atomic ``tmp/`` + :func:`os.replace`
    writes, sha256 payload checksums verified on read, corrupt entries
    quarantined and reported as misses — for arbitrary JSON payloads
    whose key the caller derives itself (``repro.explore`` keys grid
    sweep chunks on source digests + grid fingerprint + trace ids).

    Layout, sharing the root with the result store::

        chunks/<namespace>.<sha256-key>.json
        quarantine/                            shared with ResultStore
        tmp/                                   shared with ResultStore
    """

    def __init__(self, root: str | Path = DEFAULT_STORE_ROOT) -> None:
        self.root = Path(root)
        self.chunks_dir = self.root / "chunks"
        self.quarantine_dir = self.root / "quarantine"
        self.tmp_dir = self.root / "tmp"
        self.quarantine_log: list[tuple[str, str]] = []

    # ------------------------------------------------------------ paths
    @staticmethod
    def _check_address(namespace: str, key: str) -> None:
        if not namespace or "." in namespace or "/" in namespace:
            raise ValueError(f"invalid chunk namespace {namespace!r}")
        if len(key) != 64 or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"chunk key must be 64 lowercase hex chars, got {key!r}")

    def entry_path(self, namespace: str, key: str) -> Path:
        self._check_address(namespace, key)
        return self.chunks_dir / f"{namespace}.{key}.json"

    # ------------------------------------------------------------ access
    def contains(self, namespace: str, key: str) -> bool:
        return self.entry_path(namespace, key).is_file()

    def _quarantine(self, path: Path, reason: str) -> None:
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(path, self.quarantine_dir / path.name)
        except OSError:
            return  # already gone (racing reader quarantined it)
        self.quarantine_log.append((path.name, reason))
        perfmon_record("fault", {"quarantined": 1.0})

    def get(self, namespace: str, key: str) -> dict | None:
        """The chunk payload for a key, or None (missing or corrupt)."""
        path = self.entry_path(namespace, key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            self._quarantine(path, "unparseable JSON")
            return None
        if isinstance(payload, dict) and payload.get("schema") != CHUNK_SCHEMA:
            return None  # older schema: recompute overwrites it in place
        problem = None
        if not isinstance(payload, dict):
            problem = "payload is not an object"
        elif any(field not in payload for field in ("key", "checksum", "chunk")):
            problem = "missing field"
        elif not isinstance(payload["chunk"], dict):
            problem = "chunk payload is not an object"
        elif payload_checksum(payload["chunk"]) != payload["checksum"]:
            problem = "checksum mismatch"
        if problem is not None:
            self._quarantine(path, problem)
            return None
        return payload["chunk"]

    def put(self, namespace: str, key: str, chunk: dict) -> Path:
        """Persist one chunk atomically; returns the entry path."""
        final = self.entry_path(namespace, key)
        self.chunks_dir.mkdir(parents=True, exist_ok=True)
        self.tmp_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CHUNK_SCHEMA,
            "namespace": namespace,
            "key": key,
            "checksum": payload_checksum(chunk),
            "chunk": chunk,
        }
        staging = self.tmp_dir / f"{namespace}.{key}.{os.getpid()}.tmp"
        staging.write_text(
            json.dumps(payload, indent=1, sort_keys=True), encoding="utf-8"
        )
        os.replace(staging, final)
        return final

    # ------------------------------------------------------------ survey
    def entries(self) -> list[StoreEntry]:
        """Every chunk on disk (``exp_id`` carries the namespace)."""
        if not self.chunks_dir.is_dir():
            return []
        found = []
        for path in sorted(self.chunks_dir.glob("*.json")):
            stem = path.name[: -len(".json")]
            namespace, _, key = stem.rpartition(".")
            if not namespace or len(key) != 64:
                continue
            found.append(
                StoreEntry(exp_id=namespace, key=key, path=path,
                           size_bytes=path.stat().st_size)
            )
        return found

    def clear(self) -> int:
        """Remove every chunk; returns how many were dropped."""
        entries = self.entries()
        for entry in entries:
            entry.path.unlink(missing_ok=True)
        return len(entries)


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` is a live process (signal-0 probe, no signal sent)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # alive, just not ours to signal
    except OSError:
        return False
    return True


@dataclass(frozen=True)
class ColumnSegment:
    """One published column payload, as described by its manifest."""

    key: str  # sha256 of the payload bytes
    kind: str  # "shm" (POSIX shared memory) or "file" (mmap-able .bin)
    name: str  # shm segment name, or the .bin file name
    size_bytes: int
    owner_pid: int  # the publisher; liveness gates orphan sweeping
    manifest: Path


class ColumnCache:
    """Publish-once, attach-many binary column segments for pool workers.

    The engine's pool workers need the suite's stacked columns
    (:func:`repro.machine.suitebatch.pack_suite` payloads); deriving
    them is pure but costs a registry walk plus compilation per
    process.  The parent publishes the payload once and workers attach:

    * preferred transport is ``multiprocessing.shared_memory`` — one
      copy of the bytes in the page cache no matter how many workers
      attach;
    * where POSIX shared memory is unavailable (or creation fails) the
      payload falls back to a plain ``columns/<key>.bin`` file under
      the store root, written atomically via ``tmp/`` + ``os.replace``.

    Either way a ``columns/<key>.json`` manifest records the transport,
    the segment name, the byte count, and the publishing PID.  Attach
    verifies ``sha256(payload) == key`` before handing bytes out — a
    torn or recycled segment reads as a miss, never as wrong columns.

    Segments are content-addressed, so republishing identical columns
    is idempotent.  A publisher killed before releasing leaves an
    orphan; :meth:`sweep_orphans` reclaims segments whose ``owner_pid``
    is no longer alive (``engine gc`` calls it).
    """

    def __init__(self, root: str | Path = DEFAULT_STORE_ROOT) -> None:
        self.root = Path(root)
        self.columns_dir = self.root / "columns"
        self.tmp_dir = self.root / "tmp"

    # ------------------------------------------------------------ paths
    @staticmethod
    def _check_key(key: str) -> None:
        if len(key) != 64 or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"column key must be 64 lowercase hex chars, got {key!r}")

    def manifest_path(self, key: str) -> Path:
        self._check_key(key)
        return self.columns_dir / f"{key}.json"

    def _bin_path(self, key: str) -> Path:
        return self.columns_dir / f"{key}.bin"

    @staticmethod
    def _shm_name(key: str) -> str:
        return f"repro_{os.getpid()}_{key[:12]}"

    # ------------------------------------------------------------ shm
    @staticmethod
    def _disown_shm(seg) -> None:
        """Remove a segment from this process's resource tracker.

        Before Python 3.13 every ``SharedMemory`` open — create *and*
        attach — registers with the resource tracker, which unlinks
        registered names at shutdown, yanking the columns out from
        under other processes.  Lifetime here is owned by the manifest
        protocol (:meth:`release` / :meth:`sweep_orphans`), so both
        publisher and attachers disown immediately.  ``unlink`` paths
        must NOT disown first: ``SharedMemory.unlink`` does its own
        unregister, and the pair must stay balanced.
        """
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(
                getattr(seg, "_name", f"/{seg.name}"), "shared_memory"
            )
        except Exception:
            pass  # tracker internals moved: worst case a shutdown warning

    @classmethod
    def _open_shm(cls, name: str):
        """Attach to an existing segment for reading, tracker-disowned."""
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(name=name)
        cls._disown_shm(seg)
        return seg

    @staticmethod
    def _unlink_shm(name: str) -> None:
        """Destroy a segment; attach registration and unlink's
        unregister cancel out, so no explicit disown here."""
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(name=name)
        seg.unlink()
        seg.close()

    # ------------------------------------------------------------ publish
    def publish(self, payload: bytes) -> str:
        """Make ``payload`` attachable; returns its content key.

        Idempotent: republishing bytes that are already attachable under
        their key is a no-op returning the same key.
        """
        key = hashlib.sha256(payload).hexdigest()
        if self.manifest_path(key).is_file() and self._read(key, count=False) is not None:
            return key
        kind, name = self._store_payload(key, payload)
        manifest = {
            "schema": COLUMN_SCHEMA,
            "key": key,
            "kind": kind,
            "name": name,
            "size_bytes": len(payload),
            "owner_pid": os.getpid(),
        }
        self.tmp_dir.mkdir(parents=True, exist_ok=True)
        staging = self.tmp_dir / f"columns.{key}.{os.getpid()}.tmp"
        staging.write_text(
            json.dumps(manifest, indent=1, sort_keys=True), encoding="utf-8"
        )
        os.replace(staging, self.manifest_path(key))
        perfmon_record("colcache", {"publishes": 1.0})
        return key

    def _store_payload(self, key: str, payload: bytes) -> tuple[str, str]:
        """Write the bytes; shared memory first, ``.bin`` file fallback."""
        self.columns_dir.mkdir(parents=True, exist_ok=True)
        name = self._shm_name(key)
        try:
            from multiprocessing import shared_memory

            try:
                seg = shared_memory.SharedMemory(
                    create=True, size=len(payload), name=name
                )
            except FileExistsError:
                # A previous publish from this PID died between segment
                # and manifest; the name is content-derived, so recreate.
                self._unlink_shm(name)
                seg = shared_memory.SharedMemory(
                    create=True, size=len(payload), name=name
                )
            seg.buf[: len(payload)] = payload
            self._disown_shm(seg)
            seg.close()
            return "shm", name
        except (ImportError, OSError):
            staging = self.tmp_dir / f"columns.{key}.{os.getpid()}.bin.tmp"
            self.tmp_dir.mkdir(parents=True, exist_ok=True)
            staging.write_bytes(payload)
            os.replace(staging, self._bin_path(key))
            return "file", self._bin_path(key).name

    # ------------------------------------------------------------ attach
    def attach(self, key: str) -> bytes | None:
        """The published payload for ``key``, or None (missing/corrupt)."""
        return self._read(key, count=True)

    def _read(self, key: str, count: bool) -> bytes | None:
        segment = self._segment_from_manifest(self.manifest_path(key))
        if segment is None or segment.key != key:
            return None
        if segment.kind == "shm":
            try:
                seg = self._open_shm(segment.name)
            except (ImportError, OSError):
                return None
            try:
                payload = bytes(seg.buf[: segment.size_bytes])
            finally:
                seg.close()
        else:
            try:
                payload = self._bin_path(key).read_bytes()
            except OSError:
                return None
        if hashlib.sha256(payload).hexdigest() != key:
            return None  # torn write or recycled segment: a miss
        if count:
            perfmon_record("colcache", {"attaches": 1.0})
        return payload

    # ------------------------------------------------------------ lifetime
    def release(self, key: str) -> bool:
        """Drop the segment and its manifest; True if anything was removed."""
        manifest = self.manifest_path(key)
        segment = self._segment_from_manifest(manifest)
        removed = False
        if segment is not None and segment.kind == "shm":
            try:
                self._unlink_shm(segment.name)
                removed = True
            except (ImportError, OSError):
                pass  # segment already gone
        bin_path = self._bin_path(key)
        if bin_path.is_file():
            bin_path.unlink(missing_ok=True)
            removed = True
        try:
            manifest.unlink()
            removed = True
        except OSError:
            pass
        return removed

    # ------------------------------------------------------------ survey
    def _segment_from_manifest(self, path: Path) -> ColumnSegment | None:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or payload.get("schema") != COLUMN_SCHEMA:
            return None
        try:
            return ColumnSegment(
                key=str(payload["key"]),
                kind=str(payload["kind"]),
                name=str(payload["name"]),
                size_bytes=int(payload["size_bytes"]),
                owner_pid=int(payload["owner_pid"]),
                manifest=path,
            )
        except (KeyError, TypeError, ValueError):
            return None

    def segments(self) -> list[ColumnSegment]:
        """Every published segment with a readable manifest, sorted by key."""
        if not self.columns_dir.is_dir():
            return []
        found = []
        for path in sorted(self.columns_dir.glob("*.json")):
            segment = self._segment_from_manifest(path)
            if segment is not None:
                found.append(segment)
        return found

    def orphans(self) -> list[ColumnSegment]:
        """Segments whose publishing process is no longer alive."""
        return [s for s in self.segments() if not _pid_alive(s.owner_pid)]

    def sweep_orphans(self, dry_run: bool = False) -> list[ColumnSegment]:
        """Reclaim segments abandoned by dead publishers (SIGKILLed
        workers, crashed engines); returns what was (or would be) swept."""
        swept = self.orphans()
        if not dry_run:
            for segment in swept:
                self.release(segment.key)
            if swept:
                perfmon_record("colcache", {"orphans_swept": float(len(swept))})
        return swept

    def clear(self) -> int:
        """Release every segment, live publishers included; returns count."""
        segments = self.segments()
        for segment in segments:
            self.release(segment.key)
        return len(segments)
