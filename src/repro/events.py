"""A small deterministic discrete-event simulation kernel.

Both the I/O subsystem models (:mod:`repro.iosim`) and the PRODLOAD batch
scheduler (:mod:`repro.scheduler`) need to interleave concurrent activities
with well-defined wall-clock accounting.  Rather than pull in an external
simulation framework, this module provides the three primitives they need:

* :class:`Simulator` — a time-ordered event queue with deterministic
  tie-breaking (FIFO within equal timestamps), so repeated runs produce
  identical schedules.
* :class:`Process` — a generator-based coroutine; a process yields either a
  delay in seconds, a :class:`Resource` request, or another process to join.
* :class:`Resource` — a counted resource (CPUs, I/O channels) with a FIFO
  wait queue, used to model contention.

The engine is intentionally minimal: no priorities beyond time order, no
preemption, no interrupts.  PRODLOAD-style workloads only need fork/join,
delays, and counted resources.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from collections.abc import Generator
from dataclasses import dataclass
from typing import Any

__all__ = ["Simulator", "Process", "Resource", "Acquire", "Release", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for structural errors: negative delays, double release, etc."""


@dataclass(frozen=True)
class Acquire:
    """Yielded by a process to block until ``amount`` units are granted."""

    resource: "Resource"
    amount: int = 1

    def __post_init__(self) -> None:
        if self.amount <= 0:
            raise SimulationError(f"acquire amount must be positive, got {self.amount}")


@dataclass(frozen=True)
class Release:
    """Yielded by a process to return ``amount`` units (never blocks)."""

    resource: "Resource"
    amount: int = 1

    def __post_init__(self) -> None:
        if self.amount <= 0:
            raise SimulationError(f"release amount must be positive, got {self.amount}")


class Resource:
    """A counted resource with FIFO granting.

    Parameters
    ----------
    capacity:
        Total units available (e.g. 32 for the CPUs of an SX-4/32 node).
    name:
        Label used in error messages and utilisation traces.
    """

    def __init__(self, capacity: int, name: str = "resource") -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.name = name
        self.available = capacity
        self._waiters: deque[tuple["Process", int]] = deque()
        #: (time, in_use) samples recorded at every grant/release.
        self.utilisation: list[tuple[float, int]] = []

    @property
    def in_use(self) -> int:
        return self.capacity - self.available

    def _record(self, now: float) -> None:
        self.utilisation.append((now, self.in_use))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Resource({self.name!r}, {self.in_use}/{self.capacity} in use)"


class Process:
    """A generator-based simulation process.

    The wrapped generator may yield:

    * ``float`` — advance this process by that many seconds,
    * :class:`Acquire` — block until the resource grants the units,
    * :class:`Release` — return units and continue immediately,
    * :class:`Process` — block until that process finishes (join).

    The value of a finished process is its ``StopIteration`` value and is
    available as :attr:`result`.
    """

    def __init__(self, gen: Generator[Any, Any, Any], name: str = "proc") -> None:
        self.gen = gen
        self.name = name
        self.finished = False
        self.result: Any = None
        self.finish_time: float | None = None
        self.start_time: float | None = None
        self._joiners: list[Process] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.finished else "running"
        return f"Process({self.name!r}, {state})"


class Simulator:
    """Deterministic event-driven simulator.

    An optional ``tracer`` observes process lifetimes on the *simulated*
    clock: ``tracer.started(process, now)`` fires at a process's first
    step and ``tracer.finished(process, now)`` when it returns.  The
    simulator hands the tracer simulated seconds only — this module must
    stay free of host-clock reads so schedules remain deterministic
    (:class:`repro.perfmon.collector.SimSpanTracer` is the intended
    consumer).

    Example
    -------
    >>> sim = Simulator()
    >>> def worker():
    ...     yield 2.5
    ...     return "done"
    >>> p = sim.spawn(worker(), name="w")
    >>> sim.run()
    >>> (sim.now, p.result)
    (2.5, 'done')
    """

    def __init__(self, tracer: Any = None) -> None:
        self.now = 0.0
        self.tracer = tracer
        self._queue: list[tuple[float, int, Process, Any]] = []
        self._counter = itertools.count()
        self.processes: list[Process] = []

    def spawn(self, gen: Generator[Any, Any, Any], name: str = "proc", delay: float = 0.0) -> Process:
        """Register a new process starting ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"spawn delay cannot be negative, got {delay}")
        proc = Process(gen, name=name)
        self.processes.append(proc)
        self._schedule(self.now + delay, proc, None)
        return proc

    def _schedule(self, when: float, proc: Process, value: Any) -> None:
        heapq.heappush(self._queue, (when, next(self._counter), proc, value))

    def run(self, until: float | None = None) -> None:
        """Run events until the queue drains (or past ``until`` seconds)."""
        while self._queue:
            when, _, proc, value = heapq.heappop(self._queue)
            if until is not None and when > until:
                # Put it back so a subsequent run() can resume seamlessly.
                self._schedule(when, proc, value)
                self.now = until
                return
            if when < self.now - 1e-12:
                raise SimulationError("event queue produced a time regression")
            self.now = when
            self._step(proc, value)

    def _step(self, proc: Process, send_value: Any) -> None:
        if proc.finished:
            raise SimulationError(f"process {proc.name!r} resumed after finishing")
        if proc.start_time is None:
            proc.start_time = self.now
            if self.tracer is not None:
                self.tracer.started(proc, self.now)
        try:
            yielded = proc.gen.send(send_value)
        except StopIteration as stop:
            self._finish(proc, stop.value)
            return
        self._dispatch(proc, yielded)

    def _finish(self, proc: Process, result: Any) -> None:
        proc.finished = True
        proc.result = result
        proc.finish_time = self.now
        if self.tracer is not None:
            self.tracer.finished(proc, self.now)
        for joiner in proc._joiners:
            self._schedule(self.now, joiner, proc.result)
        proc._joiners.clear()

    def _dispatch(self, proc: Process, yielded: Any) -> None:
        if isinstance(yielded, (int, float)):
            delay = float(yielded)
            if delay < 0:
                raise SimulationError(
                    f"process {proc.name!r} yielded a negative delay: {delay}"
                )
            self._schedule(self.now + delay, proc, None)
        elif isinstance(yielded, Acquire):
            self._acquire(proc, yielded)
        elif isinstance(yielded, Release):
            self._release(proc, yielded)
        elif isinstance(yielded, Process):
            if yielded.finished:
                self._schedule(self.now, proc, yielded.result)
            else:
                yielded._joiners.append(proc)
        else:
            raise SimulationError(
                f"process {proc.name!r} yielded unsupported value {yielded!r}"
            )

    def _acquire(self, proc: Process, req: Acquire) -> None:
        res = req.resource
        if req.amount > res.capacity:
            raise SimulationError(
                f"request of {req.amount} exceeds capacity {res.capacity} of {res.name!r}"
            )
        if res.available >= req.amount and not res._waiters:
            res.available -= req.amount
            res._record(self.now)
            self._schedule(self.now, proc, None)
        else:
            res._waiters.append((proc, req.amount))

    def _release(self, proc: Process, req: Release) -> None:
        res = req.resource
        if res.available + req.amount > res.capacity:
            raise SimulationError(
                f"release of {req.amount} overflows {res.name!r} "
                f"({res.available}/{res.capacity} available)"
            )
        res.available += req.amount
        res._record(self.now)
        # Grant FIFO waiters that now fit; stop at the first that does not,
        # preserving ordering fairness (no barging).
        while res._waiters and res._waiters[0][1] <= res.available:
            waiter, amount = res._waiters.popleft()
            res.available -= amount
            res._record(self.now)
            self._schedule(self.now, waiter, None)
        self._schedule(self.now, proc, None)
