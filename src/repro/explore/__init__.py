"""Design-space exploration: cost thousands of machines in one pass.

The paper costs six calibrated machines; this package asks the next
question — *what would the suite numbers look like on the machines NEC
didn't build?* — without giving up the repo's exact-parity discipline:

``sweep``
    cartesian parameter sweeps anchored at any calibrated preset
    (clock, pipes, banks, cache geometry, and the fault subsystem's
    degradation axes), lowered straight into a
    :class:`~repro.machine.grid.MachineGrid`;
``engine``
    :func:`~repro.explore.engine.cost_suite_grid` — the full trace
    suite against the full grid, with content-addressed chunk caching
    through :class:`~repro.engine.store.ChunkStore`;
``pareto``
    Mflops/bandwidth/cost-proxy frontier extraction over a costed
    sweep;
``ranks``
    Table-1-style rank-inversion maps — where benchmark choice flips
    the machine ordering;
``cli``
    ``python -m repro.explore sweep|pareto|ranks`` with deterministic
    JSON/CSV output.

Every number a sweep produces is bit-identical to building that
machine as a :class:`~repro.machine.processor.Processor` and executing
the trace on the compiled engine — the grid is a faster spelling of
the same model, never a different model.
"""

from repro.explore.engine import (
    CHUNK_KEY_SEEDS,
    CHUNK_NAMESPACE,
    GridSuiteResult,
    cost_suite_grid,
    grid_chunk_key,
    suite_trace_ids,
)
from repro.explore.pareto import ParetoPoint, cost_proxy, pareto_front, pareto_points
from repro.explore.ranks import (
    DEFAULT_REFERENCE,
    DEFAULT_TRACE_PAIR,
    RankInversionMap,
    rank_inversion_map,
)
from repro.explore.sweep import (
    PARAMETERS,
    Axis,
    ParameterSweep,
    explicit_axis,
    linear_axis,
    log_axis,
)

__all__ = [
    "CHUNK_KEY_SEEDS",
    "CHUNK_NAMESPACE",
    "GridSuiteResult",
    "cost_suite_grid",
    "grid_chunk_key",
    "suite_trace_ids",
    "ParetoPoint",
    "cost_proxy",
    "pareto_front",
    "pareto_points",
    "DEFAULT_REFERENCE",
    "DEFAULT_TRACE_PAIR",
    "RankInversionMap",
    "rank_inversion_map",
    "PARAMETERS",
    "Axis",
    "ParameterSweep",
    "explicit_axis",
    "linear_axis",
    "log_axis",
]
