"""Command-line interface for design-space exploration.

Usage::

    python -m repro.explore sweep  [--anchor ID] [axis options]
                                   [--traces a,b] [--dilation X]
                                   [--include-presets] [--store DIR]
                                   [--chunk-machines N]
                                   [--format json|csv] [--out FILE]
    python -m repro.explore pareto [same options]
    python -m repro.explore ranks  [same options] [--trace-a T]
                                   [--trace-b T] [--reference NAME]

Axis options, each repeatable (applied in command-line order)::

    --axis PARAM=START:STOP:STEPS       linear spacing
    --log-axis PARAM=START:STOP:STEPS   geometric spacing
    --values PARAM=V1,V2,...            explicit values

Output is a deterministic function of the arguments and the source
tree: payloads carry no timestamps or timings (run twice, ``diff``
clean — CI's explore-smoke job does exactly that), and JSON keys are
sorted.  Progress/summary lines go to stderr.  Exit codes: 0 success,
2 invalid request (unknown parameter, trace, anchor, ...).
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import sys

from repro.engine.store import ChunkStore
from repro.explore.engine import GridSuiteResult, cost_suite_grid
from repro.explore.pareto import cost_proxy, pareto_points
from repro.explore.ranks import (
    DEFAULT_REFERENCE,
    DEFAULT_TRACE_PAIR,
    rank_inversion_map,
)
from repro.explore.sweep import (
    PARAMETERS,
    Axis,
    ParameterSweep,
    explicit_axis,
    linear_axis,
    log_axis,
)
from repro.machine.grid import MachineGrid
from repro.machine.presets import PRESET_FACTORIES

__all__ = ["main", "build_parser", "parse_axis_specs"]


def _parse_range_spec(kind: str, spec: str) -> tuple[str, float, float, int]:
    """``PARAM=START:STOP:STEPS`` for --axis/--log-axis."""
    parameter, _, rest = spec.partition("=")
    pieces = rest.split(":")
    if not parameter or len(pieces) != 3:
        raise ValueError(
            f"--{kind} expects PARAM=START:STOP:STEPS, got {spec!r}"
        )
    try:
        start, stop = float(pieces[0]), float(pieces[1])
        steps = int(pieces[2])
    except ValueError:
        raise ValueError(
            f"--{kind} expects numeric START:STOP and integer STEPS, got {spec!r}"
        ) from None
    return parameter, start, stop, steps


def parse_axis_specs(specs: list[tuple[str, str]]) -> tuple[Axis, ...]:
    """Axes from (kind, spec) pairs in command-line order."""
    axes = []
    for kind, spec in specs:
        if kind == "values":
            parameter, _, rest = spec.partition("=")
            if not parameter or not rest:
                raise ValueError(f"--values expects PARAM=V1,V2,..., got {spec!r}")
            try:
                values = [float(v) for v in rest.split(",")]
            except ValueError:
                raise ValueError(f"--values expects numeric values, got {spec!r}") from None
            axes.append(explicit_axis(parameter, values))
        else:
            parameter, start, stop, steps = _parse_range_spec(kind, spec)
            builder = linear_axis if kind == "axis" else log_axis
            axes.append(builder(parameter, start, stop, steps))
    return tuple(axes)


class _AxisAction(argparse.Action):
    """Collect --axis/--log-axis/--values into one ordered list."""

    def __call__(self, parser, namespace, value, option_string=None):
        namespace.axis_specs.append((option_string.lstrip("-"), value))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore",
        description="Design-space exploration over the benchmark suite.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_shared(sub: argparse.ArgumentParser, presets_default: bool) -> None:
        sub.add_argument(
            "--anchor",
            default="sx4",
            choices=sorted(PRESET_FACTORIES),
            help="preset the sweep is anchored at (default: sx4)",
        )
        sub.add_argument(
            "--axis", action=_AxisAction, dest="axis_specs", default=[],
            metavar="PARAM=START:STOP:STEPS", help="linear axis (repeatable)",
        )
        sub.add_argument(
            "--log-axis", action=_AxisAction, dest="axis_specs",
            metavar="PARAM=START:STOP:STEPS", help="geometric axis (repeatable)",
        )
        sub.add_argument(
            "--values", action=_AxisAction, dest="axis_specs",
            metavar="PARAM=V1,V2,...", help="explicit axis (repeatable)",
        )
        sub.add_argument(
            "--traces", default=None, metavar="A,B,...",
            help="trace ids to cost (default: the full registered suite)",
        )
        sub.add_argument(
            "--dilation", type=float, default=1.0,
            help="memory dilation factor (default: 1.0)",
        )
        if presets_default:
            sub.add_argument(
                "--include-presets", action="store_true", default=True,
                help=argparse.SUPPRESS,  # ranks always embeds the presets
            )
        else:
            sub.add_argument(
                "--include-presets", action="store_true",
                help="prepend the six canonical preset machines to the grid",
            )
        sub.add_argument(
            "--store", default=None, metavar="DIR",
            help="cache grid chunks content-addressed under DIR",
        )
        sub.add_argument(
            "--chunk-machines", type=int, default=256,
            help="machines per cached chunk (default: 256)",
        )
        sub.add_argument(
            "--format", choices=("json", "csv"), default="json",
            help="output format (default: json)",
        )
        sub.add_argument(
            "--out", default=None, metavar="FILE",
            help="write output to FILE (default: stdout)",
        )

    sweep = subparsers.add_parser("sweep", help="cost every sweep point")
    add_shared(sweep, presets_default=False)

    pareto = subparsers.add_parser(
        "pareto", help="extract the Mflops/bandwidth/cost Pareto frontier"
    )
    add_shared(pareto, presets_default=False)

    ranks = subparsers.add_parser(
        "ranks", help="map rank inversions between two traces"
    )
    add_shared(ranks, presets_default=True)
    ranks.add_argument(
        "--trace-a", default=DEFAULT_TRACE_PAIR[0],
        help=f"first trace of the pair (default: {DEFAULT_TRACE_PAIR[0]})",
    )
    ranks.add_argument(
        "--trace-b", default=DEFAULT_TRACE_PAIR[1],
        help=f"second trace of the pair (default: {DEFAULT_TRACE_PAIR[1]})",
    )
    ranks.add_argument(
        "--reference", default=DEFAULT_REFERENCE,
        help=f"reference machine name (default: {DEFAULT_REFERENCE!r})",
    )
    return parser


def _build_and_cost(args) -> tuple[MachineGrid, GridSuiteResult]:
    axes = parse_axis_specs(args.axis_specs)
    sweep = ParameterSweep(
        anchor=args.anchor, axes=axes, include_presets=args.include_presets
    )
    grid = sweep.build()
    trace_ids = tuple(args.traces.split(",")) if args.traces else None
    store = ChunkStore(root=args.store) if args.store else None
    result = cost_suite_grid(
        grid,
        trace_ids=trace_ids,
        memory_dilation=args.dilation,
        store=store,
        chunk_machines=args.chunk_machines,
    )
    return grid, result


def _sweep_payload(grid: MachineGrid, result: GridSuiteResult) -> dict:
    return {
        "command": "sweep",
        "n_machines": result.n_machines,
        "trace_ids": list(result.trace_ids),
        "machines": [
            {
                "name": result.machine_names[i],
                "suite_seconds": float(result.suite_seconds[i]),
                "suite_mflops": float(result.suite_mflops[i]),
                "suite_bandwidth_bytes_per_s": float(
                    result.suite_bandwidth_bytes_per_s[i]
                ),
                "traces": {
                    trace_id: {
                        "cycles": float(result.traces[trace_id].cycles[i]),
                        "seconds": float(result.traces[trace_id].seconds[i]),
                        "mflops": float(result.traces[trace_id].mflops[i]),
                        "bandwidth_bytes_per_s": float(
                            result.traces[trace_id].bandwidth_bytes_per_s[i]
                        ),
                    }
                    for trace_id in result.trace_ids
                },
            }
            for i in range(result.n_machines)
        ],
    }


def _sweep_rows(grid: MachineGrid, result: GridSuiteResult) -> tuple[list[str], list[list]]:
    header = ["machine", "suite_seconds", "suite_mflops", "suite_bandwidth_bytes_per_s"]
    for trace_id in result.trace_ids:
        header.append(f"{trace_id}_mflops")
    rows = []
    for i in range(result.n_machines):
        row = [
            result.machine_names[i],
            repr(float(result.suite_seconds[i])),
            repr(float(result.suite_mflops[i])),
            repr(float(result.suite_bandwidth_bytes_per_s[i])),
        ]
        row.extend(
            repr(float(result.traces[t].mflops[i])) for t in result.trace_ids
        )
        rows.append(row)
    return header, rows


def _pareto_payload(grid: MachineGrid, result: GridSuiteResult) -> dict:
    points = pareto_points(result, grid)
    proxy = cost_proxy(grid)
    return {
        "command": "pareto",
        "n_machines": result.n_machines,
        "n_frontier": len(points),
        "objectives": {
            "suite_mflops": "max",
            "suite_bandwidth_bytes_per_s": "max",
            "cost_proxy": "min",
        },
        "frontier": [
            {
                "index": p.index,
                "machine": p.machine,
                "suite_mflops": p.mflops,
                "suite_bandwidth_bytes_per_s": p.bandwidth_bytes_per_s,
                "cost_proxy": p.cost_proxy,
            }
            for p in points
        ],
        "cost_proxy": {
            result.machine_names[i]: float(proxy[i]) for i in range(result.n_machines)
        },
    }


def _pareto_rows(grid: MachineGrid, result: GridSuiteResult) -> tuple[list[str], list[list]]:
    points = pareto_points(result, grid)
    header = ["index", "machine", "suite_mflops", "suite_bandwidth_bytes_per_s", "cost_proxy"]
    rows = [
        [p.index, p.machine, repr(p.mflops), repr(p.bandwidth_bytes_per_s), repr(p.cost_proxy)]
        for p in points
    ]
    return header, rows


def _ranks_payload(args, grid: MachineGrid, result: GridSuiteResult) -> dict:
    inversion = rank_inversion_map(
        result, trace_a=args.trace_a, trace_b=args.trace_b, reference=args.reference
    )
    return {
        "command": "ranks",
        "trace_a": inversion.trace_a,
        "trace_b": inversion.trace_b,
        "reference": inversion.reference,
        "n_machines": inversion.n_machines,
        "n_inverted": inversion.n_inverted,
        "machines": [
            {
                "name": name,
                "beats_reference_a": bool(inversion.beats_reference_a[i]),
                "beats_reference_b": bool(inversion.beats_reference_b[i]),
                "inverted": bool(inversion.inverted[i]),
            }
            for i, name in enumerate(inversion.machine_names)
        ],
    }


def _ranks_rows(args, grid: MachineGrid, result: GridSuiteResult) -> tuple[list[str], list[list]]:
    inversion = rank_inversion_map(
        result, trace_a=args.trace_a, trace_b=args.trace_b, reference=args.reference
    )
    header = ["machine", "beats_reference_a", "beats_reference_b", "inverted"]
    rows = [
        [
            name,
            int(inversion.beats_reference_a[i]),
            int(inversion.beats_reference_b[i]),
            int(inversion.inverted[i]),
        ]
        for i, name in enumerate(inversion.machine_names)
    ]
    return header, rows


def _render(args, payload: dict | None, table: tuple[list[str], list[list]] | None) -> str:
    if args.format == "json":
        return json.dumps(payload, indent=1, sort_keys=True) + "\n"
    header, rows = table
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(header)
    writer.writerows(rows)
    return buffer.getvalue()


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        grid, result = _build_and_cost(args)
        if args.command == "sweep":
            text = _render(args, _sweep_payload(grid, result), _sweep_rows(grid, result))
        elif args.command == "pareto":
            text = _render(args, _pareto_payload(grid, result), _pareto_rows(grid, result))
        else:
            text = _render(
                args, _ranks_payload(args, grid, result), _ranks_rows(args, grid, result)
            )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    print(
        f"{args.command}: {result.n_machines} machines x {len(result.trace_ids)} traces"
        + (
            f" (chunks: {result.chunk_hits} hits, {result.chunk_misses} misses)"
            if args.store
            else ""
        ),
        file=sys.stderr,
    )
    return 0
