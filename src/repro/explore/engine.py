"""Suite-level grid costing with content-addressed chunk caching.

:func:`cost_suite_grid` prices every requested trace against every
machine of a :class:`~repro.machine.grid.MachineGrid` — the traces are
stacked into one :class:`~repro.machine.suitebatch.SuiteColumns` ragged
tensor and the whole suite × grid cross product costs in a single
broadcasted pass per chunk — and reduces the per-trace costs into suite
aggregates
(exact ``fsum`` across traces, the same reduction the per-machine suite
runner performs).

With a :class:`~repro.engine.store.ChunkStore`, the grid is split into
row chunks and each chunk's results are cached under a content hash of

* the source digest of the costing code's import closure
  (:func:`repro.engine.deps.closure_digest` over the grid/compiled/trace
  modules — edit a kernel and exactly the affected chunks go stale),
* the chunk's :meth:`~repro.machine.grid.MachineGrid.fingerprint`
  (the numeric columns, names excluded),
* the trace ids and the memory dilation.

Chunk payloads are JSON; floats survive the round-trip bit-exactly
(``repr`` shortest-round-trip serialization), so a warm sweep returns
arrays bit-identical to the cold computation — asserted in
``tests/explore``.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.traces import TRACE_BUILDERS, build_registered_trace
from repro.engine.deps import closure_digest
from repro.engine.store import ChunkStore
from repro.machine.compiled import fsum_columns
from repro.machine.grid import GridTraceCost, MachineGrid, cost_suite_trace_grid
from repro.machine.suitebatch import SuiteColumns
from repro.perfmon.collector import active as perfmon_active
from repro.perfmon.collector import record as perfmon_record
from repro.perfmon.collector import span as perfmon_span
from repro.perfmon.counters import declare_counters
from repro.units import MEGA

__all__ = [
    "CHUNK_NAMESPACE",
    "CHUNK_KEY_SEEDS",
    "GridSuiteResult",
    "cost_suite_grid",
    "grid_chunk_key",
    "suite_trace_ids",
]

#: ChunkStore namespace grid-sweep chunks live under.
CHUNK_NAMESPACE = "explore"

#: Seed modules whose transitive source closure keys chunk caching —
#: the code that determines a chunk's numbers.  The trace registry's
#: closure covers every kernel's trace builder.
CHUNK_KEY_SEEDS = (
    "repro.machine.grid",
    "repro.machine.compiled",
    "repro.machine.suitebatch",
    "repro.analysis.traces",
)

declare_counters(
    "explore",
    (
        "suites",  # cost_suite_grid invocations
        "machines",  # grid rows per invocation
        "trace_costings",  # (trace, chunk) costings computed
        "chunk_hits",  # chunks served from the store
        "chunk_misses",  # chunks computed (and written, if a store)
    ),
)


def suite_trace_ids() -> tuple[str, ...]:
    """Every registered trace id, in registry (paper) order."""
    return tuple(TRACE_BUILDERS)


@dataclass(frozen=True)
class GridSuiteResult:
    """A whole suite costed against a whole grid.

    ``traces`` maps trace id to its :class:`GridTraceCost` (arrays
    indexed by grid row); the ``suite_*`` arrays aggregate across
    traces with exact reductions: seconds as the fsum of per-trace
    seconds, rates from fsum'd flop/word totals over suite seconds.
    """

    machine_names: tuple[str, ...]
    trace_ids: tuple[str, ...]
    traces: dict[str, GridTraceCost]
    suite_seconds: np.ndarray
    suite_mflops: np.ndarray
    suite_bandwidth_bytes_per_s: np.ndarray
    chunk_hits: int
    chunk_misses: int

    @property
    def n_machines(self) -> int:
        return len(self.machine_names)


def grid_chunk_key(
    grid: MachineGrid,
    trace_ids: tuple[str, ...],
    memory_dilation: float,
    code_digest: str | None = None,
) -> str:
    """Content hash addressing one grid chunk's suite costs.

    ``code_digest`` (the :data:`CHUNK_KEY_SEEDS` closure digest) may be
    precomputed by callers keying many chunks in one sweep.
    """
    if code_digest is None:
        code_digest = closure_digest(CHUNK_KEY_SEEDS)
    hasher = hashlib.sha256()
    hasher.update(b"explore-chunk\x00")
    hasher.update(f"code={code_digest}\x00".encode())
    hasher.update(f"dilation={float(memory_dilation)!r}\x00".encode())
    for trace_id in trace_ids:
        hasher.update(f"trace={trace_id}\x00".encode())
    hasher.update(f"grid={grid.fingerprint()}\x00".encode())
    return hasher.hexdigest()


def _chunk_payload(
    costs: dict[str, GridTraceCost], trace_ids: tuple[str, ...], memory_dilation: float
) -> dict:
    """A chunk's costs as a JSON payload (floats round-trip bit-exactly)."""
    return {
        "trace_ids": list(trace_ids),
        "memory_dilation": float(memory_dilation),
        "n_machines": costs[trace_ids[0]].n_machines,
        "traces": {
            trace_id: {
                "cycles": [float(v) for v in cost.cycles],
                "raw_flops": cost.raw_flops,
                "flop_equivalents": cost.flop_equivalents,
                "words_moved": cost.words_moved,
            }
            for trace_id, cost in costs.items()
        },
    }


def _costs_from_payload(
    payload: dict, subgrid: MachineGrid, trace_ids: tuple[str, ...], traces: dict
) -> dict[str, GridTraceCost] | None:
    """Rebuild chunk costs from a cached payload, or None if unusable.

    Only cycles and the machine-independent totals are stored; the
    derived fields recompute through :class:`GridTraceCost`'s exact
    expressions — same doubles either way, and the payload stays small.
    """
    if payload.get("trace_ids") != list(trace_ids):
        return None
    if payload.get("n_machines") != subgrid.n_machines:
        return None
    from repro.units import NS

    costs: dict[str, GridTraceCost] = {}
    for trace_id in trace_ids:
        entry = payload.get("traces", {}).get(trace_id)
        if entry is None or len(entry.get("cycles", ())) != subgrid.n_machines:
            return None
        cycles = np.array(entry["cycles"], dtype=np.float64)
        seconds = cycles * (subgrid.period_ns * NS)
        zero = seconds == 0.0
        safe = np.where(zero, 1.0, seconds)
        flop_equivalents = float(entry["flop_equivalents"])
        words_moved = float(entry["words_moved"])
        costs[trace_id] = GridTraceCost(
            trace_name=traces[trace_id].name,
            machine_names=subgrid.names,
            cycles=cycles,
            seconds=seconds,
            mflops=np.where(zero, 0.0, flop_equivalents / safe / MEGA),
            bandwidth_bytes_per_s=np.where(zero, 0.0, (words_moved * 8.0) / safe),
            raw_flops=float(entry["raw_flops"]),
            flop_equivalents=flop_equivalents,
            words_moved=words_moved,
        )
    return costs


def cost_suite_grid(
    grid: MachineGrid,
    trace_ids: tuple[str, ...] | None = None,
    memory_dilation: float = 1.0,
    store: ChunkStore | None = None,
    chunk_machines: int = 256,
) -> GridSuiteResult:
    """Cost a trace suite against every machine of a grid.

    Without a store, the whole grid is costed in one pass per trace.
    With one, rows are processed in ``chunk_machines``-sized chunks,
    each addressed by :func:`grid_chunk_key` — a repeated sweep over an
    unchanged tree is pure cache reads.
    """
    if chunk_machines < 1:
        raise ValueError(f"chunk_machines must be >= 1, got {chunk_machines}")
    ids = suite_trace_ids() if trace_ids is None else tuple(trace_ids)
    unknown = [trace_id for trace_id in ids if trace_id not in TRACE_BUILDERS]
    if unknown:
        raise ValueError(f"unknown trace ids {unknown!r} (known: {list(TRACE_BUILDERS)})")
    if not ids:
        raise ValueError("cost_suite_grid needs at least one trace id")
    traces = {trace_id: build_registered_trace(trace_id) for trace_id in ids}

    m = grid.n_machines
    hits = misses = 0
    with perfmon_span("explore:cost_suite_grid", machines=m, traces=len(ids)):
        if store is None:
            chunks = [grid]
        else:
            chunks = [
                grid.subset(np.arange(start, min(start + chunk_machines, m)))
                for start in range(0, m, chunk_machines)
            ]
        code_digest = closure_digest(CHUNK_KEY_SEEDS) if store is not None else None
        # The stack is machine-independent: build it once, reuse it for
        # every chunk's fused suite × subgrid pass.  Deferred until the
        # first miss — a fully-warm sweep never stacks at all.
        suite_columns: SuiteColumns | None = None

        chunk_costs: list[dict[str, GridTraceCost]] = []
        for subgrid in chunks:
            costs = None
            key = None
            if store is not None:
                key = grid_chunk_key(subgrid, ids, memory_dilation, code_digest)
                payload = store.get(CHUNK_NAMESPACE, key)
                if payload is not None:
                    costs = _costs_from_payload(payload, subgrid, ids, traces)
            if costs is None:
                misses += 1
                if suite_columns is None:
                    suite_columns = SuiteColumns.from_traces(
                        (trace_id, traces[trace_id]) for trace_id in ids
                    )
                costs = dict(
                    zip(ids, cost_suite_trace_grid(suite_columns, subgrid, memory_dilation))
                )
                if store is not None:
                    store.put(CHUNK_NAMESPACE, key, _chunk_payload(costs, ids, memory_dilation))
            else:
                hits += 1
            chunk_costs.append(costs)

        merged: dict[str, GridTraceCost] = {}
        for trace_id in ids:
            parts = [costs[trace_id] for costs in chunk_costs]
            if len(parts) == 1:
                merged[trace_id] = parts[0]
            else:
                merged[trace_id] = GridTraceCost(
                    trace_name=parts[0].trace_name,
                    machine_names=grid.names,
                    cycles=np.concatenate([p.cycles for p in parts]),
                    seconds=np.concatenate([p.seconds for p in parts]),
                    mflops=np.concatenate([p.mflops for p in parts]),
                    bandwidth_bytes_per_s=np.concatenate(
                        [p.bandwidth_bytes_per_s for p in parts]
                    ),
                    raw_flops=parts[0].raw_flops,
                    flop_equivalents=parts[0].flop_equivalents,
                    words_moved=parts[0].words_moved,
                )

        suite_seconds = fsum_columns(np.stack([merged[t].seconds for t in ids]))
        total_flop_equivalents = math.fsum(merged[t].flop_equivalents for t in ids)
        total_words_moved = math.fsum(merged[t].words_moved for t in ids)
        zero = suite_seconds == 0.0
        safe = np.where(zero, 1.0, suite_seconds)
        suite_mflops = np.where(zero, 0.0, total_flop_equivalents / safe / MEGA)
        suite_bandwidth = np.where(zero, 0.0, (total_words_moved * 8.0) / safe)

    if perfmon_active() is not None:
        perfmon_record(
            "explore",
            {
                "suites": 1.0,
                "machines": float(m),
                "trace_costings": float(misses * len(ids)),
                "chunk_hits": float(hits),
                "chunk_misses": float(misses),
            },
        )
    return GridSuiteResult(
        machine_names=grid.names,
        trace_ids=ids,
        traces=merged,
        suite_seconds=suite_seconds,
        suite_mflops=suite_mflops,
        suite_bandwidth_bytes_per_s=suite_bandwidth,
        chunk_hits=hits,
        chunk_misses=misses,
    )
