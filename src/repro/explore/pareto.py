"""Pareto-frontier extraction over swept design spaces.

The paper's Table 1 frames the SX-4 in exactly these coordinates:
delivered Mflops against the hardware provisioned to earn them (peak
rate, memory ports, interleave).  :func:`cost_proxy` reduces a grid
row's provisioned hardware to one scalar — peak Gflops plus port GB/s
plus interleave units — and :func:`pareto_points` extracts the machines
no other machine beats on *all* of (suite Mflops, suite bandwidth,
-cost): the designs where spending more silicon actually buys
performance on this workload mix.

The proxy is a screening heuristic, not a price list — it only needs to
order "more hardware" above "less hardware" consistently, and the units
are chosen so a J90-class and an SX-4-class machine land within an
order of magnitude of each other on each term.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.explore.engine import GridSuiteResult
from repro.machine.grid import MachineGrid
from repro.units import MEGA

__all__ = ["ParetoPoint", "cost_proxy", "pareto_front", "pareto_points"]

#: Interleave normalizer: one "interleave unit" per 64 memory banks
#: (vector machines) or per megabyte of cache (cache machines) — a bank
#: of fast SRAM interleave is far more silicon than a byte of cache.
_BANKS_PER_UNIT = 64.0
_CACHE_BYTES_PER_UNIT = MEGA


def cost_proxy(grid: MachineGrid) -> np.ndarray:
    """Hardware-provisioning scalar per grid row (bigger = more silicon).

    ``peak Gflops + port GB/s + interleave units``, each term computed
    from the grid columns: peak rate is pipes*sets (vector) or
    flops/cycle (cache machine) times the clock; port bandwidth is the
    memory-port (or cache-miss) word rate; interleave is bank count or
    cache size against :data:`_BANKS_PER_UNIT`-style normalizers.
    """
    frequency_ghz = 1.0 / grid.period_ns  # 1/ns = GHz
    vector = grid.has_vector
    peak_gflops = np.where(
        vector,
        grid.pipes * grid.concurrent_sets * frequency_ghz,
        grid.flops_per_cycle * frequency_ghz,
    )
    port_gbps = np.where(
        vector,
        grid.port_words_per_cycle * 8.0 * frequency_ghz,
        grid.cache_mem_words_per_cycle * 8.0 * frequency_ghz,
    )
    interleave = np.where(
        vector,
        grid.banks / _BANKS_PER_UNIT,
        grid.cache_size_bytes / _CACHE_BYTES_PER_UNIT,
    )
    return peak_gflops + port_gbps + interleave


def pareto_front(values: np.ndarray, maximize: tuple[bool, ...]) -> np.ndarray:
    """Indices of the non-dominated rows of ``values`` (m, k), ascending.

    Row ``i`` is dominated when some row is at least as good on every
    objective and strictly better on one (``maximize`` orients each
    column).  Ties survive: identical rows dominate nobody, so duplicate
    optima all appear.
    """
    if values.ndim != 2:
        raise ValueError(f"values must be 2-D (machines x objectives), got {values.shape}")
    if values.shape[1] != len(maximize):
        raise ValueError(
            f"{values.shape[1]} objectives but {len(maximize)} maximize flags"
        )
    oriented = values * np.where(np.asarray(maximize), 1.0, -1.0)
    m = oriented.shape[0]
    keep = np.ones(m, dtype=bool)
    for i in range(m):
        if not keep[i]:
            continue
        at_least = (oriented >= oriented[i]).all(axis=1)
        better = (oriented > oriented[i]).any(axis=1)
        if (at_least & better).any():
            keep[i] = False
    return np.flatnonzero(keep)


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated machine: what it delivers and what it costs."""

    index: int
    machine: str
    mflops: float
    bandwidth_bytes_per_s: float
    cost_proxy: float


def pareto_points(result: GridSuiteResult, grid: MachineGrid) -> list[ParetoPoint]:
    """The Pareto frontier of a costed sweep, in grid order.

    Objectives: maximize suite Mflops, maximize suite bandwidth,
    minimize :func:`cost_proxy`.
    """
    if grid.n_machines != result.n_machines:
        raise ValueError(
            f"grid has {grid.n_machines} machines but result has {result.n_machines}"
        )
    proxy = cost_proxy(grid)
    values = np.stack(
        [result.suite_mflops, result.suite_bandwidth_bytes_per_s, proxy], axis=1
    )
    indices = pareto_front(values, maximize=(True, True, False))
    return [
        ParetoPoint(
            index=int(i),
            machine=result.machine_names[i],
            mflops=float(result.suite_mflops[i]),
            bandwidth_bytes_per_s=float(result.suite_bandwidth_bytes_per_s[i]),
            cost_proxy=float(proxy[i]),
        )
        for i in indices
    ]
