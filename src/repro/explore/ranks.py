"""Rank-inversion maps: where machine ordering flips between benchmarks.

Table 1's central observation is that benchmark choice reorders
machines — HINT and the kernel benchmarks crown different processors
because they stress arithmetic peak versus memory behavior.  A rank
inversion generalizes that to a swept design space: machine ``x``
*inverts* between traces ``a`` and ``b`` (relative to a reference
machine) when it beats the reference on one trace but not the other.
The inverted region of a sweep is exactly where "which benchmark did
you run?" decides the ranking — the paper's Table 1 effect, mapped over
thousands of hypothetical machines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.explore.engine import GridSuiteResult

__all__ = [
    "DEFAULT_REFERENCE",
    "DEFAULT_TRACE_PAIR",
    "RankInversionMap",
    "rank_inversion_map",
]

#: Table 1's sharpest contrast: HINT (arithmetic-weighted) against
#: RADABS (memory/intrinsic-weighted).
DEFAULT_TRACE_PAIR = ("hint", "radabs")

#: The paper's baseline vector machine.
DEFAULT_REFERENCE = "Cray Y-MP"


@dataclass(frozen=True)
class RankInversionMap:
    """Per-machine inversion verdicts for one (trace_a, trace_b, ref)."""

    trace_a: str
    trace_b: str
    reference: str
    machine_names: tuple[str, ...]
    beats_reference_a: np.ndarray  # bool per machine
    beats_reference_b: np.ndarray  # bool per machine
    inverted: np.ndarray  # bool per machine

    @property
    def n_machines(self) -> int:
        return len(self.machine_names)

    @property
    def n_inverted(self) -> int:
        return int(self.inverted.sum())

    @property
    def inverted_names(self) -> tuple[str, ...]:
        return tuple(
            name for name, flag in zip(self.machine_names, self.inverted) if flag
        )


def rank_inversion_map(
    result: GridSuiteResult,
    trace_a: str = DEFAULT_TRACE_PAIR[0],
    trace_b: str = DEFAULT_TRACE_PAIR[1],
    reference: str = DEFAULT_REFERENCE,
) -> RankInversionMap:
    """Which machines rank differently on ``trace_a`` versus ``trace_b``.

    ``reference`` names a machine row of the result (sweeps built with
    ``include_presets=True`` embed the canonical machines, so the
    paper's processors are available by name).  A machine is inverted
    when it beats the reference's Mflops on exactly one of the traces.
    """
    for trace_id in (trace_a, trace_b):
        if trace_id not in result.traces:
            raise ValueError(
                f"trace {trace_id!r} not in result (has: {list(result.trace_ids)})"
            )
    try:
        ref = result.machine_names.index(reference)
    except ValueError:
        raise ValueError(
            f"reference machine {reference!r} not in result; build the sweep "
            f"with include_presets=True or pick one of {list(result.machine_names)[:8]}"
        ) from None
    mflops_a = result.traces[trace_a].mflops
    mflops_b = result.traces[trace_b].mflops
    beats_a = mflops_a > mflops_a[ref]
    beats_b = mflops_b > mflops_b[ref]
    return RankInversionMap(
        trace_a=trace_a,
        trace_b=trace_b,
        reference=reference,
        machine_names=result.machine_names,
        beats_reference_a=beats_a,
        beats_reference_b=beats_b,
        inverted=beats_a != beats_b,
    )
