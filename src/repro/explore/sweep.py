"""Parameter sweeps: cartesian machine grids anchored at calibrated presets.

A sweep names an anchor preset (any id in
:data:`repro.machine.presets.PRESET_FACTORIES`) and a list of axes —
``(parameter, values)`` pairs built with :func:`linear_axis`,
:func:`log_axis`, or :func:`explicit_axis`.  :meth:`ParameterSweep.build`
lowers the anchor into a one-row :class:`~repro.machine.grid.MachineGrid`,
repeats it over the cartesian product of the axes, and writes each axis
into its grid column — thousands of hypothetical machines without ever
constructing a :class:`~repro.machine.processor.Processor`.

Two axis families exist:

* **direct** parameters name a component constructor argument
  (``"clock.period_ns"``, ``"vector.pipes"``, ``"memory.banks"``, ...)
  and overwrite the column;
* **degradation** parameters (``"degraded.offline_pipes"``,
  ``"degraded.offline_banks"``) replicate
  :func:`repro.faults.degraded.degrade_processor`'s arithmetic on the
  columns — pipes shrink and the surviving pipes' intrinsic rates scale
  up by ``pipes / remaining``, exactly as the per-machine constructor
  does, so a sweep point materializes to the same machine a
  ``DegradedMachine`` would build.

Direct axes apply before degradation axes (degradations read the swept
pipe/bank counts), matching "build the variant, then degrade it".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.machine.grid import MachineGrid
from repro.machine.presets import canonical_machines, preset_processor

__all__ = [
    "Axis",
    "ParameterSweep",
    "PARAMETERS",
    "linear_axis",
    "log_axis",
    "explicit_axis",
]


@dataclass(frozen=True)
class _ParameterSpec:
    """How one sweepable parameter maps onto grid columns."""

    column: str | None  # direct grid column, None for degradations
    integer: bool = False  # values are rounded to integers
    vector_only: bool = False  # requires a vector-machine anchor
    degrade: str | None = None  # "pipes" | "banks"


#: Every sweepable parameter.  Dotted names mirror the component
#: constructor the value feeds (``repro.machine.grid`` column names are
#: the flat spelling of the same parameters).
PARAMETERS: dict[str, _ParameterSpec] = {
    "clock.period_ns": _ParameterSpec(column="period_ns"),
    "vector.pipes": _ParameterSpec(column="pipes", integer=True, vector_only=True),
    "vector.concurrent_sets": _ParameterSpec(
        column="concurrent_sets", integer=True, vector_only=True
    ),
    "vector.startup_cycles": _ParameterSpec(column="startup_cycles", vector_only=True),
    "vector.register_length": _ParameterSpec(
        column="register_length", integer=True, vector_only=True
    ),
    "vector.stripmine_cycles": _ParameterSpec(column="stripmine_cycles", vector_only=True),
    "memory.banks": _ParameterSpec(column="banks", integer=True, vector_only=True),
    "memory.bank_busy_cycles": _ParameterSpec(column="bank_busy_cycles", vector_only=True),
    "memory.port_words_per_cycle": _ParameterSpec(
        column="port_words_per_cycle", vector_only=True
    ),
    "memory.stride_base_penalty": _ParameterSpec(
        column="stride_base_penalty", vector_only=True
    ),
    "memory.gather_base_penalty": _ParameterSpec(
        column="gather_base_penalty", vector_only=True
    ),
    "scalar.issue_width": _ParameterSpec(column="issue_width"),
    "scalar.flops_per_cycle": _ParameterSpec(column="flops_per_cycle"),
    "cache.size_bytes": _ParameterSpec(column="cache_size_bytes", integer=True),
    "cache.line_bytes": _ParameterSpec(column="cache_line_bytes", integer=True),
    "cache.hit_cycles_per_word": _ParameterSpec(column="cache_hit_cycles_per_word"),
    "cache.mem_words_per_cycle": _ParameterSpec(column="cache_mem_words_per_cycle"),
    "degraded.offline_pipes": _ParameterSpec(
        column=None, integer=True, vector_only=True, degrade="pipes"
    ),
    "degraded.offline_banks": _ParameterSpec(
        column=None, integer=True, vector_only=True, degrade="banks"
    ),
}


@dataclass(frozen=True)
class Axis:
    """One swept parameter and the values it takes."""

    parameter: str
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.parameter not in PARAMETERS:
            known = ", ".join(sorted(PARAMETERS))
            raise ValueError(f"unknown sweep parameter {self.parameter!r} (known: {known})")
        if not self.values:
            raise ValueError(f"axis {self.parameter!r} needs at least one value")


def linear_axis(parameter: str, start: float, stop: float, steps: int) -> Axis:
    """``steps`` evenly spaced values from start to stop, inclusive."""
    if steps < 1:
        raise ValueError(f"axis {parameter!r} needs at least one step, got {steps}")
    return Axis(parameter, tuple(float(v) for v in np.linspace(start, stop, steps)))


def log_axis(parameter: str, start: float, stop: float, steps: int) -> Axis:
    """``steps`` geometrically spaced values from start to stop, inclusive."""
    if steps < 1:
        raise ValueError(f"axis {parameter!r} needs at least one step, got {steps}")
    if start <= 0 or stop <= 0:
        raise ValueError(f"log axis {parameter!r} needs positive endpoints")
    return Axis(parameter, tuple(float(v) for v in np.geomspace(start, stop, steps)))


def explicit_axis(parameter: str, values) -> Axis:
    """An axis over explicitly listed values."""
    return Axis(parameter, tuple(float(v) for v in values))


def _format_value(value: float, integer: bool) -> str:
    return str(int(round(value))) if integer else format(value, "g")


@dataclass(frozen=True)
class ParameterSweep:
    """A cartesian sweep around one anchor preset.

    ``include_presets`` prepends the six canonical machines
    (:func:`repro.machine.presets.canonical_machines`) to the built
    grid — the embedded parity anchor CI's explore-smoke job checks,
    and the reference rows rank-inversion maps compare against.
    """

    anchor: str
    axes: tuple[Axis, ...] = ()
    include_presets: bool = False

    @property
    def n_points(self) -> int:
        """Sweep points, excluding any prepended presets."""
        return math.prod(len(axis.values) for axis in self.axes)

    def build(self) -> MachineGrid:
        """The sweep as a validated :class:`MachineGrid`."""
        base = preset_processor(self.anchor)
        for axis in self.axes:
            if PARAMETERS[axis.parameter].vector_only and base.vector is None:
                raise ValueError(
                    f"parameter {axis.parameter!r} needs a vector-machine anchor; "
                    f"{self.anchor!r} is a cache machine"
                )
        n = self.n_points
        grid = MachineGrid.from_processors([base]).subset(np.zeros(n, dtype=np.intp))

        # Cartesian product: first axis varies slowest (meshgrid "ij").
        if self.axes:
            meshes = np.meshgrid(
                *[np.array(axis.values, dtype=np.float64) for axis in self.axes],
                indexing="ij",
            )
            flattened = [mesh.reshape(-1) for mesh in meshes]
        else:
            flattened = []

        direct = [
            (axis, values)
            for axis, values in zip(self.axes, flattened)
            if PARAMETERS[axis.parameter].degrade is None
        ]
        degradations = [
            (axis, values)
            for axis, values in zip(self.axes, flattened)
            if PARAMETERS[axis.parameter].degrade is not None
        ]

        for axis, values in direct:
            spec = PARAMETERS[axis.parameter]
            column = getattr(grid, spec.column)
            if spec.integer:
                values = np.rint(values)
            column[:] = values.astype(column.dtype)

        for axis, values in degradations:
            spec = PARAMETERS[axis.parameter]
            offline = np.rint(values)
            if spec.degrade == "pipes":
                remaining = grid.pipes - offline
                if (remaining < 1.0).any():
                    raise ValueError(
                        f"axis {axis.parameter!r} takes every pipe offline at "
                        f"some sweep point (a degraded vector unit keeps >= 1)"
                    )
                # Exactly degrade_processor's arithmetic: surviving pipes
                # carry the intrinsic load, so per-element rates scale by
                # pipes / remaining.
                scale = grid.pipes / remaining
                grid.vector_intrinsic_rates[:] = grid.vector_intrinsic_rates * scale[:, None]
                grid.pipes[:] = remaining
            else:
                remaining_banks = grid.banks - offline.astype(np.int64)
                if (remaining_banks < 1).any():
                    raise ValueError(
                        f"axis {axis.parameter!r} takes every bank offline at "
                        f"some sweep point (a degraded memory keeps >= 1)"
                    )
                grid.banks[:] = remaining_banks

        names = self._point_names(flattened)
        swept = MachineGrid(names=names, **{k: v for k, v in grid._columns()})
        swept.validate()
        if not self.include_presets:
            return swept
        presets = MachineGrid.from_processors(list(canonical_machines().values()))
        return MachineGrid.concat([presets, swept])

    def _point_names(self, flattened: list[np.ndarray]) -> tuple[str, ...]:
        if not self.axes:
            return (self.anchor,)
        names = []
        for i in range(self.n_points):
            parts = ",".join(
                f"{axis.parameter}={_format_value(values[i], PARAMETERS[axis.parameter].integer)}"
                for axis, values in zip(self.axes, flattened)
            )
            names.append(f"{self.anchor}[{parts}]")
        return tuple(names)
