"""Fault injection and resilience: the system under perturbation.

The paper's Section 2 machine is built to keep running — SUPER-UX
checkpoint/restart "with no special programming" (2.6.2), NQS
requeueing (2.6.3), hardware operating with resources configured out.
This package models both halves of that claim:

``inject``
    the fault vocabulary (crash/error/timeout/slow/corrupt), the named
    hook sites in the engine, and the deterministic injector;
``plan``
    seeded :class:`FaultPlan` sampling — one seed expands to a
    concrete, portable action list;
``retry``
    bounded retry with exponential backoff and *deterministic* jitter,
    plus the pool-to-serial graceful-degradation policy;
``degraded``
    any machine preset with pipes, banks, IXS lanes or IOPs offline —
    still priced bit-identically by both costing engines;
``recovery``
    checkpoint/restart harnesses asserting kill-and-restore
    integrations finish bit-identical to uninterrupted ones;
``chaos``
    the end-to-end harness (``python -m repro.faults chaos --seed N``)
    that runs the suite under a sampled plan and asserts the standing
    invariants.

Determinism is the design constraint throughout: every fault decision
derives from the seed, so a chaos run is as replayable as the
simulator it perturbs.
"""

from repro.faults.degraded import (
    DegradedMachine,
    Degradation,
    degrade_crossbar,
    degrade_iop,
    degrade_node,
    degrade_processor,
    standard_degradations,
)
from repro.faults.inject import (
    FAULT_KINDS,
    FAULT_SITES,
    FaultAction,
    FaultInjector,
    fault_point,
)
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy, chaos_retry_policy

__all__ = [
    "DegradedMachine",
    "Degradation",
    "degrade_crossbar",
    "degrade_iop",
    "degrade_node",
    "degrade_processor",
    "standard_degradations",
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultAction",
    "FaultInjector",
    "fault_point",
    "FaultPlan",
    "RetryPolicy",
    "chaos_retry_policy",
]
