"""The chaos harness: run the suite under faults, assert the invariants.

One :func:`run_chaos` call is the whole resilience story end to end:

1. **Clean reference** — the suite through the engine, no faults; its
   canonical archive bytes are the yardstick.
2. **Chaos run** — same suite, fresh store, under a seeded
   :class:`~repro.faults.plan.FaultPlan` and the chaos retry policy,
   inside a perfmon profile.  Invariants: every job completes within
   the retry budget, archives are **byte-identical** to the clean run,
   and the ``fault.*`` counters agree with what the injector reports.
3. **Store recovery** — a warm re-run over the store the chaos run
   corrupted: every damaged entry must be quarantined (not silently
   overwritten) and recomputed, archives again byte-identical.
4. **Degraded parity** — presets × degradations × kernel traces, the
   ``legacy`` and ``compiled`` costing engines must agree bit-exactly
   on every degraded machine.
5. **Recovery** — CCM2/MOM/POP killed at a seeded step and restored
   from checkpoint finish bit-identical to uninterrupted integrations;
   conservation diagnostics stay healthy.
6. **NQS requeue** — a seeded batch workload across node faults: every
   job finishes, requeue accounting adds up.
7. **Service lifecycle** — the benchmark service walked through its
   resilience story on a logical clock: a lapsed deadline fails fast, a
   wedged worker's job is requeued behind an epoch fence, an injected
   heartbeat fault is supervised, a mid-job drain checkpoints/bounces/
   journals, and the restarted app finishes the checkpointed job
   byte-identical to an uninterrupted one.

Everything derived from the seed is deterministic — the report
contains no wall-clock times, so two runs with the same seed produce
byte-identical report JSON (CI diffs them).  The engine stages default
to ``jobs=1``: with a process pool, which jobs a dying worker takes
down with it depends on scheduling, which would make attempt counts
run-dependent.
"""

from __future__ import annotations

import random
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.executor import run_engine
from repro.engine.store import ResultStore, canonical_bytes
from repro.faults.plan import FaultPlan
from repro.faults.recovery import app_factories, run_with_recovery, states_identical
from repro.faults.retry import chaos_retry_policy
from repro.perfmon.collector import profile as perfmon_profile
from repro.suite.experiments import EXPERIMENTS
from repro.superux.nqs import BatchJob, NQSQueue, QueueComplex

__all__ = [
    "CHAOS_SCHEMA",
    "QUICK_EXPERIMENTS",
    "DEGRADED_TRACES",
    "ChaosCheck",
    "ChaosReport",
    "run_chaos",
]

CHAOS_SCHEMA = 1

#: The ``--quick`` subset: cheap experiments spanning kernels, apps and
#: multinode models, enough to exercise every fault kind.
QUICK_EXPERIMENTS = ("sec2", "table1", "figure6", "table3", "sec4.4", "table7")

#: Kernel traces the degraded-parity sweep prices on every machine.
DEGRADED_TRACES = ("copy", "ia", "stream", "rfft", "radabs")
_QUICK_TRACES = ("copy", "rfft")


@dataclass(frozen=True)
class ChaosCheck:
    """One asserted invariant and how it went."""

    name: str
    passed: bool
    detail: str

    def to_dict(self) -> dict:
        return {"name": self.name, "passed": self.passed, "detail": self.detail}


@dataclass
class ChaosReport:
    """Everything one chaos run established (no wall-clock anywhere)."""

    seed: int
    quick: bool
    jobs: int
    exp_ids: tuple[str, ...]
    plan: FaultPlan
    stages: dict[str, dict] = field(default_factory=dict)
    checks: list[ChaosCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def check(self, name: str, passed: bool, detail: str) -> None:
        self.checks.append(ChaosCheck(name=name, passed=bool(passed), detail=detail))

    def to_dict(self) -> dict:
        return {
            "schema": CHAOS_SCHEMA,
            "seed": self.seed,
            "quick": self.quick,
            "jobs": self.jobs,
            "exp_ids": list(self.exp_ids),
            "plan": self.plan.to_dict(),
            "stages": self.stages,
            "checks": [check.to_dict() for check in self.checks],
            "passed": self.passed,
        }

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        failed = [check.name for check in self.checks if not check.passed]
        tail = f" — failing: {', '.join(failed)}" if failed else ""
        return (
            f"chaos (seed {self.seed}{', quick' if self.quick else ''}): "
            f"{verdict}, {len(self.checks)} invariants over "
            f"{len(self.exp_ids)} experiments{tail}"
        )


def _archive_bytes(report) -> dict[str, bytes]:
    return {r.exp_id: canonical_bytes(r.experiment) for r in report.successes}


def _engine_stages(chaos: ChaosReport, workdir: Path) -> None:
    """Stages 1-3: clean reference, chaos run, store recovery."""
    exp_ids = list(chaos.exp_ids)
    clean = run_engine(exp_ids, jobs=chaos.jobs,
                       store=ResultStore(workdir / "clean"))
    reference = _archive_bytes(clean)
    chaos.check("clean_run_succeeds", not clean.failures,
                f"{len(clean.failures)} failures in the fault-free run")
    chaos.stages["clean"] = {"experiments": len(exp_ids),
                             "failures": len(clean.failures)}

    injector = chaos.plan.injector()
    chaos_store = ResultStore(workdir / "chaos")
    with perfmon_profile(kind="chaos", seed=chaos.seed) as prof:
        report = run_engine(
            exp_ids, jobs=chaos.jobs, store=chaos_store,
            retry=chaos_retry_policy(), injector=injector,
        )
    failed = [f.exp_id for f in report.failures]
    chaos.check(
        "every_job_completes_within_retry_budget", not failed,
        f"failed after retries: {', '.join(failed) or 'none'}",
    )
    faulted = _archive_bytes(report)
    identical = [i for i in reference if faulted.get(i) == reference[i]]
    chaos.check(
        "chaos_archives_byte_identical", len(identical) == len(reference),
        f"{len(identical)}/{len(reference)} archives byte-identical to clean run",
    )
    injected = prof.counters.get("fault", "injected")
    chaos.check(
        "fault_counters_match_injector",
        injected == float(len(injector.applied)),
        f"fault.injected={injected:g} vs {len(injector.applied)} applied actions",
    )
    chaos.check(
        "whole_plan_applied", not injector.unapplied(),
        f"{len(injector.unapplied())} planned actions never fired",
    )
    planned_failures: dict[str, int] = {}
    for action in chaos.plan.actions:
        if action.site == "executor_job" and action.kind != "slow":
            planned_failures[action.exp_id] = planned_failures.get(action.exp_id, 0) + 1
    expected = {i: planned_failures.get(i, 0) + 1 for i in exp_ids}
    chaos.check(
        "attempts_match_plan", report.attempts == expected,
        "attempt counts equal planned failures + 1 for every job",
    )
    chaos.stages["chaos"] = {
        "failures": len(failed),
        "retry_rounds": report.retry_rounds,
        "serial_fallback": report.serial_fallback,
        "attempts": {i: n for i, n in sorted(report.attempts.items())},
        "injected_by_site": injector.applied_counts(),
        "fault_counters": {
            "injected": injected,
            "retries": prof.counters.get("fault", "retries"),
            "executor_job": prof.counters.get("fault", "executor_job"),
            "store_entry": prof.counters.get("fault", "store_entry"),
        },
    }

    # Stage 3: the chaos run corrupted entries *after* writing them; a
    # warm pass must quarantine and recompute exactly those.
    corrupted = [a.exp_id for a in injector.applied if a.kind == "corrupt"]
    warm_store = ResultStore(workdir / "chaos")
    warm = run_engine(exp_ids, jobs=chaos.jobs, store=warm_store)
    warm_bytes = _archive_bytes(warm)
    chaos.check(
        "corrupt_entries_quarantined",
        len(warm_store.quarantine_log) == len(corrupted),
        f"{len(warm_store.quarantine_log)} quarantined vs "
        f"{len(corrupted)} corrupted",
    )
    recomputed = [r.exp_id for r in warm.executed]
    chaos.check(
        "corrupt_entries_recomputed", sorted(recomputed) == sorted(corrupted),
        f"recomputed {', '.join(sorted(recomputed)) or 'nothing'}",
    )
    identical_warm = [i for i in reference if warm_bytes.get(i) == reference[i]]
    chaos.check(
        "recovered_archives_byte_identical",
        len(identical_warm) == len(reference) and not warm.failures,
        f"{len(identical_warm)}/{len(reference)} archives identical after recovery",
    )
    chaos.stages["store"] = {
        "corrupted": sorted(corrupted),
        "quarantined": len(warm_store.quarantine_log),
        "recomputed": sorted(recomputed),
    }


def _degraded_stage(chaos: ChaosReport) -> None:
    """Stage 4: legacy/compiled bit-parity on every degraded machine."""
    from repro.analysis.traces import build_registered_trace
    from repro.faults.degraded import PRESETS, DegradedMachine, standard_degradations

    presets = ("sx4",) if chaos.quick else tuple(sorted(PRESETS))
    trace_ids = _QUICK_TRACES if chaos.quick else DEGRADED_TRACES
    traces = {trace_id: build_registered_trace(trace_id) for trace_id in trace_ids}
    cases = 0
    mismatches: list[str] = []
    for preset in presets:
        for degradation in standard_degradations(preset):
            processor = DegradedMachine(preset, degradation).processor()
            for trace_id, trace in traces.items():
                legacy = processor.execute(trace, engine="legacy")
                compiled = processor.execute(trace, engine="compiled")
                cases += 1
                if (legacy.cycles != compiled.cycles
                        or legacy.seconds != compiled.seconds):
                    mismatches.append(f"{preset}/{degradation.name}/{trace_id}")
    chaos.check(
        "degraded_costing_parity_bit_exact", not mismatches,
        f"{cases} preset x degradation x trace cases"
        + (f"; mismatched: {', '.join(mismatches)}" if mismatches else ""),
    )
    chaos.stages["degraded"] = {
        "presets": list(presets),
        "traces": list(trace_ids),
        "cases": cases,
        "mismatches": mismatches,
    }


def _recovery_stage(chaos: ChaosReport) -> None:
    """Stage 5: kill-and-restore is bit-identical; conservation holds."""
    rng = random.Random(f"{chaos.seed}:recovery")
    factories = app_factories()
    plans = {"ccm2": (8, 3), "mom": (10, 4), "pop": (6, 2)}
    apps = ("ccm2",) if chaos.quick else tuple(plans)
    stage: dict[str, dict] = {}
    for app in apps:
        steps, every = plans[app]
        kill_after = rng.randint(1, steps)
        make = factories[app]
        recovered, report = run_with_recovery(
            make, steps=steps, checkpoint_every=every, kill_after_step=kill_after
        )
        uninterrupted = make()
        uninterrupted.run(steps)
        identical = states_identical(recovered, uninterrupted)
        healthy = all(d.healthy for d in uninterrupted.diagnostics)
        chaos.check(
            f"recovery_bit_identical_{app}", identical,
            f"killed after step {kill_after}/{steps}, replayed "
            f"{report.replayed_steps} steps",
        )
        chaos.check(
            f"conservation_diagnostics_healthy_{app}", healthy,
            f"{len(uninterrupted.diagnostics)} diagnostic records",
        )
        stage[app] = dict(report.to_dict(), identical=identical, healthy=healthy)
    # The explicit conservation law: dynamics-only CCM2 conserves mass.
    from repro.apps.ccm2.gaussian import GaussianGrid
    from repro.apps.ccm2.model import CCM2Model

    model = CCM2Model(GaussianGrid(32, 64), trunc=21, nlev=4, physics_coupling=0.0)
    diags = model.run(5)
    drift = abs(diags[-1].mass - diags[0].mass) / abs(diags[0].mass)
    chaos.check(
        "ccm2_mass_conserved", drift < 1e-11,
        f"relative mass drift {drift:.3e} over 5 dynamics-only steps",
    )
    stage["ccm2_mass_rel_drift"] = {"drift": drift}
    chaos.stages["recovery"] = stage


def _nqs_stage(chaos: ChaosReport) -> None:
    """Stage 6: node faults requeue batch work, nothing is lost."""
    rng = random.Random(f"{chaos.seed}:nqs")
    complex_ = QueueComplex(
        queues=[
            NQSQueue(name="express", priority=10, run_limit=2,
                     max_cpus_per_job=16, max_run_seconds=3600.0),
            NQSQueue(name="batch", priority=0, run_limit=4,
                     max_cpus_per_job=32, max_run_seconds=86400.0),
        ],
        node_cpus=32,
    )
    jobs = []
    for i in range(5):
        job = BatchJob(
            name=f"chaos-job-{i}",
            cpus=rng.randint(2, 12),
            memory_gb=round(rng.uniform(0.5, 4.0), 3),
            duration_s=round(rng.uniform(120.0, 600.0), 1),
            submit_time=round(rng.uniform(0.0, 60.0), 1),
            checkpoint_interval_s=45.0 if i % 2 == 0 else None,
        )
        jobs.append(job)
        complex_.submit(job, "express" if job.cpus <= 16 and i % 3 == 0 else "batch")
    faults = sorted(round(rng.uniform(60.0, 400.0), 1) for _ in range(2))
    makespan = complex_.run(node_faults=faults, fault_downtime_s=30.0)
    finished = all(job.finish_time is not None for job in jobs)
    requeues = sum(job.requeues for job in jobs)
    accounted = sorted(record.job for record in complex_.accounting)
    chaos.check(
        "nqs_requeued_jobs_all_finish",
        finished and accounted == sorted(job.name for job in jobs),
        f"{len(jobs)} jobs, {requeues} requeues across "
        f"{len(faults)} node faults, makespan {makespan:g} s",
    )
    chaos.stages["nqs"] = {
        "jobs": len(jobs),
        "node_faults": list(faults),
        "requeues": requeues,
        "makespan_s": makespan,
        "accounting": [
            {"job": r.job, "queue": r.queue, "requeues": r.requeues,
             "ran_s": r.ran_s, "cpu_seconds": r.cpu_seconds}
            for r in sorted(complex_.accounting, key=lambda r: r.job)
        ],
    }


def _service_stage(chaos: ChaosReport, workdir: Path) -> None:
    """Stage 7: the service lifecycle on a logical clock.

    One single-threaded walk through the whole resilience story of
    DESIGN.md §5k — no sockets, no threads, no wall clock anywhere the
    report can see, so two seeded runs produce byte-identical stage
    dicts:

    * a job whose ``deadline_s`` lapses while queued fails as a timeout
      without spending engine time;
    * a worker that claims a job and stops heartbeating is caught by
      the watchdog: the job is requeued, the epoch fences the wedged
      worker's late write, and a fresh epoch completes the job;
    * an injected ``worker_heartbeat`` fault crashes the loop body and
      the supervisor restarts it (the job still completes);
    * a drain mid-job checkpoints the RUNNING record back to PENDING,
      bounces new submissions with ``503 + Retry-After``, sweeps orphan
      column segments, and journals a drain record (through the
      ``service_drain`` fault site);
    * a restarted app resumes the checkpointed job and finishes it
      **byte-identical** to an app that was never interrupted.
    """
    from repro.faults.inject import FaultAction, FaultInjector
    from repro.service.app import ServiceApp
    from repro.service.requests import DEFAULT_TENANT

    import json

    now = [0.0]

    def clock() -> float:
        return now[0]

    # Two *distinct* cheap experiments: the second job must get its own
    # content digest, or the drain walk would hit the first job's cache.
    distinct = list(dict.fromkeys(chaos.exp_ids + ("table1", "table2")))
    exp_a, exp_b = distinct[0], distinct[1]

    def submit(app: ServiceApp, ids: list[str], deadline_s: float | None = None):
        payload: dict = {"kind": "suite", "suite": {"ids": ids}}
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        response = app.submit(json.dumps(payload).encode("utf-8"))
        return response, json.loads(response.body)

    app = ServiceApp(root=workdir / "service", clock=clock)

    # --- deadline: lapses while queued, fails without engine time -----
    _, submitted = submit(app, [exp_a], deadline_s=5.0)
    job_deadline = submitted["job_id"]
    now[0] = 10.0
    app.run_pending(1, epoch=app.worker_epoch)
    expired = app.spool.get(DEFAULT_TENANT, job_deadline)
    chaos.check(
        "service_deadline_expires_before_start",
        expired is not None
        and expired.state == "failed"
        and (expired.error or "").startswith("timeout"),
        f"queued job failed as: {expired.error if expired else 'missing'}",
    )

    # --- watchdog: wedge, requeue, fence, recover ---------------------
    _, submitted = submit(app, [exp_a])  # same digest; resubmits the failure
    job_a = submitted["job_id"]
    stale_epoch = app.worker_epoch
    claimed = app.next_pending()
    record = app.spool.get(*claimed)
    app.spool.mark_running(record)
    app.running_job = claimed  # a worker claimed the job, then wedged
    now[0] = 10.0 + app.stall_timeout_s + 1.0
    event = app.watchdog_check()
    chaos.check(
        "service_watchdog_requeues_wedged_job",
        event is not None and event["requeued"] == [job_a],
        f"watchdog event: {event}",
    )
    stale_write = app.run_one(DEFAULT_TENANT, job_a, epoch=stale_epoch)
    chaos.check(
        "service_stale_epoch_write_fenced",
        stale_write is None
        and app.profile.counters.get("watchdog", "fenced") == 1.0,
        "the wedged worker's late write was discarded behind the epoch fence",
    )

    # --- heartbeat fault: the supervisor restarts the loop ------------
    app.injector = FaultInjector(actions=(
        FaultAction(site="worker_heartbeat", exp_id="worker", kind="error"),
        FaultAction(site="service_drain", exp_id="drain", kind="slow",
                    delay_s=0.0),
    ))
    supervised = False
    try:
        app.run_pending(1, epoch=app.worker_epoch)
    except RuntimeError:
        app.note_worker_restart()  # what the server's worker loop does
        supervised = True
    app.run_pending(1, epoch=app.worker_epoch)
    done_a = app.spool.get(DEFAULT_TENANT, job_a)
    chaos.check(
        "service_worker_fault_supervised",
        supervised and done_a is not None and done_a.state == "done",
        f"injected heartbeat fault restarted the loop; job ended "
        f"{done_a.state if done_a else 'missing'}",
    )

    # --- drain mid-job: checkpoint, bounce, journal -------------------
    _, submitted = submit(app, [exp_b])
    job_b = submitted["job_id"]
    claimed = app.next_pending()
    app.spool.mark_running(app.spool.get(*claimed))
    app.running_job = claimed  # in flight as the signal lands
    outcome = app.drain(timeout_s=0.0, reason="chaos")
    journal = app.last_drain()
    chaos.check(
        "service_drain_checkpoints_and_journals",
        outcome["checkpointed"] == [job_b]
        and outcome["journaled"]
        and journal is not None
        and journal["checkpointed"] == [job_b],
        f"drain outcome: {outcome}",
    )
    bounced, payload = submit(app, [exp_a, exp_b])
    chaos.check(
        "service_drain_rejects_with_retry_after",
        bounced.status == 503
        and payload.get("reason") == "draining"
        and any(name == "Retry-After" for name, _ in bounced.headers),
        f"mid-drain submission answered {bounced.status} "
        f"(reason {payload.get('reason')!r})",
    )

    # --- restart: resume the checkpointed job, byte-identical ---------
    restarted = ServiceApp(root=workdir / "service", clock=clock)
    resumed = restarted.recover()
    restarted.run_pending(epoch=restarted.worker_epoch)
    done_b = restarted.spool.get(DEFAULT_TENANT, job_b)
    chaos.check(
        "service_restart_resumes_checkpointed_job",
        [r.job_id for r in resumed] == [job_b]
        and done_b is not None
        and done_b.state == "done"
        and restarted.profile.counters.get("drain", "resumed") == 1.0,
        f"resumed {len(resumed)} job(s); checkpointed job ended "
        f"{done_b.state if done_b else 'missing'}",
    )

    clean = ServiceApp(root=workdir / "service-clean", clock=clock)
    for ids in ([exp_a], [exp_b]):
        submit(clean, ids)
    clean.run_pending(epoch=clean.worker_epoch)
    identical = [
        job_id
        for job_id in (job_a, job_b)
        if clean.job_result(job_id, DEFAULT_TENANT).body
        == restarted.job_result(job_id, DEFAULT_TENANT).body
    ]
    chaos.check(
        "service_archives_byte_identical",
        identical == [job_a, job_b],
        f"{len(identical)}/2 interrupted-chain results byte-identical "
        f"to the uninterrupted app",
    )
    leaked = restarted.sweep_orphan_columns() + clean.sweep_orphan_columns()
    chaos.check(
        "service_no_orphan_segments", leaked == 0,
        f"{leaked} orphan column-cache segments after drain + restart",
    )

    counters = app.profile.counters
    chaos.stages["service"] = {
        "deadline": {
            name: counters.get("deadline", name)
            for name in ("admitted", "expired", "exceeded")
        },
        "watchdog": {
            name: counters.get("watchdog", name)
            for name in ("stalls", "requeues", "restarts", "fenced")
        },
        "drain": {
            name: counters.get("drain", name)
            for name in ("begun", "rejected", "checkpointed", "completed")
        },
        "resumed": restarted.profile.counters.get("drain", "resumed"),
        "checkpointed": outcome["checkpointed"],
        "injected_by_site": app.injector.applied_counts(),
        "byte_identical": identical,
    }


def run_chaos(
    seed: int,
    quick: bool = False,
    jobs: int = 1,
    workdir: str | Path | None = None,
    exp_ids: tuple[str, ...] | None = None,
) -> ChaosReport:
    """Run every chaos stage under one seeded fault plan.

    ``workdir`` holds the throwaway result stores (a temp directory,
    removed afterwards, unless one is given).  ``jobs`` above 1
    exercises the process pool at the cost of report determinism
    (crash collateral depends on pool scheduling).
    """
    ids = tuple(exp_ids) if exp_ids else (
        QUICK_EXPERIMENTS if quick else tuple(EXPERIMENTS)
    )
    plan = FaultPlan.sample(seed, ids)
    chaos = ChaosReport(seed=seed, quick=quick, jobs=jobs, exp_ids=ids, plan=plan)
    owns_workdir = workdir is None
    workdir = Path(tempfile.mkdtemp(prefix="repro-chaos-")) if owns_workdir \
        else Path(workdir)
    try:
        _engine_stages(chaos, workdir)
        _degraded_stage(chaos)
        _recovery_stage(chaos)
        _nqs_stage(chaos)
        _service_stage(chaos, workdir)
    finally:
        if owns_workdir:
            shutil.rmtree(workdir, ignore_errors=True)
    return chaos
