"""Command-line interface for the fault-injection subsystem.

Usage::

    python -m repro.faults chaos --seed N [--quick] [--jobs N]
                                 [--ids id ...] [--workdir PATH]
                                 [--plan-out PATH] [--report-out PATH]
                                 [--json]
    python -m repro.faults plan  --seed N [--ids id ...]

``chaos`` runs the full harness (see :mod:`repro.faults.chaos`) and
exits 0 only when every invariant held; ``plan`` just samples and
prints the fault plan a seed expands to.  Reports and plans are
deterministic functions of the seed, so CI can diff two runs.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.engine.cli import validate_experiment_ids
from repro.faults.chaos import run_chaos
from repro.faults.plan import FaultPlan
from repro.suite.experiments import EXPERIMENTS

__all__ = ["main"]


def _chaos_ids(args: argparse.Namespace) -> tuple[str, ...] | None:
    return tuple(args.ids) if args.ids else None


def _cmd_chaos(args: argparse.Namespace) -> int:
    report = run_chaos(
        seed=args.seed,
        quick=args.quick,
        jobs=args.jobs,
        workdir=args.workdir,
        exp_ids=_chaos_ids(args),
    )
    if args.plan_out:
        report.plan.save(args.plan_out)
    payload = report.to_dict()
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
    if args.json:
        print(json.dumps(payload, indent=1, sort_keys=True))
    else:
        print(report.plan.summary())
        for check in report.checks:
            mark = "ok  " if check.passed else "FAIL"
            print(f"{mark} {check.name:<40} {check.detail}")
        print(report.summary())
    return 0 if report.passed else 1


def _cmd_plan(args: argparse.Namespace) -> int:
    ids = _chaos_ids(args) or tuple(EXPERIMENTS)
    plan = FaultPlan.sample(args.seed, ids)
    if args.json:
        print(json.dumps(plan.to_dict(), indent=1, sort_keys=True))
    else:
        for action in plan.actions:
            delay = f" delay={action.delay_s:g}s" if action.delay_s else ""
            print(f"{action.site:<14} {action.exp_id:<10} "
                  f"{action.kind:<8} attempt={action.attempt}{delay}")
        print(plan.summary())
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Seeded fault injection and the chaos harness.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_chaos = sub.add_parser("chaos", help="run the suite under a fault plan")
    p_chaos.add_argument("--seed", type=int, required=True,
                         help="fault-plan seed (same seed, same report)")
    p_chaos.add_argument("--quick", action="store_true",
                         help="small experiment subset and sweeps (CI smoke)")
    p_chaos.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="engine worker processes (default 1: the "
                              "deterministic-report mode)")
    p_chaos.add_argument("--ids", nargs="*", metavar="exp_id", default=None,
                         help="explicit experiment subset")
    p_chaos.add_argument("--workdir", default=None, metavar="PATH",
                         help="where throwaway result stores live "
                              "(default: a temp dir, removed afterwards)")
    p_chaos.add_argument("--plan-out", default=None, metavar="PATH",
                         help="write the sampled fault plan JSON here")
    p_chaos.add_argument("--report-out", default=None, metavar="PATH",
                         help="write the chaos report JSON here")
    p_chaos.add_argument("--json", action="store_true",
                         help="print the report as JSON")

    p_plan = sub.add_parser("plan", help="sample and print a fault plan")
    p_plan.add_argument("--seed", type=int, required=True)
    p_plan.add_argument("--ids", nargs="*", metavar="exp_id", default=None)
    p_plan.add_argument("--json", action="store_true")

    args = parser.parse_args(argv)
    error = validate_experiment_ids(list(args.ids or []))
    if error:
        print(error, file=sys.stderr)
        return 2
    handlers = {"chaos": _cmd_chaos, "plan": _cmd_plan}
    return handlers[args.command](args)
