"""Degraded machines: presets with resources configured out.

Section 2 of the paper describes hardware built to keep running short
of full strength — spare pipe-set chips, memory that stays addressable
with banks down, four IOPs per node and multiple IXS lanes so one
failure costs bandwidth, not the machine.  This module turns any
calibrated preset into that machine: a :class:`Degradation` names how
many of each resource are offline, and the ``degrade_*`` constructors
rebuild the component with the survivors.

Nothing here adds new cost formulas — a degraded machine is an
ordinary machine with smaller parameters, so fewer banks raise
conflict factors through :class:`~repro.machine.memory.BankedMemory`'s
existing gcd arithmetic, and both costing engines (``legacy`` and
``compiled``) price it bit-identically because they are handed the
same component instances (asserted in ``tests/faults``).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable
from dataclasses import dataclass

from repro.machine.iop import DiskArray, IOProcessor
from repro.machine.ixs import InternodeCrossbar
from repro.machine.node import Node
from repro.machine.presets import PRESET_FACTORIES
from repro.machine.processor import Processor

__all__ = [
    "IXS_LANES_PER_CHANNEL",
    "NODE_IOPS",
    "PRESETS",
    "Degradation",
    "DegradedMachine",
    "degrade_processor",
    "degrade_node",
    "degrade_crossbar",
    "degrade_iop",
    "degrade_disk_array",
    "standard_degradations",
]

#: Model granularity of one IXS channel: losing a lane costs a quarter
#: of the 8 GB/s channel, not the node's connectivity.
IXS_LANES_PER_CHANNEL = 4

#: I/O processors per node (Section 2.4: up to four XMUs/IOPs).
NODE_IOPS = 4

#: Presets the degraded-machine API knows (the vector machines of the
#: shared :data:`~repro.machine.presets.PRESET_FACTORIES` registry);
#: each returns a fresh :class:`Processor` so degrading never mutates
#: shared state.
PRESETS: dict[str, Callable[[], Processor]] = {
    preset_id: PRESET_FACTORIES[preset_id] for preset_id in ("sx4", "ymp", "j90")
}


@dataclass(frozen=True)
class Degradation:
    """How much of the machine is configured out (all counts offline)."""

    name: str = "baseline"
    offline_pipes: int = 0
    offline_banks: int = 0
    offline_ixs_lanes: int = 0
    offline_iops: int = 0

    def __post_init__(self) -> None:
        for label in ("offline_pipes", "offline_banks", "offline_ixs_lanes",
                      "offline_iops"):
            if getattr(self, label) < 0:
                raise ValueError(f"{label} must be non-negative")
        if self.offline_ixs_lanes >= IXS_LANES_PER_CHANNEL:
            raise ValueError(
                f"a channel has {IXS_LANES_PER_CHANNEL} lanes; at least one "
                f"must survive"
            )
        if self.offline_iops >= NODE_IOPS:
            raise ValueError(
                f"a node has {NODE_IOPS} IOPs; at least one must survive"
            )

    @property
    def is_baseline(self) -> bool:
        return not (self.offline_pipes or self.offline_banks
                    or self.offline_ixs_lanes or self.offline_iops)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "offline_pipes": self.offline_pipes,
            "offline_banks": self.offline_banks,
            "offline_ixs_lanes": self.offline_ixs_lanes,
            "offline_iops": self.offline_iops,
        }


def degrade_processor(processor: Processor, degradation: Degradation) -> Processor:
    """The same CPU with pipe-sets and banks configured out.

    Pipes scale the vector unit's element throughput (intrinsic
    per-element rates stretch by the surviving-pipe ratio — intrinsics
    run on the same pipes); banks shrink the interleave, which raises
    stride/gather conflict factors through the existing bank-busy
    arithmetic.  The scalar side is untouched.
    """
    if degradation.is_baseline:
        return processor
    vector = processor.vector
    memory = processor.memory
    if degradation.offline_pipes or degradation.offline_banks:
        if vector is None or memory is None:
            raise ValueError(
                f"{processor.name} has no vector/memory subsystem to degrade"
            )
    if vector is not None and degradation.offline_pipes:
        remaining = vector.pipes - degradation.offline_pipes
        if remaining < 1:
            raise ValueError(
                f"{processor.name} has {vector.pipes} pipes; cannot offline "
                f"{degradation.offline_pipes}"
            )
        scale = vector.pipes / remaining
        vector = dataclasses.replace(
            vector,
            pipes=remaining,
            intrinsic_cycles_per_element={
                name: rate * scale
                for name, rate in vector.intrinsic_cycles_per_element.items()
            },
        )
    if memory is not None and degradation.offline_banks:
        remaining_banks = memory.banks - degradation.offline_banks
        if remaining_banks < 1:
            raise ValueError(
                f"{processor.name} has {memory.banks} banks; cannot offline "
                f"{degradation.offline_banks}"
            )
        memory = dataclasses.replace(memory, banks=remaining_banks)
    return dataclasses.replace(
        processor,
        name=f"{processor.name} [{degradation.name}]",
        vector=vector,
        memory=memory,
    )


def degrade_node(node: Node, degradation: Degradation) -> Node:
    """A node whose every CPU sees the degraded processor."""
    return dataclasses.replace(
        node, processor=degrade_processor(node.processor, degradation)
    )


def degrade_crossbar(
    ixs: InternodeCrossbar, degradation: Degradation
) -> InternodeCrossbar:
    """An IXS with lanes down: proportionally less channel bandwidth."""
    if not degradation.offline_ixs_lanes:
        return ixs
    surviving = IXS_LANES_PER_CHANNEL - degradation.offline_ixs_lanes
    return dataclasses.replace(
        ixs,
        channel_bytes_per_s=ixs.channel_bytes_per_s
        * surviving / IXS_LANES_PER_CHANNEL,
    )


def degrade_iop(iop: IOProcessor, degradation: Degradation) -> IOProcessor:
    """A node's I/O subsystem with IOPs offline (bandwidth scales)."""
    if not degradation.offline_iops:
        return iop
    surviving = NODE_IOPS - degradation.offline_iops
    return dataclasses.replace(
        iop,
        bandwidth_bytes_per_s=iop.bandwidth_bytes_per_s * surviving / NODE_IOPS,
    )


def degrade_disk_array(array: DiskArray, degradation: Degradation) -> DiskArray:
    """A disk array fed through the degraded IOP complement."""
    if not degradation.offline_iops or array.iop is None:
        return array
    return dataclasses.replace(array, iop=degrade_iop(array.iop, degradation))


@dataclass(frozen=True)
class DegradedMachine:
    """A preset name plus a degradation — builds components on demand."""

    preset: str
    degradation: Degradation = Degradation()

    def __post_init__(self) -> None:
        if self.preset not in PRESETS:
            raise ValueError(
                f"unknown preset {self.preset!r}; know {sorted(PRESETS)}"
            )

    def processor(self) -> Processor:
        return degrade_processor(PRESETS[self.preset](), self.degradation)

    def node(self, cpus: int = 32) -> Node:
        return Node(processor=self.processor(), cpu_count=cpus)

    def crossbar(self) -> InternodeCrossbar:
        return degrade_crossbar(InternodeCrossbar(), self.degradation)

    def iop(self) -> IOProcessor:
        return degrade_iop(IOProcessor(), self.degradation)


def standard_degradations(preset: str) -> tuple[Degradation, ...]:
    """The degradations the chaos harness sweeps for a preset.

    Baseline plus each resource class the preset has: half the pipes
    (vector machines with more than one), half and three-quarters of
    the banks, one IXS lane, one IOP.
    """
    processor = PRESETS[preset]()
    out = [Degradation()]
    if processor.vector is not None and processor.memory is not None:
        if processor.vector.pipes > 1:
            out.append(
                Degradation(
                    name="half-pipes",
                    offline_pipes=processor.vector.pipes // 2,
                )
            )
        out.append(
            Degradation(name="half-banks", offline_banks=processor.memory.banks // 2)
        )
        out.append(
            Degradation(
                name="quarter-banks-left",
                offline_banks=3 * processor.memory.banks // 4,
            )
        )
    out.append(Degradation(name="one-ixs-lane-down", offline_ixs_lanes=1))
    out.append(Degradation(name="one-iop-down", offline_iops=1))
    return tuple(out)
