"""Fault-injection vocabulary and the hook the host layers call.

The paper's resilience story (Section 2.6) is an *operating system*
story: SUPER-UX checkpoints, NQS requeues, and the machine keeps
running with resources configured out.  This module is the host-side
analogue — a small, seeded vocabulary of things that can go wrong
(:data:`FAULT_KINDS`) at named places (:data:`FAULT_SITES`), and the
:func:`fault_point` hook through which ``engine.executor`` and
``engine.store`` ask "does anything go wrong here, now?".

Determinism contract: a :class:`FaultInjector` makes its decisions
purely from the actions it was constructed with and the order of
``fault_point`` calls — no clock, no ambient randomness.  Run the same
plan against the same job order twice and the same faults fire at the
same attempts.

Every site name doubles as a ``fault.*`` perfmon counter (declared
below), so profiles show *where* faults were injected; the REPO008
lint rule holds call sites to this registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perfmon.collector import record as perfmon_record
from repro.perfmon.counters import declare_counters

__all__ = [
    "FAULT_SITES",
    "FAULT_KINDS",
    "FAILING_KINDS",
    "FaultAction",
    "FaultInjector",
    "fault_point",
    "corrupt_file",
]

#: Hook sites in the host layers.  Adding a site here both registers
#: its ``fault.<site>`` counter and satisfies REPO008 for callers.
#: ``service_submit`` fires in the service's submission handler, before
#: admission — chaos tests use it to prove clients survive 503s.
#: ``service_drain`` fires while the drain record is journaled and
#: ``worker_heartbeat`` fires on each worker heartbeat stamp — the
#: chaos harness uses them to stall a drain and wedge a worker
#: deterministically.
FAULT_SITES = (
    "executor_job",
    "store_entry",
    "service_submit",
    "service_drain",
    "worker_heartbeat",
)

#: Service lifecycle sites: an attempt either bounces (``error``) or
#: stalls (``slow``) — crash/corrupt semantics do not apply there.
_SERVICE_SITES = ("service_submit", "service_drain", "worker_heartbeat")

#: ``error``/``crash``/``timeout`` fail a job attempt (transient, the
#: retry policy's domain); ``slow`` delays an attempt without failing
#: it; ``corrupt`` damages a store entry after it is written.
FAULT_KINDS = ("error", "crash", "timeout", "slow", "corrupt")

#: Kinds that make a job attempt fail (as opposed to degrade).
FAILING_KINDS = ("error", "crash", "timeout")

declare_counters(
    "fault",
    FAULT_SITES
    + (
        "injected",
        "retries",
        "backoff_s",
        "serial_fallbacks",
        "quarantined",
        "requeues",
    ),
)


@dataclass(frozen=True)
class FaultAction:
    """One planned fault: what goes wrong, where, for whom, and when.

    ``attempt`` counts job submissions for ``exp_id`` at the site
    (0 = first try); store-entry actions ignore it.  ``delay_s`` is how
    long a ``slow`` or ``timeout`` fault stalls the worker.
    """

    site: str
    exp_id: str
    kind: str
    attempt: int = 0
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {self.site!r}; know {FAULT_SITES}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; know {FAULT_KINDS}")
        if self.site == "store_entry" and self.kind != "corrupt":
            raise ValueError("store_entry faults must be kind 'corrupt'")
        if self.site == "executor_job" and self.kind == "corrupt":
            raise ValueError("corrupt faults apply to store entries, not jobs")
        if self.site in _SERVICE_SITES and self.kind not in ("error", "slow"):
            raise ValueError(
                f"{self.site} faults must be kind 'error' or 'slow' "
                f"(a service lifecycle step either bounces or stalls)"
            )
        if self.attempt < 0 or self.delay_s < 0:
            raise ValueError("attempt and delay_s must be non-negative")

    def directive(self, in_worker: bool) -> dict:
        """The picklable form shipped to a worker process.

        ``in_worker`` tells a ``crash`` whether it may really kill the
        process (pool mode) or must simulate (serial, in the parent).
        """
        return {
            "kind": self.kind,
            "delay_s": self.delay_s,
            "in_worker": in_worker,
        }

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "exp_id": self.exp_id,
            "kind": self.kind,
            "attempt": self.attempt,
            "delay_s": self.delay_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> FaultAction:
        return cls(
            site=payload["site"],
            exp_id=payload["exp_id"],
            kind=payload["kind"],
            attempt=int(payload.get("attempt", 0)),
            delay_s=float(payload.get("delay_s", 0.0)),
        )


@dataclass
class FaultInjector:
    """Matches planned actions against hook calls, in the parent process.

    Decisions are made *here*, at submit time, never in workers — the
    directive a worker receives is data, so the same plan produces the
    same faults no matter how the pool schedules processes.  Each
    action fires at most once; :attr:`applied` records what fired, in
    firing order.
    """

    actions: tuple[FaultAction, ...] = ()
    applied: list[FaultAction] = field(default_factory=list)
    _pending: list[FaultAction] = field(default_factory=list)
    _submissions: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.actions = tuple(self.actions)
        self._pending = list(self.actions)

    def poll(self, site: str, exp_id: str) -> FaultAction | None:
        """The first unfired action matching this hook call, if any."""
        if site == "executor_job":
            attempt = self._submissions.get(exp_id, 0)
            self._submissions[exp_id] = attempt + 1
        else:
            attempt = None
        for action in self._pending:
            if action.site != site or action.exp_id != exp_id:
                continue
            if attempt is not None and action.attempt != attempt:
                continue
            self._pending.remove(action)
            self.applied.append(action)
            return action
        return None

    def applied_counts(self) -> dict[str, int]:
        """Fired actions per site, for reports."""
        counts: dict[str, int] = {}
        for action in self.applied:
            counts[action.site] = counts.get(action.site, 0) + 1
        return counts

    def unapplied(self) -> list[FaultAction]:
        """Planned actions that never matched a hook call."""
        return list(self._pending)


def fault_point(
    site: str, injector: FaultInjector | None, exp_id: str
) -> FaultAction | None:
    """The hook host layers call at each injectable site.

    With no injector this is free and returns None — production paths
    pay one ``is None`` check.  When an action fires, the ``fault``
    perfmon component records one tick for the site and one for
    ``injected`` (profiles stay honest under failure; REPO008 keeps
    the site names registered).
    """
    if site not in FAULT_SITES:
        raise ValueError(f"unknown fault site {site!r}; know {FAULT_SITES}")
    if injector is None:
        return None
    action = injector.poll(site, exp_id)
    if action is not None:
        perfmon_record("fault", {site: 1.0, "injected": 1.0})
    return action


def corrupt_file(path) -> None:
    """Damage a file in place the way a torn write would.

    The leading bytes are stomped while the length is preserved, so
    the file still exists and still looks the right size — only a
    reader that actually parses or integrity-checks the content can
    reject it.  (Stomping the start rather than the middle keeps the
    damage unconditionally detectable: a mid-file stamp can land
    inside a JSON string value and leave the document parseable.)
    """
    data = path.read_bytes()
    stamp = b"#CORRUPTED-BY-FAULT-INJECTION#"
    path.write_bytes(stamp + data[len(stamp):])
