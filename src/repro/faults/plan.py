"""Seeded fault plans: sample once, replay anywhere.

A :class:`FaultPlan` is the unit the chaos harness, the suite runner
(``--fault-plan``) and CI exchange: a seed plus the concrete
:class:`~repro.faults.inject.FaultAction` list it expanded to.  The
expansion happens exactly once, in :meth:`FaultPlan.sample`; everything
downstream replays the action list, so a plan file is a complete,
portable description of a chaos scenario.

Sampling is plain ``random.Random(seed)`` over the sorted experiment
ids — same seed, same ids, same plan, on any platform.
"""

from __future__ import annotations

import json
import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.faults.inject import FAILING_KINDS, FaultAction, FaultInjector

__all__ = ["PLAN_SCHEMA", "FaultPlan", "sample_plan"]

PLAN_SCHEMA = 1


@dataclass(frozen=True)
class FaultPlan:
    """A seed and the deterministic action list it expanded to."""

    seed: int
    actions: tuple[FaultAction, ...]

    def injector(self) -> FaultInjector:
        """A fresh injector replaying this plan from the top."""
        return FaultInjector(actions=self.actions)

    def counts(self) -> dict[str, int]:
        """Actions per kind — the plan's shape at a glance."""
        counts: dict[str, int] = {}
        for action in self.actions:
            counts[action.kind] = counts.get(action.kind, 0) + 1
        return counts

    def summary(self) -> str:
        by_kind = ", ".join(f"{n} {kind}" for kind, n in sorted(self.counts().items()))
        return (
            f"fault plan (seed {self.seed}): {len(self.actions)} actions"
            + (f" — {by_kind}" if by_kind else " — clean run")
        )

    def to_dict(self) -> dict:
        return {
            "schema": PLAN_SCHEMA,
            "seed": self.seed,
            "actions": [action.to_dict() for action in self.actions],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> FaultPlan:
        if payload.get("schema") != PLAN_SCHEMA:
            raise ValueError(
                f"unsupported fault-plan schema {payload.get('schema')!r}"
            )
        return cls(
            seed=int(payload["seed"]),
            actions=tuple(
                FaultAction.from_dict(entry) for entry in payload["actions"]
            ),
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(
            json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def load(cls, path: str | Path) -> FaultPlan:
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    @classmethod
    def sample(
        cls,
        seed: int,
        exp_ids: Iterable[str],
        fault_rate: float = 0.6,
        max_failures: int = 2,
        slow_rate: float = 0.25,
        corrupt_rate: float = 0.35,
        failure_delay_s: float = 0.02,
        slow_delay_s: float = 0.02,
    ) -> FaultPlan:
        """Expand a seed into a concrete plan over the given experiments.

        Per experiment (in sorted-id order, so the draw sequence is
        reproducible): with probability ``fault_rate`` the first
        1..``max_failures`` attempts each fail with a uniformly chosen
        failing kind; independently, the first clean attempt may be
        ``slow`` and the eventual store entry may be corrupted.  The
        failure budget must leave room for one clean attempt within
        any retry policy of ``max_failures + 1`` or more attempts.
        """
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError(f"fault_rate must be in [0, 1], got {fault_rate}")
        if max_failures < 1:
            raise ValueError("max_failures must be >= 1")
        rng = random.Random(seed)
        actions: list[FaultAction] = []
        for exp_id in sorted(set(exp_ids)):
            failures = 0
            if rng.random() < fault_rate:
                failures = rng.randint(1, max_failures)
                for attempt in range(failures):
                    kind = rng.choice(FAILING_KINDS)
                    actions.append(
                        FaultAction(
                            site="executor_job",
                            exp_id=exp_id,
                            kind=kind,
                            attempt=attempt,
                            delay_s=failure_delay_s if kind == "timeout" else 0.0,
                        )
                    )
            if rng.random() < slow_rate:
                actions.append(
                    FaultAction(
                        site="executor_job",
                        exp_id=exp_id,
                        kind="slow",
                        attempt=failures,
                        delay_s=slow_delay_s,
                    )
                )
            if rng.random() < corrupt_rate:
                actions.append(
                    FaultAction(site="store_entry", exp_id=exp_id, kind="corrupt")
                )
        return cls(seed=seed, actions=tuple(actions))


def sample_plan(seed: int, exp_ids: Sequence[str], **knobs) -> FaultPlan:
    """Convenience alias for :meth:`FaultPlan.sample`."""
    return FaultPlan.sample(seed, exp_ids, **knobs)
