"""Checkpoint/restart-driven recovery for the application models.

Section 2.6.2: "Checkpoint/restart by user or operator commands ... No
special programming is required."  The models already satisfy the
:class:`~repro.superux.checkpoint.Checkpointable` protocol; this module
exercises the operational claim — an integration killed mid-run and
restored from its last checkpoint finishes **bit-identical** to one
that was never interrupted.

:func:`run_with_recovery` is the harness: integrate with periodic
checkpoints, destroy the model instance after a chosen step, restore
the last checkpoint into a fresh instance, replay, and report what it
cost.  :func:`states_identical` is the yardstick — array-wise exact
equality of ``checkpoint_state()``, never blob bytes (the npz container
embeds zip metadata that is not part of the model state).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.superux.checkpoint import Checkpointable, take_checkpoint, restore_model

__all__ = ["RecoveryReport", "run_with_recovery", "states_identical", "app_factories"]


@dataclass(frozen=True)
class RecoveryReport:
    """What one kill-and-restore integration did."""

    model_kind: str
    steps: int
    checkpoint_every: int
    kill_after_step: int
    restored_to_step: int
    replayed_steps: int
    checkpoints_taken: int

    def to_dict(self) -> dict:
        return {
            "model_kind": self.model_kind,
            "steps": self.steps,
            "checkpoint_every": self.checkpoint_every,
            "kill_after_step": self.kill_after_step,
            "restored_to_step": self.restored_to_step,
            "replayed_steps": self.replayed_steps,
            "checkpoints_taken": self.checkpoints_taken,
        }


def run_with_recovery(
    make_model: Callable[[], Checkpointable],
    steps: int,
    checkpoint_every: int,
    kill_after_step: int,
) -> tuple[Checkpointable, RecoveryReport]:
    """Integrate ``steps`` steps, surviving one mid-run kill.

    A checkpoint is taken at step 0 and every ``checkpoint_every``
    completed steps.  After ``kill_after_step`` completed steps the
    running instance is discarded outright (the crash); a fresh
    instance from ``make_model`` restores the last checkpoint and the
    integration resumes from there, replaying the steps the crash
    destroyed.  Returns the recovered model and the accounting.
    """
    if steps < 1 or checkpoint_every < 1:
        raise ValueError("steps and checkpoint_every must be >= 1")
    if not 1 <= kill_after_step <= steps:
        raise ValueError(
            f"kill_after_step must be within the integration (1..{steps}), "
            f"got {kill_after_step}"
        )
    model = make_model()
    last_checkpoint = take_checkpoint(model)
    checkpoints_taken = 1
    restored_to = 0
    replayed = 0
    done = 0
    killed = False
    while done < steps:
        model.step()
        done += 1
        if done % checkpoint_every == 0:
            last_checkpoint = take_checkpoint(model)
            checkpoints_taken += 1
        if not killed and done == kill_after_step:
            killed = True
            model = make_model()
            restore_model(model, last_checkpoint)
            restored_to = (done // checkpoint_every) * checkpoint_every
            replayed = done - restored_to
            done = restored_to
    report = RecoveryReport(
        model_kind=type(model).__name__,
        steps=steps,
        checkpoint_every=checkpoint_every,
        kill_after_step=kill_after_step,
        restored_to_step=restored_to,
        replayed_steps=replayed,
        checkpoints_taken=checkpoints_taken,
    )
    return model, report


def states_identical(a: Checkpointable, b: Checkpointable) -> bool:
    """Exact (bitwise) equality of two models' prognostic state."""
    state_a = a.checkpoint_state()
    state_b = b.checkpoint_state()
    if state_a.keys() != state_b.keys():
        return False
    return all(
        np.array_equal(np.asarray(state_a[key]), np.asarray(state_b[key]))
        for key in state_a
    )


def app_factories() -> dict[str, Callable[[], Checkpointable]]:
    """Small CCM2/MOM/POP instances for recovery and chaos testing.

    Imported lazily so the fault layer stays importable without the
    application packages' start-up cost.
    """
    from repro.apps.ccm2.gaussian import GaussianGrid
    from repro.apps.ccm2.model import CCM2Model
    from repro.apps.mom.grid import OceanGrid
    from repro.apps.mom.model import MOMModel
    from repro.apps.mom.state import warm_pool_state
    from repro.apps.pop.model import POPModel

    def make_ccm2() -> Checkpointable:
        return CCM2Model(GaussianGrid(32, 64), trunc=21, nlev=4)

    def make_mom() -> Checkpointable:
        grid = OceanGrid(nlon=24, nlat=16, nlev=3)
        model = MOMModel(grid, dt=1800.0)
        model.set_state(warm_pool_state(grid))
        return model

    def make_pop() -> Checkpointable:
        model = POPModel(OceanGrid(nlon=24, nlat=16, nlev=3), dt=600.0)
        eta = np.zeros(model.grid.shape2d)
        eta[8, 12] = 0.5
        model.set_surface_anomaly(eta)
        return model

    return {"ccm2": make_ccm2, "mom": make_mom, "pop": make_pop}
