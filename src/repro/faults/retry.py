"""Bounded retry with exponential backoff and deterministic jitter.

The engine treats a transient :class:`~repro.engine.executor.JobFailure`
the way NQS treats a node fault (Section 2.6.3): the job goes back in
the queue, it does not take the campaign down.  A :class:`RetryPolicy`
bounds how often (``max_attempts``), spaces the rounds out
(exponential backoff capped at ``max_delay_s``), and de-synchronises
retries with *deterministic* jitter — a hash of ``(exp_id, attempt)``,
not entropy, so two runs of the same plan back off identically and the
chaos harness can assert byte-identical reports.
"""

from __future__ import annotations

import hashlib
import time
from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["RetryPolicy", "chaos_retry_policy", "deterministic_jitter"]


def deterministic_jitter(exp_id: str, attempt: int) -> float:
    """A reproducible draw in [0, 1) from the (job, attempt) identity."""
    digest = hashlib.sha256(f"{exp_id}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class RetryPolicy:
    """How the engine re-runs transient failures.

    ``transient_kinds`` selects which failure kinds are worth retrying
    (defaults assume a plain ``error`` is deterministic — the builder
    will raise again — while crashes and timeouts are environmental).
    ``crash_rounds_before_serial`` is the graceful-degradation knob:
    after that many consecutive rounds containing a crash, the engine
    abandons the process pool and falls back to serial in-process
    execution.  ``sleep`` exists so tests and the chaos harness can
    run the backoff schedule without waiting it out.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    backoff_factor: float = 2.0
    max_delay_s: float = 2.0
    jitter_fraction: float = 0.25
    transient_kinds: tuple[str, ...] = ("crash", "timeout")
    crash_rounds_before_serial: int = 2
    sleep: Callable[[float], None] = field(default=time.sleep, compare=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError("jitter_fraction must be in [0, 1]")
        if self.crash_rounds_before_serial < 1:
            raise ValueError("crash_rounds_before_serial must be >= 1")

    def is_transient(self, kind: str) -> bool:
        return kind in self.transient_kinds

    def delay_s(self, exp_id: str, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1 = first retry).

        Exponential in the attempt, capped, then stretched by up to
        ``jitter_fraction`` using the deterministic jitter draw.
        """
        if attempt < 1:
            raise ValueError("delay_s is for retries; attempt must be >= 1")
        base = min(
            self.max_delay_s,
            self.base_delay_s * self.backoff_factor ** (attempt - 1),
        )
        return base * (1.0 + self.jitter_fraction * deterministic_jitter(exp_id, attempt))


def chaos_retry_policy() -> RetryPolicy:
    """The policy chaos runs use: retry everything, back off fast.

    Injected ``error`` faults are environmental (they fire once per
    planned attempt), so unlike production, errors are transient here;
    delays are compressed to keep CI wall time down.
    """
    return RetryPolicy(
        max_attempts=4,
        base_delay_s=0.01,
        max_delay_s=0.1,
        transient_kinds=("error", "crash", "timeout"),
    )
