"""The I/O benchmarks of Section 4.5: disk, HIPPI, and external network.

The paper describes three benchmarks whose results it does not tabulate
("the results are not included since they are voluminous and the
configuration of the tests is tuned to NCAR's computing environment");
this package reproduces the *machinery*:

``history``
    The I/O benchmark (4.5.1): simulated climate-model header and
    "history tape" files written to a conventional disk system, across
    model resolutions, with direct-access records written per latitude
    (optionally by several processors).
``hippi``
    The HIPPI benchmark (4.5.2): raw-packet transfers of varying sizes,
    single and multiple concurrent, against the NCAR Mass Storage System
    interoperability requirement.
``network``
    The NETWORK benchmark (4.5.3): a scripted mix of data-transfer and
    non-data-transfer IP commands over FDDI.
"""

from repro.iosim.history import HistoryTapeSpec, history_io_benchmark
from repro.iosim.hippi import HippiChannel, hippi_benchmark
from repro.iosim.network import (
    DataTransferCommand,
    NonDataCommand,
    network_benchmark,
    standard_command_mix,
)

__all__ = [
    "HistoryTapeSpec",
    "history_io_benchmark",
    "HippiChannel",
    "hippi_benchmark",
    "DataTransferCommand",
    "NonDataCommand",
    "network_benchmark",
    "standard_command_mix",
]
