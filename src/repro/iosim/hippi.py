"""The HIPPI benchmark (Section 4.5.2).

"It measures the communication bandwidth using HIPPI for single data
transfers and multiple concurrent data transfers.  It demonstrates the
ability of a system to send and receive 'raw' HIPPI packets of varying
sizes, and to measure the data rate of the HIPPI transfers."

HIPPI is an 800 Mbit/s (100 MB/s) parallel channel; each packet pays a
connection/burst overhead, so the measured rate climbs with packet size
toward the line rate — the curve this benchmark produces.  Concurrent
transfers ride separate channels on the SX-4's IOPs (up to four IOPs of
1.6 GB/s each), so aggregate bandwidth scales with channel count until
the IOPs saturate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.events import Simulator
from repro.machine.iop import IOProcessor
from repro.perfmon.collector import sim_tracer
from repro.units import MB

__all__ = ["HippiChannel", "hippi_benchmark", "PACKET_SIZES"]

#: "Raw HIPPI packets of varying sizes" — 16 KB bursts up to 16 MB.
PACKET_SIZES = tuple(16384 * 2**k for k in range(11))


@dataclass
class HippiChannel:
    """One HIPPI channel: 100 MB/s line rate with per-packet overhead."""

    line_rate_bytes_per_s: float = 100 * MB
    packet_overhead_s: float = 250e-6  # connection + burst setup
    iop: IOProcessor | None = None

    def __post_init__(self) -> None:
        if self.line_rate_bytes_per_s <= 0:
            raise ValueError("line rate must be positive")
        if self.packet_overhead_s < 0:
            raise ValueError("packet overhead cannot be negative")
        if self.iop is None:
            self.iop = IOProcessor()
        if self.line_rate_bytes_per_s > self.iop.bandwidth_bytes_per_s:
            raise ValueError("a HIPPI channel cannot outrun its IOP")

    def transfer_seconds(self, nbytes: float, packet_bytes: int) -> float:
        """Time to move ``nbytes`` in packets of ``packet_bytes``."""
        if nbytes < 0:
            raise ValueError(f"transfer size cannot be negative, got {nbytes}")
        if packet_bytes < 1:
            raise ValueError(f"packet size must be positive, got {packet_bytes}")
        if nbytes == 0:
            return 0.0
        packets = -(-int(nbytes) // packet_bytes)  # ceil
        return packets * self.packet_overhead_s + nbytes / self.line_rate_bytes_per_s

    def effective_rate(self, packet_bytes: int, nbytes: float = 256 * MB) -> float:
        """Measured data rate for a given packet size."""
        return nbytes / self.transfer_seconds(nbytes, packet_bytes)


def hippi_benchmark(
    channels: int = 1,
    transfer_bytes: float = 256 * MB,
    packet_sizes: tuple[int, ...] = PACKET_SIZES,
    channel: HippiChannel | None = None,
) -> dict[str, object]:
    """Run the HIPPI benchmark: a rate-vs-packet-size curve per channel
    count, concurrent transfers simulated on the event engine.

    Returns the single-transfer curve and the aggregate concurrent rate
    at the largest packet size.
    """
    if channels < 1:
        raise ValueError(f"need at least one channel, got {channels}")
    if transfer_bytes <= 0:
        raise ValueError("transfer size must be positive")
    channel = channel or HippiChannel()
    curve = [
        (size, channel.effective_rate(size, transfer_bytes)) for size in packet_sizes
    ]

    # Concurrent transfers: one process per channel, same workload each.
    sim = Simulator(tracer=sim_tracer(prefix="hippi"))
    biggest = max(packet_sizes)

    def transfer():
        yield channel.transfer_seconds(transfer_bytes, biggest)
        return transfer_bytes

    procs = [sim.spawn(transfer(), name=f"hippi{i}") for i in range(channels)]
    sim.run()
    wall = max(p.finish_time for p in procs)
    aggregate = channels * transfer_bytes / wall if wall > 0 else 0.0
    return {
        "single_curve": curve,
        "channels": channels,
        "concurrent_wall_seconds": wall,
        "aggregate_rate_bytes_per_s": aggregate,
    }
