"""The I/O benchmark: climate-model history-tape writes (Section 4.5.1).

"It measures the performance of an attached, conventional disk system
(not a solid-state disk) relative to reading initial climate model data
and writing climate model output files ... It writes a simulated header
file and a simulated 'history tape' file.  The history tape file is an
unformatted, direct access file so that if run on a multiprocessing
system, different processors could write different records representing
data associated with a specific latitude."

The model here: one direct-access record per latitude (all fields and
levels for that latitude row), a small header, run across the Table 4
resolutions.  Concurrent writers overlap record *preparation* but share
the disk channel, which serialises the media transfers — so concurrency
helps until the channel saturates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.ccm2.resolutions import Resolution, resolution
from repro.machine.iop import DiskArray
from repro.units import WORD_BYTES

__all__ = ["HistoryTapeSpec", "history_io_benchmark"]


@dataclass(frozen=True)
class HistoryTapeSpec:
    """Layout of one history tape for a model resolution."""

    res: Resolution
    fields: int = 15
    header_bytes: int = 64 * 1024

    def __post_init__(self) -> None:
        if self.fields < 1:
            raise ValueError(f"need at least one field, got {self.fields}")
        if self.header_bytes < 0:
            raise ValueError("header size cannot be negative")

    @property
    def record_bytes(self) -> int:
        """One latitude record: all longitudes, levels and fields."""
        return self.res.nlon * self.res.nlev * self.fields * WORD_BYTES

    @property
    def records(self) -> int:
        return self.res.nlat

    @property
    def tape_bytes(self) -> int:
        return self.header_bytes + self.records * self.record_bytes


def history_io_benchmark(
    res: Resolution | str,
    disk: DiskArray | None = None,
    writers: int = 1,
    fields: int = 15,
) -> dict[str, float]:
    """Time writing (and reading back) one history tape.

    ``writers`` processors prepare records concurrently; the disk channel
    serialises media transfers but per-record positioning overlaps with
    other writers' preparation, so multiple writers approach the stripe's
    streaming rate.

    Returns sizes, times and effective rates (the quantities the paper's
    benchmark reports for each resolution).
    """
    if isinstance(res, str):
        res = resolution(res)
    if writers < 1:
        raise ValueError(f"need at least one writer, got {writers}")
    disk = disk or DiskArray()
    spec = HistoryTapeSpec(res=res, fields=fields)

    # Header: one small sequential write.
    header_time = disk.access_seconds(spec.header_bytes, sequential=True)

    # Records: each pays channel + media time; positioning cost is paid
    # per *batch* of concurrent writers (their seeks overlap).
    record_stream = spec.record_bytes / disk.stripe_rate_bytes_per_s
    position = disk.avg_seek_s + disk.rotational_latency_s
    batches = -(-spec.records // writers)  # ceil
    write_time = header_time + batches * position + spec.records * record_stream

    # Read-back of the initial data (sequential whole-tape read).
    read_time = disk.access_seconds(spec.tape_bytes, sequential=True)

    return {
        "record_bytes": float(spec.record_bytes),
        "records": float(spec.records),
        "tape_bytes": float(spec.tape_bytes),
        "write_seconds": write_time,
        "read_seconds": read_time,
        "write_rate_bytes_per_s": spec.tape_bytes / write_time,
        "read_rate_bytes_per_s": spec.tape_bytes / read_time,
    }
