"""The NETWORK benchmark (Section 4.5.3): FDDI/IP command mix.

"It is a shell script that tests system IP capabilities ... There are
two types of tests — data-transfer commands and non-data-transfer
commands.  Data-transfer commands are to be executed between the
benchmarked machine and a target machine; non-data-transfer commands
will inherently execute on the benchmarked machine."

The model: FDDI is a 100 Mbit/s token ring; TCP/IP over it delivers some
protocol efficiency; each command additionally pays a connection/setup
latency.  Non-data commands (hostname lookups, route queries, pings) are
pure latency.  The benchmark output is one timing row per command.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import MB

__all__ = [
    "FDDI_LINE_RATE",
    "DataTransferCommand",
    "NonDataCommand",
    "standard_command_mix",
    "network_benchmark",
]

#: FDDI line rate: 100 Mbit/s.
FDDI_LINE_RATE = 100e6 / 8.0


@dataclass(frozen=True)
class DataTransferCommand:
    """An ftp/rcp-style transfer between the machine and a target."""

    name: str
    nbytes: float
    protocol_efficiency: float = 0.75  # TCP/IP over FDDI
    setup_latency_s: float = 0.2

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"transfer size cannot be negative, got {self.nbytes}")
        if not 0.0 < self.protocol_efficiency <= 1.0:
            raise ValueError(
                f"protocol efficiency must be in (0, 1], got {self.protocol_efficiency}"
            )
        if self.setup_latency_s < 0:
            raise ValueError("setup latency cannot be negative")

    def seconds(self, line_rate: float = FDDI_LINE_RATE) -> float:
        if line_rate <= 0:
            raise ValueError(f"line rate must be positive, got {line_rate}")
        return self.setup_latency_s + self.nbytes / (line_rate * self.protocol_efficiency)

    def rate(self, line_rate: float = FDDI_LINE_RATE) -> float:
        seconds = self.seconds(line_rate)
        return self.nbytes / seconds if seconds > 0 else 0.0


@dataclass(frozen=True)
class NonDataCommand:
    """A local IP command (hostname, netstat, ping round-trip, ...)."""

    name: str
    latency_s: float

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency cannot be negative")

    def seconds(self) -> float:
        return self.latency_s


def standard_command_mix() -> list[DataTransferCommand | NonDataCommand]:
    """The benchmark's canonical command list: a spread of transfer
    sizes bracketing climate-file scales, plus the local commands."""
    return [
        NonDataCommand("hostname", 0.01),
        NonDataCommand("netstat -i", 0.05),
        NonDataCommand("ping target", 0.002),
        DataTransferCommand("ftp put 1MB", 1 * MB),
        DataTransferCommand("ftp put 10MB", 10 * MB),
        DataTransferCommand("ftp put 100MB", 100 * MB),
        DataTransferCommand("ftp get 100MB", 100 * MB),
        DataTransferCommand("rcp 10MB", 10 * MB, protocol_efficiency=0.65),
    ]


def network_benchmark(
    commands: list[DataTransferCommand | NonDataCommand] | None = None,
    line_rate: float = FDDI_LINE_RATE,
) -> dict[str, dict[str, float]]:
    """Run the command mix; returns per-command seconds (and rates for
    the data transfers), keyed by command name."""
    commands = standard_command_mix() if commands is None else commands
    if not commands:
        raise ValueError("the benchmark needs at least one command")
    results: dict[str, dict[str, float]] = {}
    for cmd in commands:
        if isinstance(cmd, DataTransferCommand):
            results[cmd.name] = {
                "seconds": cmd.seconds(line_rate),
                "rate_bytes_per_s": cmd.rate(line_rate),
            }
        else:
            results[cmd.name] = {"seconds": cmd.seconds()}
    return results
