"""The NCAR kernel benchmarks (Section 4) plus HINT (Section 3.3).

Each kernel module exposes two faces:

* a **functional** NumPy implementation that really computes the kernel's
  answer (tested for numerical correctness), and
* a **trace builder** that describes the kernel's work as machine-model
  operation descriptors, from which the performance tables and figures
  are regenerated.

Modules
-------
``paranoia``  PARANOIA-style floating-point arithmetic correctness checks.
``elefunt``   ELEFUNT intrinsic accuracy tests + throughput (Table 3).
``membench``  Shared constant-data-volume sweep machinery (KTRIES, axes).
``copy``      COPY: unit-stride memory-to-memory bandwidth (Figure 5).
``ia``        IA: indirect-address (gather) bandwidth (Figure 5).
``xpose``     XPOSE: matrix-transpose (scatter) bandwidth (Figure 5).
``fftpack``   From-scratch mixed-radix (2/3/5) FFTs, both loop orderings.
``rfft``      RFFT: "scalar"-style real FFT benchmark (Figure 6).
``vfft``      VFFT: "vector"-style real FFT benchmark (Figure 7).
``radabs``    RADABS: CCM2 radiation-physics kernel (Table 1, Section 4.4).
``hint``      HINT hierarchical-integration benchmark (Table 1).
``linpack``   LINPACK (Section 3.1), the rejected peak-rate comparison.
``nas``       NAS EP and CG kernels (Section 3.2), the rejected CFD suite.
``stream``    STREAM (Section 3.4), the rejected fixed-size bandwidth test.
"""

from repro.kernels import (  # noqa: F401
    copy,
    elefunt,
    fftpack,
    hint,
    ia,
    linpack,
    membench,
    nas,
    paranoia,
    radabs,
    rfft,
    stream,
    vfft,
    xpose,
)

__all__ = [
    "copy",
    "elefunt",
    "fftpack",
    "hint",
    "ia",
    "linpack",
    "membench",
    "nas",
    "paranoia",
    "radabs",
    "rfft",
    "stream",
    "vfft",
    "xpose",
]
