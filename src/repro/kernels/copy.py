"""COPY: unit-stride memory-to-memory bandwidth (Section 4.2.1).

The Fortran original::

    do j=1,M
       do i=1,N
          b(i,j)=a(i,j)
       end do
    end do

with N from 1 to 10⁶ and M chosen so N·M ≈ 10⁶.  The inner loop is a
unit-stride copy — the access pattern the SX-4 guarantees conflict-free —
so COPY traces the *upper envelope* of the machine's memory system and
"far exceeds" XPOSE and IA in Figure 5.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import membench
from repro.machine.operations import ScalarOp, Trace, VectorOp
from repro.machine.processor import Processor

__all__ = ["copy_kernel", "verify", "build_trace", "model_curve"]


def copy_kernel(a: np.ndarray) -> np.ndarray:
    """Functional COPY: column-by-column copy of a Fortran-order (N, M)
    array, preserving the benchmark's loop structure (inner loop over the
    first axis is the vectorised one)."""
    if a.ndim != 2:
        raise ValueError(f"COPY operates on a 2-D array, got shape {a.shape}")
    b = np.empty_like(a, order="F")
    for j in range(a.shape[1]):  # the M instance axis
        b[:, j] = a[:, j]  # the N copy axis, unit stride
    return b


def verify(a: np.ndarray, b: np.ndarray) -> bool:
    """COPY's correctness check: b must equal a exactly (it's a copy)."""
    return bool(np.array_equal(a, b))


def build_trace(n: int, m: int) -> Trace:
    """Machine-model description of one COPY sweep point."""
    if n < 1 or m < 1:
        raise ValueError(f"axis lengths must be positive, got N={n}, M={m}")
    return Trace(
        [
            VectorOp(
                "copy inner",
                length=n,
                count=m,
                loads_per_element=1.0,
                stores_per_element=1.0,
                load_stride=1,
                store_stride=1,
            ),
            ScalarOp("copy outer-loop", instructions=8.0, count=m),
        ],
        name=f"COPY N={n} M={m}",
    )


def model_curve(processor: Processor, **kwargs) -> membench.BandwidthCurve:
    """The COPY line of Figure 5 on the given machine model."""
    return membench.model_curve("COPY", processor, build_trace, **kwargs)
