"""ELEFUNT: intrinsic-function accuracy and throughput (Section 4.1, Table 3).

Based on W. J. Cody's ELEFUNT methodology: each elementary function is
checked against an *identity* whose right-hand side can be computed with
one extra-precision trick, and the worst deviation is reported in ULPs
(units in the last place).  The NCAR suite extended Cody's accuracy code
with throughput measurements — millions of function calls per second —
for EXP, LOG, PWR, SIN and SQRT; those are Table 3.

Accuracy here runs on the *host* arithmetic (our substitute for the
SX-4's IEEE-754 mode, which the paper reports simply as "passed"); the
throughput face has both a host measurement and a machine-model rate
derived from the vector unit's intrinsic pipeline throughputs.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.machine.operations import Trace, VectorOp
from repro.machine.processor import Processor
from repro.units import MEGA

__all__ = [
    "MEASURED_FUNCTIONS",
    "AccuracyResult",
    "ulp_error",
    "test_exp",
    "test_log",
    "test_sin",
    "test_sqrt",
    "test_pwr",
    "run_accuracy_suite",
    "throughput_trace",
    "model_mcalls_per_s",
    "model_table3",
    "host_mcalls_per_s",
]

#: The five intrinsics Table 3 reports, in paper order.
MEASURED_FUNCTIONS = ("exp", "log", "pwr", "sin", "sqrt")

#: Default accuracy threshold in ULPs.  A correctly rounded library keeps
#: single operations within 0.5 ULP; the identity tests compound a few
#: calls, so a handful of ULPs is the ELEFUNT-style pass criterion.
MAX_ULP_THRESHOLD = 4.0


@dataclass(frozen=True)
class AccuracyResult:
    """Outcome of one ELEFUNT identity test.

    ``threshold`` is identity-specific: identities whose right-hand side
    amplifies the library's error (the sine triple-angle formula has a
    condition number near 8 over the test range) allow proportionally
    more ULPs, exactly as Cody's reports tolerate a few digits of loss on
    compound identities.
    """

    function: str
    identity: str
    samples: int
    max_ulp: float
    rms_ulp: float
    threshold: float = MAX_ULP_THRESHOLD

    @property
    def passed(self) -> bool:
        return self.max_ulp <= self.threshold


def ulp_error(computed: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """|computed - reference| in units of the reference's last place."""
    computed = np.asarray(computed, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    spacing = np.spacing(np.abs(reference))
    spacing = np.where(spacing == 0.0, np.finfo(np.float64).tiny, spacing)
    return np.abs(computed - reference) / spacing


def _result(
    function: str,
    identity: str,
    lhs: np.ndarray,
    rhs: np.ndarray,
    threshold: float = MAX_ULP_THRESHOLD,
) -> AccuracyResult:
    errors = ulp_error(lhs, rhs)
    return AccuracyResult(
        function=function,
        identity=identity,
        samples=int(errors.size),
        max_ulp=float(errors.max()),
        rms_ulp=float(np.sqrt(np.mean(errors**2))),
        threshold=threshold,
    )


def _samples(lo: float, hi: float, n: int, rng: np.random.Generator) -> np.ndarray:
    return rng.uniform(lo, hi, size=n)


def test_exp(n: int = 2000, seed: int = 0) -> AccuracyResult:
    """Cody's EXP identity: exp(x - 1/16) · exp(1/16) == exp(x).

    1/16 is exactly representable, so the identity holds in exact
    arithmetic and any deviation is library error (plus one rounding).
    """
    rng = np.random.default_rng(seed)
    x = _samples(-60.0, 60.0, n, rng)
    lhs = np.exp(x - 0.0625) * math.exp(0.0625)
    return _result("exp", "exp(x-1/16)*exp(1/16) = exp(x)", lhs, np.exp(x))


def test_log(n: int = 2000, seed: int = 1) -> AccuracyResult:
    """Cody's LOG identity: log(x · 17/16) - log(17/16) == log(x)."""
    rng = np.random.default_rng(seed)
    x = _samples(1.0 / 64.0, 1e6, n, rng)
    lhs = np.log(x * (17.0 / 16.0)) - math.log(17.0 / 16.0)
    return _result("log", "log(17x/16)-log(17/16) = log(x)", lhs, np.log(x))


def test_sin(n: int = 2000, seed: int = 2) -> AccuracyResult:
    """Triple-angle identity: sin(3x) == 3 sin(x) - 4 sin³(x).

    The range keeps 3x away from the zeros of sine (where ULP spacing of
    the reference collapses and the identity test would measure argument
    reduction instead of library accuracy — Cody restricts it the same
    way).
    """
    rng = np.random.default_rng(seed)
    x = _samples(1e-3, 0.9, n, rng)
    s = np.sin(x)
    lhs = 3.0 * s - 4.0 * s**3
    # The identity's condition number reaches ~8 over this range, so a
    # 0.5-ULP-correct sine legitimately shows up to ~16 ULP here.
    return _result("sin", "sin(3x) = 3sin(x)-4sin^3(x)", lhs, np.sin(3.0 * x),
                   threshold=16.0)


def test_sqrt(n: int = 2000, seed: int = 3) -> AccuracyResult:
    """SQRT identity: sqrt(x·x) == x for positive x below overflow."""
    rng = np.random.default_rng(seed)
    x = _samples(1e-6, 1e6, n, rng)
    lhs = np.sqrt(x * x)
    return _result("sqrt", "sqrt(x*x) = x", lhs, x)


def test_pwr(n: int = 2000, seed: int = 4) -> AccuracyResult:
    """PWR identity: x**1.5 == x · sqrt(x)."""
    rng = np.random.default_rng(seed)
    x = _samples(1e-3, 1e3, n, rng)
    lhs = x**1.5
    return _result("pwr", "x**1.5 = x*sqrt(x)", lhs, x * np.sqrt(x))


def run_accuracy_suite(n: int = 2000) -> list[AccuracyResult]:
    """All five identity tests; the SX-4 'passed' these (Section 4.1)."""
    return [test_exp(n), test_log(n), test_sin(n), test_sqrt(n), test_pwr(n)]


# -- throughput (Table 3) -----------------------------------------------------

def throughput_trace(func: str, length: int = 10_000, count: int = 20) -> Trace:
    """The Table 3 throughput loop: ``count`` sweeps of ``length`` calls."""
    return Trace(
        [
            VectorOp.make(
                f"elefunt {func}",
                length,
                count=float(count),
                loads_per_element=1.0,
                stores_per_element=1.0,
                intrinsics={func: 1.0},
            )
        ],
        name=f"ELEFUNT {func}",
    )


def model_mcalls_per_s(
    processor: Processor, func: str, length: int = 10_000, count: int = 20
) -> float:
    """Millions of calls/s for one intrinsic on a machine model."""
    if func not in MEASURED_FUNCTIONS:
        raise ValueError(f"Table 3 measures {MEASURED_FUNCTIONS}, not {func!r}")
    trace = throughput_trace(func, length, count)
    seconds = processor.time(trace)
    return length * count / seconds / MEGA


def model_table3(processor: Processor) -> dict[str, float]:
    """Table 3: Mcalls/s for all five intrinsics, 64-bit, one processor."""
    return {f: model_mcalls_per_s(processor, f) for f in MEASURED_FUNCTIONS}


_HOST_FUNCS = {
    "exp": np.exp,
    "log": np.log,
    "sin": np.sin,
    "sqrt": np.sqrt,
    "pwr": lambda x: x**1.5,
}


def host_mcalls_per_s(func: str, length: int = 100_000, ktries: int = 5) -> float:
    """Table 3's measurement run on the *host* (NumPy's vector library)."""
    if func not in _HOST_FUNCS:
        raise ValueError(f"unknown intrinsic {func!r}")
    x = np.linspace(0.1, 10.0, length)
    f = _HOST_FUNCS[func]
    best = math.inf
    for _ in range(max(1, ktries)):
        start = time.perf_counter()
        f(x)
        best = min(best, time.perf_counter() - start)
    return length / best / MEGA
