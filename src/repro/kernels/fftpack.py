"""From-scratch mixed-radix FFTs in the spirit of FFTPACK (Section 4.3).

RFFT and VFFT in the NCAR suite are two loop orderings of P. N.
Swarztrauber's FFTPACK real FFT.  This module provides the numerical
core both share:

* :func:`factorize` — factor a length into the radices {2, 3, 4, 5}
  FFTPACK supports (the benchmark uses N = 2ⁿ, 3·2ⁿ and 5·2ⁿ),
* :func:`complex_fft` — a recursive mixed-radix Cooley-Tukey transform
  over axis 0, broadcasting over any number of trailing instance axes
  (this *is* the "vector" orientation: one butterfly step applied to all
  instances at once),
* :func:`real_forward` / :func:`real_inverse` — the real↔half-complex
  transforms the benchmark measures,
* :func:`real_fft_flops` — the operation count used to convert measured
  times into the Mflops of Figures 6 and 7,
* :func:`rfft_axis_lengths` / :func:`vfft_axis_lengths` — the exact axis
  families the paper sweeps.

Everything is validated against ``numpy.fft`` in the test suite; no FFT
code from NumPy is used in the transform itself.
"""

from __future__ import annotations


import numpy as np

# repolint: exempt=REPO001 -- shared FFT machinery; rfft/vfft own the benchmark faces
__all__ = [
    "RADICES",
    "factorize",
    "is_supported_size",
    "complex_fft",
    "real_forward",
    "real_inverse",
    "real_fft_flops",
    "pass_structure",
    "rfft_axis_lengths",
    "vfft_axis_lengths",
    "rfft_instance_count",
    "PASS_FLOPS_PER_POINT",
]

#: Radices implemented, in the order FFTPACK prefers them.
RADICES = (4, 2, 3, 5)

#: Real-FFT butterfly cost per transformed point for each radix pass
#: (adds+multiplies, the counts behind the canonical 2.5·N·log2(N)).
PASS_FLOPS_PER_POINT = {2: 2.5, 3: 4.0, 4: 4.25, 5: 5.0}


def factorize(n: int) -> list[int]:
    """Factor ``n`` into FFTPACK radices (4 preferred, then 2, 3, 5).

    Raises ``ValueError`` for lengths with prime factors other than
    2, 3, 5 — the suite never uses them.
    """
    if n < 1:
        raise ValueError(f"transform length must be positive, got {n}")
    remaining = n
    factors: list[int] = []
    for radix in RADICES:
        while remaining % radix == 0:
            factors.append(radix)
            remaining //= radix
    if remaining != 1:
        raise ValueError(
            f"length {n} has prime factors outside {{2, 3, 5}} and is not "
            "supported by the FFTPACK-style transform"
        )
    return factors


def is_supported_size(n: int) -> bool:
    """True if ``n`` factors entirely into 2, 3 and 5."""
    try:
        factorize(n)
    except ValueError:
        return False
    return True


def _fft_recursive(x: np.ndarray, sign: float) -> np.ndarray:
    """Mixed-radix Cooley-Tukey over axis 0, broadcasting trailing axes."""
    n = x.shape[0]
    if n == 1:
        return x.copy()
    for radix in (2, 3, 5):  # recursion never needs the fused radix-4
        if n % radix == 0:
            break
    else:  # pragma: no cover - factorize() guards this
        raise ValueError(f"unsupported transform length {n}")
    m = n // radix
    # Decimation in time: radix interleaved sub-transforms of length m.
    subs = [_fft_recursive(x[r::radix], sign) for r in range(radix)]
    k = np.arange(n)
    k_mod = k % m
    shape = (n,) + (1,) * (x.ndim - 1)
    out = np.zeros_like(subs[0], shape=(n,) + x.shape[1:])
    for r, sub in enumerate(subs):
        twiddle = np.exp(sign * 2j * np.pi * r * k / n).reshape(shape)
        out += twiddle * sub[k_mod]
    return out


def complex_fft(x: np.ndarray, inverse: bool = False) -> np.ndarray:
    """Complex mixed-radix FFT over axis 0 of ``x``.

    Instances live in the trailing axes and are transformed together —
    the butterfly arithmetic broadcasts across them, which is exactly the
    VFFT memory orientation.  The inverse is unnormalised-then-scaled
    (``ifft(fft(x)) == x``).
    """
    x = np.asarray(x, dtype=np.complex128)
    if x.shape[0] == 0:
        raise ValueError("cannot transform an empty axis")
    factorize(x.shape[0])  # validate the size up front
    sign = +1.0 if inverse else -1.0
    out = _fft_recursive(x, sign)
    if inverse:
        out /= x.shape[0]
    return out


def real_forward(x: np.ndarray) -> np.ndarray:
    """Real-to-complex forward transform over axis 0.

    Input shape ``(N, ...)`` real; output shape ``(N//2 + 1, ...)``
    complex, matching ``numpy.fft.rfft`` over axis 0 (the benchmark's
    correctness reference).
    """
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[0]
    spectrum = complex_fft(x.astype(np.complex128))
    return spectrum[: n // 2 + 1]


def real_inverse(spectrum: np.ndarray, n: int) -> np.ndarray:
    """Complex-to-real inverse of :func:`real_forward` (length ``n``).

    Reconstructs the full Hermitian spectrum and inverse-transforms; the
    imaginary residue (roundoff) is discarded.
    """
    spectrum = np.asarray(spectrum, dtype=np.complex128)
    expected = n // 2 + 1
    if spectrum.shape[0] != expected:
        raise ValueError(
            f"spectrum has {spectrum.shape[0]} coefficients, expected {expected} "
            f"for a length-{n} real transform"
        )
    full = np.empty((n,) + spectrum.shape[1:], dtype=np.complex128)
    full[:expected] = spectrum
    if n > 1:
        tail = spectrum[1 : n - expected + 1]
        full[expected:] = np.conj(tail)[::-1]
    return complex_fft(full, inverse=True).real


def real_fft_flops(n: int) -> float:
    """Operation count of one length-``n`` real transform.

    Sums the per-pass butterfly costs of the actual factorisation; for a
    power of two this is close to the canonical ``2.5 · N · log2(N)``.
    """
    return sum(PASS_FLOPS_PER_POINT[f] * n for f in factorize(n))


def pass_structure(n: int) -> list[tuple[int, int, int]]:
    """FFTPACK pass geometry: ``(factor, l1, ido)`` per pass.

    Before pass ``p``, ``l1`` is the product of the factors already
    applied and ``ido = n / (l1 · factor)`` — the two loop extents whose
    ordering distinguishes RFFT from VFFT.  Used by the trace builders.
    """
    structure = []
    l1 = 1
    for factor in factorize(n):
        ido = n // (l1 * factor)
        structure.append((factor, l1, ido))
        l1 *= factor
    return structure


def rfft_axis_lengths() -> dict[str, list[int]]:
    """The RFFT benchmark's FFT-axis families (Section 4.3).

    ``2^n`` for n = 1…10, ``3·2^n`` for n = 0…8, ``5·2^n`` for n = 0…8.
    """
    return {
        "2^n": [2**n for n in range(1, 11)],
        "3*2^n": [3 * 2**n for n in range(0, 9)],
        "5*2^n": [5 * 2**n for n in range(0, 9)],
    }


def vfft_axis_lengths() -> dict[str, list[int]]:
    """The VFFT benchmark's FFT-axis families (Section 4.3).

    ``2^n`` for n ∈ {2, 4, 6, 7, 8, 9}, ``3·2^n`` and ``5·2^n`` for
    n ∈ {0, 2, 4, 6, 8}.
    """
    return {
        "2^n": [2**n for n in (2, 4, 6, 7, 8, 9)],
        "3*2^n": [3 * 2**n for n in (0, 2, 4, 6, 8)],
        "5*2^n": [5 * 2**n for n in (0, 2, 4, 6, 8)],
    }


def rfft_instance_count(n: int, total_elements: int = 1_000_000) -> int:
    """RFFT's instance count M(N): keeps N·M ≈ 10⁶ elements (the paper
    varied M from 500,000 down to 800)."""
    if n < 1:
        raise ValueError(f"axis length must be positive, got {n}")
    return max(1, min(500_000, round(total_elements / n)))


#: VFFT's instance counts (vector lengths) from the paper.
VFFT_INSTANCE_COUNTS = (1, 2, 5, 10, 20, 50, 100, 200, 500)
