"""HINT: Gustafson & Snell's Hierarchical INTegration benchmark (§3.3).

HINT bounds the area under ``y = (1 - x) / (1 + x)`` on [0, 1] by interval
subdivision: every split tightens the rational upper and lower bounds, and
*quality* is the reciprocal of the remaining gap.  QUIPS are quality
improvements per second — the authors' argument being that Mflops measure
work done, not progress made.

The paper ran HINT to show it *mispredicts* NCAR's workload (Table 1): it
ranks the cache-based workstations above the Cray vector machines, the
opposite of RADABS.  Accordingly this module provides:

* a functional subdivision kernel whose bounds provably bracket the exact
  area ``2·ln(2) - 1`` and tighten monotonically,
* a machine-model workload — HINT's inner loop is branchy, pointer-ish
  scalar code, so it runs on the scalar unit of every machine, cache
  misses included — yielding MQUIPS figures calibrated to Table 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.machine.operations import ScalarOp, Trace
from repro.machine.processor import Processor
from repro.units import MEGA

__all__ = [
    "EXACT_AREA",
    "HintResult",
    "hint_integrate",
    "ITERATION_INSTRUCTIONS",
    "ITERATION_FLOPS",
    "ITERATION_MEMORY_WORDS",
    "QUALITY_PER_ITERATION",
    "build_trace",
    "model_mquips",
]

#: The exact area under (1-x)/(1+x) on [0, 1].
EXACT_AREA = 2.0 * math.log(2.0) - 1.0


def _f(x: float) -> float:
    return (1.0 - x) / (1.0 + x)


@dataclass
class HintResult:
    """Bounds and quality after a HINT run."""

    iterations: int
    lower: float
    upper: float
    qualities: list[float]

    @property
    def quality(self) -> float:
        gap = self.upper - self.lower
        return math.inf if gap <= 0 else 1.0 / gap

    @property
    def brackets_exact(self) -> bool:
        return self.lower <= EXACT_AREA <= self.upper


def hint_integrate(iterations: int = 1000) -> HintResult:
    """Hierarchical integration by splitting the widest-error interval.

    Each interval [a, b] contributes a lower bound ``(b-a)·f(b)`` and an
    upper bound ``(b-a)·f(a)`` (f is decreasing on [0, 1]).  Splitting the
    interval with the largest bound gap is HINT's hierarchical refinement;
    quality after every split is recorded.
    """
    if iterations < 1:
        raise ValueError(f"need at least one iteration, got {iterations}")
    # Interval record: (gap, a, b, fa, fb); gap = (b-a)*(fa-fb).
    a, b = 0.0, 1.0
    fa, fb = _f(a), _f(b)
    intervals = [((b - a) * (fa - fb), a, b, fa, fb)]
    lower = (b - a) * fb
    upper = (b - a) * fa
    qualities: list[float] = []
    for _ in range(iterations):
        # Find the widest interval (linear scan: HINT's memory traffic).
        widest = max(range(len(intervals)), key=lambda i: intervals[i][0])
        gap, a, b, fa, fb = intervals.pop(widest)
        mid = 0.5 * (a + b)
        fm = _f(mid)
        # Replacing the interval's bounds with the two halves' bounds.
        lower += (mid - a) * fm - (b - a) * fb + (b - mid) * fb
        upper += (b - mid) * fm - (b - a) * fa + (mid - a) * fa
        intervals.append(((mid - a) * (fa - fm), a, mid, fa, fm))
        intervals.append(((b - mid) * (fm - fb), mid, b, fm, fb))
        qualities.append(1.0 / max(upper - lower, 1e-300))
    return HintResult(
        iterations=iterations, lower=lower, upper=upper, qualities=qualities
    )


#: Machine-model cost of one HINT subdivision step: scan + split + bound
#: updates.  Branchy, serial, cache-sensitive — scalar-unit work.
ITERATION_INSTRUCTIONS = 40.0
ITERATION_FLOPS = 12.0
ITERATION_MEMORY_WORDS = 10.0
#: Quality units gained per subdivision, folded with HINT's internal
#: constants into one calibration factor (chosen so the SPARC20 lands on
#: its Table 1 value of 3.5 MQUIPS).
QUALITY_PER_ITERATION = 1.72


def build_trace(iterations: int = 1_000_000) -> Trace:
    """HINT's inner loop as scalar work for the machine model."""
    if iterations < 1:
        raise ValueError(f"need at least one iteration, got {iterations}")
    return Trace(
        [
            ScalarOp(
                "hint subdivision",
                instructions=ITERATION_INSTRUCTIONS,
                flops=ITERATION_FLOPS,
                memory_words=ITERATION_MEMORY_WORDS,
                count=float(iterations),
            )
        ],
        name=f"HINT x{iterations}",
    )


def model_mquips(processor: Processor, iterations: int = 1_000_000) -> float:
    """MQUIPS on a machine model: quality improvements per second / 10⁶.

    HINT does not vectorise (the paper concludes it is "better tuned to
    measuring scalar processor performance"), so the trace is pure scalar
    work and vector machines gain nothing from their pipes.
    """
    seconds = processor.time(build_trace(iterations))
    return iterations * QUALITY_PER_ITERATION / seconds / MEGA
