"""IA: indirect-address (gather) memory bandwidth (Section 4.2.2).

The Fortran original::

    do j=1,M
       do i=1,N
          b(i,j)=a(indx(i),j)
       end do
    end do

The gather through ``indx`` is list-vector access — the pattern the SX-4's
short bank-cycle SSRAM is explicitly praised for, yet still the slowest of
the three memory benchmarks in Figure 5.  Following the paper, the
reported bandwidth counts only the elements of ``a`` moved to ``b``, not
the index values used.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import membench
from repro.machine.operations import ScalarOp, Trace, VectorOp
from repro.machine.processor import Processor

__all__ = ["ia_kernel", "random_index", "verify", "build_trace", "model_curve"]


def random_index(n: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """A random permutation index vector, the worst case for bank reuse."""
    if n < 1:
        raise ValueError(f"index length must be positive, got {n}")
    rng = rng or np.random.default_rng(0)
    return rng.permutation(n)


def ia_kernel(a: np.ndarray, indx: np.ndarray) -> np.ndarray:
    """Functional IA: gather rows of a Fortran-order (N, M) array."""
    if a.ndim != 2:
        raise ValueError(f"IA operates on a 2-D array, got shape {a.shape}")
    if indx.ndim != 1 or len(indx) != a.shape[0]:
        raise ValueError(
            f"index vector must have length {a.shape[0]}, got shape {indx.shape}"
        )
    if indx.min() < 0 or indx.max() >= a.shape[0]:
        raise ValueError("index vector out of range")
    b = np.empty_like(a, order="F")
    for j in range(a.shape[1]):
        b[:, j] = a[indx, j]
    return b


def verify(a: np.ndarray, indx: np.ndarray, b: np.ndarray) -> bool:
    """IA's correctness check against a direct NumPy gather."""
    return bool(np.array_equal(b, a[indx, :]))


def build_trace(n: int, m: int) -> Trace:
    """Machine-model description of one IA sweep point: a gathered load
    and a unit-stride store per element."""
    if n < 1 or m < 1:
        raise ValueError(f"axis lengths must be positive, got N={n}, M={m}")
    return Trace(
        [
            VectorOp(
                "ia gather inner",
                length=n,
                count=m,
                gather_loads_per_element=1.0,
                stores_per_element=1.0,
                store_stride=1,
            ),
            ScalarOp("ia outer-loop", instructions=8.0, count=m),
        ],
        name=f"IA N={n} M={m}",
    )


def model_curve(processor: Processor, **kwargs) -> membench.BandwidthCurve:
    """The IA line of Figure 5 on the given machine model."""
    return membench.model_curve("IA", processor, build_trace, **kwargs)
