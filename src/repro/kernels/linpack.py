"""LINPACK (Section 3.1) — the comparison benchmark the paper rejects.

"The LINPACK Benchmark is a numerically intensive test that has been
used for years to measure the floating point performance of computers
... The benchmark consists of solving dense systems of equations for a
system of order 100 and 1000 ... LINPACK tends to measure peak
performance of a computer and is not intended to evaluate the overall
performance of a computer system."

Both faces are provided: a from-scratch LU factorisation with partial
pivoting (DGEFA/DGESL structure — column-oriented, axpy-dominated) whose
solutions are verified against NumPy, and a trace builder whose long
unit-stride axpy inner loops are exactly why vector machines post
near-peak LINPACK numbers — the paper's criticism, which the test suite
turns into an assertion: LINPACK efficiency ≫ RADABS efficiency on the
same SX-4 model.
"""

from __future__ import annotations

import numpy as np

from repro.machine.operations import ScalarOp, Trace, VectorOp
from repro.machine.processor import Processor
from repro.units import MEGA

__all__ = [
    "lu_factor",
    "lu_solve",
    "solve",
    "residual_check",
    "linpack_flops",
    "build_trace",
    "model_mflops",
]


def lu_factor(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """LU factorisation with partial pivoting (DGEFA's algorithm).

    Returns ``(lu, pivots)`` with L (unit diagonal) and U packed in one
    array.  Column-oriented elimination: the inner operation is the
    unit-stride axpy that defines the benchmark.
    """
    lu = np.array(a, dtype=np.float64)
    n = lu.shape[0]
    if lu.ndim != 2 or lu.shape[1] != n:
        raise ValueError(f"need a square matrix, got shape {a.shape}")
    pivots = np.zeros(n, dtype=np.int64)
    for k in range(n):
        # Partial pivoting: largest magnitude in the column at/below k.
        p = k + int(np.argmax(np.abs(lu[k:, k])))
        pivots[k] = p
        if lu[p, k] == 0.0:
            raise np.linalg.LinAlgError(f"matrix is singular at column {k}")
        if p != k:
            lu[[k, p], :] = lu[[p, k], :]
        # Scale the multipliers, then rank-1 update the trailing block.
        lu[k + 1 :, k] /= lu[k, k]
        if k + 1 < n:
            lu[k + 1 :, k + 1 :] -= np.outer(lu[k + 1 :, k], lu[k, k + 1 :])
    return lu, pivots


def lu_solve(lu: np.ndarray, pivots: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve with a factorisation from :func:`lu_factor` (DGESL's role).

    :func:`lu_factor` swaps *whole* rows (L multipliers included), so the
    solve applies all row interchanges to b up front and then performs
    clean forward (unit-L) and backward (U) substitutions.
    """
    n = lu.shape[0]
    if b.shape != (n,):
        raise ValueError(f"right-hand side must have shape ({n},), got {b.shape}")
    x = np.array(b, dtype=np.float64)
    for k in range(n):  # apply the recorded interchanges, in order
        p = pivots[k]
        if p != k:
            x[k], x[p] = x[p], x[k]
    for k in range(n):  # forward substitution, unit diagonal
        x[k + 1 :] -= lu[k + 1 :, k] * x[k]
    for k in range(n - 1, -1, -1):  # back substitution
        x[k] /= lu[k, k]
        x[:k] -= lu[:k, k] * x[k]
    return x


def solve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The benchmark's operation: solve A·x = b."""
    lu, pivots = lu_factor(a)
    return lu_solve(lu, pivots, b)


def residual_check(a: np.ndarray, x: np.ndarray, b: np.ndarray) -> float:
    """LINPACK's normalised residual ‖Ax−b‖ / (n·‖A‖·‖x‖·eps)."""
    n = a.shape[0]
    eps = np.finfo(np.float64).eps
    num = float(np.max(np.abs(a @ x - b)))
    den = n * float(np.max(np.abs(a))) * max(float(np.max(np.abs(x))), 1e-300) * eps
    return num / den


def linpack_flops(n: int) -> float:
    """The benchmark's official operation count: 2n³/3 + 2n²."""
    return 2.0 * n**3 / 3.0 + 2.0 * n**2


def build_trace(n: int) -> Trace:
    """Machine-model description of one order-``n`` solve.

    Column k's elimination is (n−k−1) axpy operations of length (n−k−1):
    unit stride, 2 flops/element, operands streaming from memory with one
    kept in registers — the friendliest workload a vector machine sees.
    """
    if n < 2:
        raise ValueError(f"system order must be >= 2, got {n}")
    ops: list = []
    # Group the elimination axpys into bands of similar vector length to
    # keep the trace compact: lengths n-1 ... 1, each used (length) times.
    for length in range(n - 1, 0, -1):
        ops.append(
            VectorOp(
                f"dgefa axpy len {length}",
                length=length,
                count=float(length),
                flops_per_element=2.0,
                # The pivot column stays resident in vector registers
                # across the rank-1 update, so only one operand streams.
                loads_per_element=1.0,
                stores_per_element=1.0,
            )
        )
    ops.append(ScalarOp("pivot search + scale", instructions=30.0, count=float(n)))
    # Triangular solves: 2n² flops of short-vector axpys.
    ops.append(
        VectorOp(
            "dgesl substitution",
            length=max(1, n // 2),
            count=float(4 * n),
            flops_per_element=1.0,
            loads_per_element=1.0,
            stores_per_element=1.0,
        )
    )
    return Trace(ops, name=f"LINPACK n={n}")


def model_mflops(processor: Processor, n: int = 1000) -> float:
    """LINPACK Mflops (official flop count) on a machine model."""
    seconds = processor.time(build_trace(n))
    return linpack_flops(n) / seconds / MEGA
