"""Shared machinery for the memory-bandwidth benchmarks (Section 4.2).

The COPY, IA and XPOSE benchmarks share a "novel feature" the paper calls
out: the axis length ``N`` and the instance count ``M`` are chosen so the
amount of data moved stays roughly constant (≈10⁶ elements), sweeping from
many tiny arrays to a few huge ones.  This yields a bandwidth *curve*
rather than a single number (the paper's criticism of STREAM).

This module provides:

* :func:`sweep_axes` — the (N, M) pairs of such a constant-volume sweep,
* :func:`best_of` — the KTRIES protocol: repeat a measurement K times and
  keep the best (the paper used KTRIES=20 for the memory benchmarks),
* :class:`BandwidthPoint` / :class:`BandwidthCurve` — results containers
  that report bandwidth the way the paper does, counting only the elements
  of ``a`` moved to ``b`` (one-way traffic, indices excluded),
* :func:`model_curve` — run a kernel's trace builder across the sweep on a
  machine model.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.machine.operations import Trace
from repro.machine.processor import Processor
from repro.units import MB, WORD_BYTES

# repolint: exempt=REPO001 -- sweep/timing machinery shared by COPY/IA/XPOSE
__all__ = [
    "DEFAULT_TOTAL_ELEMENTS",
    "DEFAULT_KTRIES",
    "sweep_axes",
    "best_of",
    "time_host",
    "BandwidthPoint",
    "BandwidthCurve",
    "model_curve",
]

#: Elements kept in flight at every sweep point (the paper's ~10⁶).
DEFAULT_TOTAL_ELEMENTS = 1_000_000
#: KTRIES used for COPY/IA/XPOSE/RFFT in the paper.
DEFAULT_KTRIES = 20


def sweep_axes(
    total_elements: int = DEFAULT_TOTAL_ELEMENTS,
    n_min: int = 1,
    n_max: int | None = None,
    points_per_decade: int = 4,
) -> list[tuple[int, int]]:
    """(N, M) pairs with N rising geometrically and N·M ≈ total_elements.

    ``N`` runs from ``n_min`` to ``n_max`` (default: ``total_elements``,
    i.e. the paper's 1 … 10⁶ for COPY/IA); ``M`` is the matching instance
    count, never below 1.
    """
    if total_elements < 1:
        raise ValueError(f"total_elements must be positive, got {total_elements}")
    if n_min < 1:
        raise ValueError(f"n_min must be >= 1, got {n_min}")
    n_max = n_max if n_max is not None else total_elements
    if n_max < n_min:
        raise ValueError(f"n_max ({n_max}) must be >= n_min ({n_min})")
    pairs: list[tuple[int, int]] = []
    decades = math.log10(n_max / n_min) if n_max > n_min else 0.0
    steps = max(1, round(decades * points_per_decade))
    seen: set[int] = set()
    for i in range(steps + 1):
        n = round(n_min * (n_max / n_min) ** (i / steps)) if steps else n_min
        n = max(n_min, min(n_max, n))
        if n in seen:
            continue
        seen.add(n)
        m = max(1, round(total_elements / n))
        pairs.append((n, m))
    return pairs


def best_of(measure: Callable[[], float], ktries: int = DEFAULT_KTRIES) -> float:
    """The KTRIES protocol: call ``measure`` K times, return the minimum.

    ``measure`` returns a duration in seconds; the best (smallest) is kept,
    which is how the paper smooths its performance curves (KTRIES ≥ 5).
    """
    if ktries < 1:
        raise ValueError(f"ktries must be >= 1, got {ktries}")
    return min(measure() for _ in range(ktries))


def time_host(work: Callable[[], object], ktries: int = DEFAULT_KTRIES) -> float:
    """Best-of-KTRIES wall time of ``work()`` on the host machine."""

    def measure() -> float:
        start = time.perf_counter()
        work()
        return time.perf_counter() - start

    return best_of(measure, ktries)


@dataclass(frozen=True)
class BandwidthPoint:
    """One sweep point: axis length, instances, time, one-way bandwidth."""

    n: int
    m: int
    seconds: float
    elements_moved: int

    @property
    def bytes_moved(self) -> float:
        """One-way bytes: only the elements of ``a`` moved to ``b``
        (Section 4.2: indices are not counted)."""
        return self.elements_moved * WORD_BYTES

    @property
    def bandwidth_bytes_per_s(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.bytes_moved / self.seconds

    @property
    def bandwidth_mb_per_s(self) -> float:
        """MB/s, the unit of Figure 5."""
        return self.bandwidth_bytes_per_s / MB


@dataclass
class BandwidthCurve:
    """A labelled bandwidth-vs-axis-length curve (one line of Figure 5)."""

    name: str
    machine: str
    points: list[BandwidthPoint] = field(default_factory=list)

    def __iter__(self):
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    @property
    def peak(self) -> BandwidthPoint:
        if not self.points:
            raise ValueError(f"curve {self.name!r} has no points")
        return max(self.points, key=lambda p: p.bandwidth_bytes_per_s)

    @property
    def asymptote_mb_per_s(self) -> float:
        """Bandwidth at the largest axis length measured."""
        if not self.points:
            raise ValueError(f"curve {self.name!r} has no points")
        return max(self.points, key=lambda p: p.n).bandwidth_mb_per_s

    def series(self) -> tuple[list[int], list[float]]:
        """(axis lengths, MB/s) sorted by axis length, for plotting."""
        pts = sorted(self.points, key=lambda p: p.n)
        return [p.n for p in pts], [p.bandwidth_mb_per_s for p in pts]


def model_curve(
    name: str,
    processor: Processor,
    trace_builder: Callable[[int, int], Trace],
    axes: Sequence[tuple[int, int]] | None = None,
    elements_counter: Callable[[int, int], int] | None = None,
) -> BandwidthCurve:
    """Evaluate a kernel's trace builder across a sweep on a machine model.

    ``trace_builder(n, m)`` describes the kernel at one sweep point;
    ``elements_counter(n, m)`` says how many elements of ``a`` it moves
    (default ``n * m``).  The machine model is deterministic, so KTRIES
    best-of is a no-op here and is not applied.
    """
    if axes is None:
        axes = sweep_axes()
    counter = elements_counter or (lambda n, m: n * m)
    curve = BandwidthCurve(name=name, machine=processor.name)
    for n, m in axes:
        trace = trace_builder(n, m)
        seconds = processor.time(trace)
        curve.points.append(
            BandwidthPoint(n=n, m=m, seconds=seconds, elements_moved=counter(n, m))
        )
    return curve
