"""NAS Parallel Benchmark kernels (Section 3.2) — the CFD comparison.

"The NAS Parallel Benchmarks are designed to characterize the
computation and data movement of large scale computational fluid
dynamics (CFD) applications ... These benchmarks are unique in that they
are specified algorithmically rather than with computer code.  Although
there is significant commonality between CFD and numerical
climate/weather prediction, the differences are such that benchmarks
from the NAS suite did not characterize the computational load at NCAR."

Two of the five kernels are implemented from their algorithmic
specifications — enough to *measure* the paper's point:

* **EP (Embarrassingly Parallel)**: generate pseudorandom pairs with the
  NAS linear-congruential generator, accept those inside the unit disk,
  form Gaussian deviates by Marsaglia's polar method, and tally them
  into ten annular square-count bins.  Pure arithmetic, no memory
  structure — the anti-RADABS.
* **CG (Conjugate Gradient)**: estimate the smallest eigenvalue-shifted
  system solve via CG on a sparse SPD matrix — here the 9-point
  Helmholtz operator the ocean models use, which is the structured-grid
  analogue of NAS CG's sparse matvec.

The suite-level observation the tests assert: EP says nothing about
memory bandwidth (its model performance is independent of the memory
system), which is exactly why a suite of such kernels could not
characterise NCAR's bandwidth-limited workload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.operations import Trace, VectorOp
from repro.machine.processor import Processor
from repro.units import MEGA

__all__ = [
    "nas_random",
    "EPResult",
    "ep_kernel",
    "ep_trace",
    "ep_model_mflops",
    "cg_benchmark",
]

#: NAS LCG parameters: x_{k+1} = a·x_k mod 2^46.
_A = 5**13
_MOD = 2**46
_DEFAULT_SEED = 271828183


def nas_random(n: int, seed: int = _DEFAULT_SEED) -> np.ndarray:
    """The NAS pseudorandom sequence: n uniforms in (0, 1).

    Implemented exactly as specified (multiplicative LCG modulo 2^46)
    using Python integers for the recurrence, vectorised in blocks via
    the jump-ahead property a^k mod 2^46.
    """
    if n < 1:
        raise ValueError(f"need at least one deviate, got {n}")
    if not 0 < seed < _MOD or seed % 2 == 0:
        raise ValueError("seed must be an odd integer in (0, 2^46)")
    out = np.empty(n, dtype=np.float64)
    x = seed
    for i in range(n):
        x = (_A * x) % _MOD
        out[i] = x / _MOD
    return out


@dataclass(frozen=True)
class EPResult:
    """EP's verification quantities: sums and the annulus counts."""

    pairs_tested: int
    pairs_accepted: int
    sum_x: float
    sum_y: float
    counts: tuple[int, ...]

    @property
    def acceptance_rate(self) -> float:
        return self.pairs_accepted / max(1, self.pairs_tested)


def ep_kernel(pairs: int, seed: int = _DEFAULT_SEED) -> EPResult:
    """The EP benchmark: Gaussian deviates by the polar method, binned.

    For each accepted pair (x², y² with t = x²+y² ≤ 1) the Gaussian pair
    is (x·√(−2·ln t / t), y·√(−2·ln t / t)); the bin is
    ``floor(max(|X|, |Y|))``, capped at 9.
    """
    if pairs < 1:
        raise ValueError(f"need at least one pair, got {pairs}")
    uniforms = nas_random(2 * pairs)
    x = 2.0 * uniforms[0::2] - 1.0
    y = 2.0 * uniforms[1::2] - 1.0
    t = x * x + y * y
    accept = (t <= 1.0) & (t > 0.0)
    xa, ya, ta = x[accept], y[accept], t[accept]
    factor = np.sqrt(-2.0 * np.log(ta) / ta)
    gx, gy = xa * factor, ya * factor
    bins = np.minimum(np.floor(np.maximum(np.abs(gx), np.abs(gy))), 9).astype(int)
    counts = np.bincount(bins, minlength=10)
    return EPResult(
        pairs_tested=pairs,
        pairs_accepted=int(accept.sum()),
        sum_x=float(gx.sum()),
        sum_y=float(gy.sum()),
        counts=tuple(int(c) for c in counts[:10]),
    )


def ep_trace(pairs: int) -> Trace:
    """Machine-model description of EP: long vectors of pure arithmetic
    (two uniforms, the acceptance test, log/sqrt per accepted pair) with
    almost no memory traffic — the structural opposite of COPY/IA."""
    if pairs < 1:
        raise ValueError(f"need at least one pair, got {pairs}")
    length = min(pairs, 65536)
    count = max(1.0, pairs / length)
    return Trace(
        [
            VectorOp.make(
                "ep pair",
                length,
                count=count,
                flops_per_element=12.0,  # LCG updates, polar test, scalings
                loads_per_element=0.1,  # tallies only
                stores_per_element=0.1,
                intrinsics={"log": 0.79, "sqrt": 0.79},  # per accepted pair
            )
        ],
        name=f"NAS EP {pairs} pairs",
    )


def ep_model_mflops(processor: Processor, pairs: int = 1_000_000) -> float:
    """EP Mflops on a machine model (flop-equivalent accounting)."""
    trace = ep_trace(pairs)
    report = processor.execute(trace)
    return report.flop_equivalents / report.seconds / MEGA


def cg_benchmark(nlat: int = 64, nlon: int = 96, seed: int = 0) -> dict[str, float]:
    """A NAS-CG-shaped benchmark on the ocean substrate's solver.

    Builds the SPD 9-point Helmholtz system, solves it with the POP
    conjugate-gradient solver, and reports iterations and residual —
    the functional face; NAS CG's performance story (sparse matvec,
    irregular access) is the IA benchmark's territory in this suite.
    """
    from repro.apps.pop.operators import NinePointStencil
    from repro.apps.pop.solver import conjugate_gradient

    stencil = NinePointStencil.helmholtz(
        nlat, nlon, dx=np.full(nlat, 1.0e5), dy=1.1e5, alpha=1.0e9
    )
    rng = np.random.default_rng(seed)
    rhs = rng.standard_normal((nlat, nlon))
    result = conjugate_gradient(stencil, rhs, tol=1e-10)
    if not result.converged:
        raise RuntimeError("CG failed to converge on the benchmark system")
    return {
        "iterations": float(result.iterations),
        "residual": result.residual_norm,
        "unknowns": float(nlat * nlon),
    }
