"""PARANOIA-style floating-point arithmetic checks (Section 4.1).

Professor Kahan's PARANOIA probes the basic arithmetic of a machine —
radix, precision, guard digits, rounding behaviour, underflow style —
using only that machine's own arithmetic.  The SX-4 supports three
hardware float formats (IEEE 754, Cray, IBM) and the paper reports that
it "passed these tests" in its IEEE mode.

This module re-implements the core PARANOIA probes for the host's
float64 and float32 (our stand-in for the SX-4's IEEE 64/32-bit modes).
Each probe returns a :class:`Check`; :func:`run_paranoia` collects them
into a :class:`ParanoiaReport` whose ``passed`` property is the
benchmark's pass/fail verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

# repolint: exempt=REPO001 -- correctness probe (Section 4.1); nothing to price
__all__ = ["Check", "ParanoiaReport", "run_paranoia"]


@dataclass(frozen=True)
class Check:
    """One arithmetic probe: what was tested, verdict, and evidence."""

    name: str
    passed: bool
    detail: str


@dataclass
class ParanoiaReport:
    """All probes for one floating-point format."""

    dtype: str
    checks: list[Check] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> list[Check]:
        return [check for check in self.checks if not check.passed]

    def __getitem__(self, name: str) -> Check:
        for check in self.checks:
            if check.name == name:
                return check
        raise KeyError(f"no check named {name!r}")


def _find_radix(one):
    """Kahan's radix probe: grow w until (w+1)-w != 1, then step until the
    gap changes; the step at which it changes is the radix."""
    w = one
    while ((w + one) - w) - one == 0:
        w = w + w
    radix = one
    while (w + radix) - w == 0:
        radix = radix + radix
    return (w + radix) - w


def _find_precision(one, radix):
    """Number of base-``radix`` digits in the significand."""
    digits = 0
    w = one
    while ((w + one) - w) - one == 0:
        digits += 1
        w = w * radix
    return digits


def run_paranoia(dtype=np.float64) -> ParanoiaReport:
    """Run the PARANOIA probes against the given NumPy float dtype."""
    finfo = np.finfo(dtype)
    one = dtype(1.0)
    zero = dtype(0.0)
    two = dtype(2.0)
    half = dtype(0.5)
    report = ParanoiaReport(dtype=np.dtype(dtype).name)
    add = report.checks.append

    # 1. Radix: IEEE formats are binary.
    radix = _find_radix(one)
    add(Check("radix", float(radix) == 2.0, f"deduced radix {float(radix):g}"))

    # 2. Precision: the deduced digit count matches the format.
    digits = _find_precision(one, radix)
    add(
        Check(
            "precision",
            digits == finfo.nmant + 1,
            f"deduced {digits} digits, format declares {finfo.nmant + 1}",
        )
    )

    # 3. Machine epsilon consistent with precision.
    eps = dtype(float(radix)) ** dtype(-(digits - 1))
    add(
        Check(
            "epsilon",
            float(eps) == float(finfo.eps),
            f"radix**(1-digits) = {float(eps):g}, finfo.eps = {float(finfo.eps):g}",
        )
    )

    # 4. Exact small-integer arithmetic (PARANOIA's first sanity screen).
    exact = (
        float(dtype(4.0) - dtype(3.0) - one) == 0.0
        and float(dtype(12.0) / dtype(3.0)) == 4.0
        and float(dtype(27.0) * dtype(3.0)) == 81.0
        and float(-dtype(5.0) + dtype(5.0)) == 0.0
    )
    add(Check("integer arithmetic", exact, "4-3-1, 12/3, 27*3, -5+5 all exact"))

    # 5. Guard digit in subtraction: cancellation must be exact.
    x = one + finfo.eps
    guard = float((x - one) - finfo.eps) == 0.0
    add(Check("subtraction guard digit", guard, "(1+eps)-1 == eps"))

    # 6. Guard digit in multiplication: (radix - eps') style probe.
    y = dtype(float(radix)) - dtype(float(radix)) * finfo.eps
    mult_guard = float(y * one - y) == 0.0
    add(Check("multiplication guard digit", mult_guard, "y*1 == y near radix"))

    # 7. Rounding: to nearest (adding half an ulp of slack must not move 1).
    r1 = float((one + finfo.eps * half) - one) == 0.0
    r2 = float((one + finfo.eps * dtype(0.75)) - one) != 0.0
    add(Check("round to nearest", r1 and r2, "1 + eps/2 rounds down, 1 + 3eps/4 rounds up"))

    # 8. Round-half-to-even on the tie cases: 1 + eps/2 ties between 1
    # (even significand) and 1+eps (odd) and must stay at 1, while
    # (1+eps) + eps/2 ties between 1+eps (odd) and 1+2eps (even) and must
    # move up to the even neighbour.
    tie_down = float((one + finfo.eps * half) - one) == 0.0
    odd = one + finfo.eps
    tie_up = float((odd + finfo.eps * half) - odd) != 0.0
    add(Check("round half to even", tie_down and tie_up, "ties go to the even neighbour"))

    # 9. Gradual underflow: subnormals exist and halving tiny is nonzero.
    tiny = finfo.tiny
    gradual = float(dtype(tiny) * half) != 0.0 and float(finfo.smallest_subnormal) > 0.0
    add(Check("gradual underflow", gradual, "tiny/2 stays nonzero (subnormals)"))

    # 10. Underflow threshold consistency: smallest subnormal * radix**nmant
    # should reach tiny again.
    rebuilt = float(finfo.smallest_subnormal) * float(radix) ** finfo.nmant
    add(
        Check(
            "underflow threshold",
            rebuilt == float(tiny),
            f"smallest_subnormal * radix**nmant = {rebuilt:g} vs tiny {float(tiny):g}",
        )
    )

    # 11. Overflow to infinity, saturating arithmetic beyond max.
    with np.errstate(over="ignore"):
        overflow = np.isinf(dtype(finfo.max) * two)
    add(Check("overflow to infinity", bool(overflow), "max*2 -> inf"))

    # 12. Division: x/x == 1 exactly over awkward values.
    values = np.array([3.0, 7.0, 1.0 / 3.0, np.pi, float(finfo.eps)], dtype=dtype)
    division = bool(np.all(values / values == one))
    add(Check("division x/x", division, "x/x == 1 for pi, 1/3, eps, ..."))

    # 13. Signed zero behaves: -0 == 0 but copysign distinguishes.
    neg_zero = dtype(-0.0)
    signed = float(neg_zero) == 0.0 and np.copysign(one, neg_zero) == -one
    add(Check("signed zero", bool(signed), "-0 == 0, copysign(1,-0) == -1"))

    # 14. sqrt of a perfect square is exact.
    squares = np.array([4.0, 9.0, 16.0, 1024.0], dtype=dtype)
    sqrt_ok = bool(np.all(np.sqrt(squares) == np.sqrt(squares).round()))
    add(Check("sqrt exactness", sqrt_ok, "sqrt of perfect squares exact"))

    # 15. Comparison consistent with subtraction: a > b iff a-b > 0.
    zero_diff = float(one + finfo.eps - one - finfo.eps)
    add(Check("comparison consistency", zero_diff == 0.0, "(1+eps)-1-eps == 0"))

    return report
