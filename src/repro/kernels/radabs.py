"""RADABS: the CCM2 radiation-physics kernel (Sections 3.3, 4.4, Table 1).

RADABS computes broadband radiative absorptivities between every pair of
model levels in a vertical column — the single most expensive subroutine
in CCM2 and "to NCAR's climate codes what LINPACK is to numerical linear
algebra".  Its defining characteristics, which both the functional kernel
and the trace builder preserve:

* embarrassingly parallel in the horizontal (one independent calculation
  per column, vectorised over the collapsed lat-lon axis),
* dominated by intrinsic calls — EXP (transmission), LOG (CO₂ band
  saturation), PWR (pressure scaling, Planck T⁴), SQRT (temperature path
  correction), SIN (zenith geometry),
* long multi-line arithmetic expressions between the intrinsics.

The paper reports RADABS in *Cray Y-MP equivalent Mflops* — operation
counts with library calls credited at Cray hardware-performance-monitor
weights — which is what :data:`repro.machine.operations.INTRINSIC_FLOP_EQUIV`
encodes.  Anchors: 865.9 Mflops on the SX-4/1, 178.1 on the Y-MP, 60.8 on
the J90, 16.5 on the RS6000/590, 12.8 on the SPARC20 (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.operations import ScalarOp, Trace, VectorOp
from repro.machine.processor import Processor
from repro.units import MEGA

__all__ = [
    "RadiationColumns",
    "make_columns",
    "radabs_kernel",
    "INTRINSIC_MIX",
    "RAW_FLOPS_PER_ELEMENT",
    "GATHERED_LOADS_PER_ELEMENT",
    "SCALAR_BOOKKEEPING_INSTRUCTIONS",
    "build_trace",
    "build_scalar_trace",
    "model_mflops",
]

# Reference constants of the band model (loosely CCM2-flavoured).
_P0 = 1.0e5  # reference pressure [Pa]
_T0 = 250.0  # reference temperature [K]
_KW = 18.0  # water-vapour broadband absorption coefficient
_C1, _C2 = 0.065, 240.0  # CO2 logarithmic band parameters
_GRAVITY = 9.80616

#: Intrinsic calls per (level-pair, column) element, the mix the trace
#: builder hands to the machine model.  Calibrated against Table 1.
INTRINSIC_MIX = {"exp": 0.8, "log": 0.3, "pwr": 0.15, "sqrt": 0.2, "sin": 0.05}
#: Genuine adds/multiplies per element (the "numerous complex, multi-line
#: equations" around the intrinsics).
RAW_FLOPS_PER_ELEMENT = 40.0
#: Gathered words per element: band-model absorption-coefficient table
#: lookups indexed by pressure/temperature bin — indirect addressing,
#: like every broadband radiation code.
GATHERED_LOADS_PER_ELEMENT = 2.0


@dataclass
class RadiationColumns:
    """Input state: ``ncol`` independent columns of ``nlev`` layers.

    All arrays are (nlev, ncol); pressures increase downward.  For the
    benchmark the initial data is identical in every column (Section 4.4),
    which :func:`make_columns` reproduces by default.
    """

    pressure: np.ndarray  # layer pressure [Pa]
    dp: np.ndarray  # layer thickness [Pa]
    temperature: np.ndarray  # layer temperature [K]
    qv: np.ndarray  # water vapour mass mixing ratio [kg/kg]
    co2: float = 3.55e-4  # CO2 volume mixing ratio
    zenith: float = 0.5  # solar zenith angle [radians]

    def __post_init__(self) -> None:
        shapes = {a.shape for a in (self.pressure, self.dp, self.temperature, self.qv)}
        if len(shapes) != 1:
            raise ValueError(f"column arrays must share one shape, got {shapes}")
        if self.pressure.ndim != 2:
            raise ValueError("column arrays are (nlev, ncol)")
        if np.any(self.dp <= 0):
            raise ValueError("layer thicknesses must be positive")
        if np.any(self.temperature <= 0):
            raise ValueError("temperatures must be positive")

    @property
    def nlev(self) -> int:
        return self.pressure.shape[0]

    @property
    def ncol(self) -> int:
        return self.pressure.shape[1]


def make_columns(ncol: int, nlev: int = 18, identical: bool = True,
                 rng: np.random.Generator | None = None) -> RadiationColumns:
    """Benchmark input: a plausible tropical-ish sounding in every column.

    With ``identical=False`` small random perturbations distinguish the
    columns (used by tests to confirm column independence).
    """
    if ncol < 1 or nlev < 2:
        raise ValueError(f"need ncol >= 1 and nlev >= 2, got {ncol}, {nlev}")
    sigma = (np.arange(nlev, dtype=np.float64) + 0.5) / nlev  # 0 (top) -> 1
    pressure = (_P0 * sigma)[:, None].repeat(ncol, axis=1)
    dp = np.full((nlev, ncol), _P0 / nlev)
    temperature = (200.0 + 95.0 * sigma**1.2)[:, None].repeat(ncol, axis=1)
    qv = (1.0e-6 + 1.5e-2 * sigma**3)[:, None].repeat(ncol, axis=1)
    if not identical:
        rng = rng or np.random.default_rng(0)
        temperature = temperature * (1.0 + 0.01 * rng.standard_normal((nlev, ncol)))
        qv = qv * (1.0 + 0.1 * rng.standard_normal((nlev, ncol))).clip(0.5, 1.5)
    return RadiationColumns(pressure=pressure, dp=dp, temperature=temperature, qv=qv)


def radabs_kernel(cols: RadiationColumns) -> tuple[np.ndarray, np.ndarray]:
    """Compute the (nlev, nlev, ncol) absorptivity matrix and the
    (nlev, ncol) surface-to-level emissivity.

    ``absorptivity[k1, k2, :]`` is the broadband absorptivity of the gas
    path between layers k1 and k2 — symmetric, zero on the diagonal,
    in [0, 1), and monotone in the absorber amount (properties the test
    suite checks).  The loop nest is the benchmark's: a doubly-nested
    level-pair loop around arithmetic vectorised over the columns.
    """
    nlev, ncol = cols.nlev, cols.ncol
    # Absorber amounts per layer [kg/m^2], pressure-scaled (band-model
    # effective path) and temperature-corrected.
    u_layer = cols.qv * cols.dp / _GRAVITY
    scale = (cols.pressure / _P0) ** 0.6  # PWR intrinsic
    tfac = np.sqrt(_T0 / cols.temperature)  # SQRT intrinsic
    u_eff = u_layer * scale * tfac
    uc_layer = cols.co2 * cols.dp / _GRAVITY
    # Cumulative paths from the top (index 0) downward; cum[k] = path
    # through layers 0..k-1 so path(k1, k2) = cum[hi] - cum[lo].
    cum_w = np.concatenate([np.zeros((1, ncol)), np.cumsum(u_eff, axis=0)])
    cum_c = np.concatenate([np.zeros((1, ncol)), np.cumsum(uc_layer, axis=0)])
    planck = (cols.temperature / _T0) ** 4  # PWR intrinsic (Planck weight)
    mu = max(np.sin(cols.zenith), 0.05)  # SIN intrinsic (slant path)

    absorptivity = np.zeros((nlev, nlev, ncol))
    for k1 in range(nlev):
        for k2 in range(k1 + 1, nlev):
            path_w = (cum_w[k2 + 1] - cum_w[k1]) / mu
            path_c = (cum_c[k2 + 1] - cum_c[k1]) / mu
            a_h2o = 1.0 - np.exp(-_KW * path_w)  # EXP intrinsic
            a_co2 = _C1 * np.log1p(_C2 * path_c)  # LOG intrinsic
            weight = 0.5 * (planck[k1] + planck[k2])
            a = (a_h2o + a_co2 - a_h2o * a_co2) * weight / (1.0 + weight)
            absorptivity[k1, k2] = a
            absorptivity[k2, k1] = a
    # Emissivity of the path from each layer to the surface.
    path_w = (cum_w[nlev] - cum_w[np.arange(nlev)]) / mu
    emissivity = (1.0 - np.exp(-_KW * path_w)) * planck / (1.0 + planck)
    return absorptivity, emissivity


def build_trace(ncol: int, nlev: int = 18) -> Trace:
    """Machine-model description of one RADABS sweep over all columns.

    One vector op per level pair (the k1/k2 nest), vectorised over the
    collapsed horizontal axis, with the calibrated intrinsic mix.
    """
    if ncol < 1 or nlev < 2:
        raise ValueError(f"need ncol >= 1 and nlev >= 2, got {ncol}, {nlev}")
    pairs = nlev * (nlev - 1) // 2 + nlev  # pair loop plus emissivity pass
    return Trace(
        [
            VectorOp.make(
                "radabs level-pair",
                ncol,
                count=float(pairs),
                flops_per_element=RAW_FLOPS_PER_ELEMENT,
                loads_per_element=6.0,
                stores_per_element=2.0,
                gather_loads_per_element=GATHERED_LOADS_PER_ELEMENT,
                intrinsics=INTRINSIC_MIX,
            )
        ],
        name=f"RADABS ncol={ncol} nlev={nlev}",
    )


#: Scalar loop-control/addressing instructions per level pair per column in
#: the pre-rewrite coding style (index arithmetic, branch tests, scalar
#: temporaries the compiler could not hoist into vector registers).
SCALAR_BOOKKEEPING_INSTRUCTIONS = 60.0


def build_scalar_trace(ncol: int, nlev: int = 18) -> Trace:
    """The pre-Section-4.4 coding style of the same RADABS sweep.

    Section 4.4's worked example: before the rewrite, RADABS iterated the
    columns in an outer loop with the level-pair recurrences inside, so the
    compiler could vectorise only over the short vertical extent (``nlev``
    elements, far below the SX-4's half-performance length) while the
    per-pair bookkeeping ran on the scalar unit.  The rewrite collapsed
    the horizontal into long vectors — :func:`build_trace` — and is the
    paper's exemplar of its "vector ≫ scalar" coding-style rule.

    Total elements processed (and therefore flop-equivalents) match
    :func:`build_trace` exactly; only the *shape* of the work differs.
    The static analyzer flags this trace with VEC001 (short vectors) and
    VEC004 (scalar-dominated) and the vectorised one with neither.
    """
    if ncol < 1 or nlev < 2:
        raise ValueError(f"need ncol >= 1 and nlev >= 2, got {ncol}, {nlev}")
    pairs = nlev * (nlev - 1) // 2 + nlev
    # Same element count as the vectorised trace, in nlev-long slivers.
    executions = pairs * ncol / nlev
    return Trace(
        [
            VectorOp.make(
                "radabs level sliver",
                nlev,
                count=executions,
                flops_per_element=RAW_FLOPS_PER_ELEMENT,
                loads_per_element=6.0,
                stores_per_element=2.0,
                gather_loads_per_element=GATHERED_LOADS_PER_ELEMENT,
                intrinsics=INTRINSIC_MIX,
            ),
            ScalarOp(
                "radabs pair bookkeeping",
                instructions=SCALAR_BOOKKEEPING_INSTRUCTIONS,
                memory_words=4.0,
                count=float(pairs * ncol),
            ),
        ],
        name=f"RADABS (scalar style) ncol={ncol} nlev={nlev}",
    )


def model_mflops(processor: Processor, ncol: int = 8192, nlev: int = 18) -> float:
    """Cray-Y-MP-equivalent Mflops of RADABS on a machine model.

    The default 8192 columns is the T42 horizontal grid (64 × 128)
    collapsed, the production resolution the benchmark represents.
    """
    report = processor.execute(build_trace(ncol, nlev))
    return report.flop_equivalents / report.seconds / MEGA
