"""RFFT: the "scalar"-coding-style real FFT benchmark (Section 4.3, Fig. 6).

The FFT array is dimensioned ``a(N, M)`` with the FFT axis N fastest
varying, and the transforms are computed one instance at a time — the
loop ordering that suits cache-based processors.  On a vector machine the
compiler can only vectorise the loops *inside* one transform, whose
extents (``ido`` and ``l1`` in FFTPACK's pass geometry) shrink toward 1
as the passes proceed, so vector lengths are short, startups frequent and
half the accesses strided.  That — not the arithmetic — is why Figure 6
sits an order of magnitude below Figure 7.

Mflops are computed from :func:`repro.kernels.fftpack.real_fft_flops`
(the benchmark's fixed operation count), not from hardware counters.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import fftpack
from repro.machine.operations import ScalarOp, Trace, VectorOp
from repro.machine.processor import Processor
from repro.units import MEGA

__all__ = ["rfft_multi", "verify", "build_trace", "model_mflops", "model_family"]


def rfft_multi(a: np.ndarray) -> np.ndarray:
    """Functional RFFT: transform each instance separately (scalar style).

    ``a`` has shape (M, N) in NumPy C-order — each row is one contiguous
    length-N sequence, mirroring the Fortran ``a(N, M)`` layout.  Returns
    the (M, N//2+1) half-complex spectra.
    """
    if a.ndim != 2:
        raise ValueError(f"RFFT operates on an (instances, N) array, got {a.shape}")
    m, n = a.shape
    out = np.empty((m, n // 2 + 1), dtype=np.complex128)
    for j in range(m):  # instance loop outermost: one transform at a time
        out[j] = fftpack.real_forward(a[j])
    return out


def verify(a: np.ndarray, out: np.ndarray, tol: float = 1e-9) -> bool:
    """Correctness check against numpy.fft.rfft, scaled to the data."""
    ref = np.fft.rfft(a, axis=1)
    scale = max(1.0, float(np.max(np.abs(ref))))
    return bool(np.max(np.abs(out - ref)) <= tol * scale)


def build_trace(n: int, m: int | None = None) -> Trace:
    """Machine-model description of M scalar-style transforms of length N.

    In cache-oriented FFTPACK code only the inner ``i`` loop (length
    ``ido``, unit stride) vectorises; its extent shrinks by the radix at
    every pass until the final passes run essentially scalar (``ido`` a
    few, then 1).  The ``k`` loop's trip count multiplies the number of
    vector startups — the scalar style's fundamental cost on the SX-4.
    """
    if m is None:
        m = fftpack.rfft_instance_count(n)
    if m < 1:
        raise ValueError(f"instance count must be positive, got {m}")
    ops: list = []
    for factor, l1, ido in fftpack.pass_structure(n):
        if ido > 1:
            ops.append(
                VectorOp(
                    f"rfft pass r{factor} (len {ido})",
                    length=ido,
                    count=float(m * l1 * factor),
                    flops_per_element=fftpack.PASS_FLOPS_PER_POINT[factor],
                    # Data plus workspace copy plus twiddles in, data out.
                    loads_per_element=2.5,
                    stores_per_element=2.0,
                    load_stride=1,
                    store_stride=1,
                )
            )
        else:
            # ido == 1: the pass degenerates to scalar butterflies.
            ops.append(
                ScalarOp(
                    f"rfft pass r{factor} (scalar)",
                    instructions=16.0,
                    flops=fftpack.PASS_FLOPS_PER_POINT[factor],
                    memory_words=4.0,
                    count=float(m * l1 * factor),
                )
            )
    ops.append(ScalarOp("rfft instance loop", instructions=30.0, count=float(m)))
    return Trace(ops, name=f"RFFT N={n} M={m}")


def model_mflops(processor: Processor, n: int, m: int | None = None) -> float:
    """Benchmark-convention Mflops of RFFT at axis length N on a model."""
    if m is None:
        m = fftpack.rfft_instance_count(n)
    seconds = processor.time(build_trace(n, m))
    return fftpack.real_fft_flops(n) * m / seconds / MEGA


def model_family(processor: Processor) -> dict[str, list[tuple[int, float]]]:
    """All three Figure 6 curves: family name -> [(N, Mflops), ...]."""
    return {
        family: [(n, model_mflops(processor, n)) for n in lengths]
        for family, lengths in fftpack.rfft_axis_lengths().items()
    }
