"""STREAM (Section 3.4) — the fixed-size bandwidth benchmark, contrasted.

"The STREAM benchmark is a set of four operations that evaluate computer
memory bandwidth using four long vector operations.  They have unit
stride memory access patterns and are designed to eliminate the
possibility of data reuse.  The COPY benchmark in the STREAM suite is
similar to the COPY benchmark in the NCAR suite except that the array
size is fixed in the STREAM version ... In general, there is only a
single bandwidth measurement taken instead of testing bandwidth for a
range of array sizes."

The four kernels (McCalpin's definitions and byte accounting):

=========  =====================  =================
kernel     operation              bytes per element
=========  =====================  =================
COPY       c[i] = a[i]            16
SCALE      b[i] = q·c[i]          16
ADD        c[i] = a[i] + b[i]     24
TRIAD      a[i] = b[i] + q·c[i]   24
=========  =====================  =================

Functional NumPy implementations plus trace builders; the test suite
asserts the paper's critique quantitatively — STREAM's single fixed-size
number equals exactly one point of the NCAR COPY sweep and misses the
whole short-vector regime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.operations import Trace, VectorOp
from repro.machine.processor import Processor
from repro.units import MB

__all__ = ["STREAM_KERNELS", "StreamKernel", "kernel", "run_host_kernel",
           "build_trace", "model_bandwidths", "DEFAULT_ARRAY_ELEMENTS"]

#: STREAM's fixed array size (the point the paper criticises).
DEFAULT_ARRAY_ELEMENTS = 2_000_000


@dataclass(frozen=True)
class StreamKernel:
    """One STREAM operation: name, flops, and memory traffic."""

    name: str
    flops_per_element: float
    loads_per_element: float
    stores_per_element: float

    @property
    def bytes_per_element(self) -> float:
        """STREAM's official byte accounting (reads + writes)."""
        return 8.0 * (self.loads_per_element + self.stores_per_element)


STREAM_KERNELS = (
    StreamKernel("COPY", flops_per_element=0.0, loads_per_element=1.0, stores_per_element=1.0),
    StreamKernel("SCALE", flops_per_element=1.0, loads_per_element=1.0, stores_per_element=1.0),
    StreamKernel("ADD", flops_per_element=1.0, loads_per_element=2.0, stores_per_element=1.0),
    StreamKernel("TRIAD", flops_per_element=2.0, loads_per_element=2.0, stores_per_element=1.0),
)


def kernel(name: str) -> StreamKernel:
    for k in STREAM_KERNELS:
        if k.name == name.upper():
            return k
    raise KeyError(f"no STREAM kernel named {name!r}")


def run_host_kernel(
    name: str,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    q: float = 3.0,
) -> None:
    """Execute one STREAM operation in place on the host arrays."""
    if not (a.shape == b.shape == c.shape):
        raise ValueError("STREAM arrays must share one shape")
    upper = name.upper()
    if upper == "COPY":
        c[:] = a
    elif upper == "SCALE":
        b[:] = q * c
    elif upper == "ADD":
        c[:] = a + b
    elif upper == "TRIAD":
        a[:] = b + q * c
    else:
        raise KeyError(f"no STREAM kernel named {name!r}")


def build_trace(name: str, elements: int = DEFAULT_ARRAY_ELEMENTS) -> Trace:
    """Machine-model description of one STREAM kernel pass."""
    if elements < 1:
        raise ValueError(f"array size must be positive, got {elements}")
    k = kernel(name)
    return Trace(
        [
            VectorOp(
                f"stream {k.name.lower()}",
                length=elements,
                flops_per_element=k.flops_per_element,
                loads_per_element=k.loads_per_element,
                stores_per_element=k.stores_per_element,
            )
        ],
        name=f"STREAM {k.name}",
    )


def model_bandwidths(
    processor: Processor, elements: int = DEFAULT_ARRAY_ELEMENTS
) -> dict[str, float]:
    """STREAM's report: MB/s per kernel (official byte accounting)."""
    out = {}
    for k in STREAM_KERNELS:
        seconds = processor.time(build_trace(k.name, elements))
        out[k.name] = k.bytes_per_element * elements / seconds / MB
    return out
