"""VFFT: the "vector"-coding-style real FFT benchmark (Section 4.3, Fig. 7).

The FFT array is dimensioned ``a(M, N)`` with the *instance* axis M
fastest varying, and every butterfly operation is applied to all M
instances at once — unit-stride vectors of length M, regardless of which
pass is executing.  The number of vector startups per pass is the
butterfly count (independent of M), so performance climbs with M toward
the compute-bound rate, roughly an order of magnitude above RFFT.

The paper sweeps M over {1, 2, 5, 10, 20, 50, 100, 200, 500}.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import fftpack
from repro.machine.operations import ScalarOp, Trace, VectorOp
from repro.machine.processor import Processor
from repro.units import MEGA

__all__ = ["vfft_multi", "verify", "build_trace", "model_mflops", "model_family"]


def vfft_multi(a: np.ndarray) -> np.ndarray:
    """Functional VFFT: transform all instances simultaneously.

    ``a`` has shape (N, M) in NumPy C-order — the instance axis is
    contiguous, mirroring the Fortran ``a(M, N)`` layout — and the whole
    array goes through the broadcast transform in one call.  Returns the
    (N//2+1, M) half-complex spectra.
    """
    if a.ndim != 2:
        raise ValueError(f"VFFT operates on an (N, instances) array, got {a.shape}")
    return fftpack.real_forward(a)


def verify(a: np.ndarray, out: np.ndarray, tol: float = 1e-9) -> bool:
    """Correctness check against numpy.fft.rfft, scaled to the data."""
    ref = np.fft.rfft(a, axis=0)
    scale = max(1.0, float(np.max(np.abs(ref))))
    return bool(np.max(np.abs(out - ref)) <= tol * scale)


def build_trace(n: int, m: int) -> Trace:
    """Machine-model description of M vector-style transforms of length N.

    Every pass runs its butterflies as unit-stride vectors of length M
    across the instance axis; startups per pass equal the number of
    butterfly positions (n/factor groups × factor points), not M.
    """
    if m < 1:
        raise ValueError(f"instance count must be positive, got {m}")
    ops: list = []
    for factor, l1, ido in fftpack.pass_structure(n):
        positions = l1 * ido  # butterfly groups in this pass
        ops.append(
            VectorOp(
                f"vfft pass r{factor}",
                length=m,
                count=float(positions * factor),
                flops_per_element=fftpack.PASS_FLOPS_PER_POINT[factor],
                loads_per_element=1.0,
                stores_per_element=1.0,
                load_stride=1,
                store_stride=1,
            )
        )
    ops.append(ScalarOp("vfft pass bookkeeping", instructions=20.0,
                        count=float(len(fftpack.pass_structure(n)))))
    return Trace(ops, name=f"VFFT N={n} M={m}")


def model_mflops(processor: Processor, n: int, m: int) -> float:
    """Benchmark-convention Mflops of VFFT at (N, M) on a machine model."""
    seconds = processor.time(build_trace(n, m))
    return fftpack.real_fft_flops(n) * m / seconds / MEGA


def model_family(
    processor: Processor, instance_counts: tuple[int, ...] = fftpack.VFFT_INSTANCE_COUNTS
) -> dict[str, list[tuple[int, int, float]]]:
    """All Figure 7 curves: family name -> [(N, M, Mflops), ...]."""
    return {
        family: [
            (n, m, model_mflops(processor, n, m))
            for n in lengths
            for m in instance_counts
        ]
        for family, lengths in fftpack.vfft_axis_lengths().items()
    }
