"""XPOSE: matrix-transpose (scatter) memory bandwidth (Section 4.2.3).

The Fortran original::

    do k=1,M
       do j=1,N
          do i=1,N
             b(i,j,k)=a(j,i,k)
          end do
       end do
    end do

with the matrix size N from 2 to 10³ and M from 250,000 down to 1, so the
volume N²·M stays ≈10⁶ elements.  The inner loop stores ``b`` at unit
stride but loads ``a`` at stride N — a constant-stride pattern whose bank
behaviour depends on N (power-of-two sizes are the classic worst case on
interleaved memory).
"""

from __future__ import annotations

import numpy as np

from repro.kernels import membench
from repro.machine.operations import ScalarOp, Trace, VectorOp
from repro.machine.processor import Processor

__all__ = ["xpose_kernel", "verify", "sweep_axes", "build_trace", "model_curve"]


def xpose_kernel(a: np.ndarray) -> np.ndarray:
    """Functional XPOSE: transpose each of the M matrices of a Fortran-order
    (N, N, M) array, keeping the benchmark's loop structure."""
    if a.ndim != 3 or a.shape[0] != a.shape[1]:
        raise ValueError(f"XPOSE operates on an (N, N, M) array, got shape {a.shape}")
    b = np.empty_like(a, order="F")
    for k in range(a.shape[2]):
        for j in range(a.shape[1]):
            b[:, j, k] = a[j, :, k]  # stride-N loads, unit-stride stores
    return b


def verify(a: np.ndarray, b: np.ndarray) -> bool:
    """XPOSE's correctness check against NumPy's transpose."""
    return bool(np.array_equal(b, np.transpose(a, (1, 0, 2))))


def sweep_axes(
    total_elements: int = membench.DEFAULT_TOTAL_ELEMENTS,
    n_min: int = 2,
    n_max: int = 1000,
    points_per_decade: int = 4,
) -> list[tuple[int, int]]:
    """(N, M) pairs with N²·M ≈ total_elements (the paper's 2…10³ sweep)."""
    pairs = membench.sweep_axes(
        total_elements=total_elements,
        n_min=n_min,
        n_max=n_max,
        points_per_decade=points_per_decade,
    )
    return [(n, max(1, round(total_elements / (n * n)))) for n, _ in pairs]


def build_trace(n: int, m: int) -> Trace:
    """Machine-model description of one XPOSE sweep point: N·M executions
    of an N-long inner loop loading at stride N, storing at stride 1."""
    if n < 1 or m < 1:
        raise ValueError(f"axis lengths must be positive, got N={n}, M={m}")
    return Trace(
        [
            VectorOp(
                "xpose inner",
                length=n,
                count=n * m,
                loads_per_element=1.0,
                stores_per_element=1.0,
                load_stride=n,
                store_stride=1,
            ),
            ScalarOp("xpose outer-loops", instructions=8.0, count=n * m),
        ],
        name=f"XPOSE N={n} M={m}",
    )


def model_curve(processor: Processor, **kwargs) -> membench.BandwidthCurve:
    """The XPOSE line of Figure 5 on the given machine model."""
    kwargs.setdefault("axes", sweep_axes())
    return membench.model_curve(
        "XPOSE",
        processor,
        build_trace,
        elements_counter=lambda n, m: n * n * m,
        **kwargs,
    )
