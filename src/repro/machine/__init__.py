"""Performance-model simulator of the NEC SX-4 and the paper's comparators.

The paper's measurements were taken on real 1996 hardware (an SX-4/32 with
a 9.2 ns clock, plus a SUN SPARC20, IBM RS6000/590, Cray J90 and Cray Y-MP
for Table 1).  This package substitutes a calibrated analytic performance
model: benchmarks describe their work as a :class:`~repro.machine.operations.Trace`
of vector / scalar / memory operation descriptors, and a
:class:`~repro.machine.processor.Processor` (or a multi-CPU
:class:`~repro.machine.node.Node`) turns the trace into cycles, seconds,
and sustained Mflops / bandwidth numbers.

Model structure mirrors the SX-4 component list in Section 2 of the paper:

========================  =======================================
Paper component           Model module
========================  =======================================
Central Processor Unit    :mod:`~repro.machine.vector_unit`,
                          :mod:`~repro.machine.scalar_unit`
Main Memory Unit          :mod:`~repro.machine.memory`
Extended Memory Unit      :mod:`~repro.machine.xmu`
Input Output Processor    :mod:`~repro.machine.iop`
Internode Crossbar (IXS)  :mod:`~repro.machine.ixs`
========================  =======================================

Calibrated machine instances live in :mod:`~repro.machine.presets`.
"""

from repro.machine.clock import Clock
from repro.machine.compiled import (
    CompiledTrace,
    compile_trace,
    get_default_engine,
    set_default_engine,
)
from repro.machine.operations import (
    INTRINSIC_FLOP_EQUIV,
    INTRINSICS,
    ScalarOp,
    Trace,
    VectorOp,
)
from repro.machine.processor import ExecutionReport, Processor
from repro.machine.suitebatch import (
    SuiteColumns,
    cost_suite_batch,
    register_suite,
    registered_suite,
)
from repro.machine.node import Node, ParallelReport
from repro.machine.memory import BankedMemory
from repro.machine.vector_unit import VectorUnit
from repro.machine.scalar_unit import ScalarUnit
from repro.machine.cache import CacheModel
from repro.machine.xmu import ExtendedMemoryUnit
from repro.machine.iop import DiskArray, IOProcessor
from repro.machine.ixs import InternodeCrossbar, MultiNodeSystem
from repro.machine import floatformats, isa, presets
from repro.machine.commregs import Barrier, CommunicationRegisters, SpinLock
from repro.machine.specs import MachineSpecs, sx4_32_benchmark_specs

__all__ = [
    "Clock",
    "VectorOp",
    "ScalarOp",
    "Trace",
    "INTRINSICS",
    "INTRINSIC_FLOP_EQUIV",
    "Processor",
    "ExecutionReport",
    "CompiledTrace",
    "compile_trace",
    "get_default_engine",
    "set_default_engine",
    "SuiteColumns",
    "cost_suite_batch",
    "register_suite",
    "registered_suite",
    "Node",
    "ParallelReport",
    "BankedMemory",
    "VectorUnit",
    "ScalarUnit",
    "CacheModel",
    "ExtendedMemoryUnit",
    "IOProcessor",
    "DiskArray",
    "InternodeCrossbar",
    "MultiNodeSystem",
    "presets",
    "floatformats",
    "isa",
    "CommunicationRegisters",
    "SpinLock",
    "Barrier",
    "MachineSpecs",
    "sx4_32_benchmark_specs",
]
