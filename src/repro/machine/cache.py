"""Cache-hierarchy model for cache-based (workstation) comparators.

Table 1 contrasts the SX-4-style vector machines (Cray Y-MP, J90) with
cache-based superscalar workstations (SUN SPARC20, IBM RS6000/590).  The
RFFT/VFFT pair likewise exists to expose the difference between
cache-friendly and vector-friendly loop orderings.  This module models the
only cache features those comparisons depend on: line-granularity refill,
a capacity threshold, and the penalty explosion for strided or indexed
access once the working set spills.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perfmon.counters import declare_counters

__all__ = ["CacheModel"]

declare_counters(
    "cache",
    (
        "ref_words",  # words referenced through the cache
        "hit_words",
        "miss_words",  # words that triggered a line refill
        "miss_cycles",  # refill time paid
    ),
)


@dataclass
class CacheModel:
    """A single-level data-cache timing model.

    Parameters
    ----------
    size_bytes:
        Capacity (64 KB for the SX-4 scalar unit's data cache).
    line_bytes:
        Refill granularity.
    hit_cycles_per_word:
        Cost of a cache-resident word reference.
    miss_latency_cycles:
        Time to start a line refill from main memory.
    mem_words_per_cycle:
        Streaming refill rate from memory.
    """

    size_bytes: int = 64 * 1024
    line_bytes: int = 64
    hit_cycles_per_word: float = 0.5
    miss_latency_cycles: float = 20.0
    mem_words_per_cycle: float = 0.5

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0:
            raise ValueError("cache and line sizes must be positive")
        if self.line_bytes % 8 != 0:
            raise ValueError(f"line size must hold whole 64-bit words, got {self.line_bytes}")
        if self.line_bytes > self.size_bytes:
            raise ValueError("a line cannot exceed the cache size")
        if self.hit_cycles_per_word < 0 or self.miss_latency_cycles < 0:
            raise ValueError("timings cannot be negative")
        if self.mem_words_per_cycle <= 0:
            raise ValueError("memory refill rate must be positive")

    @property
    def words_per_line(self) -> int:
        return self.line_bytes // 8

    def line_fill_cycles(self) -> float:
        """Cost of one miss: latency plus streaming the line in."""
        return self.miss_latency_cycles + self.words_per_line / self.mem_words_per_cycle

    def miss_rate(self, stride_words: int, working_set_bytes: float, indexed: bool = False) -> float:
        """Expected misses per referenced word.

        A working set that fits in the cache stays resident across the
        benchmark's KTRIES repetitions (best-of-N timing), so its steady
        state is all hits.  A streaming working set misses once per line
        touched: every ``words_per_line / stride`` references for small
        strides, every reference once the stride reaches a line (or for
        indexed access).
        """
        if stride_words < 1:
            raise ValueError(f"stride must be >= 1, got {stride_words}")
        if working_set_bytes < 0:
            raise ValueError("working set cannot be negative")
        if working_set_bytes <= self.size_bytes:
            return 0.0
        if indexed or stride_words >= self.words_per_line:
            return 1.0
        return stride_words / self.words_per_line

    def cycles_per_word(
        self, stride_words: int, working_set_bytes: float, indexed: bool = False
    ) -> float:
        """Average cost of one word reference under the given pattern."""
        rate = self.miss_rate(stride_words, working_set_bytes, indexed)
        return self.hit_cycles_per_word + rate * self.line_fill_cycles()

    # -- batched (columnar) timing ------------------------------------------
    def miss_rate_batch(
        self,
        stride_words: np.ndarray,
        working_set_bytes: np.ndarray,
        indexed: np.ndarray | bool = False,
    ) -> np.ndarray:
        """Elementwise :meth:`miss_rate` over stride/working-set columns."""
        streaming_rate = np.where(
            indexed | (stride_words >= self.words_per_line),
            1.0,
            stride_words / self.words_per_line,
        )
        return np.where(working_set_bytes <= self.size_bytes, 0.0, streaming_rate)

    def cycles_per_word_batch(
        self,
        stride_words: np.ndarray,
        working_set_bytes: np.ndarray,
        indexed: np.ndarray | bool = False,
    ) -> np.ndarray:
        """Elementwise :meth:`cycles_per_word` over pattern columns."""
        rate = self.miss_rate_batch(stride_words, working_set_bytes, indexed)
        return self.hit_cycles_per_word + rate * self.line_fill_cycles()

    def perfmon_counters(
        self,
        words: float,
        stride_words: int = 1,
        working_set_bytes: float = 0.0,
        indexed: bool = False,
    ) -> dict[str, float]:
        """Counter increments for ``words`` references under one pattern."""
        rate = self.miss_rate(stride_words, working_set_bytes, indexed)
        misses = words * rate
        return {
            "ref_words": words,
            "hit_words": words - misses,
            "miss_words": misses,
            "miss_cycles": misses * self.line_fill_cycles(),
        }
