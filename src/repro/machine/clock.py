"""Clock model.

The SX-4 in the paper's benchmark runs had a 9.2 ns clock; the production
machine runs at 8.0 ns ("we anticipate an additional 15% performance
improvement ... running on a system with an 8.0 ns clock").  Everything in
the machine model is expressed in clock cycles and converted to wall time
through a :class:`Clock`, so that 9.2 ns → 8.0 ns ablations are a
one-parameter change.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import NS, hz_from_period_ns

__all__ = ["Clock"]


@dataclass(frozen=True)
class Clock:
    """An ideal clock defined by its period in nanoseconds."""

    period_ns: float

    def __post_init__(self) -> None:
        if self.period_ns <= 0:
            raise ValueError(f"clock period must be positive, got {self.period_ns} ns")

    @property
    def frequency_hz(self) -> float:
        """Clock frequency in Hz (108.7 MHz for the 9.2 ns machine)."""
        return hz_from_period_ns(self.period_ns)

    @property
    def period_s(self) -> float:
        """Clock period in seconds."""
        return self.period_ns * NS

    def seconds(self, cycles: float) -> float:
        """Wall-clock seconds for a (possibly fractional) cycle count."""
        if cycles < 0:
            raise ValueError(f"cycle counts cannot be negative, got {cycles}")
        return cycles * self.period_s

    def cycles(self, seconds: float) -> float:
        """Cycle count corresponding to a duration in seconds."""
        if seconds < 0:
            raise ValueError(f"durations cannot be negative, got {seconds}")
        return seconds / self.period_s

    def scaled(self, period_ns: float) -> "Clock":
        """A clock with a different period (e.g. the 8.0 ns production part)."""
        return Clock(period_ns=period_ns)
