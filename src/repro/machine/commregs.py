"""Communications registers: the SX-4's parallel-sync primitives.

Section 2.1: "each processor has access to a set of communications
registers optimized for synchronization of parallel processing tasks.
Examples of communications register instructions included are test-set,
store-and, store-or, and store-add.  There is a dedicated set of these
for each processor, and each chassis has an additional set for the
operating system."

This module models a register file with those atomic operations and
builds the two synchronisation structures multitasked codes need on top
of them — a spin lock (test-set) and a sense-reversing barrier
(store-add) — with cycle-cost accounting that feeds the node model's
``sync_base_cycles``/``sync_per_cpu_cycles`` parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CommunicationRegisters", "SpinLock", "Barrier"]


@dataclass
class CommunicationRegisters:
    """A bank of 64-bit communications registers with atomic ops.

    Every operation is atomic (the hardware serialises them at the
    register file) and counts its accesses, from which
    :meth:`estimated_cycles` derives the cost model the node uses.
    """

    count: int = 64
    access_cycles: float = 8.0  # register-file round trip per atomic op
    registers: list[int] = field(default_factory=list)
    accesses: int = 0

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"need at least one register, got {self.count}")
        if self.access_cycles <= 0:
            raise ValueError("access cost must be positive")
        self.registers = [0] * self.count

    def _check(self, index: int) -> None:
        if not 0 <= index < self.count:
            raise IndexError(f"register {index} out of range 0..{self.count - 1}")

    def read(self, index: int) -> int:
        self._check(index)
        self.accesses += 1
        return self.registers[index]

    def write(self, index: int, value: int) -> None:
        self._check(index)
        self.accesses += 1
        self.registers[index] = int(value)

    # -- the paper's atomic instructions ------------------------------------
    def test_set(self, index: int) -> int:
        """Atomically read the register and set it to 1; returns the old
        value (0 means the caller acquired it)."""
        self._check(index)
        self.accesses += 1
        old = self.registers[index]
        self.registers[index] = 1
        return old

    def store_and(self, index: int, value: int) -> int:
        self._check(index)
        self.accesses += 1
        old = self.registers[index]
        self.registers[index] = old & int(value)
        return old

    def store_or(self, index: int, value: int) -> int:
        self._check(index)
        self.accesses += 1
        old = self.registers[index]
        self.registers[index] = old | int(value)
        return old

    def store_add(self, index: int, value: int) -> int:
        self._check(index)
        self.accesses += 1
        old = self.registers[index]
        self.registers[index] = old + int(value)
        return old

    def estimated_cycles(self) -> float:
        """Total register-file cycles consumed so far."""
        return self.accesses * self.access_cycles


@dataclass
class SpinLock:
    """A test-set spin lock on one communications register."""

    regs: CommunicationRegisters
    index: int = 0

    def acquire(self, max_spins: int = 1_000_000) -> int:
        """Spin until acquired; returns the number of failed attempts.

        (In the simulation 'spinning' only happens if another logical
        holder forgot to release; the cap turns deadlock into an error.)
        """
        spins = 0
        while self.regs.test_set(self.index) != 0:
            spins += 1
            if spins >= max_spins:
                raise RuntimeError(
                    f"spin lock on register {self.index} never released"
                )
        return spins

    def release(self) -> None:
        if self.regs.read(self.index) == 0:
            raise RuntimeError(f"releasing an unheld lock (register {self.index})")
        self.regs.write(self.index, 0)

    @property
    def held(self) -> bool:
        return self.regs.registers[self.index] != 0


@dataclass
class Barrier:
    """A sense-reversing barrier built on store-add.

    ``arrive()`` is called once per participant per phase; the last
    arrival resets the counter and flips the sense register, releasing
    everyone.  :meth:`cost_cycles` gives the per-barrier cost the node
    model's sync parameters approximate (one atomic per participant plus
    the release broadcast).
    """

    regs: CommunicationRegisters
    participants: int
    counter_index: int = 1
    sense_index: int = 2

    def __post_init__(self) -> None:
        if self.participants < 1:
            raise ValueError(f"need at least one participant, got {self.participants}")
        if self.counter_index == self.sense_index:
            raise ValueError("counter and sense registers must differ")

    def arrive(self) -> bool:
        """Register one arrival; True for the participant that completed
        the barrier (and released the others)."""
        arrived = self.regs.store_add(self.counter_index, 1) + 1
        if arrived > self.participants:
            raise RuntimeError("more arrivals than participants in one phase")
        if arrived == self.participants:
            self.regs.write(self.counter_index, 0)
            self.regs.store_add(self.sense_index, 1)  # flip the sense
            return True
        return False

    def run_phase(self) -> int:
        """Simulate all participants arriving; returns the sense value."""
        completions = sum(1 for _ in range(self.participants) if self.arrive())
        if completions != 1:
            raise RuntimeError("exactly one participant must complete the barrier")
        return self.regs.read(self.sense_index)

    def cost_cycles(self) -> float:
        """Cost of one barrier phase: an atomic per participant, the
        reset, the sense flip, and a read per participant on release."""
        per_arrival = self.regs.access_cycles
        return (2 * self.participants + 2) * per_arrival
