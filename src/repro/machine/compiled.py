"""Columnar trace compilation: structure-of-arrays lowering of a Trace.

``Processor.execute`` walking a :class:`~repro.machine.operations.Trace`
one descriptor at a time is re-run thousands of times per sweep (the
vector-length/resolution scans of Figures 5-8, the Table 6 ensembles,
the node model's memory-dilation sweep), so regenerating the paper's
tables is bounded by interpreter overhead, not by the machine model.
This module removes that bound: :func:`compile_trace` lowers a trace
once into a cached :class:`CompiledTrace` — float64 columns for every
descriptor field plus an ``n_vector_ops x 6`` intrinsic-call matrix —
and the machine components gain ``*_cycles_batch`` methods that cost
every op of a trace in a handful of NumPy expressions.

The contract with the per-op ("legacy") path is **exact parity**:

* every column expression reproduces the corresponding scalar property
  arithmetic operation-for-operation (same IEEE-754 double ops, same
  association, same accumulation order over the sorted intrinsic
  names), so per-op cycle counts are bit-identical;
* aggregates on both paths go through :func:`math.fsum`, whose result
  is the correctly-rounded exact sum and therefore independent of
  summation order — so totals are bit-identical too.

The repo linter's REPO007 rule keeps the pairing closed under
extension: any new ``*_cycles_batch`` method must sit next to the
matching per-op ``*_cycles`` method, which is what the parity suite
(tests/machine/test_compiled*.py) exercises.

Caching is two-level.  A trace caches its own ``CompiledTrace``
(invalidated by ``append``/``extend``); a ``CompiledTrace`` caches
machine-dependent cost columns per component set via
:meth:`CompiledTrace.machine_cache`, which is what lets the node model
re-cost one compiled trace across all CPU counts (only the dilation
changes) without recomputing the stride/bank arithmetic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from dataclasses import fields as dataclass_fields
from typing import Any

import numpy as np

from repro.machine.operations import (
    INTRINSIC_FLOP_EQUIV,
    INTRINSICS,
    ScalarOp,
    Trace,
    VectorOp,
)

__all__ = [
    "SORTED_INTRINSICS",
    "ENGINES",
    "DEFAULT_ENGINE",
    "VectorColumns",
    "ScalarColumns",
    "CompiledTrace",
    "compile_trace",
    "fsum",
    "fsum_columns",
    "get_default_engine",
    "set_default_engine",
    "resolve_engine",
]

#: Intrinsic column order of the compiled intrinsic matrix.  Sorted by
#: name because ``VectorOp.intrinsic_calls`` is stored name-sorted: the
#: batched accumulation then visits intrinsics in exactly the order the
#: per-op loop does (absent intrinsics contribute an exact 0.0), which
#: is one of the two pillars of the bit-parity guarantee.
SORTED_INTRINSICS: tuple[str, ...] = tuple(sorted(INTRINSICS))

#: The selectable costing engines.  ``suitebatch`` costs a registered
#: whole-suite column stack in one fused pass (see
#: :mod:`repro.machine.suitebatch`) and falls back to ``compiled`` for
#: traces outside the registered suite — reports are bit-identical on
#: every path.
ENGINES = ("compiled", "legacy", "suitebatch")

#: Process-wide default engine for ``Processor.execute(engine=None)``.
DEFAULT_ENGINE = "compiled"

_default_engine = DEFAULT_ENGINE


def get_default_engine() -> str:
    """The engine ``Processor.execute`` uses when none is requested."""
    return _default_engine


def set_default_engine(engine: str) -> str:
    """Set the process-wide default costing engine; returns the old one.

    ``python -m repro.suite --costing legacy`` routes through this so a
    whole suite run can be re-costed on the reference path.
    """
    global _default_engine
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    previous = _default_engine
    _default_engine = engine
    return previous


def resolve_engine(engine: str | None) -> str:
    """Validate an explicit engine choice or fall back to the default."""
    if engine is None:
        return _default_engine
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    return engine


def fsum(values) -> float:
    """Exactly-rounded sum of a NumPy array or iterable of floats.

    ``math.fsum`` tracks exact partial sums, so its result does not
    depend on operand order — the property that makes the batched
    aggregate reductions bit-identical to the per-op path's.
    """
    if isinstance(values, np.ndarray):
        return math.fsum(values.tolist())
    return math.fsum(values)


def fsum_columns(matrix: np.ndarray) -> np.ndarray:
    """Exactly-rounded per-column sums of an ``(n, m)`` float64 matrix.

    The machine-grid reduction: column ``j`` holds machine ``j``'s
    per-op cycle costs, and its :func:`math.fsum` is bit-identical to
    the total the per-machine compiled path computes for that machine —
    fsum's exact partial sums make the result order-independent, so
    slicing a machine out of a grid changes nothing.
    """
    if matrix.shape[0] == 0:
        return np.zeros(matrix.shape[1])
    return np.array([math.fsum(column) for column in matrix.T.tolist()])


def _concat_column_fields(cls, parts):
    """Field-wise ``np.concatenate`` over same-typed column sets.

    Concatenation copies raw float64 bit patterns, so every row of the
    stacked columns is bit-identical to its source row — the property
    the suite-batch engine's exactness proof rests on.
    """
    return cls(**{
        f.name: np.concatenate([getattr(p, f.name) for p in parts])
        for f in dataclass_fields(cls)
    })


def _slice_column_fields(cls, columns, start, stop):
    """Field-wise row slice ``[start:stop]`` (NumPy views, no copies)."""
    return cls(**{
        f.name: getattr(columns, f.name)[start:stop]
        for f in dataclass_fields(cls)
    })


@dataclass(frozen=True)
class VectorColumns:
    """The vector ops of one trace, one float64 column per field.

    ``index`` maps each row back to its position in the original trace
    (for scattering per-op cycles into trace order); ``intrinsics`` is
    an ``n x len(INTRINSICS)`` calls-per-element matrix with columns in
    :data:`SORTED_INTRINSICS` order.  The derived columns reproduce the
    corresponding :class:`VectorOp` property arithmetic exactly.
    """

    index: np.ndarray
    length: np.ndarray  # float64 copy of the int lengths
    count: np.ndarray
    flops: np.ndarray  # flops_per_element
    loads: np.ndarray  # loads_per_element
    stores: np.ndarray  # stores_per_element
    load_stride: np.ndarray  # int64
    store_stride: np.ndarray  # int64
    gather: np.ndarray  # gather_loads_per_element
    scatter: np.ndarray  # scatter_stores_per_element
    intrinsics: np.ndarray  # (n, len(INTRINSICS)) calls per element

    # derived, precomputed at compile time (machine-independent)
    elements: np.ndarray = field(repr=False, default=None)
    raw_flops: np.ndarray = field(repr=False, default=None)
    flop_equivalents: np.ndarray = field(repr=False, default=None)
    sequential_words: np.ndarray = field(repr=False, default=None)
    indexed_words: np.ndarray = field(repr=False, default=None)
    words_moved: np.ndarray = field(repr=False, default=None)
    intrinsic_calls_total: np.ndarray = field(repr=False, default=None)

    @property
    def n(self) -> int:
        return int(self.index.shape[0])

    @classmethod
    def from_ops(cls, positions: list[int], ops: list[VectorOp]) -> "VectorColumns":
        n = len(ops)
        length = np.array([op.length for op in ops], dtype=np.float64)
        count = np.array([op.count for op in ops], dtype=np.float64)
        flops = np.array([op.flops_per_element for op in ops], dtype=np.float64)
        loads = np.array([op.loads_per_element for op in ops], dtype=np.float64)
        stores = np.array([op.stores_per_element for op in ops], dtype=np.float64)
        gather = np.array([op.gather_loads_per_element for op in ops], dtype=np.float64)
        scatter = np.array([op.scatter_stores_per_element for op in ops], dtype=np.float64)
        intrinsics = np.zeros((n, len(SORTED_INTRINSICS)), dtype=np.float64)
        column_of = {name: i for i, name in enumerate(SORTED_INTRINSICS)}
        for row, op in enumerate(ops):
            for name, per in op.intrinsic_calls:
                intrinsics[row, column_of[name]] = per

        # Derived columns: each expression mirrors the VectorOp property
        # arithmetic (same association), so every entry is bit-identical
        # to the per-op value.
        elements = length * count
        raw = flops * elements
        equiv = raw.copy()
        for i, name in enumerate(SORTED_INTRINSICS):
            equiv = equiv + (INTRINSIC_FLOP_EQUIV[name] * intrinsics[:, i]) * elements
        sequential = (loads + stores) * length
        indexed = (gather + scatter) * length
        words = (sequential + indexed) * count
        calls_total = np.zeros(n, dtype=np.float64)
        for i in range(len(SORTED_INTRINSICS)):
            calls_total = calls_total + intrinsics[:, i] * elements
        return cls(
            index=np.array(positions, dtype=np.intp),
            length=length,
            count=count,
            flops=flops,
            loads=loads,
            stores=stores,
            load_stride=np.array([op.load_stride for op in ops], dtype=np.int64),
            store_stride=np.array([op.store_stride for op in ops], dtype=np.int64),
            gather=gather,
            scatter=scatter,
            intrinsics=intrinsics,
            elements=elements,
            raw_flops=raw,
            flop_equivalents=equiv,
            sequential_words=sequential,
            indexed_words=indexed,
            words_moved=words,
            intrinsic_calls_total=calls_total,
        )

    @classmethod
    def stack(cls, parts: list["VectorColumns"]) -> "VectorColumns":
        """Concatenate several traces' vector columns into one stack.

        Row values (including the precomputed derived columns) are
        preserved bit-exactly; ``index`` keeps each row's within-trace
        position so a segment slice scatters back into its own trace's
        op order.  The suite-batch engine stacks all registered traces
        this way and runs every ``*_cycles_batch`` kernel once over the
        result.
        """
        if not parts:
            return cls.from_ops([], [])
        return _concat_column_fields(cls, parts)

    def slice_rows(self, start: int, stop: int) -> "VectorColumns":
        """One segment of a stacked column set, as zero-copy views."""
        return _slice_column_fields(type(self), self, start, stop)


@dataclass(frozen=True)
class ScalarColumns:
    """The scalar ops of one trace, one float64 column per field."""

    index: np.ndarray
    instructions: np.ndarray
    flops: np.ndarray
    memory_words: np.ndarray
    count: np.ndarray

    # derived
    raw_flops: np.ndarray = field(repr=False, default=None)
    words_moved: np.ndarray = field(repr=False, default=None)

    @property
    def n(self) -> int:
        return int(self.index.shape[0])

    @classmethod
    def from_ops(cls, positions: list[int], ops: list[ScalarOp]) -> "ScalarColumns":
        instructions = np.array([op.instructions for op in ops], dtype=np.float64)
        flops = np.array([op.flops for op in ops], dtype=np.float64)
        memory_words = np.array([op.memory_words for op in ops], dtype=np.float64)
        count = np.array([op.count for op in ops], dtype=np.float64)
        return cls(
            index=np.array(positions, dtype=np.intp),
            instructions=instructions,
            flops=flops,
            memory_words=memory_words,
            count=count,
            raw_flops=flops * count,
            words_moved=memory_words * count,
        )

    @classmethod
    def stack(cls, parts: list["ScalarColumns"]) -> "ScalarColumns":
        """Concatenate several traces' scalar columns (bit-preserving)."""
        if not parts:
            return cls.from_ops([], [])
        return _concat_column_fields(cls, parts)

    def slice_rows(self, start: int, stop: int) -> "ScalarColumns":
        """One segment of a stacked column set, as zero-copy views."""
        return _slice_column_fields(type(self), self, start, stop)


@dataclass
class CompiledTrace:
    """A trace lowered to structure-of-arrays columns.

    Machine-independent: the same compiled trace costs on any
    processor.  Machine-*dependent* cost columns (arithmetic cycles,
    stride factors, memory path cycles) are memoised per component set
    in :meth:`machine_cache`, keyed by component identity, so sweeps
    that re-execute one trace — possibly under varying
    ``memory_dilation`` — recompute only the dilation-dependent max.
    """

    names: tuple[str, ...]
    vector: VectorColumns
    scalar: ScalarColumns
    _machine_caches: dict[tuple[int, ...], dict[str, Any]] = field(
        default_factory=dict, repr=False
    )
    #: strong refs pinning cached components so their ids stay unique.
    _pins: list[tuple] = field(default_factory=list, repr=False)
    #: machine-independent aggregate totals, computed once per trace.
    _totals: dict[str, float] = field(default_factory=dict, repr=False)

    @property
    def n_ops(self) -> int:
        return len(self.names)

    @classmethod
    def from_trace(cls, trace: Trace) -> "CompiledTrace":
        v_pos: list[int] = []
        v_ops: list[VectorOp] = []
        s_pos: list[int] = []
        s_ops: list[ScalarOp] = []
        for i, op in enumerate(trace.ops):
            if isinstance(op, VectorOp):
                v_pos.append(i)
                v_ops.append(op)
            else:
                s_pos.append(i)
                s_ops.append(op)
        return cls(
            names=tuple(op.name for op in trace.ops),
            vector=VectorColumns.from_ops(v_pos, v_ops),
            scalar=ScalarColumns.from_ops(s_pos, s_ops),
        )

    def machine_cache(self, *components) -> dict[str, Any]:
        """Per-component-set memo dict for machine-dependent columns.

        Keyed by ``id`` of each component; the components themselves are
        pinned so a key can never be recycled while this compiled trace
        is alive.  Calibrated machine instances are treated as
        immutable — mutating a component's parameters after it has been
        used to cost a compiled trace is unsupported (build a fresh
        processor instead, as :mod:`repro.machine.presets` does).
        """
        key = tuple(id(c) for c in components)
        cache = self._machine_caches.get(key)
        if cache is None:
            cache = {}
            self._machine_caches[key] = cache
            self._pins.append(components)
        return cache

    def scatter_cycles(
        self, vector_cycles: np.ndarray, scalar_cycles: np.ndarray
    ) -> np.ndarray:
        """Per-op cycles in original trace order."""
        out = np.zeros(self.n_ops, dtype=np.float64)
        out[self.vector.index] = vector_cycles
        out[self.scalar.index] = scalar_cycles
        return out

    # -- aggregate accounting (exact: fsum of per-op columns) -------------
    def _total(self, key: str, vector_column: np.ndarray, scalar_column: np.ndarray) -> float:
        total = self._totals.get(key)
        if total is None:
            total = self._totals[key] = math.fsum(
                vector_column.tolist() + scalar_column.tolist()
            )
        return total

    def raw_flops_total(self) -> float:
        return self._total("raw_flops", self.vector.raw_flops, self.scalar.raw_flops)

    def flop_equivalents_total(self) -> float:
        # ScalarOp.flop_equivalents == ScalarOp.raw_flops by definition.
        return self._total(
            "flop_equivalents", self.vector.flop_equivalents, self.scalar.raw_flops
        )

    def words_moved_total(self) -> float:
        return self._total("words_moved", self.vector.words_moved, self.scalar.words_moved)


def compile_trace(trace: Trace) -> CompiledTrace:
    """Lower a trace to columns, caching the result on the trace.

    The cache is invalidated by ``Trace.append``/``extend`` (and, as a
    belt-and-braces guard, whenever the op count has changed behind the
    trace's back).  ``scaled``/``+``/``*`` build fresh traces and
    therefore compile fresh.
    """
    cache = trace._cache
    compiled = cache.get("compiled")
    if compiled is None or compiled.n_ops != len(trace.ops):
        compiled = CompiledTrace.from_trace(trace)
        cache["compiled"] = compiled
    return compiled
