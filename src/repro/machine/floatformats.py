"""The SX-4's three hardware floating-point formats (Section 2).

"Each processor has hardware implementations to support three floating
point data formats — IEEE 754, Cray, and IBM. ... Floating point format
selection is made on a program by program basis at compile time."

This module models the *numerical* properties of those formats — radix,
precision, exponent range, rounding behaviour — by emulating their
arithmetic as "compute in double, then round into the target format".
That is exactly the level PARANOIA-style probes exercise, so the same
probes that pass on IEEE mode detect the legacy formats' quirks:

* **Cray format** (64-bit: 1 sign, 15-bit biased exponent, 48-bit
  significand, no hidden bit): binary, only 48 digits of precision, a
  huge exponent range, truncating (chop) arithmetic on the real hardware
  — the reason Cray addition famously lacked a guard digit.
* **IBM hexadecimal** (System/360 double: 1 sign, 7-bit excess-64
  exponent of 16, 14 hex digits): radix 16, so the effective binary
  precision *wobbles* between 53 and 56 bits and PARANOIA's radix probe
  reports 16.

Compatibility-mode emulation is value-level (quantise to the format's
significand after each operation), not bit-level; it reproduces the
properties benchmarks can observe (epsilon, radix, guard-digit
behaviour, over/underflow thresholds).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "FloatFormat",
    "IEEE_DOUBLE",
    "IEEE_SINGLE",
    "CRAY_SINGLE",
    "IBM_SINGLE",
    "ALL_FORMATS",
    "detect_radix",
    "detect_precision",
    "rounds_to_nearest",
]


@dataclass(frozen=True)
class FloatFormat:
    """A floating-point format defined by radix, precision and range.

    ``precision`` counts *radix* digits in the significand (including
    any hidden bit).  ``chopped`` selects truncation instead of
    round-to-nearest — Cray mode's historical behaviour.
    """

    name: str
    radix: int
    precision: int
    min_exponent: int  # smallest normal exponent e with value radix**e
    max_exponent: int  # largest exponent (overflow above radix**max_exponent)
    chopped: bool = False

    def __post_init__(self) -> None:
        if self.radix < 2:
            raise ValueError(f"radix must be >= 2, got {self.radix}")
        if self.precision < 1:
            raise ValueError(f"precision must be >= 1, got {self.precision}")
        if self.min_exponent >= self.max_exponent:
            raise ValueError("exponent range is empty")

    # -- derived properties ---------------------------------------------------
    @property
    def epsilon(self) -> float:
        """Machine epsilon: radix**(1 - precision)."""
        return float(self.radix) ** (1 - self.precision)

    @property
    def binary_digits(self) -> float:
        """Equivalent binary precision (worst case for non-binary radix:
        the leading radix-digit may carry as little as one bit)."""
        return (self.precision - 1) * math.log2(self.radix) + 1

    @property
    def largest(self) -> float:
        """Largest finite value — capped at the host double's range for
        formats (Cray) whose exponent range exceeds it; the emulation
        computes in doubles, so values beyond that are unreachable."""
        try:
            top = float(self.radix) ** self.max_exponent
        except OverflowError:
            return math.inf
        return (1.0 - self.epsilon / self.radix) * top

    @property
    def tiny(self) -> float:
        """Smallest normal value (0.0 if below the host double's range)."""
        try:
            return float(self.radix) ** self.min_exponent
        except OverflowError:  # pragma: no cover - negative exponents underflow
            return 0.0

    # -- quantisation -----------------------------------------------------------
    def quantize(self, value: float) -> float:
        """Round ``value`` into this format (the emulation primitive).

        Round-to-nearest-even, or chop toward zero for ``chopped``
        formats.  Overflow raises (legacy machines trapped); underflow
        flushes to zero (neither Cray nor IBM had gradual underflow).
        """
        if value == 0.0 or not math.isfinite(value):
            return value
        magnitude = abs(value)
        # Exponent e such that radix**(e-1) <= |value| < radix**e.
        e = math.floor(math.log(magnitude, self.radix)) + 1
        # log() can be off by one at boundaries; correct it.
        while float(self.radix) ** (e - 1) > magnitude:
            e -= 1
        while float(self.radix) ** e <= magnitude:
            e += 1
        scale = float(self.radix) ** (e - self.precision)
        quotient = value / scale
        rounded = math.trunc(quotient) if self.chopped else _round_half_even(quotient)
        result = rounded * scale
        if math.isfinite(self.largest) and abs(result) > self.largest * (1.0 + 1e-15):
            raise OverflowError(f"{value!r} overflows format {self.name}")
        if result != 0.0 and abs(result) < self.tiny:
            return 0.0  # flush to zero: no subnormals in the legacy formats
        return result

    def quantize_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`quantize` (element loop; emulation, not speed)."""
        flat = np.asarray(values, dtype=np.float64).ravel()
        out = np.array([self.quantize(float(v)) for v in flat])
        return out.reshape(np.shape(values))

    # -- emulated arithmetic ------------------------------------------------------
    def add(self, a: float, b: float) -> float:
        return self.quantize(self.quantize(a) + self.quantize(b))

    def sub(self, a: float, b: float) -> float:
        return self.quantize(self.quantize(a) - self.quantize(b))

    def mul(self, a: float, b: float) -> float:
        return self.quantize(self.quantize(a) * self.quantize(b))

    def div(self, a: float, b: float) -> float:
        if self.quantize(b) == 0.0:
            raise ZeroDivisionError(f"division by zero in format {self.name}")
        return self.quantize(self.quantize(a) / self.quantize(b))


def _round_half_even(x: float) -> float:
    """Round to nearest integer, ties to even (Python's round())."""
    return float(round(x))


#: IEEE 754 double: the SX-4's (and our host's) native mode.
IEEE_DOUBLE = FloatFormat("IEEE 754 double", radix=2, precision=53,
                          min_exponent=-1021, max_exponent=1024)
#: IEEE 754 single (the 32-bit operands the vector unit also supports).
IEEE_SINGLE = FloatFormat("IEEE 754 single", radix=2, precision=24,
                          min_exponent=-125, max_exponent=128)
#: Cray-1/X-MP/Y-MP 64-bit single: 48-bit significand, no hidden bit,
#: truncating arithmetic, enormous exponent range.
CRAY_SINGLE = FloatFormat("Cray 64-bit", radix=2, precision=48,
                          min_exponent=-8192, max_exponent=8191, chopped=True)
#: IBM System/360 short (32-bit hexadecimal): 6 hex digits, excess-64
#: exponent of 16.  (The 64-bit IBM format carries 14 hex digits — up to
#: 56 significand bits, *more* than the host double this emulation
#: computes in, so only the short format is emulated faithfully.)
IBM_SINGLE = FloatFormat("IBM hex single", radix=16, precision=6,
                         min_exponent=-64, max_exponent=63)

ALL_FORMATS = (IEEE_DOUBLE, IEEE_SINGLE, CRAY_SINGLE, IBM_SINGLE)


# -- PARANOIA-style probes against an emulated format ---------------------------

def detect_radix(fmt: FloatFormat) -> int:
    """Kahan's radix probe run through the format's own arithmetic."""
    w = 1.0
    while fmt.sub(fmt.add(w, 1.0), w) - 1.0 == 0.0:
        w = fmt.add(w, w)
    radix = 1.0
    while fmt.sub(fmt.add(w, radix), w) == 0.0:
        radix = fmt.add(radix, radix)
    return int(fmt.sub(fmt.add(w, radix), w))


def detect_precision(fmt: FloatFormat) -> int:
    """Digits of the deduced radix held by the significand."""
    radix = float(detect_radix(fmt))
    digits = 0
    w = 1.0
    while fmt.sub(fmt.add(w, 1.0), w) - 1.0 == 0.0:
        digits += 1
        w = fmt.mul(w, radix)
    return digits


def rounds_to_nearest(fmt: FloatFormat) -> bool:
    """Whether the format's arithmetic rounds to nearest.

    Probe: 1 + 0.75·eps must round *up* to 1+eps under round-to-nearest
    but chops *down* to 1 under Cray-style truncation.  (The Cray line's
    other famous quirk, the missing subtraction guard digit, is an
    alignment artifact invisible to value-level emulation; the chopping
    bias this probe sees is the quirk PARANOIA-class tests flag first.)
    """
    eps = fmt.epsilon
    return fmt.add(1.0, 0.75 * eps) == fmt.add(1.0, eps)
