"""Machine-axis lowering: cost a trace against thousands of machines at once.

:mod:`repro.machine.compiled` vectorizes costing across the *ops* of a
trace; this module vectorizes across the *machines*.  A
:class:`MachineGrid` lowers every cost-relevant processor parameter
(clock period, vector pipes, bank count, startup overheads, cache
geometry, ...) into structure-of-arrays columns — one float64/int64
entry per machine — so one broadcasted NumPy pass of shape
``(n_ops, n_machines)`` prices a whole trace against a whole design
space.

The correctness story is the same exact-parity contract the compiled
engine holds against the legacy per-op path, one level up:

* every grid kernel evaluates the *exact expression* of its per-machine
  ``*_cycles_batch`` sibling, with op columns broadcast as ``(n, 1)``
  against machine columns as ``(m,)`` — IEEE-754 arithmetic is
  elementwise, so machine ``j``'s column of the broadcasted result is
  bit-identical to running that machine's batch kernel alone;
* cache machines get benign placeholder vector/memory columns (masked
  out by ``has_vector`` through :func:`numpy.where`, which *selects*
  values and never mixes lanes), and vector machines' scalar columns
  are real, so one pass covers a heterogeneous grid;
* per-machine totals reduce with :func:`~repro.machine.compiled.fsum_columns`
  (exactly-rounded column sums), matching the per-machine ``fsum``.

``tests/machine/test_grid*.py`` pins the contract down: every
:class:`GridTraceCost` field equals the per-machine compiled (and hence
legacy) report bit-for-bit on all registered traces across the six
canonical presets, and on hypothesis-random machines and traces.

REPO009 (:mod:`repro.analysis.repolint`) keeps the pairing closed under
extension: every public ``*_cycles_grid`` method must sit next to the
per-machine ``*_cycles_batch`` sibling the parity suite verifies it
against.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING

import numpy as np

from repro.machine.cache import CacheModel
from repro.machine.clock import Clock
from repro.machine.compiled import SORTED_INTRINSICS, compile_trace, fsum_columns
from repro.machine.memory import BankedMemory
from repro.machine.processor import ExecutionReport, Processor
from repro.machine.scalar_unit import ScalarUnit
from repro.machine.vector_unit import VectorUnit
from repro.perfmon.collector import active as perfmon_active
from repro.perfmon.collector import record as perfmon_record
from repro.perfmon.counters import declare_counters
from repro.units import MEGA, NS

if TYPE_CHECKING:
    from repro.machine.compiled import CompiledTrace, VectorColumns
    from repro.machine.operations import Trace

__all__ = ["MachineGrid", "GridTraceCost", "cost_trace_grid", "cost_suite_trace_grid"]

declare_counters(
    "grid",
    (
        "machines",  # machines in grids handed to cost_trace_grid
        "machine_traces",  # (machine, trace) pairs costed
        "costings",  # cost_trace_grid calls that computed columns
        "memo_hits",  # cost_trace_grid calls served from the trace memo
    ),
)


def _pynum(value: float) -> int | float:
    """A Python int when the float is integral, else the float itself.

    Materialized components get the same parameter *values* the grid
    columns hold; int-vs-float makes no costing difference (int operands
    promote to the identical float64), but integral parameters read
    better in component reprs and keep ``math.gcd`` applicable.
    """
    number = float(value)
    integral = int(number)
    return integral if integral == number else number


@dataclass(eq=False)
class MachineGrid:
    """A design space as structure-of-arrays: one row per machine.

    Columns mirror the constructor parameters of
    :class:`~repro.machine.processor.Processor` and its components.  For
    cache machines (``has_vector`` False) the vector/memory columns hold
    benign placeholders — they are computed through and then discarded
    by the ``has_vector`` selection, never mixed into the result.

    Build grids with :meth:`from_processors` (exact lowering of real
    presets) or :mod:`repro.explore.sweep` (parameter sweeps anchored at
    a preset); get a machine back out with :meth:`materialize`.
    """

    names: tuple[str, ...]
    has_vector: np.ndarray  # bool
    period_ns: np.ndarray
    # vector unit
    pipes: np.ndarray
    concurrent_sets: np.ndarray
    startup_cycles: np.ndarray
    register_length: np.ndarray
    stripmine_cycles: np.ndarray
    #: (m, 6) per-element intrinsic cycles, SORTED_INTRINSICS column order.
    vector_intrinsic_rates: np.ndarray
    # banked memory
    banks: np.ndarray  # int64
    bank_busy_cycles: np.ndarray
    port_words_per_cycle: np.ndarray
    stride_base_penalty: np.ndarray
    gather_base_penalty: np.ndarray
    index_words_per_element: np.ndarray
    contention_slope: np.ndarray
    contention_base_slope: np.ndarray
    # scalar unit
    issue_width: np.ndarray
    flops_per_cycle: np.ndarray
    loop_overhead_instructions: np.ndarray
    #: (m, 6) per-call intrinsic cycles, SORTED_INTRINSICS column order.
    scalar_intrinsic_rates: np.ndarray
    # cache model
    cache_size_bytes: np.ndarray  # int64
    cache_line_bytes: np.ndarray  # int64
    cache_hit_cycles_per_word: np.ndarray
    cache_miss_latency_cycles: np.ndarray
    cache_mem_words_per_cycle: np.ndarray
    #: materialized processors, memoised per row so their component ids
    #: stay stable across calls (the compiled-trace memo keys on them).
    _materialized: dict[int, Processor] = field(default_factory=dict, repr=False)

    @property
    def n_machines(self) -> int:
        return len(self.names)

    def __post_init__(self) -> None:
        m = self.n_machines
        if m < 1:
            raise ValueError("a machine grid needs at least one machine")
        for name, column in self._columns():
            expected = (m, len(SORTED_INTRINSICS)) if column.ndim == 2 else (m,)
            if column.shape != expected:
                raise ValueError(
                    f"grid column {name!r} has shape {column.shape}, expected {expected}"
                )

    def _columns(self) -> list[tuple[str, np.ndarray]]:
        """(name, array) pairs in declaration order — the canonical layout."""
        return [
            (f.name, getattr(self, f.name))
            for f in fields(self)
            if not f.name.startswith("_") and f.name != "names"
        ]

    # -- construction -------------------------------------------------------
    @classmethod
    def from_processors(cls, processors: list[Processor]) -> "MachineGrid":
        """Lower concrete processors into grid columns, exactly.

        Placeholder vector/memory parameters for cache machines are
        chosen so every grid expression stays finite (no zero divisors);
        their lanes are discarded by the ``has_vector`` selection.
        """
        if not processors:
            raise ValueError("a MachineGrid needs at least one processor")
        rows = []
        for p in processors:
            vector = p.vector
            memory = p.memory
            scalar = p.scalar
            cache = scalar.cache
            rows.append(
                dict(
                    has_vector=vector is not None,
                    period_ns=p.clock.period_ns,
                    pipes=vector.pipes if vector else 1.0,
                    concurrent_sets=vector.concurrent_sets if vector else 1.0,
                    startup_cycles=vector.startup_cycles if vector else 0.0,
                    register_length=vector.register_length if vector else 1.0,
                    stripmine_cycles=vector.stripmine_cycles if vector else 0.0,
                    vector_intrinsic_rates=[
                        vector.intrinsic_cycles_per_element[name] if vector else 0.0
                        for name in SORTED_INTRINSICS
                    ],
                    banks=memory.banks if memory else 1,
                    bank_busy_cycles=memory.bank_busy_cycles if memory else 1.0,
                    port_words_per_cycle=memory.port_words_per_cycle if memory else 2.0,
                    stride_base_penalty=memory.stride_base_penalty if memory else 1.0,
                    gather_base_penalty=memory.gather_base_penalty if memory else 1.0,
                    index_words_per_element=memory.index_words_per_element if memory else 0.0,
                    contention_slope=memory.contention_slope if memory else 0.0,
                    contention_base_slope=memory.contention_base_slope if memory else 0.0,
                    issue_width=scalar.issue_width,
                    flops_per_cycle=scalar.flops_per_cycle,
                    loop_overhead_instructions=scalar.loop_overhead_instructions,
                    scalar_intrinsic_rates=[
                        scalar.intrinsic_cycles_per_call[name] for name in SORTED_INTRINSICS
                    ],
                    cache_size_bytes=cache.size_bytes,
                    cache_line_bytes=cache.line_bytes,
                    cache_hit_cycles_per_word=cache.hit_cycles_per_word,
                    cache_miss_latency_cycles=cache.miss_latency_cycles,
                    cache_mem_words_per_cycle=cache.mem_words_per_cycle,
                )
            )
        int_columns = {"banks", "cache_size_bytes", "cache_line_bytes"}
        columns: dict[str, np.ndarray] = {}
        for key in rows[0]:
            values = [row[key] for row in rows]
            if key == "has_vector":
                columns[key] = np.array(values, dtype=bool)
            elif key in int_columns:
                columns[key] = np.array(values, dtype=np.int64)
            else:
                columns[key] = np.array(values, dtype=np.float64)
        return cls(names=tuple(p.name for p in processors), **columns)

    def subset(self, indices) -> "MachineGrid":
        """A new grid holding the given rows (also usable to repeat rows)."""
        index = np.asarray(indices, dtype=np.intp)
        return type(self)(
            names=tuple(self.names[i] for i in index),
            **{name: column[index] for name, column in self._columns()},
        )

    @classmethod
    def concat(cls, grids: list["MachineGrid"]) -> "MachineGrid":
        """One grid holding every row of the inputs, in order."""
        if not grids:
            raise ValueError("cannot concatenate zero grids")
        names: tuple[str, ...] = ()
        for grid in grids:
            names = names + grid.names
        columns = {
            name: np.concatenate([getattr(grid, name) for grid in grids])
            for name, _ in grids[0]._columns()
        }
        return cls(names=names, **columns)

    def validate(self) -> None:
        """Raise if any row violates a component constructor constraint.

        Sweeps build grids by writing columns directly, bypassing the
        component constructors; this re-checks their invariants in bulk
        so an invalid sweep point fails loudly, not as a silent NaN.
        """
        checks = [
            ("period_ns", self.period_ns > 0.0),
            ("pipes", self.pipes >= 1.0),
            ("concurrent_sets", self.concurrent_sets >= 1.0),
            ("startup_cycles", self.startup_cycles >= 0.0),
            ("register_length", self.register_length >= 1.0),
            ("stripmine_cycles", self.stripmine_cycles >= 0.0),
            ("vector_intrinsic_rates", (self.vector_intrinsic_rates >= 0.0).all(axis=1)),
            ("banks", self.banks >= 1),
            ("bank_busy_cycles", self.bank_busy_cycles > 0.0),
            ("port_words_per_cycle", self.port_words_per_cycle > 0.0),
            ("stride_base_penalty", self.stride_base_penalty >= 1.0),
            ("gather_base_penalty", self.gather_base_penalty >= 1.0),
            ("index_words_per_element", self.index_words_per_element >= 0.0),
            ("issue_width", self.issue_width > 0.0),
            ("flops_per_cycle", self.flops_per_cycle > 0.0),
            ("loop_overhead_instructions", self.loop_overhead_instructions >= 0.0),
            ("scalar_intrinsic_rates", (self.scalar_intrinsic_rates >= 0.0).all(axis=1)),
            ("cache_size_bytes", self.cache_size_bytes >= 8),
            ("cache_line_bytes", self.cache_line_bytes >= 8),
            ("cache_hit_cycles_per_word", self.cache_hit_cycles_per_word >= 0.0),
            ("cache_miss_latency_cycles", self.cache_miss_latency_cycles >= 0.0),
            ("cache_mem_words_per_cycle", self.cache_mem_words_per_cycle > 0.0),
        ]
        for name, ok in checks:
            bad = np.nonzero(~np.asarray(ok))[0]
            if bad.size:
                i = int(bad[0])
                raise ValueError(
                    f"grid parameter {name!r} is out of range for machine "
                    f"{self.names[i]!r} (row {i}, {bad.size} row(s) total)"
                )

    def fingerprint(self) -> str:
        """Content hash of the numeric columns (names excluded).

        Two grids with the same parameters share a fingerprint no matter
        what the rows are called — chunk caching keys on the numbers
        that determine cost, nothing else.
        """
        hasher = hashlib.sha256()
        hasher.update(b"machine-grid\x00")
        for name, column in self._columns():
            hasher.update(name.encode("ascii"))
            hasher.update(b"\x00")
            hasher.update(np.ascontiguousarray(column).tobytes())
            hasher.update(b"\x00")
        return hasher.hexdigest()

    # -- materialization ----------------------------------------------------
    def materialize(self, index: int) -> Processor:
        """The concrete :class:`Processor` of one grid row.

        Memoised per row: repeated calls return the same instance, so
        compiled-trace memo entries keyed on its components stay warm.
        """
        i = int(index)
        cached = self._materialized.get(i)
        if cached is not None:
            return cached
        scalar = ScalarUnit(
            issue_width=float(self.issue_width[i]),
            flops_per_cycle=float(self.flops_per_cycle[i]),
            cache=CacheModel(
                size_bytes=int(self.cache_size_bytes[i]),
                line_bytes=int(self.cache_line_bytes[i]),
                hit_cycles_per_word=float(self.cache_hit_cycles_per_word[i]),
                miss_latency_cycles=float(self.cache_miss_latency_cycles[i]),
                mem_words_per_cycle=float(self.cache_mem_words_per_cycle[i]),
            ),
            loop_overhead_instructions=float(self.loop_overhead_instructions[i]),
            intrinsic_cycles_per_call={
                name: float(self.scalar_intrinsic_rates[i, column])
                for column, name in enumerate(SORTED_INTRINSICS)
            },
        )
        vector = memory = None
        if self.has_vector[i]:
            vector = VectorUnit(
                pipes=_pynum(self.pipes[i]),
                concurrent_sets=_pynum(self.concurrent_sets[i]),
                startup_cycles=float(self.startup_cycles[i]),
                register_length=_pynum(self.register_length[i]),
                stripmine_cycles=float(self.stripmine_cycles[i]),
                intrinsic_cycles_per_element={
                    name: float(self.vector_intrinsic_rates[i, column])
                    for column, name in enumerate(SORTED_INTRINSICS)
                },
            )
            memory = BankedMemory(
                banks=int(self.banks[i]),
                bank_busy_cycles=float(self.bank_busy_cycles[i]),
                port_words_per_cycle=float(self.port_words_per_cycle[i]),
                stride_base_penalty=float(self.stride_base_penalty[i]),
                gather_base_penalty=float(self.gather_base_penalty[i]),
                index_words_per_element=float(self.index_words_per_element[i]),
                contention_slope=float(self.contention_slope[i]),
                contention_base_slope=float(self.contention_base_slope[i]),
            )
        processor = Processor(
            name=self.names[i],
            clock=Clock(period_ns=float(self.period_ns[i])),
            scalar=scalar,
            vector=vector,
            memory=memory,
        )
        self._materialized[i] = processor
        return processor

    # -- grid kernels (exact mirrors of the *_cycles_batch siblings) --------
    # Op columns broadcast as (n, 1) against machine columns as (m,);
    # every elementwise expression below keeps the association of its
    # per-machine sibling, so column j of any result is bit-identical to
    # running machine j's batch kernel alone.
    def _path_words(self) -> np.ndarray:
        return self.port_words_per_cycle / 2.0

    def _stride_factor_grid(self, strides: np.ndarray) -> np.ndarray:
        """(n, m) stride dilation — BankedMemory.stride_factor, vectorized.

        ``np.gcd`` agrees with ``math.gcd`` on int64, so the distinct-
        bank count (and everything downstream) matches the scalar code
        mapped over the unique strides.
        """
        unique, inverse = np.unique(strides, return_inverse=True)
        distinct = self.banks[None, :] // np.gcd(unique[:, None], self.banks[None, :])
        sustainable = distinct / self.bank_busy_cycles[None, :]
        conflict = np.maximum(1.0, self._path_words()[None, :] / sustainable)
        factors = np.where(
            unique[:, None] <= 2, 1.0, self.stride_base_penalty[None, :] * conflict
        )
        return factors[inverse]

    def _gather_factor_grid(self) -> np.ndarray:
        """(m,) list-vector dilation — BankedMemory.gather_factor."""
        occupancy = self._path_words() * self.bank_busy_cycles / self.banks
        return self.gather_base_penalty * (1.0 + occupancy)

    def _load_cycles_grid(self, v: "VectorColumns") -> np.ndarray:
        width = self._path_words()[None, :]
        length = v.length[:, None]
        cycles = v.loads[:, None] * length * self._stride_factor_grid(v.load_stride) / width
        cycles = cycles + v.gather[:, None] * length * self._gather_factor_grid()[None, :] / width
        indexed = (v.gather + v.scatter)[:, None]
        cycles = cycles + indexed * length * self.index_words_per_element[None, :] / width
        return cycles

    def _store_cycles_grid(self, v: "VectorColumns") -> np.ndarray:
        width = self._path_words()[None, :]
        length = v.length[:, None]
        cycles = v.stores[:, None] * length * self._stride_factor_grid(v.store_stride) / width
        cycles = cycles + v.scatter[:, None] * length * self._gather_factor_grid()[None, :] / width
        return cycles

    def _transfer_cycles_grid(self, v: "VectorColumns") -> np.ndarray:
        return np.maximum(self._load_cycles_grid(v), self._store_cycles_grid(v))

    def _arithmetic_cycles_grid(self, v: "VectorColumns") -> np.ndarray:
        """(n, m) pipeline-busy cycles — VectorUnit.arithmetic_cycles_batch."""
        sets_used = np.minimum(self.concurrent_sets[None, :], np.maximum(1.0, v.flops)[:, None])
        cycles = v.length[:, None] * v.flops[:, None] / (self.pipes[None, :] * sets_used)
        for column in range(len(SORTED_INTRINSICS)):
            rate = self.vector_intrinsic_rates[:, column][None, :]
            cycles = cycles + (v.length[:, None] * v.intrinsics[:, column][:, None]) * rate
        return cycles

    def _overhead_cycles_grid(self, v: "VectorColumns") -> np.ndarray:
        """(n, m) startup + strip-mining — VectorUnit.overhead_cycles_batch."""
        strips = np.maximum(1.0, np.ceil(v.length[:, None] / self.register_length[None, :]))
        return self.startup_cycles[None, :] + (strips - 1.0) * self.stripmine_cycles[None, :]

    def _cache_cycles_per_word_grid(
        self, stride: np.ndarray, working_set: np.ndarray
    ) -> np.ndarray:
        """(n, m) per-word cost — CacheModel.cycles_per_word_batch."""
        words_per_line = self.cache_line_bytes // 8
        streaming = np.where(
            stride[:, None] >= words_per_line[None, :],
            1.0,
            stride[:, None] / words_per_line[None, :],
        )
        rate = np.where(working_set[:, None] <= self.cache_size_bytes[None, :], 0.0, streaming)
        line_fill = self.cache_miss_latency_cycles + words_per_line / self.cache_mem_words_per_cycle
        return self.cache_hit_cycles_per_word[None, :] + rate * line_fill[None, :]

    def _scalar_vector_cycles_grid(self, v: "VectorColumns") -> np.ndarray:
        """(n, m) VectorOps as scalar loops — ScalarUnit.vector_op_cycles_batch."""
        words_per_elem = (v.loads + v.stores)[:, None]
        indexed_per_elem = v.gather + v.scatter
        working_set = (v.loads * v.load_stride + v.stores * v.store_stride) * v.length * 8.0
        stride = np.maximum(v.load_stride, v.store_stride)
        mem_cycles = words_per_elem * self._cache_cycles_per_word_grid(stride, working_set)
        mem_cycles = mem_cycles + (indexed_per_elem * 2.0)[:, None] * (
            self.cache_hit_cycles_per_word[None, :]
        )
        flop_cycles = v.flops[:, None] / self.flops_per_cycle[None, :]
        loop_cycles = (self.loop_overhead_instructions / self.issue_width)[None, :]
        intrinsic_cycles = np.zeros((v.n, self.n_machines))
        for column in range(len(SORTED_INTRINSICS)):
            rate = self.scalar_intrinsic_rates[:, column][None, :]
            intrinsic_cycles = intrinsic_cycles + v.intrinsics[:, column][:, None] * rate
        per_element = np.maximum(flop_cycles, mem_cycles) + loop_cycles + intrinsic_cycles
        return v.length[:, None] * per_element

    # -- public costing API --------------------------------------------------
    # The reference chain the parity suite walks: ``*_cycles_grid`` is
    # verified against ``*_cycles_batch`` (one materialized machine's
    # compiled path, REPO009), which is itself verified against the
    # per-op ``*_cycles`` methods (REPO007).
    def vector_op_cycles(self, op, index: int, memory_dilation: float = 1.0) -> float:
        """Per-op reference for one row: the materialized processor's
        legacy path."""
        return self.materialize(index).vector_op_cycles(op, memory_dilation)

    def vector_op_cycles_batch(
        self, compiled: "CompiledTrace", index: int, memory_dilation: float = 1.0
    ) -> np.ndarray:
        """Per-machine reference for one row: the materialized processor's
        compiled path — what the parity suite compares a grid column to."""
        return self.materialize(index).vector_op_cycles_batch(compiled, memory_dilation)

    def vector_op_cycles_grid(
        self, compiled: "CompiledTrace", memory_dilation: float = 1.0
    ) -> np.ndarray:
        """(n_vector_ops, m) total cycles for every vector op × machine.

        The dilation-independent matrices are memoised on the compiled
        trace keyed by this grid, exactly as the per-machine path
        memoises its cost columns per component set.
        """
        if memory_dilation < 1.0:
            raise ValueError(f"memory dilation cannot shrink time, got {memory_dilation}")
        v = compiled.vector
        cache = compiled.machine_cache(self)
        per_execution = None
        if bool(self.has_vector.any()):
            arithmetic = cache.get("grid_arithmetic")
            if arithmetic is None:
                arithmetic = cache["grid_arithmetic"] = self._arithmetic_cycles_grid(v)
                cache["grid_overhead"] = self._overhead_cycles_grid(v)
                cache["grid_transfer"] = self._transfer_cycles_grid(v)
            memory = cache["grid_transfer"] * memory_dilation
            per_execution = cache["grid_overhead"] + np.maximum(arithmetic, memory)
        if not bool(self.has_vector.all()):
            scalar_vector = cache.get("grid_scalar_vector")
            if scalar_vector is None:
                scalar_vector = cache["grid_scalar_vector"] = self._scalar_vector_cycles_grid(v)
            dilated = scalar_vector * memory_dilation
            if per_execution is None:
                per_execution = dilated
            else:
                per_execution = np.where(self.has_vector[None, :], per_execution, dilated)
        return per_execution * v.count[:, None]

    def scalar_op_cycles(self, op, index: int) -> float:
        """Per-op reference for one row (see ``vector_op_cycles``)."""
        return self.materialize(index).scalar_op_cycles(op)

    def scalar_op_cycles_batch(self, compiled: "CompiledTrace", index: int) -> np.ndarray:
        """Per-machine reference for one row (see ``vector_op_cycles_batch``)."""
        return self.materialize(index).scalar_op_cycles_batch(compiled)

    def scalar_op_cycles_grid(self, compiled: "CompiledTrace") -> np.ndarray:
        """(n_scalar_ops, m) total cycles for every scalar op × machine."""
        s = compiled.scalar
        cache = compiled.machine_cache(self)
        per_execution = cache.get("grid_scalar_op")
        if per_execution is None:
            issue = s.instructions[:, None] / self.issue_width[None, :]
            fp = s.flops[:, None] / self.flops_per_cycle[None, :]
            memory = s.memory_words[:, None] * self.cache_hit_cycles_per_word[None, :]
            per_execution = cache["grid_scalar_op"] = issue + fp + memory
        return per_execution * s.count[:, None]


@dataclass(frozen=True)
class GridTraceCost:
    """One trace costed against every machine of a grid.

    Arrays are indexed by grid row.  ``raw_flops``/``flop_equivalents``/
    ``words_moved`` are machine-independent trace totals (identical to
    the per-machine report fields); the derived rate fields replicate
    :class:`~repro.machine.processor.ExecutionReport`'s expressions
    elementwise, zero-guard included.
    """

    trace_name: str
    machine_names: tuple[str, ...]
    cycles: np.ndarray
    seconds: np.ndarray
    mflops: np.ndarray
    bandwidth_bytes_per_s: np.ndarray
    raw_flops: float
    flop_equivalents: float
    words_moved: float

    @property
    def n_machines(self) -> int:
        return len(self.machine_names)

    def report(self, index: int) -> ExecutionReport:
        """One machine's row as a standard :class:`ExecutionReport`.

        The report's derived properties (mflops, bandwidth) recompute
        from the same scalars with the same expressions, so they agree
        bit-for-bit with this cost's array entries.
        """
        i = int(index)
        return ExecutionReport(
            machine=self.machine_names[i],
            trace_name=self.trace_name,
            cycles=float(self.cycles[i]),
            seconds=float(self.seconds[i]),
            raw_flops=self.raw_flops,
            flop_equivalents=self.flop_equivalents,
            words_moved=self.words_moved,
            engine="grid",
        )


def cost_trace_grid(
    trace: "Trace", grid: MachineGrid, memory_dilation: float = 1.0
) -> GridTraceCost:
    """Cost one trace against every machine of a grid in one pass.

    Bit-exact with executing the trace per machine on the compiled
    engine: the per-op matrices come from the grid kernels (exact
    mirrors of the batch kernels), per-machine totals are exactly-
    rounded column sums, and the derived fields replicate the report
    expressions.  The combined cycles vector is memoised on the
    compiled trace per (grid, dilation), so dilation sweeps and repeat
    costings are dictionary lookups.
    """
    compiled = compile_trace(trace)
    cache = compiled.machine_cache(grid)
    key = f"grid_cost@{float(memory_dilation)!r}"
    cycles = cache.get(key)
    computed = cycles is None
    if computed:
        m = grid.n_machines
        vector_cycles = (
            grid.vector_op_cycles_grid(compiled, memory_dilation)
            if compiled.vector.n
            else np.zeros((0, m))
        )
        scalar_cycles = (
            grid.scalar_op_cycles_grid(compiled) if compiled.scalar.n else np.zeros((0, m))
        )
        cycles = cache[key] = fsum_columns(
            np.concatenate([vector_cycles, scalar_cycles], axis=0)
        )
    if perfmon_active() is not None:
        m = grid.n_machines
        perfmon_record(
            "grid",
            {
                "machines": float(m),
                "machine_traces": float(m),
                "costings": 1.0 if computed else 0.0,
                "memo_hits": 0.0 if computed else 1.0,
            },
        )
    seconds = cycles * (grid.period_ns * NS)
    zero = seconds == 0.0
    safe_seconds = np.where(zero, 1.0, seconds)
    flop_equivalents = compiled.flop_equivalents_total()
    words_moved = compiled.words_moved_total()
    mflops = np.where(zero, 0.0, flop_equivalents / safe_seconds / MEGA)
    bandwidth = np.where(zero, 0.0, (words_moved * 8.0) / safe_seconds)
    return GridTraceCost(
        trace_name=trace.name,
        machine_names=grid.names,
        cycles=cycles,
        seconds=seconds,
        mflops=mflops,
        bandwidth_bytes_per_s=bandwidth,
        raw_flops=compiled.raw_flops_total(),
        flop_equivalents=flop_equivalents,
        words_moved=words_moved,
    )


def cost_suite_trace_grid(
    suite, grid: MachineGrid, memory_dilation: float = 1.0
) -> list[GridTraceCost]:
    """Cost a stacked suite against every machine in one fused pass.

    ``suite`` is a :class:`~repro.machine.suitebatch.SuiteColumns`
    stack: its ``vector``/``scalar`` columns and ``machine_cache`` make
    it a drop-in ``CompiledTrace`` for the grid kernels, so the whole
    suite × grid cross product costs in a single ``(n_ops, n_machines)``
    broadcasted pass — no per-trace Python loop over kernel launches.
    Per-(trace, machine) totals reduce each trace's *segment* of the
    stacked matrices with :func:`fsum_columns`; the exactly-rounded
    column sums make every returned :class:`GridTraceCost` bit-identical
    to :func:`cost_trace_grid` on that trace alone.  The per-trace
    cycle vectors are memoised on the stack per (grid, dilation).
    """
    cache = suite.machine_cache(grid)
    key = f"suite_grid_cost@{float(memory_dilation)!r}"
    per_trace = cache.get(key)
    computed = per_trace is None
    m = grid.n_machines
    if computed:
        vector_cycles = (
            grid.vector_op_cycles_grid(suite, memory_dilation)
            if suite.vector.n
            else np.zeros((0, m))
        )
        scalar_cycles = (
            grid.scalar_op_cycles_grid(suite) if suite.scalar.n else np.zeros((0, m))
        )
        vo, so = suite.vector_offsets, suite.scalar_offsets
        per_trace = cache[key] = tuple(
            fsum_columns(
                np.concatenate(
                    [vector_cycles[vo[i]:vo[i + 1]], scalar_cycles[so[i]:so[i + 1]]],
                    axis=0,
                )
            )
            for i in range(suite.n_traces)
        )
    if perfmon_active() is not None:
        perfmon_record(
            "grid",
            {
                "machines": float(m),
                "machine_traces": float(m * suite.n_traces),
                "costings": 1.0 if computed else 0.0,
                "memo_hits": 0.0 if computed else 1.0,
            },
        )
    costs: list[GridTraceCost] = []
    for i in range(suite.n_traces):
        cycles = per_trace[i]
        seconds = cycles * (grid.period_ns * NS)
        zero = seconds == 0.0
        safe_seconds = np.where(zero, 1.0, seconds)
        raw_flops, flop_equivalents, words_moved = suite.trace_totals(i)
        costs.append(
            GridTraceCost(
                trace_name=suite.trace_names[i],
                machine_names=grid.names,
                cycles=cycles,
                seconds=seconds,
                mflops=np.where(zero, 0.0, flop_equivalents / safe_seconds / MEGA),
                bandwidth_bytes_per_s=np.where(
                    zero, 0.0, (words_moved * 8.0) / safe_seconds
                ),
                raw_flops=raw_flops,
                flop_equivalents=flop_equivalents,
                words_moved=words_moved,
            )
        )
    return costs
