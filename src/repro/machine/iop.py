"""Input-Output Processor (IOP) and disk-array models.

Section 2.4: each IOP provides 1.6 GB/s of channel bandwidth, up to four
per node, operating asynchronously from the CPUs as independent I/O
engines (HIPPI and fast-wide SCSI-2 channels hang off them).  The I/O
benchmark (Section 4.5.1) measures a *conventional* attached disk system
— explicitly not the solid-state XMU — so the disk model here carries
1996-era mechanical parameters: seek, rotational latency, and a media
streaming rate, aggregated by striping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmon.collector import record as perfmon_record
from repro.perfmon.counters import declare_counters
from repro.units import GB, MB

__all__ = ["IOProcessor", "DiskArray"]

declare_counters(
    "iop",
    (
        "requests",
        "transfer_bytes",
        "channel_seconds",  # channel occupancy, simulated
    ),
)


@dataclass
class IOProcessor:
    """One IOP channel engine: a bandwidth cap with per-request overhead."""

    bandwidth_bytes_per_s: float = 1.6 * GB
    request_overhead_s: float = 150e-6

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("IOP bandwidth must be positive")
        if self.request_overhead_s < 0:
            raise ValueError("request overhead cannot be negative")

    def channel_seconds(self, nbytes: float, requests: int = 1) -> float:
        """Channel occupancy to move ``nbytes`` in ``requests`` transfers."""
        if nbytes < 0:
            raise ValueError(f"transfer size cannot be negative, got {nbytes}")
        if requests < 1:
            raise ValueError(f"need at least one request, got {requests}")
        seconds = requests * self.request_overhead_s + nbytes / self.bandwidth_bytes_per_s
        perfmon_record(
            "iop",
            {"requests": float(requests), "transfer_bytes": nbytes, "channel_seconds": seconds},
        )
        return seconds


@dataclass
class DiskArray:
    """A striped array of conventional disks behind an IOP.

    Default parameters describe a mid-1990s fast-wide SCSI-2 drive
    (~9 ms average seek, 7200 rpm, ~9 MB/s media rate); the benchmarked
    system's 282 GB capacity (Table 2) corresponds to a few dozen such
    spindles.
    """

    disks: int = 16
    disk_capacity_bytes: float = 18 * GB
    media_rate_bytes_per_s: float = 9 * MB
    avg_seek_s: float = 9e-3
    rpm: float = 7200.0
    iop: IOProcessor | None = None

    def __post_init__(self) -> None:
        if self.disks < 1:
            raise ValueError(f"need at least one disk, got {self.disks}")
        if self.disk_capacity_bytes <= 0 or self.media_rate_bytes_per_s <= 0:
            raise ValueError("disk capacity and media rate must be positive")
        if self.avg_seek_s < 0 or self.rpm <= 0:
            raise ValueError("seek time cannot be negative; rpm must be positive")
        if self.iop is None:
            self.iop = IOProcessor()

    @property
    def capacity_bytes(self) -> float:
        return self.disks * self.disk_capacity_bytes

    @property
    def rotational_latency_s(self) -> float:
        """Average rotational delay: half a revolution."""
        return 0.5 * 60.0 / self.rpm

    @property
    def stripe_rate_bytes_per_s(self) -> float:
        """Aggregate streaming rate, capped by the IOP channel."""
        assert self.iop is not None
        return min(
            self.disks * self.media_rate_bytes_per_s, self.iop.bandwidth_bytes_per_s
        )

    def access_seconds(self, nbytes: float, sequential: bool = True) -> float:
        """Time for one read or write of ``nbytes``.

        Sequential transfers pay one positioning delay and then stream
        across the stripe; random (direct-access record) transfers pay a
        positioning delay on every stripe unit they touch.
        """
        if nbytes < 0:
            raise ValueError(f"transfer size cannot be negative, got {nbytes}")
        if nbytes == 0:
            return 0.0
        position = self.avg_seek_s + self.rotational_latency_s
        stream = nbytes / self.stripe_rate_bytes_per_s
        assert self.iop is not None
        channel = self.iop.channel_seconds(nbytes)
        if sequential:
            return position + max(stream, channel)
        # Random access: one positioning delay per disk's worth of data.
        chunks = max(1, round(nbytes / (self.stripe_rate_bytes_per_s * 0.01)))
        return chunks * position + max(stream, channel)

    def sequential_bandwidth(self, nbytes: float) -> float:
        """Effective bytes/s for one sequential transfer of ``nbytes``."""
        seconds = self.access_seconds(nbytes, sequential=True)
        return nbytes / seconds if seconds > 0 else 0.0
