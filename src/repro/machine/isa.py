"""A functional vector-ISA simulator for the SX-4's vector unit.

The analytic model (:mod:`repro.machine.vector_unit`) prices operation
*descriptors*; this module goes one level deeper and actually *executes*
vector programs — the Section 2.1 machine made concrete:

* 64-bit scalar registers and vector registers of 256 elements (eight
  32-element pipeline chips ganged together),
* a vector length register (strip-mining writes it per strip),
* vector instructions: strided/indexed loads and stores, element-wise
  add/multiply/divide/logical ops, scalar-vector forms, and reductions,
* cycle accounting per instruction consistent with the analytic model:
  ``startup + ceil(vl / pipes)`` for arithmetic, the banked-memory path
  costs for loads/stores.

Programs are sequences of :class:`Instr`; :class:`VectorMachine.run`
executes them against a NumPy-backed memory image and returns the cycle
count, so tests can check *both* that a kernel computes the right answer
and that its simulated cycles agree with the analytic trace model — the
cross-validation that keeps the performance model honest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.machine.memory import BankedMemory
from repro.machine.vector_unit import VectorUnit

__all__ = ["Instr", "VectorMachine", "assemble_copy", "assemble_daxpy", "assemble_gather"]

#: Opcodes grouped by execution resource.
_ARITH_BINARY: dict[str, Callable] = {
    "vadd": np.add,
    "vsub": np.subtract,
    "vmul": np.multiply,
    "vdiv": np.divide,
    "vand": lambda a, b: np.bitwise_and(a.astype(np.int64), b.astype(np.int64)).astype(float),
    "vor": lambda a, b: np.bitwise_or(a.astype(np.int64), b.astype(np.int64)).astype(float),
    "vmax": np.maximum,
    "vmin": np.minimum,
}
_ARITH_SCALAR: dict[str, Callable] = {
    "vadds": lambda v, s: v + s,
    "vmuls": lambda v, s: v * s,
}
_REDUCE: dict[str, Callable] = {
    "vsum": np.sum,
    "vmaxval": np.max,
}
_FLOPS = {"vadd": 1, "vsub": 1, "vmul": 1, "vdiv": 4, "vand": 0, "vor": 0,
          "vmax": 0, "vmin": 0, "vadds": 1, "vmuls": 1, "vsum": 1, "vmaxval": 0}


@dataclass(frozen=True)
class Instr:
    """One instruction: opcode plus operand fields.

    Field meaning by class:
      - ``setvl``:   imm = new vector length (1..max_vl)
      - ``lds``:     vd ← memory[imm + i·stride]      (strided load)
      - ``sts``:     memory[imm + i·stride] ← vs1     (strided store)
      - ``ldx``:     vd ← memory[imm + index_vector]  (gather; vs2 = index reg)
      - ``stx``:     memory[imm + index_vector] ← vs1 (scatter; vs2 = index reg)
      - arithmetic:  vd ← op(vs1, vs2)  /  vd ← op(vs1, scalar imm)
      - reductions:  sd ← op(vs1)  (result to a scalar register, sd=vd field)
    """

    op: str
    vd: int = 0
    vs1: int = 0
    vs2: int = 0
    imm: float = 0.0
    stride: int = 1


@dataclass
class VectorMachine:
    """Executable vector unit + memory image.

    ``memory`` is a flat float64 array (word-addressed, as the SX-4's
    benchmarks see it).  Cycle accounting reuses the analytic models so
    the two layers cannot drift apart silently.
    """

    memory_words: int = 1 << 20
    num_vregs: int = 8
    num_sregs: int = 8
    vector_unit: VectorUnit = field(default_factory=VectorUnit)
    memory_model: BankedMemory = field(default_factory=BankedMemory)

    def __post_init__(self) -> None:
        if self.memory_words < 1:
            raise ValueError("memory must hold at least one word")
        if self.num_vregs < 2 or self.num_sregs < 1:
            raise ValueError("need at least two vector and one scalar register")
        self.memory = np.zeros(self.memory_words, dtype=np.float64)
        self.max_vl = self.vector_unit.register_length
        self.vregs = np.zeros((self.num_vregs, self.max_vl), dtype=np.float64)
        self.sregs = np.zeros(self.num_sregs, dtype=np.float64)
        self.vl = self.max_vl
        self.cycles = 0.0
        self.instructions_retired = 0
        #: Chaining state: the pipeline-fill startup is paid once when
        #: the vector unit first kicks off; thereafter consecutive vector
        #: instructions chain and pay only issue + streaming time, with a
        #: small refill per strip-mine boundary (setvl) — the same
        #: accounting as the analytic VectorUnit model.
        self._pipeline_started = False

    # -- helpers ---------------------------------------------------------------
    def _check_vreg(self, r: int) -> None:
        if not 0 <= r < self.num_vregs:
            raise ValueError(f"vector register v{r} out of range")

    def _addresses(self, base: float, stride: int) -> np.ndarray:
        addr = int(base) + stride * np.arange(self.vl)
        if addr.min() < 0 or addr.max() >= self.memory_words:
            raise IndexError(
                f"address range {addr.min()}..{addr.max()} outside memory "
                f"of {self.memory_words} words"
            )
        return addr

    def _kickoff_cycles(self) -> float:
        """Pipeline-fill cost: full startup the first time, then chained."""
        if self._pipeline_started:
            return 0.0
        self._pipeline_started = True
        return self.vector_unit.startup_cycles

    def _mem_cycles(self, stride: int, indexed: bool, is_store: bool) -> float:
        width = self.memory_model.path_words_per_cycle
        issue = 2.0  # vector instructions issue in two clocks (Section 2.1)
        if indexed:
            data = self.vl * self.memory_model.gather_factor() / width
            index = self.vl * self.memory_model.index_words_per_element / width
            return issue + self._kickoff_cycles() + data + index
        factor = self.memory_model.stride_factor(stride)
        return issue + self._kickoff_cycles() + self.vl * factor / width

    def _arith_cycles(self, flops_per_element: int) -> float:
        pipes = self.vector_unit.pipes
        busy = math.ceil(self.vl / pipes) * max(1, flops_per_element)
        return 2.0 + self._kickoff_cycles() + busy

    # -- execution ---------------------------------------------------------------
    def execute(self, instr: Instr) -> None:
        op = instr.op
        if op == "setvl":
            new_vl = int(instr.imm)
            if not 1 <= new_vl <= self.max_vl:
                raise ValueError(f"vector length {new_vl} outside 1..{self.max_vl}")
            self.vl = new_vl
            # Issue, plus the strip-mine refill once the pipes are hot.
            self.cycles += 2.0 + (
                self.vector_unit.stripmine_cycles if self._pipeline_started else 0.0
            )
        elif op == "lds":
            self._check_vreg(instr.vd)
            addr = self._addresses(instr.imm, instr.stride)
            self.vregs[instr.vd, : self.vl] = self.memory[addr]
            self.cycles += self._mem_cycles(instr.stride, indexed=False, is_store=False)
        elif op == "sts":
            self._check_vreg(instr.vs1)
            addr = self._addresses(instr.imm, instr.stride)
            self.memory[addr] = self.vregs[instr.vs1, : self.vl]
            self.cycles += self._mem_cycles(instr.stride, indexed=False, is_store=True)
        elif op in ("ldx", "stx"):
            self._check_vreg(instr.vs2)
            index = self.vregs[instr.vs2, : self.vl].astype(np.int64)
            addr = int(instr.imm) + index
            if addr.min() < 0 or addr.max() >= self.memory_words:
                raise IndexError("indexed access outside memory")
            if op == "ldx":
                self._check_vreg(instr.vd)
                self.vregs[instr.vd, : self.vl] = self.memory[addr]
            else:
                self._check_vreg(instr.vs1)
                self.memory[addr] = self.vregs[instr.vs1, : self.vl]
            self.cycles += self._mem_cycles(1, indexed=True, is_store=op == "stx")
        elif op in _ARITH_BINARY:
            self._check_vreg(instr.vd)
            self._check_vreg(instr.vs1)
            self._check_vreg(instr.vs2)
            a = self.vregs[instr.vs1, : self.vl]
            b = self.vregs[instr.vs2, : self.vl]
            if op == "vdiv" and np.any(b == 0.0):
                raise ZeroDivisionError("vector divide by zero")
            self.vregs[instr.vd, : self.vl] = _ARITH_BINARY[op](a, b)
            self.cycles += self._arith_cycles(_FLOPS[op])
        elif op in _ARITH_SCALAR:
            self._check_vreg(instr.vd)
            self._check_vreg(instr.vs1)
            self.vregs[instr.vd, : self.vl] = _ARITH_SCALAR[op](
                self.vregs[instr.vs1, : self.vl], instr.imm
            )
            self.cycles += self._arith_cycles(_FLOPS[op])
        elif op in _REDUCE:
            self._check_vreg(instr.vs1)
            if not 0 <= instr.vd < self.num_sregs:
                raise ValueError(f"scalar register s{instr.vd} out of range")
            self.sregs[instr.vd] = _REDUCE[op](self.vregs[instr.vs1, : self.vl])
            # Reductions run a log-tree over the pipes after the stream.
            self.cycles += self._arith_cycles(_FLOPS[op]) + 2 * math.log2(
                max(2, self.vector_unit.pipes)
            )
        else:
            raise ValueError(f"unknown opcode {op!r}")
        self.instructions_retired += 1

    def run(self, program: list[Instr]) -> float:
        """Execute a program; returns total cycles consumed by it."""
        start = self.cycles
        for instr in program:
            self.execute(instr)
        return self.cycles - start


# -- assemblers for the benchmark kernels ----------------------------------------

def _stripmine(n: int, max_vl: int):
    offset = 0
    while offset < n:
        yield offset, min(max_vl, n - offset)
        offset += max_vl


def assemble_copy(src: int, dst: int, n: int, max_vl: int = 256) -> list[Instr]:
    """The NCAR COPY inner loop: dst[i] = src[i], strip-mined."""
    if n < 1:
        raise ValueError(f"need at least one element, got {n}")
    program: list[Instr] = []
    for offset, vl in _stripmine(n, max_vl):
        program.append(Instr("setvl", imm=vl))
        program.append(Instr("lds", vd=0, imm=src + offset, stride=1))
        program.append(Instr("sts", vs1=0, imm=dst + offset, stride=1))
    return program


def assemble_daxpy(
    x: int, y: int, n: int, alpha: float, max_vl: int = 256
) -> list[Instr]:
    """y[i] += alpha * x[i] — the LINPACK inner loop."""
    if n < 1:
        raise ValueError(f"need at least one element, got {n}")
    program: list[Instr] = []
    for offset, vl in _stripmine(n, max_vl):
        program.append(Instr("setvl", imm=vl))
        program.append(Instr("lds", vd=0, imm=x + offset, stride=1))
        program.append(Instr("lds", vd=1, imm=y + offset, stride=1))
        program.append(Instr("vmuls", vd=2, vs1=0, imm=alpha))
        program.append(Instr("vadd", vd=3, vs1=1, vs2=2))
        program.append(Instr("sts", vs1=3, imm=y + offset, stride=1))
    return program


def assemble_gather(
    src: int, index: int, dst: int, n: int, max_vl: int = 256
) -> list[Instr]:
    """The IA inner loop: dst[i] = src[indx[i]] (list-vector load)."""
    if n < 1:
        raise ValueError(f"need at least one element, got {n}")
    program: list[Instr] = []
    for offset, vl in _stripmine(n, max_vl):
        program.append(Instr("setvl", imm=vl))
        program.append(Instr("lds", vd=1, imm=index + offset, stride=1))
        program.append(Instr("ldx", vd=0, vs2=1, imm=src))
        program.append(Instr("sts", vs1=0, imm=dst + offset, stride=1))
    return program
