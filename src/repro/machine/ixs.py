"""Internode Crossbar (IXS) and multi-node system models.

Section 2.5: up to 16 SX-4 nodes connect through the IXS, a non-blocking
fibre-channel crossbar.  Each node has one 8 GB/s input and one 8 GB/s
output channel that operate concurrently; the full 16-node system
sustains 128 GB/s of bisection bandwidth and exposes global communication
registers for cross-node synchronisation.

The paper's benchmarks all ran inside a single node, so the multi-node
model exists to (a) regenerate the architecture numbers quoted in
Section 2 (8 TB/s aggregate memory bandwidth, 128 GB/s bisection for an
SX-4/512) and (b) support the scalability *extension* experiments in
``benchmarks/ablations``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.node import Node
from repro.perfmon.collector import record as perfmon_record
from repro.perfmon.counters import declare_counters
from repro.units import GB

__all__ = ["InternodeCrossbar", "MultiNodeSystem"]

declare_counters(
    "ixs",
    (
        "transfers",
        "transfer_bytes",
        "busy_seconds",  # channel occupancy, simulated
        "barriers",
        "barrier_seconds",
    ),
)


@dataclass
class InternodeCrossbar:
    """The IXS: per-node channels plus a bisection cap."""

    channel_bytes_per_s: float = 8 * GB
    max_nodes: int = 16
    latency_s: float = 5e-6
    sync_register_latency_s: float = 1e-6

    def __post_init__(self) -> None:
        if self.channel_bytes_per_s <= 0:
            raise ValueError("channel bandwidth must be positive")
        if self.max_nodes < 2:
            raise ValueError(f"a crossbar needs >= 2 nodes, got {self.max_nodes}")
        if self.latency_s < 0 or self.sync_register_latency_s < 0:
            raise ValueError("latencies cannot be negative")

    def bisection_bytes_per_s(self, nodes: int) -> float:
        """Bisection bandwidth with ``nodes`` attached (128 GB/s at 16).

        Half the nodes send across the bisection on their output channels
        while the other half receive, and input/output channels are
        concurrent, so bisection = nodes * channel rate (8 GB/s × 16 =
        128 GB/s, matching the paper).
        """
        if not 2 <= nodes <= self.max_nodes:
            raise ValueError(f"nodes must be in [2, {self.max_nodes}], got {nodes}")
        return nodes * self.channel_bytes_per_s

    def transfer_seconds(self, nbytes: float) -> float:
        """Point-to-point transfer time between two nodes."""
        if nbytes < 0:
            raise ValueError(f"transfer size cannot be negative, got {nbytes}")
        if nbytes == 0:
            return 0.0
        seconds = self.latency_s + nbytes / self.channel_bytes_per_s
        perfmon_record(
            "ixs",
            {"transfers": 1.0, "transfer_bytes": nbytes, "busy_seconds": seconds},
        )
        return seconds

    def barrier_seconds(self, nodes: int) -> float:
        """Global synchronisation through the IXS communication registers."""
        if not 1 <= nodes <= self.max_nodes:
            raise ValueError(f"nodes must be in [1, {self.max_nodes}], got {nodes}")
        if nodes == 1:
            return 0.0
        # Fan-in/fan-out tree over the global registers.
        import math

        seconds = 2.0 * math.ceil(math.log2(nodes)) * self.sync_register_latency_s
        perfmon_record("ixs", {"barriers": 1.0, "barrier_seconds": seconds})
        return seconds


@dataclass
class MultiNodeSystem:
    """Several identical nodes on one IXS — up to the SX-4/512."""

    node: Node
    node_count: int = 16
    ixs: InternodeCrossbar = field(default_factory=InternodeCrossbar)

    def __post_init__(self) -> None:
        if not 1 <= self.node_count <= self.ixs.max_nodes:
            raise ValueError(
                f"node count must be in [1, {self.ixs.max_nodes}], got {self.node_count}"
            )

    @property
    def cpu_count(self) -> int:
        return self.node.cpu_count * self.node_count

    @property
    def peak_flops(self) -> float:
        return self.node.peak_flops * self.node_count

    @property
    def aggregate_memory_bandwidth_bytes_per_s(self) -> float:
        """Memory-to-pipeline bandwidth over all nodes (8 TB/s at 512 CPUs
        on the 8.0 ns machine; the paper rounds 16 GB/s × 512)."""
        return self.node.node_bandwidth_bytes_per_s * self.node_count

    def exchange_seconds(self, bytes_per_node: float) -> float:
        """Time for a neighbour exchange of ``bytes_per_node`` per node.

        Every node streams its data out of its 8 GB/s output channel while
        receiving on its input channel; the non-blocking crossbar imposes
        no additional serialisation.
        """
        if self.node_count == 1:
            return 0.0
        return self.ixs.transfer_seconds(bytes_per_node) + self.ixs.barrier_seconds(
            self.node_count
        )

    def alltoall_seconds(self, bytes_per_node: float) -> float:
        """Personalised all-to-all: each node sends a distinct slice of
        its ``bytes_per_node`` to every peer (the spectral transpose
        pattern).  The crossbar is non-blocking, so the n-1 rounds
        pipeline on the channels, but each round still pays the
        connection latency — which is what makes small messages (small
        problems on many nodes) latency-bound.
        """
        if bytes_per_node < 0:
            raise ValueError(f"exchange size cannot be negative, got {bytes_per_node}")
        n = self.node_count
        if n == 1 or bytes_per_node == 0:
            return 0.0
        slice_bytes = bytes_per_node / n
        per_round = self.ixs.latency_s + slice_bytes / self.ixs.channel_bytes_per_s
        return (n - 1) * per_round + self.ixs.barrier_seconds(n)
