"""Main Memory Unit model: banked SSRAM behind a non-blocking crossbar.

Section 2.2 of the paper gives the parameters this model carries:

* per-processor port of 16 GB/s into the crossbar,
* up to 1024 banks of 64-bit-wide SSRAM with a bank cycle of only two
  clocks,
* conflict-free unit-stride *and* stride-2 access guaranteed from all 32
  processors simultaneously (512 GB/s sustainable per node),
* "higher strides and list vector access benefit from the very short bank
  cycle time" — i.e. they are slower, but not catastrophically so.

The model charges memory time per vector-loop execution as::

    max(load_path_cycles, store_path_cycles)

because the SX-4 load and store paths operate concurrently.  Each path
moves ``port_words_per_cycle / 2`` words per cycle at best, degraded by a
stride factor (bank-conflict model) or a gather/scatter factor (list
vectors also pay index-vector traffic on the load path).

Multi-CPU contention: unit-stride traffic is guaranteed conflict-free, so
only strided/indexed traffic sees other processors.  The node model uses
:meth:`BankedMemory.contention_factor` for that, which is what keeps the
ensemble-test degradation (Table 6) at the ~2% level the paper reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.machine.operations import VectorOp
from repro.perfmon.counters import declare_counters

if TYPE_CHECKING:
    from repro.machine.compiled import VectorColumns

__all__ = ["BankedMemory"]

declare_counters(
    "memory",
    (
        "load_cycles",  # load-path busy cycles (as charged, incl. dilation)
        "store_cycles",  # store-path busy cycles (as charged, incl. dilation)
        "transfer_cycles",  # max(load, store) per execution — the charged time
        "bank_conflict_cycles",  # charged minus conflict-free-ideal time
        "sequential_words",
        "indexed_words",  # gathered/scattered data words
        "index_words",  # index-vector traffic (not counted as data)
    ),
)


@dataclass
class BankedMemory:
    """Banked-memory timing model for one node.

    Parameters
    ----------
    banks:
        Number of interleaved banks (1024 on a full SX-4 node).
    bank_busy_cycles:
        Bank recovery time in clocks (2 on the SX-4's SSRAM).
    port_words_per_cycle:
        Total words per cycle one processor's port can move, load and
        store paths combined (16 ≈ the 16 GB/s port at 108.7 MHz).
    stride_base_penalty:
        Crossbar/section dilation applied to any stride above 2, before
        bank conflicts are considered.
    gather_base_penalty:
        Dilation for list-vector (indexed) access.
    index_words_per_element:
        Index-vector words loaded per gathered/scattered element.
    contention_slope:
        Strength of multi-CPU bank interference on non-unit-stride
        traffic (calibrated against the Table 6 ensemble test).
    """

    banks: int = 1024
    bank_busy_cycles: float = 2.0
    port_words_per_cycle: float = 16.0
    stride_base_penalty: float = 2.0
    gather_base_penalty: float = 2.5
    index_words_per_element: float = 1.0
    contention_slope: float = 0.8
    contention_base_slope: float = 0.05

    def __post_init__(self) -> None:
        if self.banks < 1:
            raise ValueError(f"need at least one bank, got {self.banks}")
        if self.bank_busy_cycles <= 0:
            raise ValueError("bank busy time must be positive")
        if self.port_words_per_cycle <= 0:
            raise ValueError("port width must be positive")
        for value, label in (
            (self.stride_base_penalty, "stride_base_penalty"),
            (self.gather_base_penalty, "gather_base_penalty"),
        ):
            if value < 1.0:
                raise ValueError(f"{label} must be >= 1, got {value}")
        if self.index_words_per_element < 0:
            raise ValueError("index traffic cannot be negative")
        if self.contention_slope < 0 or self.contention_base_slope < 0:
            raise ValueError("contention slopes cannot be negative")

    @property
    def path_words_per_cycle(self) -> float:
        """Best-case words per cycle on the load path alone (= store path)."""
        return self.port_words_per_cycle / 2.0

    # -- stride / gather dilation ------------------------------------------
    def distinct_banks(self, stride: int) -> int:
        """How many distinct banks a constant-stride pattern cycles through.

        With ``B`` banks, stride ``s`` visits ``B / gcd(s, B)`` of them —
        the interleaved-memory classic that makes power-of-two strides the
        worst case (stride 512 on 1024 banks touches just 2 banks).
        """
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        return self.banks // math.gcd(stride, self.banks)

    def conflict_factor(self, stride: int) -> float:
        """The pure bank-conflict part of the stride dilation (>= 1).

        1.0 when the visited bank subset can still source the full path
        width given the bank busy time; above 1.0 the banks themselves are
        the bottleneck.  Strides 1 and 2 are conflict-free by hardware
        guarantee.  The static analyzer's VEC002 rule reports this factor.
        """
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        if stride in (1, 2):
            return 1.0
        sustainable = self.distinct_banks(stride) / self.bank_busy_cycles
        return max(1.0, self.path_words_per_cycle / sustainable)

    def stride_factor(self, stride: int) -> float:
        """Throughput dilation for a constant-stride access pattern.

        Stride 1 and 2 are conflict-free by hardware guarantee.  Higher
        strides pay the crossbar dilation (:attr:`stride_base_penalty`)
        times the bank-conflict term (:meth:`conflict_factor`).
        """
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        if stride in (1, 2):
            return 1.0
        return self.stride_base_penalty * self.conflict_factor(stride)

    def gather_factor(self) -> float:
        """Throughput dilation for list-vector (randomly indexed) access.

        Random bank targets collide with probability governed by the
        banks-to-busy ratio; with 1024 banks and 2-cycle busy the expected
        collision add-on is small, which is the paper's point about the
        "very short bank cycle time".
        """
        occupancy = self.path_words_per_cycle * self.bank_busy_cycles / self.banks
        return self.gather_base_penalty * (1.0 + occupancy)

    # -- per-op timing ------------------------------------------------------
    def load_cycles(self, op: VectorOp) -> float:
        """Load-path busy cycles for one execution of the loop."""
        width = self.path_words_per_cycle
        cycles = op.loads_per_element * op.length * self.stride_factor(op.load_stride) / width
        if op.gather_loads_per_element > 0:
            cycles += op.gather_loads_per_element * op.length * self.gather_factor() / width
        # Index vectors ride the load path at unit stride.
        indexed = op.gather_loads_per_element + op.scatter_stores_per_element
        if indexed > 0:
            cycles += indexed * op.length * self.index_words_per_element / width
        return cycles

    def store_cycles(self, op: VectorOp) -> float:
        """Store-path busy cycles for one execution of the loop."""
        width = self.path_words_per_cycle
        cycles = op.stores_per_element * op.length * self.stride_factor(op.store_stride) / width
        if op.scatter_stores_per_element > 0:
            cycles += op.scatter_stores_per_element * op.length * self.gather_factor() / width
        return cycles

    def transfer_cycles(self, op: VectorOp) -> float:
        """Memory time for one loop execution; load/store paths overlap."""
        return max(self.load_cycles(op), self.store_cycles(op))

    def conflict_free_cycles(self, op: VectorOp) -> float:
        """Memory time for one loop execution were every access pattern
        conflict-free (stride/gather dilations forced to 1, index-vector
        traffic still paid) — the PROGINF bank-conflict baseline."""
        width = self.path_words_per_cycle
        indexed = op.gather_loads_per_element + op.scatter_stores_per_element
        load = (op.loads_per_element + op.gather_loads_per_element) * op.length / width
        load += indexed * op.length * self.index_words_per_element / width
        store = (op.stores_per_element + op.scatter_stores_per_element) * op.length / width
        return max(load, store)

    # -- batched (columnar) timing ------------------------------------------
    # Exact-parity elementwise mirrors of the per-op methods above: the
    # stride factors come from the same scalar code (mapped over the
    # unique strides), and the conditional gather/index terms become
    # unconditional adds of an exact 0.0.
    def stride_factor_batch(self, strides: np.ndarray) -> np.ndarray:
        """Per-op stride dilation for an int64 stride column."""
        unique, inverse = np.unique(strides, return_inverse=True)
        factors = np.array(
            [self.stride_factor(int(s)) for s in unique], dtype=np.float64
        )
        return factors[inverse]

    def load_cycles_batch(self, v: "VectorColumns") -> np.ndarray:
        """Per-op load-path busy cycles for one execution of each loop."""
        width = self.path_words_per_cycle
        cycles = v.loads * v.length * self.stride_factor_batch(v.load_stride) / width
        cycles = cycles + v.gather * v.length * self.gather_factor() / width
        indexed = v.gather + v.scatter
        cycles = cycles + indexed * v.length * self.index_words_per_element / width
        return cycles

    def store_cycles_batch(self, v: "VectorColumns") -> np.ndarray:
        """Per-op store-path busy cycles for one execution of each loop."""
        width = self.path_words_per_cycle
        cycles = v.stores * v.length * self.stride_factor_batch(v.store_stride) / width
        cycles = cycles + v.scatter * v.length * self.gather_factor() / width
        return cycles

    def transfer_cycles_batch(self, v: "VectorColumns") -> np.ndarray:
        """Per-op memory time, load/store paths overlapped."""
        return np.maximum(self.load_cycles_batch(v), self.store_cycles_batch(v))

    def conflict_free_cycles_batch(self, v: "VectorColumns") -> np.ndarray:
        """Per-op conflict-free ideal memory time (dilations forced to 1)."""
        width = self.path_words_per_cycle
        indexed = v.gather + v.scatter
        load = (v.loads + v.gather) * v.length / width
        load = load + indexed * v.length * self.index_words_per_element / width
        store = (v.stores + v.scatter) * v.length / width
        return np.maximum(load, store)

    def perfmon_counters_batch(
        self, v: "VectorColumns", dilation: float = 1.0
    ) -> dict[str, float]:
        """Whole-trace counter totals from the compiled columns."""
        from repro.machine.compiled import fsum

        charged = self.transfer_cycles_batch(v) * dilation * v.count
        ideal = self.conflict_free_cycles_batch(v) * v.count
        indexed = v.gather + v.scatter
        return {
            "load_cycles": fsum(self.load_cycles_batch(v) * dilation * v.count),
            "store_cycles": fsum(self.store_cycles_batch(v) * dilation * v.count),
            "transfer_cycles": fsum(charged),
            "bank_conflict_cycles": fsum(np.maximum(0.0, charged - ideal)),
            "sequential_words": fsum(v.sequential_words * v.count),
            "indexed_words": fsum(v.indexed_words * v.count),
            "index_words": fsum(
                indexed * v.length * self.index_words_per_element * v.count
            ),
        }

    def perfmon_counters(self, op: VectorOp, dilation: float = 1.0) -> dict[str, float]:
        """Counter increments for all ``count`` executions of a loop.

        ``bank_conflict_cycles`` is the charged memory time in excess of
        the conflict-free ideal — covering stride/gather dilation *and*
        multi-CPU contention, the two things PROGINF's "bank conflict
        time" lumped together.
        """
        charged = self.transfer_cycles(op) * dilation * op.count
        ideal = self.conflict_free_cycles(op) * op.count
        indexed_per_elem = op.gather_loads_per_element + op.scatter_stores_per_element
        return {
            "load_cycles": self.load_cycles(op) * dilation * op.count,
            "store_cycles": self.store_cycles(op) * dilation * op.count,
            "transfer_cycles": charged,
            "bank_conflict_cycles": max(0.0, charged - ideal),
            "sequential_words": op.sequential_words * op.count,
            "indexed_words": op.indexed_words * op.count,
            "index_words": indexed_per_elem * op.length * self.index_words_per_element * op.count,
        }

    # -- multi-CPU behaviour -------------------------------------------------
    def contention_factor(self, active_cpus: int, irregular_fraction: float) -> float:
        """Node-level dilation of memory time when several CPUs are active.

        ``irregular_fraction`` is the fraction of the traffic that is
        strided/indexed (unit-stride is guaranteed conflict-free from all
        32 CPUs).  The model is linear in both the extra CPUs and the
        irregular fraction.  A small base slope covers the residual
        interference even unit-stride streams of *independent* jobs see
        (their access phases are unsynchronised, so the alignment behind
        the conflict-free guarantee is lost); the irregular slope covers
        bank collisions of gathered/strided traffic.  With the defaults a
        fully-gathered workload on 32 CPUs dilates ~85%, an aligned
        unit-stride one ~5%, and the CCM2 mix (SLT gathers, radiation
        table lookups, layout transposes inside mostly unit-stride
        transforms) lands at the paper's ~1.9% ensemble degradation
        (Table 6).
        """
        if active_cpus < 1:
            raise ValueError(f"active_cpus must be >= 1, got {active_cpus}")
        if not 0.0 <= irregular_fraction <= 1.0:
            raise ValueError(f"irregular_fraction must be in [0,1], got {irregular_fraction}")
        crowding = (active_cpus - 1) / 31.0
        slope = self.contention_base_slope + self.contention_slope * irregular_fraction
        return 1.0 + slope * crowding
