"""Shared-memory node model: up to 32 processors on one crossbar.

A single SX-4 node is a UMA shared-memory multiprocessor; parallel codes
in the paper (CCM2, MOM, PRODLOAD) run as multitasked jobs inside one
node.  The node model adds exactly the effects the paper's scalability
results exhibit:

* **work distribution with block imbalance** — parallel loops over
  latitudes (CCM2) or latitude rows (MOM) hand out whole rows, so a CPU
  count that does not divide the row count leaves some CPUs idle
  (:func:`block_imbalance`),
* **synchronisation cost per parallel region** — growing mildly with the
  number of CPUs (communications-register test-set style barriers),
* **serial sections** — e.g. MOM's every-10-timesteps diagnostics print,
  which is what caps its Table 7 speedup near 9× on 32 CPUs,
* **memory contention** — only on strided/indexed traffic, via
  :meth:`~repro.machine.memory.BankedMemory.contention_factor`; unit-stride
  is conflict-free from all 32 CPUs, which is why the ensemble test
  (Table 6) degrades by only ~2%.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.machine.compiled import resolve_engine
from repro.machine.operations import Trace
from repro.machine.processor import ExecutionReport, Processor
from repro.units import MEGA

__all__ = ["Node", "ParallelReport", "block_imbalance"]


def block_imbalance(units: int, cpus: int) -> float:
    """Wall-time dilation from dealing ``units`` indivisible work items
    to ``cpus`` workers in blocks: ``ceil(units/cpus) / (units/cpus)``.

    Equals 1.0 when ``cpus`` divides ``units``; equals ``cpus/units`` in the
    degenerate case of fewer items than workers.
    """
    if units < 1 or cpus < 1:
        raise ValueError(f"need positive units and cpus, got {units}, {cpus}")
    ideal = units / cpus
    actual = math.ceil(ideal)
    return actual / ideal


@dataclass
class ParallelReport:
    """Outcome of a parallel execution on a node."""

    machine: str
    trace_name: str
    cpus: int
    seconds: float
    serial_seconds: float
    parallel_seconds: float
    sync_seconds: float
    raw_flops: float
    flop_equivalents: float
    per_cpu_seconds: list[float] = field(default_factory=list)

    @property
    def mflops(self) -> float:
        if self.seconds == 0:
            return 0.0
        return self.flop_equivalents / self.seconds / MEGA

    @property
    def gflops(self) -> float:
        return self.mflops / 1e3


@dataclass
class Node:
    """A shared-memory node of ``cpu_count`` identical processors.

    ``costing`` pins the costing engine every CPU's execute routes
    through (``compiled``/``legacy``/``suitebatch``); ``None`` follows
    the process default.  All engines cost bit-identically, so the knob
    exists for bisection and for serving node sweeps from a registered
    suite stack, not for accuracy trade-offs.
    """

    processor: Processor
    cpu_count: int = 32
    sync_base_cycles: float = 300.0
    sync_per_cpu_cycles: float = 40.0
    costing: str | None = None

    def __post_init__(self) -> None:
        if self.cpu_count < 1:
            raise ValueError(f"node needs at least one CPU, got {self.cpu_count}")
        if self.processor.memory is None:
            raise ValueError("node model requires a vector processor with banked memory")
        if self.sync_base_cycles < 0 or self.sync_per_cpu_cycles < 0:
            raise ValueError("synchronisation costs cannot be negative")
        if self.costing is not None:
            resolve_engine(self.costing)  # raises on unknown engines

    @property
    def name(self) -> str:
        return f"{self.processor.name}/{self.cpu_count}"

    @property
    def peak_flops(self) -> float:
        """Aggregate peak (64 GFLOPS per node at the 8.0 ns clock)."""
        return self.processor.peak_flops * self.cpu_count

    @property
    def node_bandwidth_bytes_per_s(self) -> float:
        """Sustainable node memory bandwidth (512 GB/s for an SX-4/32)."""
        return self.processor.port_bandwidth_bytes_per_s * self.cpu_count

    def sync_seconds(self, cpus: int, regions: float) -> float:
        """Barrier cost for ``regions`` parallel regions across ``cpus``."""
        if cpus <= 1:
            return 0.0
        cycles = (self.sync_base_cycles + self.sync_per_cpu_cycles * cpus) * regions
        return self.processor.clock.seconds(cycles)

    def run_parallel(
        self,
        cpu_traces: list[Trace],
        serial: Trace | None = None,
        regions: float = 1.0,
        other_active_cpus: int = 0,
        trace_name: str | None = None,
    ) -> ParallelReport:
        """Execute one trace per CPU concurrently, plus a serial section.

        ``other_active_cpus`` models unrelated jobs sharing the node (the
        ensemble test and PRODLOAD): they raise the contention the bank
        model sees but contribute no work to this report.
        """
        if not cpu_traces:
            raise ValueError("run_parallel needs at least one per-CPU trace")
        cpus = len(cpu_traces)
        if cpus + other_active_cpus > self.cpu_count:
            raise ValueError(
                f"{cpus}+{other_active_cpus} active CPUs exceed node size {self.cpu_count}"
            )
        # Aggregate accounting comes from the per-trace caches (replicated
        # runs hand the same trace object to every CPU, so the whole scan
        # below is computed once per trace, not once per CPU count) — no
        # combined Trace is materialised.
        words = math.fsum(trace.words_moved for trace in cpu_traces)
        if words == 0:
            irregular = 0.0
        else:
            irregular = (
                math.fsum(trace.irregular_words for trace in cpu_traces) / words
            )
        assert self.processor.memory is not None  # enforced in __post_init__
        dilation = self.processor.memory.contention_factor(
            cpus + other_active_cpus, irregular
        )
        # Each execute reuses the trace's compiled columns and the
        # machine-cached cost vectors; only the dilation-dependent scale
        # is recomputed per CPU count.
        per_cpu = [
            self.processor.time(trace, memory_dilation=dilation, engine=self.costing)
            for trace in cpu_traces
        ]
        parallel_seconds = max(per_cpu)
        serial_seconds = (
            self.processor.time(serial, engine=self.costing)
            if serial is not None
            else 0.0
        )
        sync = self.sync_seconds(cpus, regions)
        total = parallel_seconds + serial_seconds + sync
        raw = math.fsum(trace.raw_flops for trace in cpu_traces) + (
            serial.raw_flops if serial is not None else 0.0
        )
        equiv = math.fsum(trace.flop_equivalents for trace in cpu_traces) + (
            serial.flop_equivalents if serial is not None else 0.0
        )
        return ParallelReport(
            machine=self.name,
            trace_name=trace_name or cpu_traces[0].name,
            cpus=cpus,
            seconds=total,
            serial_seconds=serial_seconds,
            parallel_seconds=parallel_seconds,
            sync_seconds=sync,
            raw_flops=raw,
            flop_equivalents=equiv,
            per_cpu_seconds=per_cpu,
        )

    def run_replicated(
        self, trace: Trace, cpus: int, regions: float = 1.0, other_active_cpus: int = 0
    ) -> ParallelReport:
        """Convenience: the same per-CPU trace on ``cpus`` processors."""
        return self.run_parallel(
            [trace] * cpus,
            regions=regions,
            other_active_cpus=other_active_cpus,
            trace_name=trace.name,
        )

    def run_serial(self, trace: Trace) -> ExecutionReport:
        """Single-CPU execution on an otherwise idle node."""
        return self.processor.execute(trace, engine=self.costing)
