"""Operation descriptors: the vocabulary benchmarks use to describe work.

Every benchmark in the suite has two faces: a *functional* NumPy
implementation that actually computes the answer, and a *trace builder*
that describes the same work as a sequence of operation descriptors.  The
machine model consumes traces and produces time; the descriptors therefore
carry exactly the features 1990s vector-machine performance depends on:

* vector length (startup amortisation, strip-mining),
* memory words moved per element and their strides (bank behaviour),
* gathered/scattered words (list-vector access, e.g. the IA benchmark and
  CCM2's semi-Lagrangian transport),
* intrinsic function calls (the EXP/LOG/PWR/SIN/SQRT mix that dominates
  RADABS and the CCM2 physics),
* scalar instruction overhead (loop bookkeeping, unvectorised code).

Flop accounting follows the paper's "Cray Y-MP equivalent Mflops"
convention: an intrinsic call is credited with a fixed flop-equivalent
(:data:`INTRINSIC_FLOP_EQUIV`), the way Cray's hardware performance monitor
counted library calls.  :meth:`Trace.flop_equivalents` is what the Mflops
numbers in the tables are computed from; :meth:`Trace.raw_flops` counts
only genuine adds/multiplies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import Callable, Iterable, Iterator, Mapping

__all__ = [
    "INTRINSICS",
    "INTRINSIC_FLOP_EQUIV",
    "VectorOp",
    "ScalarOp",
    "Trace",
]

#: The intrinsic functions the NCAR suite measures (Section 4.1 / RADABS).
INTRINSICS = ("exp", "log", "pwr", "sin", "sqrt", "div")

#: Flop-equivalents credited per intrinsic call, Cray-HPM style.  PWR is
#: log+exp and costs the most; DIV is a short Newton iteration on the
#: divide pipes.
INTRINSIC_FLOP_EQUIV: Mapping[str, float] = {
    "exp": 8.0,
    "log": 8.0,
    "pwr": 16.0,
    "sin": 10.0,
    "sqrt": 7.0,
    "div": 4.0,
}


def _freeze_intrinsics(calls: Mapping[str, float] | None) -> tuple[tuple[str, float], ...]:
    if not calls:
        return ()
    for name, per_elem in calls.items():
        if name not in INTRINSICS:
            raise ValueError(f"unknown intrinsic {name!r}; expected one of {INTRINSICS}")
        if per_elem < 0:
            raise ValueError(f"intrinsic call count cannot be negative: {name}={per_elem}")
    return tuple(sorted((k, float(v)) for k, v in calls.items() if v > 0))


@dataclass(frozen=True)
class VectorOp:
    """One vectorisable inner loop, executed ``count`` times.

    Parameters
    ----------
    name:
        Label for reports ("copy inner", "legendre forward", ...).
    length:
        Vector length — the trip count of the innermost (vectorised) loop.
    count:
        How many times the loop is executed (the surrounding loop nest).
    flops_per_element:
        Genuine floating-point adds/multiplies per element.
    loads_per_element / stores_per_element:
        64-bit words moved per element through the memory port, with the
        given strides (1 = contiguous; the SX-4 guarantees conflict-free
        stride 1 and 2).
    gather_loads_per_element / scatter_stores_per_element:
        Words accessed through index vectors (list-vector access).  Index
        words themselves are accounted by the memory model, matching the
        paper's note that IA bandwidth counts only the data moved.
    intrinsic_calls:
        Mapping of intrinsic name to calls per element.
    """

    name: str
    length: int
    count: float = 1.0
    flops_per_element: float = 0.0
    loads_per_element: float = 0.0
    stores_per_element: float = 0.0
    load_stride: int = 1
    store_stride: int = 1
    gather_loads_per_element: float = 0.0
    scatter_stores_per_element: float = 0.0
    intrinsic_calls: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError(f"vector length must be >= 1, got {self.length}")
        if self.count < 0:
            raise ValueError(f"count cannot be negative, got {self.count}")
        if self.load_stride < 1 or self.store_stride < 1:
            raise ValueError("strides are positive element counts")
        for value, label in (
            (self.flops_per_element, "flops_per_element"),
            (self.loads_per_element, "loads_per_element"),
            (self.stores_per_element, "stores_per_element"),
            (self.gather_loads_per_element, "gather_loads_per_element"),
            (self.scatter_stores_per_element, "scatter_stores_per_element"),
        ):
            if value < 0:
                raise ValueError(f"{label} cannot be negative, got {value}")
        object.__setattr__(
            self, "intrinsic_calls", _freeze_intrinsics(dict(self.intrinsic_calls))
        )

    @staticmethod
    def make(name: str, length: int, *, intrinsics: Mapping[str, float] | None = None, **kwargs) -> "VectorOp":
        """Convenience constructor accepting ``intrinsics`` as a dict."""
        return VectorOp(
            name=name,
            length=length,
            intrinsic_calls=_freeze_intrinsics(intrinsics),
            **kwargs,
        )

    # -- accounting -------------------------------------------------------
    # Accounting is cached (the ops are frozen, so the values can never
    # change): sweeps touch the same descriptors thousands of times, and
    # the compiled engine's derived columns replicate these expressions
    # term-for-term, so per-op values agree bitwise between engines.
    @cached_property
    def elements(self) -> float:
        """Total elements processed over all executions."""
        return self.length * self.count

    @property
    def intrinsic_calls_total(self) -> dict[str, float]:
        return {name: per * self.elements for name, per in self.intrinsic_calls}

    @cached_property
    def raw_flops(self) -> float:
        return self.flops_per_element * self.elements

    @cached_property
    def flop_equivalents(self) -> float:
        total = self.raw_flops
        for name, per in self.intrinsic_calls:
            total += INTRINSIC_FLOP_EQUIV[name] * per * self.elements
        return total

    @cached_property
    def sequential_words(self) -> float:
        """Strided (non-indexed) words per execution of the loop."""
        return (self.loads_per_element + self.stores_per_element) * self.length

    @cached_property
    def indexed_words(self) -> float:
        return (self.gather_loads_per_element + self.scatter_stores_per_element) * self.length

    @cached_property
    def words_moved(self) -> float:
        """Total data words moved over all executions (excluding indices)."""
        return (self.sequential_words + self.indexed_words) * self.count

    @cached_property
    def irregular_words(self) -> float:
        """Data words that are indexed *or* strided above 2, all executions.

        The traffic class that degrades under multi-CPU bank contention
        (see :meth:`Trace.irregular_fraction`).
        """
        irregular = self.indexed_words * self.count
        if self.load_stride > 2:
            irregular += self.loads_per_element * self.length * self.count
        if self.store_stride > 2:
            irregular += self.stores_per_element * self.length * self.count
        return irregular

    def scaled(self, factor: float) -> "VectorOp":
        """The same loop executed ``factor`` times as often."""
        if factor < 0:
            raise ValueError(f"scale factor cannot be negative, got {factor}")
        return replace(self, count=self.count * factor)


@dataclass(frozen=True)
class ScalarOp:
    """Unvectorised work: loop bookkeeping, recursion, branchy code.

    ``instructions`` is the issue-slot demand per execution; ``flops`` the
    floating-point subset of it; ``memory_words`` the words that miss the
    register file and go through the scalar cache path.
    """

    name: str
    instructions: float
    flops: float = 0.0
    memory_words: float = 0.0
    count: float = 1.0

    def __post_init__(self) -> None:
        for value, label in (
            (self.instructions, "instructions"),
            (self.flops, "flops"),
            (self.memory_words, "memory_words"),
            (self.count, "count"),
        ):
            if value < 0:
                raise ValueError(f"{label} cannot be negative, got {value}")
        if self.flops > self.instructions:
            raise ValueError("flops are a subset of instructions")

    @cached_property
    def raw_flops(self) -> float:
        return self.flops * self.count

    @property
    def flop_equivalents(self) -> float:
        return self.raw_flops

    @cached_property
    def words_moved(self) -> float:
        return self.memory_words * self.count

    def scaled(self, factor: float) -> "ScalarOp":
        if factor < 0:
            raise ValueError(f"scale factor cannot be negative, got {factor}")
        return replace(self, count=self.count * factor)


Op = VectorOp | ScalarOp


@dataclass
class Trace:
    """An ordered sequence of operation descriptors.

    Traces are the interface between benchmark code and machine models.
    They support concatenation (``+``), uniform scaling (``trace * 12`` =
    "run twelve timesteps of this"), and aggregate accounting.
    """

    ops: list[Op] = field(default_factory=list)
    name: str = "trace"

    def __post_init__(self) -> None:
        for op in self.ops:
            if not isinstance(op, (VectorOp, ScalarOp)):
                raise TypeError(f"trace entries must be VectorOp/ScalarOp, got {type(op)!r}")
        # Memo for aggregate accounting and the compiled (columnar) form.
        # ``append``/``extend`` invalidate it; mutating ``ops`` directly
        # behind the trace's back is unsupported.
        self._cache: dict[str, object] = {}

    def _cached(self, key: str, compute: Callable[[], object]) -> object:
        try:
            return self._cache[key]
        except KeyError:
            value = self._cache[key] = compute()
            return value

    def __getstate__(self) -> dict[str, object]:
        state = self.__dict__.copy()
        state["_cache"] = {}  # compiled columns are cheap to rebuild
        return state

    def __iter__(self) -> Iterator[Op]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def append(self, op: Op) -> None:
        if not isinstance(op, (VectorOp, ScalarOp)):
            raise TypeError(f"trace entries must be VectorOp/ScalarOp, got {type(op)!r}")
        self.ops.append(op)
        self._cache.clear()

    def extend(self, ops: Iterable[Op]) -> None:
        for op in ops:
            self.append(op)

    def __add__(self, other: "Trace") -> "Trace":
        return Trace(ops=self.ops + other.ops, name=self.name)

    def __mul__(self, factor: float) -> "Trace":
        return self.scaled(factor)

    __rmul__ = __mul__

    def scaled(self, factor: float) -> "Trace":
        """Every op executed ``factor`` times as often (e.g. timesteps)."""
        return Trace(ops=[op.scaled(factor) for op in self.ops], name=self.name)

    # -- aggregate accounting ---------------------------------------------
    # Aggregates are computed once per trace (invalidated on append) with
    # ``math.fsum``, whose exactly-rounded result is independent of
    # summation order — so the compiled engine's column reductions return
    # bit-identical totals.
    @property
    def raw_flops(self) -> float:
        return self._cached(
            "raw_flops", lambda: math.fsum(op.raw_flops for op in self.ops)
        )

    @property
    def flop_equivalents(self) -> float:
        return self._cached(
            "flop_equivalents",
            lambda: math.fsum(op.flop_equivalents for op in self.ops),
        )

    @property
    def words_moved(self) -> float:
        return self._cached(
            "words_moved", lambda: math.fsum(op.words_moved for op in self.ops)
        )

    @property
    def bytes_moved(self) -> float:
        return self.words_moved * 8.0

    @property
    def intrinsic_calls_total(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for op in self.ops:
            if isinstance(op, VectorOp):
                for name, calls in op.intrinsic_calls_total.items():
                    totals[name] = totals.get(name, 0.0) + calls
        return totals

    @property
    def indexed_words_total(self) -> float:
        """Data words moved via gather/scatter over the whole trace."""
        return self._cached(
            "indexed_words_total",
            lambda: math.fsum(
                op.indexed_words * op.count
                for op in self.ops
                if isinstance(op, VectorOp)
            ),
        )

    @property
    def gather_fraction(self) -> float:
        """Fraction of data words moved via gather/scatter (list vectors)."""
        total = self.words_moved
        if total == 0:
            return 0.0
        return self.indexed_words_total / total

    @property
    def irregular_words(self) -> float:
        """Data words that are indexed *or* strided above 2."""
        return self._cached(
            "irregular_words",
            lambda: math.fsum(
                op.irregular_words
                for op in self.ops
                if isinstance(op, VectorOp)
            ),
        )

    @property
    def irregular_fraction(self) -> float:
        """Fraction of data words that are indexed *or* strided above 2.

        Used by the node model to estimate multi-CPU bank contention: unit
        stride (and stride 2) is guaranteed conflict-free on the SX-4 from
        all 32 processors, so only this traffic degrades under load — the
        reason the ensemble test (Table 6) shows just 1.89% degradation.
        """
        total = self.words_moved
        if total == 0:
            return 0.0
        return self.irregular_words / total
