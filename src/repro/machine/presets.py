"""Calibrated machine instances: the SX-4 and the Table 1 comparators.

Each factory returns a fresh :class:`~repro.machine.processor.Processor`
(or :class:`~repro.machine.node.Node`) whose parameters come from two
sources:

1. **Published architecture** — clock period, pipe structure, port
   bandwidth, bank count, cache sizes.  These are taken directly from the
   paper (SX-4) or from the machines' public specifications (Y-MP 6 ns,
   J90 10 ns, SuperSPARC 75 MHz, POWER2 66 MHz).
2. **Calibration** — math-library throughputs and scalar memory costs,
   tuned so the model lands near the paper's anchor measurements: RADABS
   at 178.1 / 60.8 / 16.5 / 12.8 Mflops on Y-MP / J90 / RS6K / SPARC20
   and 865.9 Y-MP-equivalent Mflops on the SX-4/1, and the HINT MQUIPS
   rank inversion of Table 1.

The benchmarked SX-4 ran a 9.2 ns clock; :func:`sx4_processor` defaults to
that, with ``period_ns=8.0`` giving the production part.
"""

from __future__ import annotations

from repro.machine.cache import CacheModel
from repro.machine.clock import Clock
from repro.machine.memory import BankedMemory
from repro.machine.node import Node
from repro.machine.processor import Processor
from repro.machine.scalar_unit import ScalarUnit
from repro.machine.vector_unit import VectorUnit

__all__ = [
    "sx4_processor",
    "sx4_node",
    "cray_ymp",
    "cray_j90",
    "sun_sparc20",
    "ibm_rs6000_590",
    "table1_machines",
    "canonical_machines",
    "preset_processor",
    "PRESET_FACTORIES",
    "TABLE1_LABELS",
    "CANONICAL_PRESET_IDS",
    "BENCHMARK_CLOCK_NS",
    "PRODUCTION_CLOCK_NS",
]

#: Clock period of the machine benchmarked in February 1996 (Table 2).
BENCHMARK_CLOCK_NS = 9.2
#: Clock period of the production SX-4.
PRODUCTION_CLOCK_NS = 8.0


def sx4_processor(period_ns: float = BENCHMARK_CLOCK_NS) -> Processor:
    """One SX-4 CPU: 8-pipe vector unit, 16 GB/s port, 64 KB cached scalar.

    Peak is 16 flops/cycle — 1.74 GFLOPS at 9.2 ns, 2.0 GFLOPS at 8.0 ns.
    Vectorised intrinsic throughputs are calibrated so the RADABS mix
    sustains ≈866 Y-MP-equivalent Mflops on one CPU (Section 4.4).
    """
    return Processor(
        name=f"NEC SX-4 ({period_ns:g} ns)",
        clock=Clock(period_ns=period_ns),
        vector=VectorUnit(
            pipes=8,
            concurrent_sets=2,
            startup_cycles=40.0,
            register_length=256,
            stripmine_cycles=8.0,
            intrinsic_cycles_per_element={
                "sqrt": 1.5,
                "exp": 2.4,
                "log": 2.8,
                "sin": 3.2,
                "pwr": 5.6,
                "div": 1.0,
            },
        ),
        memory=BankedMemory(
            banks=1024,
            bank_busy_cycles=2.0,
            port_words_per_cycle=16.0,
            stride_base_penalty=2.0,
            gather_base_penalty=2.5,
            contention_slope=0.8,
            contention_base_slope=0.05,
        ),
        scalar=ScalarUnit(
            issue_width=2.0,
            flops_per_cycle=1.0,
            cache=CacheModel(size_bytes=64 * 1024, line_bytes=64, hit_cycles_per_word=0.5),
        ),
    )


def sx4_node(cpus: int = 32, period_ns: float = BENCHMARK_CLOCK_NS) -> Node:
    """An SX-4 single-node SMP (the paper's SX-4/32 by default)."""
    if not 1 <= cpus <= 32:
        raise ValueError(f"an SX-4 node holds 1..32 CPUs, got {cpus}")
    return Node(processor=sx4_processor(period_ns), cpu_count=cpus)


def cray_ymp() -> Processor:
    """Cray Y-MP CPU: 6 ns ECL, one add + one multiply pipe (333 Mflops).

    No data cache — scalar references see (partially pipelined) main
    memory, which is what drags its HINT score below the workstations in
    Table 1 even though RADABS loves it.
    """
    return Processor(
        name="Cray Y-MP",
        clock=Clock(period_ns=6.0),
        vector=VectorUnit(
            pipes=1,
            concurrent_sets=2,
            startup_cycles=15.0,
            register_length=64,
            stripmine_cycles=5.0,
            intrinsic_cycles_per_element={
                "sqrt": 11.0,
                "exp": 18.0,
                "log": 20.5,
                "sin": 23.0,
                "pwr": 41.0,
                "div": 5.0,
            },
        ),
        memory=BankedMemory(
            banks=256,
            bank_busy_cycles=5.0,
            port_words_per_cycle=3.0,  # two load ports + one store port
            stride_base_penalty=1.5,
            gather_base_penalty=2.0,
        ),
        scalar=ScalarUnit(
            issue_width=1.0,
            flops_per_cycle=1.0,
            # No cache: hit_cycles_per_word models pipelined memory access.
            cache=CacheModel(size_bytes=1024, line_bytes=8, hit_cycles_per_word=4.0),
        ),
    )


def cray_j90() -> Processor:
    """Cray J90 CPU: 10 ns CMOS Y-MP derivative (200 Mflops peak).

    Cheaper memory system and a slow scalar side; the paper's Table 1
    shows it at 60.8 Mflops on RADABS and only 1.7 MQUIPS on HINT.
    """
    return Processor(
        name="Cray J90",
        clock=Clock(period_ns=10.0),
        vector=VectorUnit(
            pipes=1,
            concurrent_sets=2,
            startup_cycles=25.0,
            register_length=64,
            stripmine_cycles=6.0,
            intrinsic_cycles_per_element={
                "sqrt": 24.0,
                "exp": 40.0,
                "log": 45.0,
                "sin": 51.0,
                "pwr": 90.0,
                "div": 10.0,
            },
        ),
        memory=BankedMemory(
            banks=128,
            bank_busy_cycles=6.0,
            port_words_per_cycle=2.0,
            stride_base_penalty=1.5,
            gather_base_penalty=2.0,
        ),
        scalar=ScalarUnit(
            issue_width=1.0,
            flops_per_cycle=1.0,
            cache=CacheModel(size_bytes=1024, line_bytes=8, hit_cycles_per_word=6.0),
        ),
    )


def sun_sparc20() -> Processor:
    """SUN SPARCstation 20: 75 MHz SuperSPARC, cache-based workstation."""
    return Processor(
        name="SUN SPARC20",
        clock=Clock(period_ns=1000.0 / 75.0),
        scalar=ScalarUnit(
            issue_width=2.0,
            flops_per_cycle=1.0,
            cache=CacheModel(
                size_bytes=1024 * 1024,  # 1 MB external cache
                line_bytes=32,
                hit_cycles_per_word=0.5,
                miss_latency_cycles=25.0,
                mem_words_per_cycle=0.15,
            ),
            intrinsic_cycles_per_call={
                "sqrt": 90.0,
                "exp": 170.0,
                "log": 185.0,
                "sin": 200.0,
                "pwr": 360.0,
                "div": 25.0,
            },
        ),
    )


def ibm_rs6000_590() -> Processor:
    """IBM RS6000/590: 66 MHz POWER2, fused multiply-add (264 Mflops peak),
    wide memory interface — the best scalar machine in Table 1."""
    return Processor(
        name="IBM RS6000/590",
        clock=Clock(period_ns=1000.0 / 66.0),
        scalar=ScalarUnit(
            issue_width=3.0,
            flops_per_cycle=2.0,
            cache=CacheModel(
                size_bytes=256 * 1024,
                line_bytes=256,
                hit_cycles_per_word=0.4,
                miss_latency_cycles=16.0,
                mem_words_per_cycle=0.8,
            ),
            intrinsic_cycles_per_call={
                "sqrt": 70.0,
                "exp": 130.0,
                "log": 140.0,
                "sin": 150.0,
                "pwr": 280.0,
                "div": 19.0,
            },
        ),
    )


def _sx4_production() -> Processor:
    """The production SX-4 part (8.0 ns clock)."""
    return sx4_processor(period_ns=PRODUCTION_CLOCK_NS)


#: The preset registry: stable id -> factory.  This is the single place
#: a new machine gets registered; ``table1_machines``,
#: ``canonical_machines``, :mod:`repro.faults.degraded` and
#: :mod:`repro.explore` all resolve presets through it, so adding a
#: preset is a one-line change here.
PRESET_FACTORIES = {
    "sparc20": sun_sparc20,
    "rs6k": ibm_rs6000_590,
    "j90": cray_j90,
    "ymp": cray_ymp,
    "sx4": sx4_processor,
    "sx4-production": _sx4_production,
}

#: Table 1 column labels (the paper's spellings), in paper order,
#: mapped to registry ids.
TABLE1_LABELS = {
    "SUN SPARC20": "sparc20",
    "IBM RS6K 590": "rs6k",
    "CRI J90": "j90",
    "CRI YMP": "ymp",
}

#: The six machines every exact-parity gate runs on: Table 1 plus both
#: SX-4 clocks, in registry order.
CANONICAL_PRESET_IDS = ("sparc20", "rs6k", "j90", "ymp", "sx4", "sx4-production")


def preset_processor(preset_id: str) -> Processor:
    """A fresh processor for a registry id; raises on unknown ids."""
    try:
        factory = PRESET_FACTORIES[preset_id]
    except KeyError:
        known = ", ".join(sorted(PRESET_FACTORIES))
        raise ValueError(f"unknown machine preset {preset_id!r} (known: {known})") from None
    return factory()


def table1_machines() -> dict[str, Processor]:
    """The four single-processor systems of Table 1, in paper order."""
    return {label: preset_processor(preset_id) for label, preset_id in TABLE1_LABELS.items()}


def canonical_machines() -> dict[str, Processor]:
    """The six canonical parity machines, keyed by processor name."""
    machines = {}
    for preset_id in CANONICAL_PRESET_IDS:
        processor = preset_processor(preset_id)
        machines[processor.name] = processor
    return machines
