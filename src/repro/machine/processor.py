"""Processor model: executes operation traces and reports performance.

A :class:`Processor` is a clock plus a scalar unit plus, for vector
machines, a vector unit and a banked-memory port.  ``execute`` walks a
:class:`~repro.machine.operations.Trace` and produces an
:class:`ExecutionReport` carrying wall time, Mflops (both raw and
Cray-equivalent), and sustained memory bandwidth — the three quantities
the paper's tables and figures report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.clock import Clock
from repro.machine.memory import BankedMemory
from repro.machine.operations import ScalarOp, Trace, VectorOp
from repro.machine.scalar_unit import ScalarUnit
from repro.machine.vector_unit import VectorUnit
from repro.perfmon.collector import active as perfmon_active
from repro.perfmon.collector import record as perfmon_record
from repro.perfmon.counters import declare_counters
from repro.units import MEGA

__all__ = ["Processor", "ExecutionReport"]

declare_counters(
    "processor",
    (
        "traces",
        "ops",
        "vector_ops",
        "scalar_ops",
        "cycles",
        "vector_cycles",  # cycles spent in vector-loop executions
        "scalar_cycles",
        "seconds",  # PROGINF "Real Time": cycles through this clock
    ),
)


@dataclass
class ExecutionReport:
    """Outcome of running a trace on one processor."""

    machine: str
    trace_name: str
    cycles: float
    seconds: float
    raw_flops: float
    flop_equivalents: float
    words_moved: float
    #: per-op (name, cycles) breakdown, in trace order.
    breakdown: list[tuple[str, float]] = field(default_factory=list)

    @property
    def mflops(self) -> float:
        """Sustained Mflops with intrinsic flop-equivalents (table units)."""
        if self.seconds == 0:
            return 0.0
        return self.flop_equivalents / self.seconds / MEGA

    @property
    def raw_mflops(self) -> float:
        """Sustained Mflops counting only genuine adds/multiplies."""
        if self.seconds == 0:
            return 0.0
        return self.raw_flops / self.seconds / MEGA

    @property
    def bytes_moved(self) -> float:
        return self.words_moved * 8.0

    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Sustained data bandwidth (indices excluded, as in the paper)."""
        if self.seconds == 0:
            return 0.0
        return self.bytes_moved / self.seconds

    def dominant_op(self) -> str:
        """Name of the op that consumed the most cycles (for reports)."""
        if not self.breakdown:
            return "<empty>"
        return max(self.breakdown, key=lambda item: item[1])[0]


@dataclass
class Processor:
    """One CPU: scalar unit always present, vector unit + memory optional.

    ``memory_dilation`` on :meth:`execute` lets the node model stretch this
    CPU's memory time to account for multi-CPU bank contention without
    re-deriving traces.
    """

    name: str
    clock: Clock
    scalar: ScalarUnit
    vector: VectorUnit | None = None
    memory: BankedMemory | None = None

    def __post_init__(self) -> None:
        if (self.vector is None) != (self.memory is None):
            raise ValueError(
                "vector machines need both a vector unit and a banked-memory "
                "model; cache machines need neither"
            )

    @property
    def is_vector_machine(self) -> bool:
        return self.vector is not None

    @property
    def peak_flops(self) -> float:
        """Peak flop rate in flops/s (2 Gflops for the SX-4 at 8.0 ns)."""
        if self.vector is not None:
            return self.vector.peak_flops_per_cycle * self.clock.frequency_hz
        return self.scalar.flops_per_cycle * self.clock.frequency_hz

    @property
    def port_bandwidth_bytes_per_s(self) -> float:
        """Peak memory-port bandwidth (16 GB/s per SX-4 processor)."""
        if self.memory is None:
            return self.scalar.cache.mem_words_per_cycle * 8.0 * self.clock.frequency_hz
        return self.memory.port_words_per_cycle * 8.0 * self.clock.frequency_hz

    # -- per-op timing ------------------------------------------------------
    def vector_op_cycles(self, op: VectorOp, memory_dilation: float = 1.0) -> float:
        """Total cycles for all ``count`` executions of a vector loop."""
        if memory_dilation < 1.0:
            raise ValueError(f"memory dilation cannot shrink time, got {memory_dilation}")
        if self.vector is not None and self.memory is not None:
            arithmetic = self.vector.arithmetic_cycles(op)
            memory = self.memory.transfer_cycles(op) * memory_dilation
            per_execution = self.vector.overhead_cycles(op) + max(arithmetic, memory)
        else:
            per_execution = self.scalar.vector_op_cycles(op) * memory_dilation
        return per_execution * op.count

    def scalar_op_cycles(self, op: ScalarOp) -> float:
        """Total cycles for all ``count`` executions of a scalar op."""
        return self.scalar.scalar_op_cycles(op) * op.count

    # -- perfmon instrumentation --------------------------------------------
    def _record_op(self, op: VectorOp | ScalarOp, cycles: float, dilation: float) -> None:
        """Populate the active profile's counters for one executed op.

        Each component contributes its own increments; the processor
        adds the totals PROGINF reads directly (op/cycle/second counts).
        """
        if isinstance(op, VectorOp):
            if self.vector is not None and self.memory is not None:
                perfmon_record("vector_unit", self.vector.perfmon_counters(op))
                perfmon_record("memory", self.memory.perfmon_counters(op, dilation))
            else:
                scalar, cache = self.scalar.perfmon_vector_counters(op)
                perfmon_record("scalar_unit", scalar)
                perfmon_record("cache", cache)
            kind = "vector_cycles"
            kind_ops = "vector_ops"
        else:
            scalar, cache = self.scalar.perfmon_scalar_counters(op)
            perfmon_record("scalar_unit", scalar)
            perfmon_record("cache", cache)
            kind = "scalar_cycles"
            kind_ops = "scalar_ops"
        perfmon_record(
            "processor",
            {
                "ops": 1.0,
                kind_ops: 1.0,
                "cycles": cycles,
                kind: cycles,
                "seconds": self.clock.seconds(cycles),
            },
        )

    # -- trace execution ------------------------------------------------------
    def execute(self, trace: Trace, memory_dilation: float = 1.0) -> ExecutionReport:
        """Run a trace to completion and report time and rates.

        When a :mod:`repro.perfmon` profile is active, every component
        that times an op also populates its counters — this is the
        "counter emulation" layer of the observability subsystem.
        """
        breakdown: list[tuple[str, float]] = []
        total_cycles = 0.0
        profiling = perfmon_active() is not None
        if profiling:
            perfmon_record("processor", {"traces": 1.0})
        for op in trace:
            if isinstance(op, VectorOp):
                cycles = self.vector_op_cycles(op, memory_dilation)
            else:
                cycles = self.scalar_op_cycles(op)
            if profiling:
                self._record_op(op, cycles, memory_dilation)
            breakdown.append((op.name, cycles))
            total_cycles += cycles
        return ExecutionReport(
            machine=self.name,
            trace_name=trace.name,
            cycles=total_cycles,
            seconds=self.clock.seconds(total_cycles),
            raw_flops=trace.raw_flops,
            flop_equivalents=trace.flop_equivalents,
            words_moved=trace.words_moved,
            breakdown=breakdown,
        )

    def time(self, trace: Trace, memory_dilation: float = 1.0) -> float:
        """Shorthand: wall-clock seconds for a trace."""
        return self.execute(trace, memory_dilation).seconds
