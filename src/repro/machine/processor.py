"""Processor model: executes operation traces and reports performance.

A :class:`Processor` is a clock plus a scalar unit plus, for vector
machines, a vector unit and a banked-memory port.  ``execute`` walks a
:class:`~repro.machine.operations.Trace` and produces an
:class:`ExecutionReport` carrying wall time, Mflops (both raw and
Cray-equivalent), and sustained memory bandwidth — the three quantities
the paper's tables and figures report.

Two costing engines produce that report:

* ``"compiled"`` (the default) lowers the trace to structure-of-arrays
  columns (:mod:`repro.machine.compiled`) and costs every op with the
  components' ``*_cycles_batch`` methods — a handful of NumPy
  expressions regardless of trace length;
* ``"legacy"`` walks the trace one descriptor at a time through the
  per-op methods — the reference the batched path is verified against.

Both engines compute bit-identical per-op cycle counts (the batched
expressions replicate the per-op arithmetic exactly) and both reduce
totals with :func:`math.fsum`, so the resulting reports are equal, not
merely close.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.machine.clock import Clock
from repro.machine.compiled import CompiledTrace, compile_trace, fsum, resolve_engine
from repro.machine.memory import BankedMemory
from repro.machine.operations import ScalarOp, Trace, VectorOp
from repro.machine.scalar_unit import ScalarUnit
from repro.machine.vector_unit import VectorUnit
from repro.perfmon.collector import active as perfmon_active
from repro.perfmon.collector import record as perfmon_record
from repro.perfmon.counters import declare_counters
from repro.units import MEGA

__all__ = ["Processor", "ExecutionReport"]

declare_counters(
    "processor",
    (
        "traces",
        "ops",
        "vector_ops",
        "scalar_ops",
        "cycles",
        "vector_cycles",  # cycles spent in vector-loop executions
        "scalar_cycles",
        "seconds",  # PROGINF "Real Time": cycles through this clock
    ),
)

_EMPTY_CYCLES = np.zeros(0, dtype=np.float64)


@dataclass
class ExecutionReport:
    """Outcome of running a trace on one processor.

    ``op_names``/``op_cycles`` carry the per-op cycle columns in trace
    order (``op_names`` is shared with the compiled trace, ``op_cycles``
    is the engine's cycle vector), so :meth:`dominant_op` is an argmax
    over a column rather than a walk over Python tuples.  The
    ``breakdown`` list of ``(name, cycles)`` pairs is only materialised
    when ``execute(..., breakdown=True)`` asked for it — sweeps that
    never read it skip the per-op list allocation entirely.
    """

    machine: str
    trace_name: str
    cycles: float
    seconds: float
    raw_flops: float
    flop_equivalents: float
    words_moved: float
    engine: str = field(default="legacy", compare=False)
    op_names: tuple[str, ...] = field(default=(), repr=False, compare=False)
    #: per-op cycles in trace order (ndarray or tuple), parallel to op_names.
    op_cycles: object = field(default=(), repr=False, compare=False)
    has_breakdown: bool = field(default=False, repr=False, compare=False)

    @property
    def breakdown(self) -> list[tuple[str, float]]:
        """Per-op (name, cycles) pairs; empty unless requested at execute."""
        if not self.has_breakdown:
            return []
        return [
            (name, float(cycles))
            for name, cycles in zip(self.op_names, self.op_cycles)
        ]

    @property
    def mflops(self) -> float:
        """Sustained Mflops with intrinsic flop-equivalents (table units)."""
        if self.seconds == 0:
            return 0.0
        return self.flop_equivalents / self.seconds / MEGA

    @property
    def raw_mflops(self) -> float:
        """Sustained Mflops counting only genuine adds/multiplies."""
        if self.seconds == 0:
            return 0.0
        return self.raw_flops / self.seconds / MEGA

    @property
    def bytes_moved(self) -> float:
        return self.words_moved * 8.0

    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Sustained data bandwidth (indices excluded, as in the paper)."""
        if self.seconds == 0:
            return 0.0
        return self.bytes_moved / self.seconds

    def dominant_op(self) -> str:
        """Name of the op that consumed the most cycles (for reports).

        Works from the cycle column regardless of whether the
        ``breakdown`` list was requested.
        """
        n = len(self.op_names)
        if n == 0:
            return "<empty>"
        cycles = self.op_cycles
        if isinstance(cycles, np.ndarray):
            return self.op_names[int(np.argmax(cycles))]
        return self.op_names[max(range(n), key=cycles.__getitem__)]


@dataclass
class Processor:
    """One CPU: scalar unit always present, vector unit + memory optional.

    ``memory_dilation`` on :meth:`execute` lets the node model stretch this
    CPU's memory time to account for multi-CPU bank contention without
    re-deriving traces.
    """

    name: str
    clock: Clock
    scalar: ScalarUnit
    vector: VectorUnit | None = None
    memory: BankedMemory | None = None

    def __post_init__(self) -> None:
        if (self.vector is None) != (self.memory is None):
            raise ValueError(
                "vector machines need both a vector unit and a banked-memory "
                "model; cache machines need neither"
            )

    @property
    def is_vector_machine(self) -> bool:
        return self.vector is not None

    @property
    def peak_flops(self) -> float:
        """Peak flop rate in flops/s (2 Gflops for the SX-4 at 8.0 ns)."""
        if self.vector is not None:
            return self.vector.peak_flops_per_cycle * self.clock.frequency_hz
        return self.scalar.flops_per_cycle * self.clock.frequency_hz

    @property
    def port_bandwidth_bytes_per_s(self) -> float:
        """Peak memory-port bandwidth (16 GB/s per SX-4 processor)."""
        if self.memory is None:
            return self.scalar.cache.mem_words_per_cycle * 8.0 * self.clock.frequency_hz
        return self.memory.port_words_per_cycle * 8.0 * self.clock.frequency_hz

    # -- per-op timing ------------------------------------------------------
    def vector_op_cycles(self, op: VectorOp, memory_dilation: float = 1.0) -> float:
        """Total cycles for all ``count`` executions of a vector loop."""
        if memory_dilation < 1.0:
            raise ValueError(f"memory dilation cannot shrink time, got {memory_dilation}")
        if self.vector is not None and self.memory is not None:
            arithmetic = self.vector.arithmetic_cycles(op)
            memory = self.memory.transfer_cycles(op) * memory_dilation
            per_execution = self.vector.overhead_cycles(op) + max(arithmetic, memory)
        else:
            per_execution = self.scalar.vector_op_cycles(op) * memory_dilation
        return per_execution * op.count

    def scalar_op_cycles(self, op: ScalarOp) -> float:
        """Total cycles for all ``count`` executions of a scalar op."""
        return self.scalar.scalar_op_cycles(op) * op.count

    # -- batched (columnar) timing ------------------------------------------
    def vector_op_cycles_batch(
        self, compiled: CompiledTrace, memory_dilation: float = 1.0
    ) -> np.ndarray:
        """Per-op totals of :meth:`vector_op_cycles` over the vector columns.

        The dilation-independent columns (arithmetic, startup overhead,
        undilated memory time) are memoised on the compiled trace per
        component set, so a dilation sweep recomputes only one scale and
        one elementwise max per point.
        """
        if memory_dilation < 1.0:
            raise ValueError(f"memory dilation cannot shrink time, got {memory_dilation}")
        v = compiled.vector
        if self.vector is not None and self.memory is not None:
            cache = compiled.machine_cache(self.vector, self.memory)
            arithmetic = cache.get("arithmetic")
            if arithmetic is None:
                arithmetic = cache["arithmetic"] = self.vector.arithmetic_cycles_batch(v)
                cache["overhead"] = self.vector.overhead_cycles_batch(v)
                cache["transfer"] = self.memory.transfer_cycles_batch(v)
            memory = cache["transfer"] * memory_dilation
            per_execution = cache["overhead"] + np.maximum(arithmetic, memory)
        else:
            cache = compiled.machine_cache(self.scalar)
            per_execution = cache.get("scalar_vector")
            if per_execution is None:
                per_execution = cache["scalar_vector"] = self.scalar.vector_op_cycles_batch(v)
            per_execution = per_execution * memory_dilation
        return per_execution * v.count

    def scalar_op_cycles_batch(self, compiled: CompiledTrace) -> np.ndarray:
        """Per-op totals of :meth:`scalar_op_cycles` over the scalar columns."""
        s = compiled.scalar
        cache = compiled.machine_cache(self.scalar)
        per_execution = cache.get("scalar_op")
        if per_execution is None:
            per_execution = cache["scalar_op"] = self.scalar.scalar_op_cycles_batch(s)
        return per_execution * s.count

    # -- perfmon instrumentation --------------------------------------------
    def _record_op(self, op: VectorOp | ScalarOp, cycles: float, dilation: float) -> None:
        """Populate the active profile's counters for one executed op.

        Each component contributes its own increments; the processor
        adds the totals PROGINF reads directly (op/cycle/second counts).
        """
        if isinstance(op, VectorOp):
            if self.vector is not None and self.memory is not None:
                perfmon_record("vector_unit", self.vector.perfmon_counters(op))
                perfmon_record("memory", self.memory.perfmon_counters(op, dilation))
            else:
                scalar, cache = self.scalar.perfmon_vector_counters(op)
                perfmon_record("scalar_unit", scalar)
                perfmon_record("cache", cache)
            kind = "vector_cycles"
            kind_ops = "vector_ops"
        else:
            scalar, cache = self.scalar.perfmon_scalar_counters(op)
            perfmon_record("scalar_unit", scalar)
            perfmon_record("cache", cache)
            kind = "scalar_cycles"
            kind_ops = "scalar_ops"
        perfmon_record(
            "processor",
            {
                "ops": 1.0,
                kind_ops: 1.0,
                "cycles": cycles,
                kind: cycles,
                "seconds": self.clock.seconds(cycles),
            },
        )

    def _record_trace_batch(
        self,
        compiled: CompiledTrace,
        op_cycles: np.ndarray,
        vector_cycles: np.ndarray,
        scalar_cycles: np.ndarray,
        dilation: float,
    ) -> None:
        """Populate the active profile's counters from column reductions.

        Produces the same totals as calling :meth:`_record_op` for every
        op (modulo exactly-rounded vs sequential accumulation), with one
        record per component instead of one per op.
        """
        v, s = compiled.vector, compiled.scalar
        if v.n:
            if self.vector is not None and self.memory is not None:
                perfmon_record("vector_unit", self.vector.perfmon_counters_batch(v))
                perfmon_record("memory", self.memory.perfmon_counters_batch(v, dilation))
            else:
                scalar, cache = self.scalar.perfmon_vector_counters_batch(v)
                perfmon_record("scalar_unit", scalar)
                perfmon_record("cache", cache)
        if s.n:
            scalar, cache = self.scalar.perfmon_scalar_counters_batch(s)
            perfmon_record("scalar_unit", scalar)
            perfmon_record("cache", cache)
        # Record only the op kinds that occurred, matching the key set the
        # per-op path produces (profile diffs compare dict shapes too).
        increments = {
            "ops": float(compiled.n_ops),
            "cycles": fsum(op_cycles),
            "seconds": fsum(op_cycles * self.clock.period_s),
        }
        if v.n:
            increments["vector_ops"] = float(v.n)
            increments["vector_cycles"] = fsum(vector_cycles)
        if s.n:
            increments["scalar_ops"] = float(s.n)
            increments["scalar_cycles"] = fsum(scalar_cycles)
        perfmon_record("processor", increments)

    # -- trace execution ------------------------------------------------------
    def execute(
        self,
        trace: Trace,
        memory_dilation: float = 1.0,
        *,
        engine: str | None = None,
        breakdown: bool = False,
    ) -> ExecutionReport:
        """Run a trace to completion and report time and rates.

        ``engine`` selects the costing path: ``"compiled"`` (columnar,
        the process default), ``"legacy"`` (per-op reference), or
        ``"suitebatch"`` (serve member traces from the registered
        whole-suite fused pass, compiled fallback otherwise); all
        return equal reports.  ``breakdown=True`` additionally
        materialises the per-op ``(name, cycles)`` list.

        When a :mod:`repro.perfmon` profile is active, every component
        that times an op also populates its counters — this is the
        "counter emulation" layer of the observability subsystem.
        """
        engine = resolve_engine(engine)
        if engine == "compiled":
            return self._execute_compiled(trace, memory_dilation, breakdown)
        if engine == "suitebatch":
            return self._execute_suitebatch(trace, memory_dilation, breakdown)
        return self._execute_legacy(trace, memory_dilation, breakdown)

    def _execute_suitebatch(
        self, trace: Trace, memory_dilation: float, breakdown: bool
    ) -> ExecutionReport:
        """Serve a member trace from the fused whole-suite pass.

        If ``trace`` belongs to the process-registered
        :class:`~repro.machine.suitebatch.SuiteColumns` stack, the whole
        suite is costed in one batched kernel pass (memoised per
        machine and dilation) and this trace's segment becomes the
        report.  Non-member traces fall back to the compiled path —
        reports are bit-identical either way, the fallback's ``engine``
        field just says which path actually ran.  The registry is only
        *read* here: the engine's pool-worker job path must not mutate
        module globals (DET005), so workers adopt shared stacks in the
        pool initializer instead.
        """
        from repro.machine import suitebatch

        suite = suitebatch.registered_suite()
        position = None if suite is None else suite.position_of(trace)
        if position is None:
            return self._execute_compiled(trace, memory_dilation, breakdown)
        vector_cycles, scalar_cycles, op_cycles, total_cycles = (
            suitebatch.trace_cycles(self, suite, position, memory_dilation)
        )
        view = suite.trace_view(position)
        if perfmon_active() is not None:
            perfmon_record("processor", {"traces": 1.0})
            if view.n_ops:
                self._record_trace_batch(
                    view, op_cycles, vector_cycles, scalar_cycles, memory_dilation
                )
        raw_flops, flop_equivalents, words_moved = suite.trace_totals(position)
        return ExecutionReport(
            machine=self.name,
            trace_name=trace.name,
            cycles=total_cycles,
            seconds=self.clock.seconds(total_cycles),
            raw_flops=raw_flops,
            flop_equivalents=flop_equivalents,
            words_moved=words_moved,
            engine="suitebatch",
            op_names=view.names,
            op_cycles=op_cycles,
            has_breakdown=breakdown,
        )

    def _execute_compiled(
        self, trace: Trace, memory_dilation: float, breakdown: bool
    ) -> ExecutionReport:
        compiled = compile_trace(trace)
        v, s = compiled.vector, compiled.scalar
        # The fully-combined cost columns are themselves memoised per
        # (components, dilation), so re-costing the same trace on the
        # same machine — the sweep and table-regeneration steady state —
        # is a dictionary lookup plus report construction.  Invalid
        # dilations raise before anything is cached, so validation still
        # fires on every call.  The cached arrays are shared with the
        # returned report; treat ``ExecutionReport.op_cycles`` as
        # read-only.
        cache = compiled.machine_cache(self.vector, self.memory, self.scalar)
        key = f"cost@{float(memory_dilation)!r}"
        entry = cache.get(key)
        if entry is None:
            vector_cycles = (
                self.vector_op_cycles_batch(compiled, memory_dilation)
                if v.n
                else _EMPTY_CYCLES
            )
            scalar_cycles = (
                self.scalar_op_cycles_batch(compiled) if s.n else _EMPTY_CYCLES
            )
            op_cycles = compiled.scatter_cycles(vector_cycles, scalar_cycles)
            entry = cache[key] = (
                vector_cycles, scalar_cycles, op_cycles, fsum(op_cycles)
            )
        vector_cycles, scalar_cycles, op_cycles, total_cycles = entry
        if perfmon_active() is not None:
            perfmon_record("processor", {"traces": 1.0})
            if compiled.n_ops:
                self._record_trace_batch(
                    compiled, op_cycles, vector_cycles, scalar_cycles, memory_dilation
                )
        return ExecutionReport(
            machine=self.name,
            trace_name=trace.name,
            cycles=total_cycles,
            seconds=self.clock.seconds(total_cycles),
            raw_flops=compiled.raw_flops_total(),
            flop_equivalents=compiled.flop_equivalents_total(),
            words_moved=compiled.words_moved_total(),
            engine="compiled",
            op_names=compiled.names,
            op_cycles=op_cycles,
            has_breakdown=breakdown,
        )

    def _execute_legacy(
        self, trace: Trace, memory_dilation: float, breakdown: bool
    ) -> ExecutionReport:
        op_names: list[str] = []
        op_cycles: list[float] = []
        profiling = perfmon_active() is not None
        if profiling:
            perfmon_record("processor", {"traces": 1.0})
        for op in trace:
            if isinstance(op, VectorOp):
                cycles = self.vector_op_cycles(op, memory_dilation)
            else:
                cycles = self.scalar_op_cycles(op)
            if profiling:
                self._record_op(op, cycles, memory_dilation)
            op_names.append(op.name)
            op_cycles.append(cycles)
        total_cycles = math.fsum(op_cycles)
        return ExecutionReport(
            machine=self.name,
            trace_name=trace.name,
            cycles=total_cycles,
            seconds=self.clock.seconds(total_cycles),
            raw_flops=trace.raw_flops,
            flop_equivalents=trace.flop_equivalents,
            words_moved=trace.words_moved,
            engine="legacy",
            op_names=tuple(op_names),
            op_cycles=tuple(op_cycles),
            has_breakdown=breakdown,
        )

    def time(
        self, trace: Trace, memory_dilation: float = 1.0, *, engine: str | None = None
    ) -> float:
        """Shorthand: wall-clock seconds for a trace."""
        return self.execute(trace, memory_dilation, engine=engine).seconds
