"""Processor model: executes operation traces and reports performance.

A :class:`Processor` is a clock plus a scalar unit plus, for vector
machines, a vector unit and a banked-memory port.  ``execute`` walks a
:class:`~repro.machine.operations.Trace` and produces an
:class:`ExecutionReport` carrying wall time, Mflops (both raw and
Cray-equivalent), and sustained memory bandwidth — the three quantities
the paper's tables and figures report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.clock import Clock
from repro.machine.memory import BankedMemory
from repro.machine.operations import ScalarOp, Trace, VectorOp
from repro.machine.scalar_unit import ScalarUnit
from repro.machine.vector_unit import VectorUnit
from repro.units import MEGA

__all__ = ["Processor", "ExecutionReport"]


@dataclass
class ExecutionReport:
    """Outcome of running a trace on one processor."""

    machine: str
    trace_name: str
    cycles: float
    seconds: float
    raw_flops: float
    flop_equivalents: float
    words_moved: float
    #: per-op (name, cycles) breakdown, in trace order.
    breakdown: list[tuple[str, float]] = field(default_factory=list)

    @property
    def mflops(self) -> float:
        """Sustained Mflops with intrinsic flop-equivalents (table units)."""
        if self.seconds == 0:
            return 0.0
        return self.flop_equivalents / self.seconds / MEGA

    @property
    def raw_mflops(self) -> float:
        """Sustained Mflops counting only genuine adds/multiplies."""
        if self.seconds == 0:
            return 0.0
        return self.raw_flops / self.seconds / MEGA

    @property
    def bytes_moved(self) -> float:
        return self.words_moved * 8.0

    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Sustained data bandwidth (indices excluded, as in the paper)."""
        if self.seconds == 0:
            return 0.0
        return self.bytes_moved / self.seconds

    def dominant_op(self) -> str:
        """Name of the op that consumed the most cycles (for reports)."""
        if not self.breakdown:
            return "<empty>"
        return max(self.breakdown, key=lambda item: item[1])[0]


@dataclass
class Processor:
    """One CPU: scalar unit always present, vector unit + memory optional.

    ``memory_dilation`` on :meth:`execute` lets the node model stretch this
    CPU's memory time to account for multi-CPU bank contention without
    re-deriving traces.
    """

    name: str
    clock: Clock
    scalar: ScalarUnit
    vector: VectorUnit | None = None
    memory: BankedMemory | None = None

    def __post_init__(self) -> None:
        if (self.vector is None) != (self.memory is None):
            raise ValueError(
                "vector machines need both a vector unit and a banked-memory "
                "model; cache machines need neither"
            )

    @property
    def is_vector_machine(self) -> bool:
        return self.vector is not None

    @property
    def peak_flops(self) -> float:
        """Peak flop rate in flops/s (2 Gflops for the SX-4 at 8.0 ns)."""
        if self.vector is not None:
            return self.vector.peak_flops_per_cycle * self.clock.frequency_hz
        return self.scalar.flops_per_cycle * self.clock.frequency_hz

    @property
    def port_bandwidth_bytes_per_s(self) -> float:
        """Peak memory-port bandwidth (16 GB/s per SX-4 processor)."""
        if self.memory is None:
            return self.scalar.cache.mem_words_per_cycle * 8.0 * self.clock.frequency_hz
        return self.memory.port_words_per_cycle * 8.0 * self.clock.frequency_hz

    # -- per-op timing ------------------------------------------------------
    def vector_op_cycles(self, op: VectorOp, memory_dilation: float = 1.0) -> float:
        """Total cycles for all ``count`` executions of a vector loop."""
        if memory_dilation < 1.0:
            raise ValueError(f"memory dilation cannot shrink time, got {memory_dilation}")
        if self.vector is not None and self.memory is not None:
            arithmetic = self.vector.arithmetic_cycles(op)
            memory = self.memory.transfer_cycles(op) * memory_dilation
            per_execution = self.vector.overhead_cycles(op) + max(arithmetic, memory)
        else:
            per_execution = self.scalar.vector_op_cycles(op) * memory_dilation
        return per_execution * op.count

    def scalar_op_cycles(self, op: ScalarOp) -> float:
        """Total cycles for all ``count`` executions of a scalar op."""
        return self.scalar.scalar_op_cycles(op) * op.count

    # -- trace execution ------------------------------------------------------
    def execute(self, trace: Trace, memory_dilation: float = 1.0) -> ExecutionReport:
        """Run a trace to completion and report time and rates."""
        breakdown: list[tuple[str, float]] = []
        total_cycles = 0.0
        for op in trace:
            if isinstance(op, VectorOp):
                cycles = self.vector_op_cycles(op, memory_dilation)
            else:
                cycles = self.scalar_op_cycles(op)
            breakdown.append((op.name, cycles))
            total_cycles += cycles
        return ExecutionReport(
            machine=self.name,
            trace_name=trace.name,
            cycles=total_cycles,
            seconds=self.clock.seconds(total_cycles),
            raw_flops=trace.raw_flops,
            flop_equivalents=trace.flop_equivalents,
            words_moved=trace.words_moved,
            breakdown=breakdown,
        )

    def time(self, trace: Trace, memory_dilation: float = 1.0) -> float:
        """Shorthand: wall-clock seconds for a trace."""
        return self.execute(trace, memory_dilation).seconds
