"""Scalar (superscalar) unit model.

Section 2.1: the SX-4 scalar unit is a superscalar RISC processor with
64 KB data and instruction caches that issues up to two instructions per
clock, with branch prediction and out-of-order execution.  All vector
instructions are also issued by this unit (most in two clocks), which is
why vector-loop startup ends up charged against the scalar side in real
codes — our model folds that into :class:`~repro.machine.vector_unit.VectorUnit`
startup and uses the scalar unit for genuinely unvectorised work:

* :class:`~repro.machine.operations.ScalarOp` descriptors (loop
  bookkeeping, diagnostics, recursion),
* whole :class:`~repro.machine.operations.VectorOp` loops on machines with
  no vector unit (the SPARC20 / RS6000 comparators), where each element is
  processed at superscalar rates through the cache model,
* scalar intrinsic calls (the workstation math library, at hundreds of
  cycles per call — the reason RADABS runs at ~13–17 Mflops on the
  workstations of Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.machine.cache import CacheModel
from repro.machine.operations import INTRINSICS, ScalarOp, VectorOp
from repro.perfmon.counters import declare_counters

if TYPE_CHECKING:
    from repro.machine.compiled import ScalarColumns, VectorColumns

__all__ = ["ScalarUnit"]

declare_counters(
    "scalar_unit",
    (
        "ex_cycles",  # cycles spent executing on the scalar unit
        "instructions",  # PROGINF "Inst. Count" (scalar issue slots)
        "flops",
        "flop_equivalents",
        "memory_words",
        "intrinsic_calls",  # scalar (libm-style) intrinsic calls
    ),
)


def _default_scalar_intrinsic_cycles() -> dict[str, float]:
    # Scalar math-library costs in cycles per call; typical of mid-1990s
    # libm implementations (polynomial kernels plus range reduction).
    return {
        "sqrt": 60.0,
        "exp": 120.0,
        "log": 130.0,
        "sin": 140.0,
        "pwr": 250.0,
        "div": 20.0,
    }


@dataclass
class ScalarUnit:
    """Issue-limited superscalar model with an attached data cache."""

    issue_width: float = 2.0
    flops_per_cycle: float = 1.0
    cache: CacheModel = field(default_factory=CacheModel)
    loop_overhead_instructions: float = 6.0
    intrinsic_cycles_per_call: Mapping[str, float] = field(
        default_factory=_default_scalar_intrinsic_cycles
    )

    def __post_init__(self) -> None:
        if self.issue_width <= 0:
            raise ValueError(f"issue width must be positive, got {self.issue_width}")
        if self.flops_per_cycle <= 0:
            raise ValueError(f"flop rate must be positive, got {self.flops_per_cycle}")
        if self.loop_overhead_instructions < 0:
            raise ValueError("loop overhead cannot be negative")
        missing = [f for f in INTRINSICS if f not in self.intrinsic_cycles_per_call]
        if missing:
            raise ValueError(f"scalar intrinsic cost table missing entries for {missing}")

    def scalar_op_cycles(self, op: ScalarOp) -> float:
        """Cycles for one execution of a ScalarOp (excluding ``count``).

        Issue, floating-point pipe and memory time are summed rather than
        overlapped: scalar benchmark loops (HINT's subdivision scan, MOM's
        diagnostics) are branchy and dependence-chained, which defeats the
        overlap a superscalar core achieves on straight-line code.
        """
        issue = op.instructions / self.issue_width
        fp = op.flops / self.flops_per_cycle
        memory = op.memory_words * self.cache.hit_cycles_per_word
        return issue + fp + memory

    def vector_op_cycles(self, op: VectorOp) -> float:
        """Cycles for one execution of a VectorOp run as a scalar loop.

        Used on cache-based machines.  Each element pays issue-limited
        arithmetic, cache-modelled memory references, scalar intrinsic
        calls, and a per-iteration loop overhead (partially hidden by
        superscalar issue, hence charged at the issue rate).
        """
        words_per_elem = op.loads_per_element + op.stores_per_element
        indexed_per_elem = op.gather_loads_per_element + op.scatter_stores_per_element
        working_set = (
            (op.loads_per_element * op.load_stride + op.stores_per_element * op.store_stride)
            * op.length
            * 8.0
        )
        stride = max(op.load_stride, op.store_stride)
        mem_cycles = words_per_elem * self.cache.cycles_per_word(stride, working_set)
        if indexed_per_elem > 0:
            # Indexed access on a cache machine is usually a *small-table*
            # lookup (radiation band tables, interpolation stencils): the
            # table stays resident, so each reference costs a hit plus the
            # index address computation — not a streaming miss.
            mem_cycles += indexed_per_elem * 2.0 * self.cache.hit_cycles_per_word
        flop_cycles = op.flops_per_element / self.flops_per_cycle
        loop_cycles = self.loop_overhead_instructions / self.issue_width
        intrinsic_cycles = sum(
            calls * self.intrinsic_cycles_per_call[name] for name, calls in op.intrinsic_calls
        )
        per_element = max(flop_cycles, mem_cycles) + loop_cycles + intrinsic_cycles
        return op.length * per_element

    # -- batched (columnar) timing ------------------------------------------
    def scalar_op_cycles_batch(self, s: "ScalarColumns") -> np.ndarray:
        """Per-op cycles for one execution of each ScalarOp."""
        issue = s.instructions / self.issue_width
        fp = s.flops / self.flops_per_cycle
        memory = s.memory_words * self.cache.hit_cycles_per_word
        return issue + fp + memory

    def vector_op_cycles_batch(self, v: "VectorColumns") -> np.ndarray:
        """Per-op cycles for VectorOps run as scalar loops (cache machines).

        Elementwise mirror of :meth:`vector_op_cycles`; the conditional
        small-table term becomes an unconditional add of an exact 0.0.
        """
        words_per_elem = v.loads + v.stores
        indexed_per_elem = v.gather + v.scatter
        working_set = (v.loads * v.load_stride + v.stores * v.store_stride) * v.length * 8.0
        stride = np.maximum(v.load_stride, v.store_stride)
        mem_cycles = words_per_elem * self.cache.cycles_per_word_batch(stride, working_set)
        mem_cycles = mem_cycles + indexed_per_elem * 2.0 * self.cache.hit_cycles_per_word
        flop_cycles = v.flops / self.flops_per_cycle
        loop_cycles = self.loop_overhead_instructions / self.issue_width
        intrinsic_cycles = np.zeros(v.n, dtype=np.float64)
        for column, name in enumerate(sorted(INTRINSICS)):
            rate = self.intrinsic_cycles_per_call[name]
            intrinsic_cycles = intrinsic_cycles + v.intrinsics[:, column] * rate
        per_element = np.maximum(flop_cycles, mem_cycles) + loop_cycles + intrinsic_cycles
        return v.length * per_element

    def perfmon_scalar_counters_batch(
        self, s: "ScalarColumns"
    ) -> tuple[dict[str, float], dict[str, float]]:
        """Whole-trace (scalar_unit, cache) totals for the ScalarOp columns."""
        from repro.machine.compiled import fsum

        scalar = {
            "ex_cycles": fsum(self.scalar_op_cycles_batch(s) * s.count),
            "instructions": fsum(s.instructions * s.count),
            "flops": fsum(s.raw_flops),
            "flop_equivalents": fsum(s.raw_flops),
            "memory_words": fsum(s.words_moved),
        }
        # Scalar references are register/cache-resident by construction.
        words = fsum(s.words_moved)
        cache = {
            "ref_words": words,
            "hit_words": words,
            "miss_words": 0.0,
            "miss_cycles": 0.0,
        }
        return scalar, cache

    def perfmon_vector_counters_batch(
        self, v: "VectorColumns"
    ) -> tuple[dict[str, float], dict[str, float]]:
        """Whole-trace (scalar_unit, cache) totals for VectorOps run as
        scalar loops on a cache machine."""
        from repro.machine.compiled import fsum

        working_set = (v.loads * v.load_stride + v.stores * v.store_stride) * v.length * 8.0
        stride = np.maximum(v.load_stride, v.store_stride)
        words = (v.loads + v.stores) * v.elements
        rate = self.cache.miss_rate_batch(stride, working_set)
        misses = words * rate
        idx_words = (v.gather + v.scatter) * v.elements  # resident small tables
        scalar = {
            "ex_cycles": fsum(self.vector_op_cycles_batch(v) * v.count),
            "instructions": fsum(
                (v.flops + self.loop_overhead_instructions) * v.elements
            ),
            "flops": fsum(v.raw_flops),
            "flop_equivalents": fsum(v.flop_equivalents),
            "memory_words": fsum(v.words_moved),
            "intrinsic_calls": fsum(v.intrinsic_calls_total),
        }
        cache = {
            "ref_words": fsum(words + idx_words),
            "hit_words": fsum((words - misses) + idx_words),
            "miss_words": fsum(misses),
            "miss_cycles": fsum(misses * self.cache.line_fill_cycles()),
        }
        return scalar, cache

    # -- perfmon instrumentation --------------------------------------------
    def perfmon_scalar_counters(
        self, op: ScalarOp
    ) -> tuple[dict[str, float], dict[str, float]]:
        """(scalar_unit, cache) counter increments for a ScalarOp."""
        scalar = {
            "ex_cycles": self.scalar_op_cycles(op) * op.count,
            "instructions": op.instructions * op.count,
            "flops": op.raw_flops,
            "flop_equivalents": op.flop_equivalents,
            "memory_words": op.words_moved,
        }
        # Scalar references are register/cache-resident by construction.
        cache = self.cache.perfmon_counters(op.words_moved)
        return scalar, cache

    def perfmon_vector_counters(
        self, op: VectorOp
    ) -> tuple[dict[str, float], dict[str, float]]:
        """(scalar_unit, cache) increments for a VectorOp run as a
        scalar loop on a cache machine.

        Instruction accounting mirrors :meth:`vector_op_cycles`: per
        element, the flops plus the loop-bookkeeping overhead occupy
        issue slots; memory references go through the cache model with
        the loop's stride and working set.
        """
        elements = op.elements
        words_per_elem = op.loads_per_element + op.stores_per_element
        indexed_per_elem = op.gather_loads_per_element + op.scatter_stores_per_element
        working_set = (
            (op.loads_per_element * op.load_stride + op.stores_per_element * op.store_stride)
            * op.length
            * 8.0
        )
        stride = max(op.load_stride, op.store_stride)
        scalar = {
            "ex_cycles": self.vector_op_cycles(op) * op.count,
            "instructions": (op.flops_per_element + self.loop_overhead_instructions) * elements,
            "flops": op.raw_flops,
            "flop_equivalents": op.flop_equivalents,
            "memory_words": op.words_moved,
            "intrinsic_calls": sum(op.intrinsic_calls_total.values()),
        }
        cache = self.cache.perfmon_counters(
            words_per_elem * elements, stride, working_set
        )
        if indexed_per_elem > 0:
            # Small-table lookups: resident, so pure hits (see above).
            for name, value in self.cache.perfmon_counters(
                indexed_per_elem * elements
            ).items():
                cache[name] = cache.get(name, 0.0) + value
        return scalar, cache
