"""Machine specification sheets (Table 2 regeneration).

Table 2 of the paper lists the benchmarked SX-4/32's externally visible
characteristics.  :func:`sx4_32_benchmark_specs` derives every derivable
row from the machine model (clock → peak flops → port bandwidth) and
carries the purely configurational rows (disk capacity, memory sizes,
cooling, power) as data, so the bench target regenerates the table rather
than hard-coding it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.node import Node
from repro.machine.presets import BENCHMARK_CLOCK_NS, sx4_node
from repro.units import GB, GIGA

__all__ = ["MachineSpecs", "sx4_32_benchmark_specs"]


@dataclass(frozen=True)
class MachineSpecs:
    """One spec-sheet row set, in the units Table 2 uses."""

    name: str
    clock_ns: float
    peak_gflops_per_processor: float
    peak_memory_bandwidth_gb_per_s_per_processor: float
    disk_capacity_gb: float
    main_memory_gb: float
    extended_memory_gb: float
    cooling: str
    power_kva: float

    def rows(self) -> list[tuple[str, str]]:
        """(label, value) pairs in the paper's row order."""
        return [
            ("Clock Rate", f"{self.clock_ns:g} ns"),
            ("Peak FLOP Rate Per Processor", f"{self.peak_gflops_per_processor:g} GFLOPS"),
            (
                "Peak Memory Bandwidth",
                f"{self.peak_memory_bandwidth_gb_per_s_per_processor:g} GB/sec/proc",
            ),
            ("Disk Capacity", f"{self.disk_capacity_gb:g} GB"),
            ("Main Memory", f"{self.main_memory_gb:g}GB"),
            ("Extended Memory", f"{self.extended_memory_gb:g}GB"),
            ("Cooling", self.cooling),
            ("Power Consumption", f"{self.power_kva:g} KVA"),
        ]


def sx4_32_benchmark_specs(node: Node | None = None) -> MachineSpecs:
    """Spec sheet of the February-1996 benchmark system (Table 2).

    Derivable entries (peak flops, port bandwidth) are computed from the
    model so that the table stays consistent with whatever the machine
    model says; fixed configuration entries match the paper.
    """
    if node is None:
        node = sx4_node(cpus=32, period_ns=BENCHMARK_CLOCK_NS)
    proc = node.processor
    return MachineSpecs(
        name=node.name,
        clock_ns=proc.clock.period_ns,
        # The paper quotes the nominal (8.0 ns) peak of 2 GFLOPS even for
        # the 9.2 ns system; we report the model's own peak, rounded the
        # same way the marketing number was.
        peak_gflops_per_processor=round(
            proc.peak_flops * (proc.clock.period_ns / 8.0) / GIGA, 2
        ),
        peak_memory_bandwidth_gb_per_s_per_processor=round(
            proc.port_bandwidth_bytes_per_s * (proc.clock.period_ns / 8.0) / GB, 1
        ),
        disk_capacity_gb=282.0,
        main_memory_gb=8.0,
        extended_memory_gb=4.0,
        cooling="air cooled",
        power_kva=122.8,
    )
