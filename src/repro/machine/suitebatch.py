"""Fused suite-batch costing: one NumPy pass for a whole trace suite.

The compiled engine (:mod:`repro.machine.compiled`) removed the per-op
interpreter bound, but a full-suite costing still loops over the 16
registered traces one ``CompiledTrace`` at a time — 16 engine
dispatches, 16 cache probes, 16 report constructions per sweep point.
This module removes that bound too: :class:`SuiteColumns` concatenates
every trace's ``VectorColumns``/``ScalarColumns`` into one ragged
stack (segment offsets plus a per-op trace-index column over the
concatenated rows), and :func:`cost_suite_batch` evaluates every
``*_cycles_batch`` kernel **once** over the stacked columns, then
segment-reduces back to per-trace :class:`ExecutionReport`\\ s.

Exactness is inherited, not re-proven: every batch kernel is
elementwise per row (the repo linter's REPO011 rule keeps it that
way), so a stacked row costs to the same double as the same row costed
through its own trace; and the per-segment reductions go through
:func:`math.fsum`, whose exactly-rounded result is independent of
operand order.  Reports are therefore ``==`` to the compiled per-trace
path — asserted on all 16 traces x 6 canonical presets in
``tests/machine/test_suitebatch.py`` and on hypothesis-random subsets.

The stack is also the unit of sharing.  :func:`pack_suite` serialises
a ``SuiteColumns`` to one contiguous byte payload (JSON header + raw
little-endian column bytes, bit-exact round-trip) that the engine's
:class:`~repro.engine.store.ColumnCache` publishes through
``multiprocessing.shared_memory`` (mmap-file fallback) so pool workers
attach to precomputed columns instead of re-deriving them per process.
Worker adoption happens in the pool *initializer* — never on the job
path, which must not mutate module globals (DET005).

``np.add.reduceat`` over the segment offsets (:func:`segment_sums`)
is the fast float reduction over the same ragged layout; the costing
paths use :func:`fsum_segments` because parity demands exact rounding.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from dataclasses import fields as dataclass_fields

import numpy as np

from repro.machine.compiled import (
    CompiledTrace,
    ScalarColumns,
    VectorColumns,
    compile_trace,
)
from repro.machine.operations import Trace
from repro.machine.processor import ExecutionReport, Processor
from repro.perfmon.collector import active as perfmon_active
from repro.perfmon.collector import record as perfmon_record
from repro.perfmon.counters import declare_counters

__all__ = [
    "PACK_SCHEMA",
    "SuiteColumns",
    "cost_suite_batch",
    "fsum_segments",
    "segment_sums",
    "trace_cycles",
    "pack_suite",
    "unpack_suite",
    "register_suite",
    "registered_suite",
    "registered_suite_key",
    "clear_registered_suite",
]

declare_counters(
    "suitebatch",
    (
        "suites",  # cost_suite_batch invocations
        "suite_traces",  # traces per invocation
        "costings",  # fused kernel passes actually computed
        "memo_hits",  # invocations served from the (machine, dilation) memo
        # suite stacks built from scratch — recorded by the registry's
        # analysis.traces.build_suite_columns, the derive path a fresh
        # process pays when no shared segment is attachable.
        "derives",
    ),
)

#: Serialization schema of :func:`pack_suite` payloads.
PACK_SCHEMA = 1

_PACK_MAGIC = b"RSBC"

_EMPTY_CYCLES = np.zeros(0, dtype=np.float64)


def fsum_segments(values: np.ndarray, offsets: np.ndarray) -> list[float]:
    """Exactly-rounded per-segment sums of a stacked column.

    Segment ``i`` spans ``values[offsets[i]:offsets[i + 1]]``; empty
    segments sum to an exact ``0.0``.  Because ``math.fsum`` tracks
    exact partial sums, each result is independent of row order — the
    property that makes the suite-batch totals bit-identical to the
    per-trace compiled totals.
    """
    return [
        math.fsum(values[offsets[i]:offsets[i + 1]].tolist())
        for i in range(len(offsets) - 1)
    ]


def segment_sums(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Fast per-segment sums via ``np.add.reduceat`` (ordinary doubles).

    The vectorised face of the same ragged layout, for consumers that
    want throughput over exact rounding.  Empty segments sum to 0.0
    (``reduceat``'s repeated-index quirk is masked out).  The costing
    paths use :func:`fsum_segments` instead: parity with the compiled
    engine requires exactly-rounded totals.
    """
    n = len(offsets) - 1
    out = np.zeros(n, dtype=np.float64)
    if values.shape[0] == 0 or n == 0:
        return out
    starts = np.asarray(offsets[:-1], dtype=np.intp)
    nonempty = np.flatnonzero(offsets[1:] > offsets[:-1])
    if nonempty.size:
        # Consecutive non-empty starts bound exactly one segment each
        # (empty segments contribute no rows in between), so reducing at
        # the non-empty starts alone reconstructs every segment sum.
        out[nonempty] = np.add.reduceat(values, starts[nonempty])
    return out


@dataclass
class SuiteColumns:
    """A whole trace suite lowered to one ragged column stack.

    ``vector``/``scalar`` are ordinary column sets over the
    *concatenation* of every member trace's rows (each row bit-identical
    to its source, ``index`` still holding within-trace positions), so
    the machine components' ``*_cycles_batch`` kernels — and the grid's
    ``*_cycles_grid`` kernels — accept a ``SuiteColumns`` anywhere they
    accept a ``CompiledTrace``.  ``vector_offsets``/``scalar_offsets``
    delimit each trace's segment; ``vector_trace``/``scalar_trace`` map
    each stacked row to its owning trace index.

    Like :class:`CompiledTrace`, machine-dependent cost columns are
    memoised per component set in :meth:`machine_cache` — one stack
    costs on any processor, and a dilation sweep recomputes only the
    dilation-dependent max.
    """

    trace_ids: tuple[str, ...]
    trace_names: tuple[str, ...]
    names: tuple[tuple[str, ...], ...]  # per-trace op names, trace order
    vector: VectorColumns
    scalar: ScalarColumns
    vector_offsets: np.ndarray  # (n_traces + 1,) intp segment bounds
    scalar_offsets: np.ndarray
    vector_trace: np.ndarray  # (n_vector_rows,) intp owning-trace index
    scalar_trace: np.ndarray
    _machine_caches: dict = field(default_factory=dict, repr=False)
    #: strong refs pinning cached components so their ids stay unique.
    _pins: list[tuple] = field(default_factory=list, repr=False)
    #: machine-independent per-trace totals, computed once per stack.
    _totals: dict[str, list[float]] = field(default_factory=dict, repr=False)
    #: lazily-built per-trace CompiledTrace views over the stack.
    _views: list = field(default_factory=list, repr=False)
    #: id(trace) -> position for member traces (identity matching).
    _member_positions: dict[int, int] = field(default_factory=dict, repr=False)
    #: strong refs pinning member traces so their ids stay unique.
    _member_pins: tuple = field(default=(), repr=False)

    @property
    def n_traces(self) -> int:
        return len(self.trace_ids)

    @property
    def n_ops(self) -> int:
        """Total stacked rows across every member trace."""
        return self.vector.n + self.scalar.n

    @classmethod
    def from_traces(cls, traces) -> "SuiteColumns":
        """Stack ``(trace_id, Trace)`` pairs into one suite column set.

        Each trace is compiled (or fetched from its compile cache) and
        its columns concatenated bit-exactly.  The source trace objects
        are pinned for identity matching: ``Processor.execute(...,
        engine="suitebatch")`` serves member traces from the fused pass.
        """
        pairs = list(traces)
        compiled = [compile_trace(trace) for _, trace in pairs]
        n = len(pairs)
        v_counts = [c.vector.n for c in compiled]
        s_counts = [c.scalar.n for c in compiled]
        suite = cls(
            trace_ids=tuple(trace_id for trace_id, _ in pairs),
            trace_names=tuple(trace.name for _, trace in pairs),
            names=tuple(c.names for c in compiled),
            vector=VectorColumns.stack([c.vector for c in compiled]),
            scalar=ScalarColumns.stack([c.scalar for c in compiled]),
            vector_offsets=_offsets(v_counts),
            scalar_offsets=_offsets(s_counts),
            vector_trace=np.repeat(np.arange(n, dtype=np.intp), v_counts),
            scalar_trace=np.repeat(np.arange(n, dtype=np.intp), s_counts),
        )
        suite._member_positions = {
            id(trace): i for i, (_, trace) in enumerate(pairs)
        }
        suite._member_pins = tuple(trace for _, trace in pairs)
        return suite

    def machine_cache(self, *components) -> dict:
        """Per-component-set memo dict (same contract as CompiledTrace)."""
        key = tuple(id(c) for c in components)
        cache = self._machine_caches.get(key)
        if cache is None:
            cache = {}
            self._machine_caches[key] = cache
            self._pins.append(components)
        return cache

    def position_of(self, trace: Trace) -> int | None:
        """This trace's suite position, or None if it is not a member.

        Matching is by object identity (the stack pins its members); a
        trace mutated since stacking (``append``/``extend``) no longer
        matches, so callers fall back to compiling it fresh.
        """
        i = self._member_positions.get(id(trace))
        if i is None or len(trace.ops) != len(self.names[i]):
            return None
        return i

    def trace_view(self, i: int) -> CompiledTrace:
        """Trace ``i``'s segment of the stack, as a ``CompiledTrace``.

        The view's columns are zero-copy slices of the stacked arrays,
        so its rows are *the same doubles* the fused pass costs; it
        exists to reuse ``scatter_cycles`` and the perfmon column
        reductions per trace.  Views are memoised per stack.
        """
        if not self._views:
            self._views = [None] * self.n_traces
        view = self._views[i]
        if view is None:
            vo, so = self.vector_offsets, self.scalar_offsets
            view = self._views[i] = CompiledTrace(
                names=self.names[i],
                vector=self.vector.slice_rows(int(vo[i]), int(vo[i + 1])),
                scalar=self.scalar.slice_rows(int(so[i]), int(so[i + 1])),
            )
        return view

    # -- aggregate accounting (exact: fsum over each trace's segment) ------
    def _segment_totals(
        self, key: str, vector_column: np.ndarray, scalar_column: np.ndarray
    ) -> list[float]:
        totals = self._totals.get(key)
        if totals is None:
            vo, so = self.vector_offsets, self.scalar_offsets
            totals = self._totals[key] = [
                math.fsum(
                    vector_column[vo[i]:vo[i + 1]].tolist()
                    + scalar_column[so[i]:so[i + 1]].tolist()
                )
                for i in range(self.n_traces)
            ]
        return totals

    def trace_totals(self, i: int) -> tuple[float, float, float]:
        """(raw_flops, flop_equivalents, words_moved) for trace ``i``.

        Each is the fsum of the same per-op values the compiled path
        sums for that trace alone — same multiset, exact sum, identical
        bits.  (ScalarOp flop-equivalents equal its raw flops, mirroring
        ``CompiledTrace.flop_equivalents_total``.)
        """
        raw = self._segment_totals(
            "raw_flops", self.vector.raw_flops, self.scalar.raw_flops
        )
        equiv = self._segment_totals(
            "flop_equivalents", self.vector.flop_equivalents, self.scalar.raw_flops
        )
        words = self._segment_totals(
            "words_moved", self.vector.words_moved, self.scalar.words_moved
        )
        return raw[i], equiv[i], words[i]


def _offsets(counts: list[int]) -> np.ndarray:
    out = np.zeros(len(counts) + 1, dtype=np.intp)
    np.cumsum(counts, out=out[1:])
    return out


# -- process-wide registration (read on the hot path, written only from
# -- main/initializer paths: the engine's job path must stay free of
# -- module-global mutation, which DET005 enforces) ----------------------
_registered: SuiteColumns | None = None
_registered_key: str | None = None


def register_suite(suite: SuiteColumns, key: str | None = None) -> SuiteColumns:
    """Install the process-wide suite the ``suitebatch`` engine serves.

    ``key`` (the content hash of the packed payload, when known) lets a
    pool worker recognise an already-adopted stack without re-reading
    the shared segment.
    """
    global _registered, _registered_key
    _registered = suite
    _registered_key = key
    return suite


def registered_suite() -> SuiteColumns | None:
    """The installed suite stack, if any (read-only on the job path)."""
    return _registered


def registered_suite_key() -> str | None:
    """Content key the installed stack was adopted under, if any."""
    return _registered_key


def clear_registered_suite() -> None:
    """Uninstall the process-wide suite (tests and teardown)."""
    global _registered, _registered_key
    _registered = None
    _registered_key = None


# -- the fused costing pass ---------------------------------------------
def _suite_cycles(
    processor: Processor, suite: SuiteColumns, memory_dilation: float
) -> tuple[tuple, bool]:
    """Per-trace cycle segments for one (machine, dilation) point.

    Runs each ``*_cycles_batch`` kernel once over the stacked columns,
    then slices per-trace segments and fsums each — memoised on the
    stack per (components, dilation) exactly like the compiled path's
    ``cost@`` entries, so sweep steady state is a dictionary lookup.
    Returns ``(entries, hit)`` with ``entries[i] = (vector_segment,
    scalar_segment, op_cycles_in_trace_order, total_cycles)``.
    """
    cache = suite.machine_cache(processor.vector, processor.memory, processor.scalar)
    key = f"suite_cost@{float(memory_dilation)!r}"
    entries = cache.get(key)
    if entries is not None:
        return entries, True
    vector_cycles = (
        processor.vector_op_cycles_batch(suite, memory_dilation)
        if suite.vector.n
        else _EMPTY_CYCLES
    )
    scalar_cycles = (
        processor.scalar_op_cycles_batch(suite) if suite.scalar.n else _EMPTY_CYCLES
    )
    vo, so = suite.vector_offsets, suite.scalar_offsets
    built = []
    for i in range(suite.n_traces):
        vector_segment = vector_cycles[vo[i]:vo[i + 1]]
        scalar_segment = scalar_cycles[so[i]:so[i + 1]]
        op_cycles = suite.trace_view(i).scatter_cycles(vector_segment, scalar_segment)
        built.append((
            vector_segment,
            scalar_segment,
            op_cycles,
            # fsum over the two segments: the same multiset of per-op
            # cycles the compiled path fsums for this trace alone.
            math.fsum(vector_segment.tolist() + scalar_segment.tolist()),
        ))
    entries = cache[key] = tuple(built)
    return entries, False


def trace_cycles(
    processor: Processor,
    suite: SuiteColumns,
    position: int,
    memory_dilation: float = 1.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """One member trace's cycle data from the (memoised) fused pass."""
    entries, _ = _suite_cycles(processor, suite, memory_dilation)
    return entries[position]


def cost_suite_batch(
    processor: Processor,
    suite: SuiteColumns,
    memory_dilation: float = 1.0,
    *,
    breakdown: bool = False,
) -> list[ExecutionReport]:
    """Cost every suite trace on one machine in a single fused pass.

    Returns per-trace reports in suite order, each ``==`` to what
    ``processor.execute(trace, memory_dilation, engine="compiled")``
    returns for the same trace.  The report list is memoised with the
    cycle columns: steady state (the sweep regime) is one cache probe
    plus a list copy, so a full-suite re-costing is no longer bounded
    by 16 per-trace engine dispatches.  The report objects and their
    cycle arrays are shared across calls — treat them as read-only.
    """
    entries, hit = _suite_cycles(processor, suite, memory_dilation)
    cache = suite.machine_cache(processor.vector, processor.memory, processor.scalar)
    reports_key = f"suite_reports@{float(memory_dilation)!r}"
    reports = cache.get(reports_key)
    if reports is None:
        reports = cache[reports_key] = [
            ExecutionReport(
                machine=processor.name,
                trace_name=suite.trace_names[i],
                cycles=entries[i][3],
                seconds=processor.clock.seconds(entries[i][3]),
                raw_flops=suite.trace_totals(i)[0],
                flop_equivalents=suite.trace_totals(i)[1],
                words_moved=suite.trace_totals(i)[2],
                engine="suitebatch",
                op_names=suite.names[i],
                op_cycles=entries[i][2],
            )
            for i in range(suite.n_traces)
        ]
    if perfmon_active() is not None:
        perfmon_record(
            "suitebatch",
            {
                "suites": 1.0,
                "suite_traces": float(suite.n_traces),
                "costings": 0.0 if hit else 1.0,
                "memo_hits": 1.0 if hit else 0.0,
            },
        )
        # Mirror the compiled path per trace: same counter components,
        # same key shapes, same exactly-rounded values.
        for i in range(suite.n_traces):
            perfmon_record("processor", {"traces": 1.0})
            view = suite.trace_view(i)
            if view.n_ops:
                processor._record_trace_batch(
                    view, entries[i][2], entries[i][0], entries[i][1], memory_dilation
                )
    if breakdown:
        return [replace(report, has_breakdown=True) for report in reports]
    return list(reports)


# -- bit-exact serialization (the shared-column payload) -----------------
def _column_fields(cls) -> list[str]:
    return [f.name for f in dataclass_fields(cls)]


def pack_suite(suite: SuiteColumns) -> bytes:
    """Serialise a suite stack to one contiguous byte payload.

    Layout: 4-byte magic, 8-byte little-endian header length, a JSON
    header (schema, trace ids/names, per-array dtype + shape), then the
    raw column bytes back to back.  Raw bytes round-trip every double
    bit-exactly, which is what lets an attached worker cost the shared
    stack to the same results the publisher would.
    """
    specs: list[dict] = []
    chunks: list[bytes] = []

    def add(name: str, array: np.ndarray) -> None:
        data = np.ascontiguousarray(array)
        specs.append({
            "name": name,
            "dtype": data.dtype.str,  # endian-explicit, e.g. "<f8"
            "shape": list(data.shape),
        })
        chunks.append(data.tobytes())

    for field_name in _column_fields(VectorColumns):
        add(f"vector.{field_name}", getattr(suite.vector, field_name))
    for field_name in _column_fields(ScalarColumns):
        add(f"scalar.{field_name}", getattr(suite.scalar, field_name))
    add("vector_offsets", suite.vector_offsets)
    add("scalar_offsets", suite.scalar_offsets)
    add("vector_trace", suite.vector_trace)
    add("scalar_trace", suite.scalar_trace)

    header = json.dumps(
        {
            "schema": PACK_SCHEMA,
            "trace_ids": list(suite.trace_ids),
            "trace_names": list(suite.trace_names),
            "names": [list(names) for names in suite.names],
            "arrays": specs,
        },
        sort_keys=True,
    ).encode("utf-8")
    return b"".join(
        [_PACK_MAGIC, len(header).to_bytes(8, "little"), header, *chunks]
    )


def unpack_suite(payload: bytes) -> SuiteColumns:
    """Rebuild a suite stack from :func:`pack_suite` bytes (bit-exact).

    Raises ``ValueError`` on a foreign or truncated payload.  Member
    pins are not serialised: an adopted stack matches no trace by
    identity, so ``engine="suitebatch"`` falls back to the compiled
    path for locally-built traces while :func:`cost_suite_batch` costs
    the stack directly.
    """
    if payload[:4] != _PACK_MAGIC:
        raise ValueError("not a packed suite-column payload (bad magic)")
    header_len = int.from_bytes(payload[4:12], "little")
    try:
        header = json.loads(payload[12:12 + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"corrupt suite-column header: {exc}") from None
    if header.get("schema") != PACK_SCHEMA:
        raise ValueError(
            f"unsupported suite-column schema {header.get('schema')!r} "
            f"(expected {PACK_SCHEMA})"
        )
    offset = 12 + header_len
    arrays: dict[str, np.ndarray] = {}
    for spec in header["arrays"]:
        dtype = np.dtype(spec["dtype"])
        shape = tuple(int(n) for n in spec["shape"])
        count = 1
        for n in shape:
            count *= n
        nbytes = dtype.itemsize * count
        if offset + nbytes > len(payload):
            raise ValueError("truncated suite-column payload")
        arrays[spec["name"]] = (
            np.frombuffer(payload, dtype=dtype, count=count, offset=offset)
            .reshape(shape)
            .copy()
        )
        offset += nbytes
    try:
        vector = VectorColumns(**{
            name: arrays[f"vector.{name}"] for name in _column_fields(VectorColumns)
        })
        scalar = ScalarColumns(**{
            name: arrays[f"scalar.{name}"] for name in _column_fields(ScalarColumns)
        })
        return SuiteColumns(
            trace_ids=tuple(header["trace_ids"]),
            trace_names=tuple(header["trace_names"]),
            names=tuple(tuple(names) for names in header["names"]),
            vector=vector,
            scalar=scalar,
            vector_offsets=arrays["vector_offsets"],
            scalar_offsets=arrays["scalar_offsets"],
            vector_trace=arrays["vector_trace"],
            scalar_trace=arrays["scalar_trace"],
        )
    except KeyError as exc:
        raise ValueError(f"suite-column payload missing array {exc}") from None
