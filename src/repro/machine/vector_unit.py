"""Vector unit model.

Section 2.1 of the paper: each SX-4 processor's vector unit is built from
eight vector-pipeline VLSI chips, together providing four sets of eight
pipes (add/shift, multiply, divide, logical).  Each set of eight pipes
serves one vector instruction, so a chained add+multiply sustains 16 flops
per cycle — 2 GFLOPS at the 8.0 ns production clock, 1.74 GFLOPS at the
9.2 ns clock of the benchmarked machine.

The model reduces this to a handful of parameters:

* ``pipes`` — results per cycle for a single vector instruction (8),
* ``concurrent_sets`` — how many functional sets overlap (2 for the
  add+multiply chain that defines peak; the divide pipes can push a
  processor *beyond* its nominal peak, which we deliberately ignore),
* ``startup_cycles`` — pipeline fill + issue latency charged once per
  vector-loop execution; this is what bends the short-vector end of
  Figures 5–7,
* ``register_length`` — vector register capacity; longer loops strip-mine
  with a small per-strip re-issue cost,
* ``intrinsic_cycles_per_element`` — vectorised math-library throughput
  (ELEFUNT, Table 3, and the RADABS/CCM2 physics mix).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.machine.operations import INTRINSICS, VectorOp
from repro.perfmon.counters import declare_counters

if TYPE_CHECKING:
    from repro.machine.compiled import VectorColumns

__all__ = ["VectorUnit"]

declare_counters(
    "vector_unit",
    (
        "busy_cycles",  # pipeline-busy arithmetic + intrinsic cycles
        "startup_cycles",  # startup + strip-mine overhead
        "vector_instructions",  # strip-mined vector instruction issues
        "vector_elements",  # PROGINF "V. Element Count"
        "flops",  # genuine adds/multiplies
        "flop_equivalents",  # with Cray-HPM intrinsic credits
        "intrinsic_calls",
    ),
)


def _default_intrinsic_cycles() -> dict[str, float]:
    # Vectorised math-library throughput in cycles per element across the
    # whole vector unit.  SQRT uses the divide pipes and is cheapest; PWR
    # is log+exp and costs the most.  These rates put the SX-4/1 in the
    # tens-to-hundreds of Mcalls/s range for Table 3.
    return {
        "sqrt": 0.75,
        "exp": 1.20,
        "log": 1.40,
        "sin": 1.60,
        "pwr": 2.80,
        "div": 0.50,
    }


@dataclass
class VectorUnit:
    """Throughput/latency model of one vector unit."""

    pipes: int = 8
    concurrent_sets: int = 2
    startup_cycles: float = 40.0
    register_length: int = 256
    stripmine_cycles: float = 8.0
    intrinsic_cycles_per_element: Mapping[str, float] = field(
        default_factory=_default_intrinsic_cycles
    )

    def __post_init__(self) -> None:
        if self.pipes < 1:
            raise ValueError(f"need at least one pipe, got {self.pipes}")
        if self.concurrent_sets < 1:
            raise ValueError(f"need at least one pipe set, got {self.concurrent_sets}")
        if self.register_length < 1:
            raise ValueError(f"register length must be positive, got {self.register_length}")
        if self.startup_cycles < 0 or self.stripmine_cycles < 0:
            raise ValueError("overhead cycle counts cannot be negative")
        missing = [f for f in INTRINSICS if f not in self.intrinsic_cycles_per_element]
        if missing:
            raise ValueError(f"intrinsic cost table missing entries for {missing}")

    @property
    def peak_flops_per_cycle(self) -> float:
        """Chained add+multiply across all pipes (16 for the SX-4)."""
        return float(self.pipes * self.concurrent_sets)

    @property
    def half_performance_length(self) -> int:
        """Hockney's n½: the vector length at which a loop reaches half its
        asymptotic rate.

        With ``time(n) = startup + n / rate`` for a single chained vector
        instruction stream delivering ``pipes`` results per cycle, half
        performance is reached exactly when the pipe-busy time equals the
        startup time, i.e. at ``startup_cycles * pipes`` elements (320 for
        the SX-4's 40-cycle startup across 8 pipes, 15 for the Y-MP).
        Loops shorter than this are startup-dominated — the knee of the
        paper's Figures 5-7 short-vector roll-off.
        """
        return max(1, round(self.startup_cycles * self.pipes))

    def arithmetic_cycles(self, op: VectorOp) -> float:
        """Pipeline-busy cycles for the arithmetic of one loop execution.

        With fewer than ``concurrent_sets`` flops per element only a subset
        of the functional sets has work, so throughput drops accordingly —
        a pure copy (0 flops) is limited by the load/store path instead and
        contributes nothing here.
        """
        cycles = 0.0
        if op.flops_per_element > 0:
            sets_used = min(float(self.concurrent_sets), max(1.0, op.flops_per_element))
            flops_per_cycle = self.pipes * sets_used
            cycles += op.length * op.flops_per_element / flops_per_cycle
        for name, calls in op.intrinsic_calls:
            cycles += op.length * calls * self.intrinsic_cycles_per_element[name]
        return cycles

    def overhead_cycles(self, op: VectorOp) -> float:
        """Startup + strip-mining overhead for one loop execution."""
        strips = max(1, math.ceil(op.length / self.register_length))
        return self.startup_cycles + (strips - 1) * self.stripmine_cycles

    # -- batched (columnar) timing ----------------------------------------
    # Each *_batch method evaluates the exact expression of its per-op
    # sibling elementwise over the compiled columns: same IEEE-754
    # operations, same association, intrinsics accumulated in the same
    # sorted order (absent intrinsics add an exact 0.0).  REPO007 keeps
    # the pairing closed under extension.
    def arithmetic_cycles_batch(self, v: "VectorColumns") -> np.ndarray:
        """Per-op pipeline-busy cycles for one execution of each loop."""
        sets_used = np.minimum(float(self.concurrent_sets), np.maximum(1.0, v.flops))
        # flops == 0 rows divide 0 by >= self.pipes, yielding the per-op
        # path's exact 0.0 without a branch.
        cycles = v.length * v.flops / (self.pipes * sets_used)
        for column, name in enumerate(sorted(INTRINSICS)):
            rate = self.intrinsic_cycles_per_element[name]
            cycles = cycles + (v.length * v.intrinsics[:, column]) * rate
        return cycles

    def overhead_cycles_batch(self, v: "VectorColumns") -> np.ndarray:
        """Per-op startup + strip-mining overhead, one execution each."""
        strips = np.maximum(1.0, np.ceil(v.length / self.register_length))
        return self.startup_cycles + (strips - 1.0) * self.stripmine_cycles


    def perfmon_counters(self, op: VectorOp) -> dict[str, float]:
        """Counter increments for all ``count`` executions of a loop.

        ``vector_instructions`` counts strip-mined issues, so
        ``vector_elements / vector_instructions`` is the PROGINF
        average vector length (capped by :attr:`register_length`).
        """
        strips = max(1, math.ceil(op.length / self.register_length))
        return {
            "busy_cycles": self.arithmetic_cycles(op) * op.count,
            "startup_cycles": self.overhead_cycles(op) * op.count,
            "vector_instructions": strips * op.count,
            "vector_elements": op.elements,
            "flops": op.raw_flops,
            "flop_equivalents": op.flop_equivalents,
            "intrinsic_calls": sum(op.intrinsic_calls_total.values()),
        }

    def perfmon_counters_batch(self, v: "VectorColumns") -> dict[str, float]:
        """Whole-trace counter totals from the compiled columns.

        Same increments as summing :meth:`perfmon_counters` over every
        op, reduced with exactly-rounded sums.
        """
        from repro.machine.compiled import fsum

        strips = np.maximum(1.0, np.ceil(v.length / self.register_length))
        return {
            "busy_cycles": fsum(self.arithmetic_cycles_batch(v) * v.count),
            "startup_cycles": fsum(self.overhead_cycles_batch(v) * v.count),
            "vector_instructions": fsum(strips * v.count),
            "vector_elements": fsum(v.elements),
            "flops": fsum(v.raw_flops),
            "flop_equivalents": fsum(v.flop_equivalents),
            "intrinsic_calls": fsum(v.intrinsic_calls_total),
        }

    def intrinsic_rate_per_cycle(self, func: str) -> float:
        """Sustained vector throughput of one intrinsic, results/cycle."""
        if func not in self.intrinsic_cycles_per_element:
            raise KeyError(f"unknown intrinsic {func!r}")
        return 1.0 / self.intrinsic_cycles_per_element[func]
