"""Extended Memory Unit (XMU) model.

Section 2.3: the XMU is a semiconductor disk built from 60 ns DRAM, up to
32 GB per 32-processor node with 16 GB/s of bandwidth.  It backs
direct-mapped Fortran arrays, file-system caching (SFS), swap and /tmp.
In this reproduction it appears as a staging tier in the I/O benchmark
(:mod:`repro.iosim`) — history-tape writes land in XMU cache at XMU speed
and drain to physical disk asynchronously.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmon.collector import record as perfmon_record
from repro.perfmon.counters import declare_counters
from repro.units import GB

__all__ = ["ExtendedMemoryUnit"]

declare_counters(
    "xmu",
    (
        "transfers",
        "transfer_bytes",
        "busy_seconds",  # staging-tier occupancy, simulated
    ),
)


@dataclass
class ExtendedMemoryUnit:
    """Latency/bandwidth model of the XMU semiconductor disk."""

    capacity_bytes: float = 4 * GB  # the benchmarked system had 4 GB (Table 2)
    bandwidth_bytes_per_s: float = 16 * GB
    access_latency_s: float = 60e-9 * 1000  # DRAM access plus controller overhead

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("XMU capacity must be positive")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("XMU bandwidth must be positive")
        if self.access_latency_s < 0:
            raise ValueError("XMU latency cannot be negative")

    def transfer_seconds(self, nbytes: float) -> float:
        """Time to move ``nbytes`` to or from the XMU."""
        if nbytes < 0:
            raise ValueError(f"transfer size cannot be negative, got {nbytes}")
        if nbytes == 0:
            return 0.0
        seconds = self.access_latency_s + nbytes / self.bandwidth_bytes_per_s
        perfmon_record(
            "xmu",
            {"transfers": 1.0, "transfer_bytes": nbytes, "busy_seconds": seconds},
        )
        return seconds

    def fits(self, nbytes: float) -> bool:
        """Whether a staging area of ``nbytes`` fits in the XMU."""
        return 0 <= nbytes <= self.capacity_bytes
