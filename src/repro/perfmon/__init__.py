"""``repro.perfmon``: PROGINF/FTRACE-style observability.

The SX-4's users saw the machine through two instruments: **PROGINF**,
the end-of-run hardware-counter summary (execution time, vector-element
counts, average vector length, vector-operation ratio, FLOP count,
memory/bank-conflict time), and **FTRACE**, the per-routine profiler.
This package reproduces both for the simulated machine, plus modern
exporters:

``counters`` / ``collector``
    The emulation core: the component counter registry, the additive
    :class:`CounterSet`, the active :class:`Profile` context,
    host-clock :func:`span` tracing and the simulated-clock
    :class:`SimSpanTracer`.  These are leaf modules — the machine model
    imports them to record, so they import nothing back.
``proginf``
    Derives the PROGINF metrics from a CounterSet and renders the
    classic report; ``profile_trace``/``profile_kernels`` run traces
    under a fresh profile for per-kernel sections.
``ftrace``
    Aggregates spans into an FTRACE-style per-region table with
    inclusive/exclusive time.
``export``
    Profile save/load plus JSON, Prometheus text and Chrome
    ``trace_event`` exporters (with schema validation).
``diff``
    Counter/metric comparison between two saved profiles, with a
    regression tolerance — the CI face of the subsystem.
``cli``
    ``python -m repro.perfmon report|diff|export``.

Only the leaf modules are imported eagerly (the machine model imports
this package, so anything heavier would be a cycle); import
``repro.perfmon.proginf`` and friends explicitly.
"""

from repro.perfmon.collector import (
    Profile,
    SimSpanTracer,
    Span,
    active,
    profile,
    record,
    sim_tracer,
    span,
)
from repro.perfmon.counters import COMPONENT_COUNTERS, CounterSet, declare_counters

__all__ = [
    "COMPONENT_COUNTERS",
    "CounterSet",
    "declare_counters",
    "Profile",
    "Span",
    "SimSpanTracer",
    "active",
    "profile",
    "record",
    "sim_tracer",
    "span",
]
