"""``python -m repro.perfmon`` entry point."""

from repro.perfmon.cli import main

__all__ = ["main"]

if __name__ == "__main__":
    raise SystemExit(main())
