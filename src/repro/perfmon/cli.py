"""Command-line interface for the observability subsystem.

Usage::

    python -m repro.perfmon report [ids...] [--ftrace] [--save PATH]
    python -m repro.perfmon export --format {json,prometheus,chrome,ftrace}
                                   [--profile PATH] [--out PATH] [ids...]
    python -m repro.perfmon diff OLD.json NEW.json [--tolerance T] [--json]

``report`` profiles the registered kernel traces (default: all 13) on
the calibrated SX-4 and prints their PROGINF sections.  ``export``
renders a saved profile document — or profiles live when none is given
— in any exporter format.  ``diff`` compares two saved documents and
exits 1 when a counter or PROGINF metric regressed beyond tolerance.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from pathlib import Path

from repro.perfmon.collector import Profile, active, profile, span
from repro.perfmon.diff import diff_profiles, render_diff
from repro.perfmon.export import (
    EXPORT_FORMATS,
    LoadedProfile,
    export_text,
    load_profile,
    save_profile,
)
from repro.perfmon.ftrace import render_ftrace
from repro.perfmon.proginf import (
    KERNEL_IDS,
    KernelProfile,
    ProginfMetrics,
    profile_trace,
    proginf_report,
)

__all__ = ["main", "collect_kernel_profiles"]


@contextmanager
def _ensure_profile(**meta):
    """The active profile, or a fresh one for the duration of the block."""
    existing = active()
    if existing is not None:
        yield existing
    else:
        with profile(**meta) as prof:
            yield prof


def collect_kernel_profiles(
    trace_ids: tuple[str, ...] | list[str] | None = None,
) -> tuple[Profile, dict[str, KernelProfile]]:
    """Profile kernels with per-kernel counters *and* an outer profile.

    The outer profile — the already-active one when called under
    ``repro.suite --perfmon``, a fresh one otherwise — carries one host
    span per kernel plus the merged counters; each kernel's own counters
    stay separate (the nested profile shadows the outer one while its
    trace executes) so PROGINF sections remain per kernel.
    """
    from repro.analysis.traces import TRACE_BUILDERS

    ids = KERNEL_IDS if trace_ids is None else tuple(trace_ids)
    unknown = [tid for tid in ids if tid not in TRACE_BUILDERS]
    if unknown:
        raise KeyError(
            f"unknown benchmark id(s): {', '.join(sorted(unknown))}; "
            f"known ids: {', '.join(TRACE_BUILDERS)}"
        )
    kernels: dict[str, KernelProfile] = {}
    with _ensure_profile(role="perfmon", kernels=list(ids)) as outer:
        for trace_id in ids:
            description, builder = TRACE_BUILDERS[trace_id]
            with span(f"kernel:{trace_id}", trace_id=trace_id):
                _, kernel_prof = profile_trace(builder())
            kernels[trace_id] = KernelProfile(
                trace_id=trace_id,
                description=description,
                counters=kernel_prof.counters,
                metrics=ProginfMetrics.from_counters(kernel_prof.counters),
            )
            outer.counters.merge(kernel_prof.counters)
    return outer, kernels


def _write_or_print(text: str, out: str | None) -> None:
    if out:
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        print(f"wrote {path}", file=sys.stderr)
    else:
        print(text, end="" if text.endswith("\n") else "\n")


def _cmd_report(args: argparse.Namespace) -> int:
    outer, kernels = collect_kernel_profiles(args.ids or None)
    print(proginf_report(kernels))
    if args.ftrace:
        print()
        print(render_ftrace(outer))
    if args.save:
        path = save_profile(args.save, outer, kernels)
        print(f"saved profile to {path}", file=sys.stderr)
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    if args.profile:
        loaded = load_profile(args.profile)
    else:
        outer, kernels = collect_kernel_profiles(args.ids or None)
        loaded = LoadedProfile(profile=outer, kernels=kernels)
    try:
        text = export_text(loaded, args.format)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    _write_or_print(text, args.out)
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    old, new = load_profile(args.old), load_profile(args.new)
    entries = diff_profiles(old, new, tolerance=args.tolerance)
    regressions = [entry for entry in entries if entry.regression]
    if args.json:
        payload = {
            "tolerance": args.tolerance,
            "regressions": len(regressions),
            "entries": [
                {
                    "kind": e.kind,
                    "subject": e.subject,
                    "old": e.old,
                    "new": e.new,
                    "delta_pct": e.delta_pct,
                    "regression": e.regression,
                }
                for e in entries
            ],
        }
        print(json.dumps(payload, indent=1, sort_keys=True))
    else:
        print(render_diff(entries, args.tolerance))
    return 1 if regressions else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perfmon",
        description="PROGINF/FTRACE-style reports from the emulated counters.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser("report", help="profile kernels and print PROGINF")
    p_report.add_argument("ids", nargs="*", metavar="kernel_id",
                          help="kernel ids (default: the 13 registered kernels)")
    p_report.add_argument("--ftrace", action="store_true",
                          help="also print the per-region FTRACE table")
    p_report.add_argument("--save", metavar="PATH",
                          help="write the profile document (JSON) to PATH")

    p_export = sub.add_parser("export", help="render a profile document")
    p_export.add_argument("ids", nargs="*", metavar="kernel_id",
                          help="kernel ids when profiling live (no --profile)")
    p_export.add_argument("--format", required=True, choices=EXPORT_FORMATS,
                          help="output format")
    p_export.add_argument("--profile", metavar="PATH",
                          help="saved profile document (default: profile live)")
    p_export.add_argument("--out", metavar="PATH",
                          help="write to PATH instead of stdout")

    p_diff = sub.add_parser("diff", help="compare two saved profile documents")
    p_diff.add_argument("old", metavar="OLD.json")
    p_diff.add_argument("new", metavar="NEW.json")
    p_diff.add_argument("--tolerance", type=float, default=0.05, metavar="T",
                        help="relative tolerance before a change counts "
                             "(default: 0.05)")
    p_diff.add_argument("--json", action="store_true",
                        help="emit machine-readable diff entries")

    args = parser.parse_args(argv)
    handlers = {"report": _cmd_report, "export": _cmd_export, "diff": _cmd_diff}
    try:
        return handlers[args.command](args)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
