"""The active-profile context: counter recording and span tracing.

A :class:`Profile` is one observed run: a
:class:`~repro.perfmon.counters.CounterSet` the machine components
populate, a list of :class:`Span` records from the instrumented layers
(suite runner, engine executor, discrete-event simulator), and free-form
metadata.  Exactly one profile is *active* at a time (a contextvar, so
nested profiles stack correctly); every recording helper is a cheap
no-op when none is active, which is what keeps the instrumented hot
paths honest when profiling is off.

Two clocks coexist, deliberately:

* ``host`` spans measure wall time on the machine running the
  reproduction (``time.perf_counter``), relative to profile start;
* ``sim`` spans live on the simulated SX-4 timeline — the
  :class:`SimSpanTracer` plugs into :class:`repro.events.Simulator`
  and records process lifetimes in simulated seconds.

Like :mod:`repro.perfmon.counters`, this module is a leaf: it must not
import :mod:`repro.machine`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any

from repro.perfmon.counters import CounterSet

__all__ = [
    "HOST_CLOCK",
    "SIM_CLOCK",
    "Span",
    "Profile",
    "active",
    "profile",
    "record",
    "span",
    "SimSpanTracer",
    "sim_tracer",
]

HOST_CLOCK = "host"
SIM_CLOCK = "sim"


@dataclass
class Span:
    """One timed region on either timeline.

    ``start_s``/``end_s`` are seconds relative to profile start for
    ``host`` spans and simulated seconds for ``sim`` spans.  ``parent``
    indexes the enclosing span in ``Profile.spans`` (host spans only;
    simulated processes interleave and carry no nesting), ``None`` for
    roots.  ``end_s`` stays ``None`` while the span is open — exporters
    skip unfinished spans.
    """

    name: str
    clock: str = HOST_CLOCK
    start_s: float = 0.0
    end_s: float | None = None
    parent: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float | None:
        if self.end_s is None:
            return None
        return self.end_s - self.start_s

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "clock": self.clock,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "parent": self.parent,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Span":
        return cls(
            name=str(payload["name"]),
            clock=str(payload.get("clock", HOST_CLOCK)),
            start_s=float(payload["start_s"]),
            end_s=None if payload.get("end_s") is None else float(payload["end_s"]),
            parent=payload.get("parent"),
            attrs=dict(payload.get("attrs", {})),
        )


@dataclass
class Profile:
    """Everything one observed run collected."""

    counters: CounterSet = field(default_factory=CounterSet)
    spans: list[Span] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)
    #: host-clock origin (``time.perf_counter`` at activation); span
    #: times are stored relative to it so profiles are comparable.
    origin_s: float = 0.0
    #: indices of the currently-open host spans (the nesting stack).
    _open: list[int] = field(default_factory=list, repr=False)

    def now_s(self) -> float:
        """Host seconds since this profile was activated."""
        return time.perf_counter() - self.origin_s

    def finished_spans(self, clock: str | None = None) -> list[Span]:
        """Spans with both endpoints, optionally filtered by clock."""
        return [
            s
            for s in self.spans
            if s.end_s is not None and (clock is None or s.clock == clock)
        ]


_ACTIVE: ContextVar[Profile | None] = ContextVar("repro_perfmon_profile", default=None)


def active() -> Profile | None:
    """The currently active profile, or None — THE guard every
    instrumentation site checks before doing any work."""
    return _ACTIVE.get()


@contextmanager
def profile(**meta: Any):
    """Activate a fresh :class:`Profile` for the duration of the block.

    >>> with profile(run="demo") as prof:
    ...     pass
    >>> prof.meta["run"]
    'demo'
    """
    prof = Profile(meta=dict(meta), origin_s=time.perf_counter())
    token = _ACTIVE.set(prof)
    try:
        yield prof
    finally:
        _ACTIVE.reset(token)


def record(component: str, increments: dict[str, float]) -> None:
    """Fold counter increments into the active profile (no-op if none)."""
    prof = _ACTIVE.get()
    if prof is not None and increments:
        prof.counters.add_many(component, increments)


@contextmanager
def span(name: str, **attrs: Any):
    """Open a host-clock span for the duration of the block.

    Nesting is tracked via the profile's open-span stack, so FTRACE
    reports can attribute exclusive time.  A no-op (yielding ``None``)
    when no profile is active.
    """
    prof = _ACTIVE.get()
    if prof is None:
        yield None
        return
    parent = prof._open[-1] if prof._open else None
    record_span = Span(
        name=name, clock=HOST_CLOCK, start_s=prof.now_s(), parent=parent, attrs=attrs
    )
    index = len(prof.spans)
    prof.spans.append(record_span)
    prof._open.append(index)
    try:
        yield record_span
    finally:
        record_span.end_s = prof.now_s()
        prof._open.pop()


class SimSpanTracer:
    """Adapter recording :class:`repro.events.Simulator` process
    lifetimes as ``sim``-clock spans in the active profile.

    The simulator calls :meth:`started` at each process's first step and
    :meth:`finished` when it returns; both carry the *simulated* time,
    so the recorded timeline is the deterministic one the event queue
    produced, independent of host speed.
    """

    def __init__(self, profile: Profile | None = None, prefix: str = "sim") -> None:
        self._profile = profile
        self.prefix = prefix
        self._open_by_id: dict[int, int] = {}

    def _target(self) -> Profile | None:
        return self._profile if self._profile is not None else _ACTIVE.get()

    def started(self, process: Any, now: float) -> None:
        prof = self._target()
        if prof is None:
            return
        name = f"{self.prefix}:{getattr(process, 'name', 'proc')}"
        self._open_by_id[id(process)] = len(prof.spans)
        prof.spans.append(Span(name=name, clock=SIM_CLOCK, start_s=now))

    def finished(self, process: Any, now: float) -> None:
        prof = self._target()
        if prof is None:
            return
        index = self._open_by_id.pop(id(process), None)
        if index is not None and index < len(prof.spans):
            prof.spans[index].end_s = now


def sim_tracer(prefix: str = "sim") -> SimSpanTracer | None:
    """A tracer for :class:`repro.events.Simulator`, or None when no
    profile is active (the simulator then skips all tracing calls)."""
    if _ACTIVE.get() is None:
        return None
    return SimSpanTracer(prefix=prefix)
