"""Hardware-counter emulation: the counter registry and CounterSet.

The SX series exposed its performance counters to users through the
PROGINF runtime summary — execution cycles, vector-element counts,
average vector length, FLOP count, memory/bank-conflict time.  This
module is the bookkeeping half of that emulation:

* :func:`declare_counters` — each machine component (``vector_unit``,
  ``scalar_unit``, ``memory``, ``cache``, ``ixs``, ``iop``, ``xmu``,
  ``processor``) declares the counters it populates, at import time.
  The declaration is what the repo linter's REPO006 rule checks: a
  component that consumes trace operations without declaring counters
  is invisible to the profiler, which is a bug, not a choice.
* :class:`CounterSet` — an additive ``component.counter -> float``
  store.  Components only ever *increment*; reports derive ratios
  (vector-operation ratio, average vector length, Mflops) afterwards.

This module is a leaf: machine components import it, so it must not
import anything from :mod:`repro.machine`.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

__all__ = [
    "COMPONENT_COUNTERS",
    "declare_counters",
    "declared_components",
    "CounterSet",
]

#: Component name -> declared counter names, populated by
#: :func:`declare_counters` calls at component-module import time.
COMPONENT_COUNTERS: dict[str, tuple[str, ...]] = {}


def declare_counters(component: str, names: tuple[str, ...]) -> None:
    """Register the counters a component populates.

    Idempotent and additive: re-declaring a component unions the names,
    so reloading a module never shrinks the registry.
    """
    if not component or not component.replace("_", "").isalnum():
        raise ValueError(f"component names are identifiers, got {component!r}")
    if not names:
        raise ValueError(f"component {component!r} must declare at least one counter")
    for name in names:
        if not name or not name.replace("_", "").isalnum():
            raise ValueError(f"counter names are identifiers, got {name!r}")
    existing = COMPONENT_COUNTERS.get(component, ())
    merged = tuple(dict.fromkeys(existing + tuple(names)))
    COMPONENT_COUNTERS[component] = merged


def declared_components() -> tuple[str, ...]:
    """Every component that has declared counters, in declaration order."""
    return tuple(COMPONENT_COUNTERS)


class CounterSet:
    """Additive performance counters, grouped by machine component.

    Increments are validated against the :data:`COMPONENT_COUNTERS`
    registry so a typo in a recording site fails loudly in tests rather
    than silently splitting a counter in two.
    """

    def __init__(self) -> None:
        self._values: dict[str, dict[str, float]] = {}

    # ------------------------------------------------------------ write
    def add(self, component: str, name: str, value: float = 1.0) -> None:
        """Increment one counter (declared components/names only)."""
        declared = COMPONENT_COUNTERS.get(component)
        if declared is None:
            raise KeyError(
                f"component {component!r} never called declare_counters(); "
                f"declared components: {', '.join(sorted(COMPONENT_COUNTERS))}"
            )
        if name not in declared:
            raise KeyError(
                f"counter {component}.{name} is not declared; declared "
                f"counters: {', '.join(declared)}"
            )
        bucket = self._values.setdefault(component, {})
        bucket[name] = bucket.get(name, 0.0) + float(value)

    def add_many(self, component: str, increments: Mapping[str, float]) -> None:
        """Increment several counters of one component."""
        for name, value in increments.items():
            self.add(component, name, value)

    def merge(self, other: "CounterSet") -> None:
        """Fold another CounterSet into this one (sum per counter)."""
        for component, bucket in other._values.items():
            for name, value in bucket.items():
                self.add(component, name, value)

    # ------------------------------------------------------------- read
    def get(self, component: str, name: str, default: float = 0.0) -> float:
        return self._values.get(component, {}).get(name, default)

    def component(self, component: str) -> dict[str, float]:
        """A copy of one component's counters (empty if never touched)."""
        return dict(self._values.get(component, {}))

    def components(self) -> tuple[str, ...]:
        """Components with at least one recorded counter, insertion order."""
        return tuple(self._values)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._values.values())

    def __bool__(self) -> bool:
        return bool(self._values)

    def __iter__(self) -> Iterator[tuple[str, str, float]]:
        """Yield (component, counter, value) triples in insertion order."""
        for component, bucket in self._values.items():
            for name, value in bucket.items():
                yield component, name, value

    # ------------------------------------------------ (de)serialization
    def to_dict(self) -> dict[str, dict[str, float]]:
        """Plain nested-dict form, for JSON export."""
        return {component: dict(bucket) for component, bucket in self._values.items()}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Mapping[str, float]]) -> "CounterSet":
        """Rebuild from :meth:`to_dict` output.

        Components/counters unknown to this build are kept verbatim (a
        profile written by a newer build must still diff against an old
        one), bypassing declaration checks.
        """
        counters = cls()
        for component, bucket in payload.items():
            target = counters._values.setdefault(str(component), {})
            for name, value in bucket.items():
                target[str(name)] = float(value)
        return counters
