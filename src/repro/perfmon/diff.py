"""Profile diffing: compare two runs' counters within a tolerance.

``repro.perfmon diff old.json new.json`` is the regression gate: it
compares every shared counter and every per-kernel PROGINF metric, and
classifies changes beyond the relative tolerance by *direction* — for
cost-like counters (cycles, seconds, misses, conflicts) an increase is
a regression, while for goodness metrics (Mflops, average vector
length, vector-operation ratio) a decrease is.  Everything else beyond
tolerance is reported as drift without a verdict.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmon.export import LoadedProfile

__all__ = ["DiffEntry", "diff_profiles", "render_diff"]

#: counter/metric name fragments where *more* means *slower*.
_COST_FRAGMENTS = ("cycles", "seconds", "time_s", "miss", "conflict", "busy")
#: PROGINF metrics where *less* means *slower*.
_GOODNESS_METRICS = frozenset(
    {"mflops", "raw_mflops", "avg_vector_length", "vector_op_ratio", "cache_hit_words"}
)


@dataclass(frozen=True)
class DiffEntry:
    """One counter or metric that changed beyond tolerance."""

    kind: str  # "counter" | "metric" | "presence"
    subject: str  # "vector_unit.flops" or "rfft.mflops"
    old: float | None
    new: float | None
    regression: bool

    @property
    def delta_pct(self) -> float | None:
        if self.old is None or self.new is None:
            return None
        if self.old == 0.0:
            return None
        return 100.0 * (self.new - self.old) / abs(self.old)


def _is_cost(name: str) -> bool:
    return any(fragment in name for fragment in _COST_FRAGMENTS)


def _beyond(old: float, new: float, tolerance: float) -> bool:
    if old == new:
        return False
    scale = max(abs(old), abs(new))
    if scale == 0.0:
        return False
    return abs(new - old) / scale > tolerance


def _classify(name: str, old: float, new: float, goodness: bool) -> bool:
    """Whether the change is a regression (slower/less accurate)."""
    if goodness:
        return new < old
    if _is_cost(name):
        return new > old
    return False


def _flatten_counters(loaded: LoadedProfile) -> dict[str, float]:
    return {
        f"{component}.{counter}": value for component, counter, value in loaded.profile.counters
    }


def _flatten_metrics(loaded: LoadedProfile) -> dict[str, float]:
    flat: dict[str, float] = {}
    for kid, kernel in loaded.kernels.items():
        if kernel.metrics is None:
            continue
        for metric, value in kernel.metrics.to_dict().items():
            flat[f"{kid}.{metric}"] = value
    return flat


def diff_profiles(
    old: LoadedProfile, new: LoadedProfile, tolerance: float = 0.05
) -> list[DiffEntry]:
    """All changes beyond ``tolerance`` (relative), regressions first."""
    if tolerance < 0:
        raise ValueError(f"tolerance cannot be negative, got {tolerance}")
    entries: list[DiffEntry] = []
    for kind, old_flat, new_flat in (
        ("counter", _flatten_counters(old), _flatten_counters(new)),
        ("metric", _flatten_metrics(old), _flatten_metrics(new)),
    ):
        for subject in sorted(old_flat.keys() | new_flat.keys()):
            before, after = old_flat.get(subject), new_flat.get(subject)
            if before is None or after is None:
                entries.append(
                    DiffEntry(kind="presence", subject=subject, old=before, new=after,
                              regression=False)
                )
                continue
            if not _beyond(before, after, tolerance):
                continue
            metric_name = subject.rsplit(".", 1)[-1]
            goodness = kind == "metric" and metric_name in _GOODNESS_METRICS
            entries.append(
                DiffEntry(
                    kind=kind,
                    subject=subject,
                    old=before,
                    new=after,
                    regression=_classify(metric_name, before, after, goodness),
                )
            )
    entries.sort(key=lambda e: (not e.regression, e.kind, e.subject))
    return entries


def render_diff(entries: list[DiffEntry], tolerance: float) -> str:
    """Human-readable diff table."""
    if not entries:
        return f"no counter or metric drift beyond {tolerance:.1%} tolerance"
    lines = [
        f"{len(entries)} change(s) beyond {tolerance:.1%} tolerance "
        f"({sum(e.regression for e in entries)} regression(s)):",
        f"{'':2}{'SUBJECT':<44} {'OLD':>16} {'NEW':>16} {'DELTA':>9}",
    ]
    for entry in entries:
        flag = "✗" if entry.regression else ("±" if entry.kind != "presence" else "?")
        old = "-" if entry.old is None else f"{entry.old:16.6g}"
        new = "-" if entry.new is None else f"{entry.new:16.6g}"
        pct = entry.delta_pct
        delta = "-" if pct is None else f"{pct:+8.2f}%"
        lines.append(f"{flag:>2}{entry.subject:<44} {old:>16} {new:>16} {delta:>9}")
    return "\n".join(lines)
