"""Exporters: profile JSON, Prometheus text, and Chrome trace_event.

One serialised profile document (``schema_version`` 1) carries the
counters, spans, metadata, and per-kernel PROGINF sections of a run;
``save_profile``/``load_profile`` round-trip it through JSON.  From a
loaded (or live) profile this module renders:

* ``json`` — the document itself, pretty-printed;
* ``ftrace`` — the per-region text table (:mod:`repro.perfmon.ftrace`);
* ``prometheus`` — text exposition format, counters as
  ``repro_perfmon_counter`` and PROGINF metrics as ``repro_proginf``;
* ``chrome`` — ``trace_event`` JSON loadable in ``chrome://tracing`` /
  Perfetto, host spans on pid 1 and simulated spans on pid 2 (lanes
  assigned greedily so overlapping sim processes render side by side).

``validate_chrome_trace`` checks the emitted document against the
trace_event schema; CI fails the perfmon smoke job on its errors.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.perfmon.collector import HOST_CLOCK, SIM_CLOCK, Profile, Span
from repro.perfmon.counters import CounterSet
from repro.perfmon.ftrace import render_ftrace
from repro.perfmon.proginf import KernelProfile, proginf_report
from repro.units import US

__all__ = [
    "PROFILE_SCHEMA_VERSION",
    "EXPORT_FORMATS",
    "LoadedProfile",
    "profile_to_dict",
    "profile_from_dict",
    "save_profile",
    "load_profile",
    "export_text",
    "to_prometheus",
    "to_chrome_trace",
    "validate_chrome_trace",
]

PROFILE_SCHEMA_VERSION = 1

#: pid values in the Chrome trace: one "process" per timeline.
_CHROME_HOST_PID = 1
_CHROME_SIM_PID = 2

_CHROME_PHASES = frozenset({"B", "E", "X", "i", "C", "M", "b", "e", "n", "s", "t", "f"})


@dataclass
class LoadedProfile:
    """A deserialised profile document."""

    profile: Profile
    kernels: dict[str, KernelProfile] = field(default_factory=dict)


def profile_to_dict(
    profile: Profile, kernels: dict[str, KernelProfile] | None = None
) -> dict[str, Any]:
    """The schema-versioned profile document."""
    return {
        "schema_version": PROFILE_SCHEMA_VERSION,
        "meta": dict(profile.meta),
        "counters": profile.counters.to_dict(),
        "spans": [span.to_dict() for span in profile.spans],
        "kernels": {kid: kernel.to_dict() for kid, kernel in (kernels or {}).items()},
    }


def profile_from_dict(payload: dict[str, Any]) -> LoadedProfile:
    """Rebuild a profile document; raises ``ValueError`` on bad shape."""
    if not isinstance(payload, dict):
        raise ValueError(f"profile document must be an object, got {type(payload).__name__}")
    version = payload.get("schema_version")
    if version != PROFILE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported profile schema_version {version!r} "
            f"(this build reads {PROFILE_SCHEMA_VERSION})"
        )
    profile = Profile(
        counters=CounterSet.from_dict(payload.get("counters", {})),
        spans=[Span.from_dict(s) for s in payload.get("spans", [])],
        meta=dict(payload.get("meta", {})),
    )
    kernels = {
        str(kid): KernelProfile.from_dict(kernel)
        for kid, kernel in payload.get("kernels", {}).items()
    }
    return LoadedProfile(profile=profile, kernels=kernels)


def save_profile(
    path: str | Path, profile: Profile, kernels: dict[str, KernelProfile] | None = None
) -> Path:
    """Write the profile document to ``path`` as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(profile_to_dict(profile, kernels), indent=2) + "\n")
    return path


def load_profile(path: str | Path) -> LoadedProfile:
    """Read a profile document written by :func:`save_profile`."""
    return profile_from_dict(json.loads(Path(path).read_text()))


# -- Prometheus text exposition ---------------------------------------------


def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def to_prometheus(profile: Profile, kernels: dict[str, KernelProfile] | None = None) -> str:
    """Prometheus text format: counters plus per-kernel PROGINF gauges."""
    lines = [
        "# HELP repro_perfmon_counter Emulated SX hardware counter (PROGINF source data).",
        "# TYPE repro_perfmon_counter gauge",
    ]
    for component, counter, value in profile.counters:
        lines.append(
            f'repro_perfmon_counter{{component="{_prom_escape(component)}",'
            f'counter="{_prom_escape(counter)}"}} {value!r}'
        )
    if kernels:
        lines.append("# HELP repro_proginf Derived PROGINF metric for one benchmark kernel.")
        lines.append("# TYPE repro_proginf gauge")
        for kid, kernel in kernels.items():
            if kernel.metrics is None:
                continue
            for metric, value in kernel.metrics.to_dict().items():
                lines.append(
                    f'repro_proginf{{kernel="{_prom_escape(kid)}",'
                    f'metric="{_prom_escape(metric)}"}} {value!r}'
                )
    return "\n".join(lines) + "\n"


# -- Chrome trace_event ------------------------------------------------------


def _sim_lanes(spans: list[Span]) -> list[int]:
    """Greedy lane assignment so overlapping sim spans get distinct tids."""
    order = sorted(range(len(spans)), key=lambda i: (spans[i].start_s, spans[i].end_s or 0.0))
    lane_free_at: list[float] = []
    lanes = [0] * len(spans)
    for index in order:
        span = spans[index]
        for lane, free_at in enumerate(lane_free_at):
            if free_at <= span.start_s:
                lanes[index] = lane
                lane_free_at[lane] = span.end_s or span.start_s
                break
        else:
            lanes[index] = len(lane_free_at)
            lane_free_at.append(span.end_s or span.start_s)
    return lanes


def _span_attrs_args(span: Span) -> dict[str, Any]:
    return {key: value for key, value in span.attrs.items()}


def to_chrome_trace(profile: Profile) -> dict[str, Any]:
    """The Chrome ``trace_event`` document for a profile's spans.

    Timestamps are microseconds (the format's unit); ``ph: "X"``
    complete events carry durations.  Host spans share one thread (their
    nesting is reconstructed by the viewer from containment); simulated
    spans are spread across lanes because concurrent processes genuinely
    overlap on the simulated timeline.
    """
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _CHROME_HOST_PID,
            "tid": 0,
            "ts": 0,
            "args": {"name": "host (wall clock)"},
        },
        {
            "name": "process_name",
            "ph": "M",
            "pid": _CHROME_SIM_PID,
            "tid": 0,
            "ts": 0,
            "args": {"name": "simulated SX-4 timeline"},
        },
    ]
    for span in profile.finished_spans(HOST_CLOCK):
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "pid": _CHROME_HOST_PID,
                "tid": 1,
                "ts": span.start_s / US,
                "dur": (span.duration_s or 0.0) / US,
                "cat": HOST_CLOCK,
                "args": _span_attrs_args(span),
            }
        )
    sim_spans = profile.finished_spans(SIM_CLOCK)
    lanes = _sim_lanes(sim_spans)
    for span, lane in zip(sim_spans, lanes):
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "pid": _CHROME_SIM_PID,
                "tid": lane + 1,
                "ts": span.start_s / US,
                "dur": (span.duration_s or 0.0) / US,
                "cat": SIM_CLOCK,
                "args": _span_attrs_args(span),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(payload: Any) -> list[str]:
    """Errors that would make ``chrome://tracing`` reject the document.

    Empty list means the document conforms to the trace_event schema
    (object form: ``traceEvents`` array of event objects with ``name``,
    ``ph``, ``pid``, ``tid``, ``ts``, and ``dur`` on complete events).
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        return [f"top level must be an object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' must be an array"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: event must be an object")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: 'name' must be a non-empty string")
        ph = event.get("ph")
        if ph not in _CHROME_PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                errors.append(f"{where}: '{key}' must be an integer")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            errors.append(f"{where}: 'ts' must be a non-negative number")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
                errors.append(f"{where}: complete events need a non-negative 'dur'")
        if "args" in event and not isinstance(event["args"], dict):
            errors.append(f"{where}: 'args' must be an object")
    return errors


# -- format dispatch for the CLI --------------------------------------------


def export_text(loaded: LoadedProfile, fmt: str) -> str:
    """Render a loaded profile in one of :data:`EXPORT_FORMATS`."""
    if fmt == "json":
        return json.dumps(profile_to_dict(loaded.profile, loaded.kernels), indent=2) + "\n"
    if fmt == "prometheus":
        return to_prometheus(loaded.profile, loaded.kernels)
    if fmt == "chrome":
        document = to_chrome_trace(loaded.profile)
        errors = validate_chrome_trace(document)
        if errors:
            detail = "; ".join(errors[:5])
            raise ValueError(f"generated chrome trace failed validation: {detail}")
        return json.dumps(document, indent=2) + "\n"
    if fmt == "ftrace":
        parts = [render_ftrace(loaded.profile, HOST_CLOCK)]
        if loaded.profile.finished_spans(SIM_CLOCK):
            parts.append(render_ftrace(loaded.profile, SIM_CLOCK))
        if loaded.kernels:
            parts.append(proginf_report(loaded.kernels))
        return "\n\n".join(parts) + "\n"
    known = ", ".join(sorted(EXPORT_FORMATS))
    raise ValueError(f"unknown export format {fmt!r}; known formats: {known}")


EXPORT_FORMATS = ("json", "prometheus", "chrome", "ftrace")
