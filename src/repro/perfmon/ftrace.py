"""FTRACE: per-region profile tables from recorded spans.

NEC's FTRACE instrumented every routine entry/exit and printed a table
of call counts with exclusive/inclusive times.  Here the "routines" are
the spans recorded by :func:`repro.perfmon.collector.span` (host clock)
and :class:`~repro.perfmon.collector.SimSpanTracer` (simulated clock);
this module folds them into the same table.

Exclusive time is inclusive time minus the inclusive time of *direct*
children (known from the span parent links); sim spans carry no parent
links, so their exclusive time equals their inclusive time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmon.collector import HOST_CLOCK, Profile, Span

__all__ = ["RegionStat", "aggregate_spans", "render_ftrace"]


@dataclass
class RegionStat:
    """Aggregated timing for every span sharing one name."""

    name: str
    calls: int
    inclusive_s: float
    exclusive_s: float
    min_s: float
    max_s: float

    @property
    def mean_s(self) -> float:
        return self.inclusive_s / self.calls if self.calls else 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "calls": self.calls,
            "inclusive_s": self.inclusive_s,
            "exclusive_s": self.exclusive_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
        }


def _exclusive_durations(spans: list[Span]) -> list[float]:
    """Per-span exclusive seconds, subtracting direct children only."""
    exclusive = [span.duration_s for span in spans]
    for span in spans:
        if span.parent is not None and 0 <= span.parent < len(exclusive):
            exclusive[span.parent] -= span.duration_s
    return exclusive


def aggregate_spans(profile: Profile, clock: str = HOST_CLOCK) -> list[RegionStat]:
    """Fold one clock's finished spans into per-name region stats.

    Sorted by exclusive time, largest first — the FTRACE ordering.
    """
    spans = profile.finished_spans(clock)
    exclusive = _exclusive_durations(spans)
    stats: dict[str, RegionStat] = {}
    for span, excl in zip(spans, exclusive):
        dur = span.duration_s
        stat = stats.get(span.name)
        if stat is None:
            stats[span.name] = RegionStat(
                name=span.name, calls=1, inclusive_s=dur, exclusive_s=excl, min_s=dur, max_s=dur
            )
        else:
            stat.calls += 1
            stat.inclusive_s += dur
            stat.exclusive_s += excl
            stat.min_s = min(stat.min_s, dur)
            stat.max_s = max(stat.max_s, dur)
    return sorted(stats.values(), key=lambda s: (-s.exclusive_s, s.name))


def render_ftrace(profile: Profile, clock: str = HOST_CLOCK) -> str:
    """The FTRACE table for one clock's spans."""
    stats = aggregate_spans(profile, clock)
    title = f"*----------------------*  FTRACE ({clock} clock)  *----------------------*"
    header = (
        f"{'PROG.UNIT':<32} {'FREQUENCY':>9} {'EXCLUSIVE':>12} {'(%)':>6} "
        f"{'INCLUSIVE':>12} {'AVER.TIME':>12}"
    )
    if not stats:
        return f"{title}\n{header}\n  (no {clock}-clock spans recorded)"
    total_exclusive = sum(s.exclusive_s for s in stats) or 1.0
    lines = [title, header]
    for stat in stats:
        pct = 100.0 * stat.exclusive_s / total_exclusive
        lines.append(
            f"{stat.name:<32} {stat.calls:>9} {stat.exclusive_s:>12.6f} {pct:>6.1f} "
            f"{stat.inclusive_s:>12.6f} {stat.mean_s:>12.6f}"
        )
    total_calls = sum(s.calls for s in stats)
    total_inclusive = sum(s.inclusive_s for s in stats)
    lines.append("-" * len(header))
    lines.append(
        f"{'total':<32} {total_calls:>9} {sum(s.exclusive_s for s in stats):>12.6f} "
        f"{100.0:>6.1f} {total_inclusive:>12.6f}"
    )
    return "\n".join(lines)
