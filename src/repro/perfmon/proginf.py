"""PROGINF: the SX-style end-of-run hardware-counter summary.

NEC's PROGINF printed, after every run, the counters the paper's whole
argument rests on: real/vector time, instruction and vector-element
counts, FLOP count, Mflops, average vector length, vector-operation
ratio, and memory/bank-conflict time.  This module derives exactly
those quantities from a populated
:class:`~repro.perfmon.counters.CounterSet` and renders the classic
report — per kernel, the way FTRACE regions sectioned it.

Definitions (matching the counter emulation in :mod:`repro.machine`):

* **vector operation ratio** = vector elements / (vector elements +
  scalar instructions),
* **average vector length** = vector elements / vector instructions,
  where an instruction is one strip-mined issue (register-length cap),
* **Mflops** = Cray-equivalent flops / real time (the tables' units).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.analysis.traces import TRACE_BUILDERS
from repro.machine.compiled import resolve_engine
from repro.machine.operations import Trace
from repro.machine.presets import sx4_processor
from repro.machine.processor import ExecutionReport, Processor
from repro.perfmon.collector import Profile, profile
from repro.perfmon.counters import CounterSet
from repro.units import MEGA

__all__ = [
    "APPLICATION_IDS",
    "KERNEL_IDS",
    "ProginfMetrics",
    "KernelProfile",
    "profile_trace",
    "profile_kernels",
    "render_proginf",
    "proginf_report",
]

#: The three full geophysical applications; everything else registered
#: in :data:`repro.analysis.traces.TRACE_BUILDERS` is kernel-grade.
APPLICATION_IDS = ("ccm2", "mom", "pop")

#: The 13 kernel traces PROGINF sections are emitted for (the NCAR
#: kernels at their representative sizes, including both RADABS coding
#: styles and the vectorised-CSHIFT POP diagnosis loop).
KERNEL_IDS: tuple[str, ...] = tuple(
    trace_id for trace_id in TRACE_BUILDERS if trace_id not in APPLICATION_IDS
)


@dataclass(frozen=True)
class ProginfMetrics:
    """The derived PROGINF quantities for one counter set."""

    real_time_s: float
    vector_time_s: float
    scalar_time_s: float
    instructions: float  # scalar issue slots (PROGINF "Inst. Count")
    vector_instructions: float
    vector_elements: float
    flops: float  # genuine adds/multiplies
    flop_equivalents: float  # with Cray-HPM intrinsic credits
    mflops: float  # flop-equivalents / real time
    raw_mflops: float
    avg_vector_length: float
    vector_op_ratio: float  # in [0, 1]
    memory_busy_s: float
    bank_conflict_s: float
    intrinsic_calls: float
    cache_hit_words: float = 0.0
    cache_miss_words: float = 0.0

    @classmethod
    def from_counters(cls, counters: CounterSet) -> "ProginfMetrics":
        """Derive every PROGINF quantity from recorded counters alone."""
        seconds = counters.get("processor", "seconds")
        cycles = counters.get("processor", "cycles")
        # cycle -> second conversion as recorded (one clock per profile
        # in per-kernel use; a best-effort average across machines in
        # whole-suite aggregates).
        second_per_cycle = seconds / cycles if cycles > 0 else 0.0
        vector_elements = counters.get("vector_unit", "vector_elements")
        vector_instructions = counters.get("vector_unit", "vector_instructions")
        instructions = counters.get("scalar_unit", "instructions")
        flops = counters.get("vector_unit", "flops") + counters.get("scalar_unit", "flops")
        equiv = counters.get("vector_unit", "flop_equivalents") + counters.get(
            "scalar_unit", "flop_equivalents"
        )
        denom = vector_elements + instructions
        return cls(
            real_time_s=seconds,
            vector_time_s=counters.get("processor", "vector_cycles") * second_per_cycle,
            scalar_time_s=counters.get("processor", "scalar_cycles") * second_per_cycle,
            instructions=instructions,
            vector_instructions=vector_instructions,
            vector_elements=vector_elements,
            flops=flops,
            flop_equivalents=equiv,
            mflops=equiv / seconds / MEGA if seconds > 0 else 0.0,
            raw_mflops=flops / seconds / MEGA if seconds > 0 else 0.0,
            avg_vector_length=(
                vector_elements / vector_instructions if vector_instructions > 0 else 0.0
            ),
            vector_op_ratio=vector_elements / denom if denom > 0 else 0.0,
            memory_busy_s=counters.get("memory", "transfer_cycles") * second_per_cycle,
            bank_conflict_s=counters.get("memory", "bank_conflict_cycles") * second_per_cycle,
            intrinsic_calls=(
                counters.get("vector_unit", "intrinsic_calls")
                + counters.get("scalar_unit", "intrinsic_calls")
            ),
            cache_hit_words=counters.get("cache", "hit_words"),
            cache_miss_words=counters.get("cache", "miss_words"),
        )

    def to_dict(self) -> dict[str, float]:
        return asdict(self)


@dataclass
class KernelProfile:
    """One kernel's counters and derived metrics, ready to export."""

    trace_id: str
    description: str
    counters: CounterSet = field(default_factory=CounterSet)
    metrics: ProginfMetrics | None = None

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "description": self.description,
            "counters": self.counters.to_dict(),
            "metrics": self.metrics.to_dict() if self.metrics is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "KernelProfile":
        counters = CounterSet.from_dict(payload.get("counters", {}))
        metrics = payload.get("metrics")
        return cls(
            trace_id=str(payload["trace_id"]),
            description=str(payload.get("description", "")),
            counters=counters,
            metrics=ProginfMetrics(**metrics) if metrics else None,
        )


def profile_trace(
    trace: Trace, processor: Processor | None = None, engine: str | None = None
) -> tuple[ExecutionReport, Profile]:
    """Execute a trace under a fresh profile; return report + profile.

    The default machine is the calibrated SX-4 — the machine whose
    PROGINF the subsystem emulates.  ``engine`` selects the costing path
    (``"compiled"``/``"legacy"``, default the process engine) and is
    recorded in the profile metadata so saved profiles say which path
    produced their counters.
    """
    processor = processor or sx4_processor()
    resolved = resolve_engine(engine)
    with profile(machine=processor.name, trace=trace.name, engine=resolved) as prof:
        report = processor.execute(trace, engine=resolved)
    return report, prof


def profile_kernels(
    trace_ids: tuple[str, ...] | list[str] | None = None,
    processor: Processor | None = None,
) -> dict[str, KernelProfile]:
    """Profile registered kernel traces, each in its own counter set."""
    ids = KERNEL_IDS if trace_ids is None else tuple(trace_ids)
    processor = processor or sx4_processor()
    kernels: dict[str, KernelProfile] = {}
    for trace_id in ids:
        try:
            description, builder = TRACE_BUILDERS[trace_id]
        except KeyError:
            known = ", ".join(sorted(TRACE_BUILDERS))
            raise KeyError(
                f"unknown benchmark id {trace_id!r}; known ids: {known}"
            ) from None
        _, prof = profile_trace(builder(), processor)
        kernels[trace_id] = KernelProfile(
            trace_id=trace_id,
            description=description,
            counters=prof.counters,
            metrics=ProginfMetrics.from_counters(prof.counters),
        )
    return kernels


def _fmt_count(value: float) -> str:
    return f"{value:,.0f}"


def render_proginf(metrics: ProginfMetrics, title: str = "") -> str:
    """The classic PROGINF block for one counter set."""
    lines = ["******  Program Information  ******"]
    if title:
        lines.append(f"  Program                   : {title}")
    rows = [
        ("Real Time (sec)", f"{metrics.real_time_s:14.6f}"),
        ("Vector Time (sec)", f"{metrics.vector_time_s:14.6f}"),
        ("Scalar Time (sec)", f"{metrics.scalar_time_s:14.6f}"),
        ("Inst. Count", _fmt_count(metrics.instructions)),
        ("V. Inst. Count", _fmt_count(metrics.vector_instructions)),
        ("V. Element Count", _fmt_count(metrics.vector_elements)),
        ("FLOP Count", _fmt_count(metrics.flop_equivalents)),
        ("MFLOPS", f"{metrics.mflops:14.1f}"),
        ("MFLOPS (raw)", f"{metrics.raw_mflops:14.1f}"),
        ("Average Vector Length", f"{metrics.avg_vector_length:14.1f}"),
        ("Vector Op. Ratio (%)", f"{metrics.vector_op_ratio * 100.0:14.4f}"),
        ("Memory Busy Time (sec)", f"{metrics.memory_busy_s:14.6f}"),
        ("Bank Conflict Time (sec)", f"{metrics.bank_conflict_s:14.6f}"),
        ("Intrinsic Call Count", _fmt_count(metrics.intrinsic_calls)),
    ]
    if metrics.cache_hit_words or metrics.cache_miss_words:
        rows.append(("Cache Hit Words", _fmt_count(metrics.cache_hit_words)))
        rows.append(("Cache Miss Words", _fmt_count(metrics.cache_miss_words)))
    lines.extend(f"  {label:<26}: {value.strip():>18}" for label, value in rows)
    return "\n".join(lines)


def proginf_report(kernels: dict[str, KernelProfile]) -> str:
    """PROGINF sections for several kernels, in registry order."""
    sections = []
    for trace_id, kernel in kernels.items():
        metrics = kernel.metrics or ProginfMetrics.from_counters(kernel.counters)
        sections.append(render_proginf(metrics, title=f"{trace_id} — {kernel.description}"))
    return "\n\n".join(sections)
