"""SUPER-UX scheduling machinery: resource blocks and PRODLOAD.

``resource_blocks``
    Section 2.6.4's Resource Blocking: logical scheduling groups mapped
    onto the SX-4's processors, each with CPU bounds, a memory limit and
    a scheduling policy.
``jobs``
    PRODLOAD's job components: CCM2 runs (via the CCM2 cost model) and
    the HIPPI test, with their CPU requests.
``prodload``
    The production-workload benchmark itself (Section 4.6): four tests
    of concurrent job sequences on a 32-CPU node, measured by total wall
    clock.  The paper's machine completed it in 93 minutes 28 seconds.
"""

from repro.scheduler.resource_blocks import ResourceBlock, ResourceBlockSet
from repro.scheduler.jobs import Component, JobSpec, prodload_job
from repro.scheduler.prodload import ProdloadResult, run_prodload

__all__ = [
    "ResourceBlock",
    "ResourceBlockSet",
    "Component",
    "JobSpec",
    "prodload_job",
    "ProdloadResult",
    "run_prodload",
]
