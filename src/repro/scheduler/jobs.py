"""PRODLOAD job construction (Section 4.6).

"We define a 'job' to be composed of the HIPPI Benchmark and three
copies of the CCM2 executing simultaneously.  The CCM2 runs are a 3-day
simulation at resolution T106 and two 20-day simulations at T42
resolution.  A job is considered complete when all of its components are
finished executing."

Component durations come from the CCM2 cost model (steps × per-step wall
time at the component's CPU allocation) and the HIPPI channel model (a
fixed bulk-transfer workload).  CPU allocations are chosen so four
concurrent jobs fill the 32-CPU node, which is how test 3 is shaped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.ccm2 import costmodel as ccm2_cost
from repro.iosim.hippi import HippiChannel
from repro.machine.node import Node
from repro.units import GB

__all__ = [
    "Component",
    "JobSpec",
    "ccm2_component",
    "hippi_component",
    "prodload_job",
    "T106_CPUS",
    "T42_CPUS",
    "HIPPI_CPUS",
]

#: CPU allocations per component: 3+2+2+1 = 8 CPUs per job, so the four
#: concurrent job streams of test 3 exactly fill the 32-CPU node — the
#: configuration that lands the simulated total within ~4% of the
#: paper's 93m28s.
T106_CPUS = 3
T42_CPUS = 2
HIPPI_CPUS = 1
#: Bulk data the HIPPI component pushes (Mass-Storage-System staging).
HIPPI_WORKLOAD_BYTES = 20 * GB


@dataclass(frozen=True)
class Component:
    """One concurrently executing piece of a PRODLOAD job."""

    name: str
    cpus: int
    duration_s: float

    def __post_init__(self) -> None:
        if self.cpus < 1:
            raise ValueError(f"component {self.name!r} needs at least one CPU")
        if self.duration_s <= 0:
            raise ValueError(f"component {self.name!r} duration must be positive")


@dataclass(frozen=True)
class JobSpec:
    """A PRODLOAD job: components that start together; the job ends when
    the last component finishes."""

    name: str
    components: tuple[Component, ...]

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError(f"job {self.name!r} needs at least one component")

    @property
    def cpus(self) -> int:
        return sum(c.cpus for c in self.components)

    @property
    def critical_duration_s(self) -> float:
        """Duration if all components start immediately (no queueing)."""
        return max(c.duration_s for c in self.components)


def ccm2_component(
    node: Node, name: str, res: str, days: float, cpus: int, other_active_cpus: int = 0
) -> Component:
    """A CCM2 run priced by the cost model at its CPU allocation."""
    if days <= 0:
        raise ValueError(f"simulation length must be positive, got {days}")
    step = ccm2_cost.parallel_step(node, res, cpus, other_active_cpus=other_active_cpus)
    steps = ccm2_cost.resolution(res).steps_for_days(days)
    return Component(name=name, cpus=cpus, duration_s=step.seconds * steps)


def hippi_component(name: str = "hippi", channel: HippiChannel | None = None) -> Component:
    """The HIPPI test: a bulk transfer at the largest packet size."""
    channel = channel or HippiChannel()
    duration = channel.transfer_seconds(HIPPI_WORKLOAD_BYTES, packet_bytes=16 * 2**20)
    return Component(name=name, cpus=HIPPI_CPUS, duration_s=duration)


def prodload_job(node: Node, name: str, concurrent_jobs: int = 1) -> JobSpec:
    """One PRODLOAD job: HIPPI + T106 3-day + two T42 20-day runs.

    ``concurrent_jobs`` informs the CCM2 cost model how many sibling jobs
    share the node, so memory contention is priced (the effect Table 6
    quantifies).
    """
    if concurrent_jobs < 1:
        raise ValueError(f"need at least one job stream, got {concurrent_jobs}")
    others = (concurrent_jobs - 1) * (T106_CPUS + 2 * T42_CPUS + HIPPI_CPUS)
    others = min(others, node.cpu_count - (T106_CPUS + 2 * T42_CPUS + HIPPI_CPUS))
    return JobSpec(
        name=name,
        components=(
            hippi_component(f"{name}/hippi"),
            ccm2_component(node, f"{name}/t106-3day", "T106L18", 3.0, T106_CPUS, others),
            ccm2_component(node, f"{name}/t42-20day-a", "T42L18", 20.0, T42_CPUS, others),
            ccm2_component(node, f"{name}/t42-20day-b", "T42L18", 20.0, T42_CPUS, others),
        ),
    )
