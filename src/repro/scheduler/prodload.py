"""PRODLOAD: the production-workload benchmark (Section 4.6).

Four tests, run one after another, each measured start-of-first-job to
end-of-last-job:

1. one sequence of four jobs run one after another,
2. two such sequences run concurrently,
3. four such sequences run concurrently (28 of 32 CPUs busy),
4. two CCM2 2-day runs at T170 executing concurrently.

"The performance measurement in this benchmark is the wall clock time
required to complete the entire benchmark."  The NEC SX-4/32 completed
it in 93 minutes and 28 seconds (5608 s) with the 9.2 ns clock.

The simulation runs on the discrete-event engine with the node's CPUs as
a counted resource; job components acquire their CPUs, run for their
cost-model durations, and release.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.events import Acquire, Release, Resource, Simulator
from repro.machine.node import Node
from repro.perfmon.collector import sim_tracer
from repro.machine.presets import sx4_node
from repro.scheduler.jobs import JobSpec, ccm2_component, prodload_job

__all__ = ["ProdloadResult", "run_prodload", "PAPER_TOTAL_SECONDS"]

#: The paper's result: 93 minutes 28 seconds.
PAPER_TOTAL_SECONDS = 93 * 60 + 28


@dataclass
class ProdloadResult:
    """Per-test and total wall-clock times."""

    test_seconds: dict[str, float] = field(default_factory=dict)
    job_records: list[tuple[str, float, float]] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(self.test_seconds.values())

    @property
    def total_minutes(self) -> float:
        return self.total_seconds / 60.0


def _run_concurrent_sequences(
    sequences: list[list[JobSpec]], cpu_count: int
) -> tuple[float, list[tuple[str, float, float]]]:
    """Simulate sequences of jobs; each sequence runs its jobs serially,
    sequences run concurrently, components contend for the CPU pool."""
    sim = Simulator(tracer=sim_tracer(prefix="prodload"))
    cpus = Resource(cpu_count, "cpus")
    records: list[tuple[str, float, float]] = []

    def component_proc(comp):
        yield Acquire(cpus, comp.cpus)
        start = sim.now
        yield comp.duration_s
        yield Release(cpus, comp.cpus)
        records.append((comp.name, start, sim.now))
        return comp.name

    def job_proc(job: JobSpec):
        children = [
            sim.spawn(component_proc(c), name=c.name) for c in job.components
        ]
        for child in children:
            yield child
        return job.name

    def sequence_proc(jobs: list[JobSpec]):
        for job in jobs:
            done = sim.spawn(job_proc(job), name=job.name)
            yield done
        return len(jobs)

    procs = [
        sim.spawn(sequence_proc(jobs), name=f"seq{i}")
        for i, jobs in enumerate(sequences)
    ]
    sim.run()
    wall = max(p.finish_time for p in procs)
    return wall, records


def run_prodload(node: Node | None = None, jobs_per_sequence: int = 4) -> ProdloadResult:
    """Run all four PRODLOAD tests and report wall-clock times.

    Job durations are priced with the contention appropriate to each
    test's concurrency (test 3's four streams see the most).
    """
    node = node or sx4_node()
    if jobs_per_sequence < 1:
        raise ValueError(f"need at least one job per sequence, got {jobs_per_sequence}")
    result = ProdloadResult()

    for test_name, streams in (("test1", 1), ("test2", 2), ("test3", 4)):
        sequences = [
            [
                prodload_job(node, f"{test_name}/s{s}j{j}", concurrent_jobs=streams)
                for j in range(jobs_per_sequence)
            ]
            for s in range(streams)
        ]
        wall, records = _run_concurrent_sequences(sequences, node.cpu_count)
        result.test_seconds[test_name] = wall
        result.job_records.extend(records)

    # Test 4: two concurrent 2-day T170 runs, half the node each.
    half = node.cpu_count // 2
    t170 = [
        JobSpec(
            name=f"test4/t170-{k}",
            components=(
                ccm2_component(
                    node, f"test4/t170-{k}", "T170L18", 2.0, half,
                    other_active_cpus=node.cpu_count - half,
                ),
            ),
        )
        for k in range(2)
    ]
    wall, records = _run_concurrent_sequences([[job] for job in t170], node.cpu_count)
    result.test_seconds["test4"] = wall
    result.job_records.extend(records)
    return result
