"""Resource Blocking (Section 2.6.4).

"SUPER-UX has a feature called Resource Blocking which allows the system
administrator to define logical scheduling groups which are mapped onto
the SX-4 processors.  Each Resource Block has a maximum and minimum
processor count, memory limits, and scheduling characteristics ..."
Part of an SX-4 can serve interactive work while another runs static
parallel FIFO scheduling, and "all processors can be assigned to a
single process by properly defining the Resource Blocks."

The model: a block set validates against the node size, admits jobs by
CPU/memory demand, and routes each job to the first policy-compatible
block with room.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ResourceBlock", "ResourceBlockSet", "Policy"]

#: Scheduling characteristics Section 2.6.4 names.
Policy = str
POLICIES = ("interactive", "fifo", "batch")


@dataclass
class ResourceBlock:
    """One logical scheduling group."""

    name: str
    min_cpus: int
    max_cpus: int
    memory_gb: float
    policy: Policy = "batch"

    def __post_init__(self) -> None:
        if not 0 <= self.min_cpus <= self.max_cpus:
            raise ValueError(
                f"block {self.name!r}: need 0 <= min_cpus <= max_cpus, "
                f"got {self.min_cpus}..{self.max_cpus}"
            )
        if self.max_cpus < 1:
            raise ValueError(f"block {self.name!r}: max_cpus must be >= 1")
        if self.memory_gb <= 0:
            raise ValueError(f"block {self.name!r}: memory limit must be positive")
        if self.policy not in POLICIES:
            raise ValueError(
                f"block {self.name!r}: unknown policy {self.policy!r}; "
                f"expected one of {POLICIES}"
            )
        self.cpus_in_use = 0
        self.memory_in_use_gb = 0.0

    def admits(self, cpus: int, memory_gb: float) -> bool:
        """Whether a job of this size fits the block right now."""
        if cpus < 1 or memory_gb < 0:
            raise ValueError(f"invalid job demand: {cpus} CPUs, {memory_gb} GB")
        return (
            self.cpus_in_use + cpus <= self.max_cpus
            and self.memory_in_use_gb + memory_gb <= self.memory_gb
        )

    def allocate(self, cpus: int, memory_gb: float) -> None:
        if not self.admits(cpus, memory_gb):
            raise ValueError(f"block {self.name!r} cannot admit {cpus} CPUs / {memory_gb} GB")
        self.cpus_in_use += cpus
        self.memory_in_use_gb += memory_gb

    def release(self, cpus: int, memory_gb: float) -> None:
        if cpus > self.cpus_in_use or memory_gb > self.memory_in_use_gb + 1e-12:
            raise ValueError(f"block {self.name!r}: releasing more than allocated")
        self.cpus_in_use -= cpus
        self.memory_in_use_gb -= memory_gb


@dataclass
class ResourceBlockSet:
    """A full node partitioning, validated against the node's resources."""

    blocks: list[ResourceBlock]
    node_cpus: int = 32
    node_memory_gb: float = 8.0

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ValueError("a block set needs at least one block")
        names = [b.name for b in self.blocks]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate block names: {names}")
        if sum(b.max_cpus for b in self.blocks) > self.node_cpus * len(self.blocks):
            # max_cpus may overlap across blocks (they share the pool),
            # but no single block may exceed the node.
            pass
        for block in self.blocks:
            if block.max_cpus > self.node_cpus:
                raise ValueError(
                    f"block {block.name!r} max_cpus {block.max_cpus} exceeds node "
                    f"size {self.node_cpus}"
                )
            if block.memory_gb > self.node_memory_gb:
                raise ValueError(
                    f"block {block.name!r} memory {block.memory_gb} GB exceeds node "
                    f"memory {self.node_memory_gb} GB"
                )
        if sum(b.min_cpus for b in self.blocks) > self.node_cpus:
            raise ValueError("guaranteed minimum CPUs exceed the node size")

    def place(self, cpus: int, memory_gb: float, policy: Policy = "batch") -> ResourceBlock:
        """Route a job to the first policy-matching block with room."""
        for block in self.blocks:
            if block.policy == policy and block.admits(cpus, memory_gb):
                block.allocate(cpus, memory_gb)
                return block
        raise ValueError(
            f"no {policy!r} block can admit a job of {cpus} CPUs / {memory_gb} GB"
        )

    @staticmethod
    def production_default(node_cpus: int = 32, node_memory_gb: float = 8.0) -> "ResourceBlockSet":
        """The Section 2.6.4 example: an interactive slice plus a static
        FIFO parallel area plus a vector-batch area."""
        return ResourceBlockSet(
            blocks=[
                ResourceBlock("interactive", 1, 4, 1.0, policy="interactive"),
                ResourceBlock("parallel-fifo", 0, node_cpus, node_memory_gb * 0.75, policy="fifo"),
                ResourceBlock("vector-batch", 0, node_cpus // 2, node_memory_gb * 0.5, policy="batch"),
            ],
            node_cpus=node_cpus,
            node_memory_gb=node_memory_gb,
        )
