"""Benchmark-as-a-service: an async job API over the content-addressed engine.

The engine made suite runs cacheable and incremental for one user on
one checkout; this package makes the same machinery multi-client.  A
long-running HTTP service accepts benchmark campaigns as jobs —
suite subsets (with optional fault plans) and design-space sweeps —
executes them through :func:`repro.engine.executor.run_engine` and
:func:`repro.explore.engine.cost_suite_grid`, and leans on content
addressing end to end:

``requests``
    canonical request bodies; the job id is a sha256 over them, so
    identical submissions collide onto the same job everywhere;
``resolve``
    the pure request→work mapping, registered as builder entry points
    so the effect analyzer proves the handler path deterministic;
``spool``
    the durable queue — every job journaled to the engine's
    :class:`~repro.engine.store.ChunkStore`, so a killed server
    resumes its backlog on restart, same ids, same results;
``tenants``
    per-tenant quotas, result TTLs, and cache isolation by
    construction (a store root per tenant);
``app``
    the HTTP surface and worker (transport-free, tests call it
    directly);
``server`` / ``client``
    the asyncio socket front end and the blocking stdlib client;
``cli``
    ``python -m repro.service serve|submit|status|gc``.

The headline property, inherited from the store: submitting the same
request twice returns byte-identical result payloads, and the second
submission is answered from the spool in one read (``cache: hit``)
without the executor ever running.
"""

from repro.service.app import ServiceApp
from repro.service.client import ServiceClient, ServiceError
from repro.service.requests import request_job_id, validate_request
from repro.service.spool import JobRecord, JobSpool
from repro.service.tenants import Tenant, TenantRegistry

__all__ = [
    "ServiceApp",
    "ServiceClient",
    "ServiceError",
    "request_job_id",
    "validate_request",
    "JobRecord",
    "JobSpool",
    "Tenant",
    "TenantRegistry",
]
