"""The service application: routing, admission, execution, observability.

:class:`ServiceApp` is the whole HTTP surface as one synchronous
``handle(method, path, body)`` function — the asyncio server
(:mod:`repro.service.server`) is a thin socket wrapper around it, and
tests (and the benchmark's direct mode) call it without a socket.

Request lifecycle::

    POST /v1/jobs
      -> validate_request     (400 on malformed bodies)
      -> tenant admission     (403 unknown tenant, 429 over quota)
      -> job id = request digest
      -> spool lookup:
           done     -> 200, ``cache: hit`` — no executor, one spool read
           unfinished -> 202, ``cache: pending`` — the existing handle
           absent   -> 202, ``cache: miss`` — journal + enqueue

The worker (``run_pending``; driven by the server's background task,
or called directly in tests) pops pending jobs and executes them
through the engine: suite jobs via
:func:`repro.engine.executor.run_engine` against the tenant's own
:class:`~repro.engine.store.ResultStore`, sweep jobs via
:func:`repro.explore.engine.cost_suite_grid` with the tenant's chunk
store.  Each job runs inside a :mod:`repro.perfmon` profile;
``GET /v1/jobs/{id}`` embeds a live snapshot of its counters and spans
while it runs, and ``GET /metrics`` serves the service-lifetime
counters in Prometheus exposition format.

Result payloads are deterministic by construction (experiment dicts
and digest maps only — timings live in record ``meta``), serialized
with sorted keys and compact separators: identical requests produce
byte-identical result responses, which tests and the CI service-smoke
job assert with a plain byte compare.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path

from repro.engine.executor import run_engine
from repro.engine.store import DEFAULT_STORE_ROOT, ResultStore
from repro.explore.engine import cost_suite_grid
from repro.faults.inject import FaultInjector, fault_point
from repro.faults.plan import FaultPlan
from repro.faults.retry import chaos_retry_policy
from repro.perfmon.collector import Profile
from repro.perfmon.collector import profile as perfmon_profile
from repro.perfmon.counters import declare_counters
from repro.perfmon.export import to_prometheus
from repro.service.requests import (
    DEFAULT_TENANT,
    RequestError,
    request_job_id,
    validate_request,
)
from repro.service.resolve import JOB_RESOLVERS
from repro.service.spool import DONE, FAILED, JobRecord, JobSpool
from repro.service.tenants import Tenant, TenantRegistry, tenant_store_root
from repro.suite.archive import experiment_to_dict

__all__ = [
    "RESULT_SCHEMA",
    "CACHE_HIT",
    "CACHE_MISS",
    "CACHE_PENDING",
    "Response",
    "ServiceApp",
    "json_response",
    "canonical_json_bytes",
]

RESULT_SCHEMA = 1

CACHE_HIT = "hit"
CACHE_MISS = "miss"
CACHE_PENDING = "pending"

declare_counters(
    "service",
    (
        "requests",  # every handled HTTP request
        "submissions",  # POST /v1/jobs admitted (hit or miss)
        "hits",  # submissions answered from a completed record
        "misses",  # submissions that created a new job
        "completed",  # jobs finished successfully
        "failed",  # jobs finished in failure
        "quota_rejections",  # submissions bounced by tenant quotas
        "bad_requests",  # malformed submissions (HTTP 400)
        "swept",  # job records dropped by TTL sweeps
    ),
)


@dataclass(frozen=True)
class Response:
    """One HTTP response, transport-agnostic."""

    status: int
    body: bytes
    content_type: str = "application/json"


def canonical_json_bytes(payload: dict) -> bytes:
    """Sorted-key compact JSON — the byte-identity serialization."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def json_response(status: int, payload: dict) -> Response:
    return Response(status=status, body=canonical_json_bytes(payload))


def _error(status: int, message: str) -> Response:
    return json_response(status, {"error": message})


class ServiceApp:
    """Benchmark-as-a-service over the content-addressed engine."""

    def __init__(
        self,
        root: str | Path = DEFAULT_STORE_ROOT,
        tenants: TenantRegistry | None = None,
        jobs: int = 1,
        injector: FaultInjector | None = None,
        clock=time.time,
    ) -> None:
        self.root = Path(root)
        self.spool = JobSpool(self.root)
        self.tenants = tenants if tenants is not None else TenantRegistry()
        self.jobs = jobs
        self.injector = injector
        self.clock = clock
        #: (tenant, job_id) FIFO the worker drains.
        self.queue: deque[tuple[str, str]] = deque()
        #: live per-job profiles, for progress snapshots while running.
        self.job_profiles: dict[str, Profile] = {}
        #: service-lifetime profile behind ``GET /metrics``.
        self.profile = Profile(meta={"service": "repro", "root": str(self.root)})
        self.started_at = self.clock()

    # ------------------------------------------------------------ counters
    def _count(self, **increments: float) -> None:
        self.profile.counters.add_many(
            "service", {name: float(value) for name, value in increments.items()}
        )

    # ------------------------------------------------------------ recovery
    def recover(self) -> list[JobRecord]:
        """Re-enqueue unfinished spool records (startup resume path)."""
        resumed = self.spool.recover()
        for record in resumed:
            self.queue.append((record.tenant, record.job_id))
        return resumed

    # ------------------------------------------------------------ routing
    def handle(self, method: str, path: str, body: bytes = b"") -> Response:
        """Dispatch one request; never raises for client-side faults."""
        self._count(requests=1.0)
        path, _, query = path.partition("?")
        params = _parse_query(query)
        parts = [p for p in path.split("/") if p]
        try:
            if method == "POST" and parts == ["v1", "jobs"]:
                return self.submit(body)
            if method == "GET" and len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                return self.job_status(parts[2], params.get("tenant"))
            if (
                method == "GET"
                and len(parts) == 4
                and parts[:2] == ["v1", "jobs"]
                and parts[3] == "result"
            ):
                return self.job_result(parts[2], params.get("tenant"))
            if method == "GET" and parts == ["v1", "jobs"]:
                return self.list_jobs(params.get("tenant"))
            if method == "GET" and len(parts) == 3 and parts[:2] == ["v1", "results"]:
                return self.result_by_digest(parts[2], params.get("tenant"))
            if method == "GET" and parts == ["metrics"]:
                return self.metrics()
            if method == "GET" and parts == ["v1", "health"]:
                return self.health()
        except Exception as exc:  # a handler bug must not kill the server
            return _error(500, f"{type(exc).__name__}: {exc}")
        return _error(404, f"no route for {method} /{'/'.join(parts)}")

    # ------------------------------------------------------------ handlers
    def submit(self, body: bytes) -> Response:
        try:
            parsed = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, ValueError):
            self._count(bad_requests=1.0)
            return _error(400, "request body is not valid JSON")
        try:
            request = validate_request(parsed)
        except RequestError as exc:
            self._count(bad_requests=1.0)
            return _error(400, str(exc))

        tenant = self.tenants.get(request["tenant"])
        if tenant is None:
            return _error(
                403,
                f"unknown tenant {request['tenant']!r}; provisioned: "
                f"{', '.join(self.tenants.names())}",
            )

        job_id = request_job_id(request)
        action = fault_point("service_submit", self.injector, job_id)
        if action is not None:
            if action.kind == "slow":
                time.sleep(action.delay_s)
            else:
                return _error(503, "injected service fault (chaos harness)")

        existing = self.spool.get(tenant.name, job_id)
        if existing is not None and existing.state == DONE:
            # The content-addressed fast path: one spool read, no
            # executor, no queue — the "costs ~0" case.
            self._count(submissions=1.0, hits=1.0)
            return json_response(
                200, self._submission_payload(existing, CACHE_HIT)
            )
        if existing is not None and not existing.finished:
            self._count(submissions=1.0)
            return json_response(
                202, self._submission_payload(existing, CACHE_PENDING)
            )

        counts = self.spool.counts(tenant.name)
        unfinished = counts["pending"] + counts["running"]
        if existing is None and unfinished >= tenant.max_pending:
            self._count(quota_rejections=1.0)
            return _error(
                429,
                f"tenant {tenant.name!r} has {unfinished} unfinished jobs "
                f"(quota {tenant.max_pending})",
            )
        if existing is None and counts["total"] >= tenant.max_records:
            self._count(quota_rejections=1.0)
            return _error(
                429,
                f"tenant {tenant.name!r} holds {counts['total']} job records "
                f"(quota {tenant.max_records}); run gc or raise the quota",
            )

        record = JobRecord(
            job_id=job_id,
            tenant=tenant.name,
            request=request,
            submitted_at=self.clock(),
            attempts=existing.attempts if existing is not None else 0,
        )
        self.spool.put(record)
        self.queue.append((tenant.name, job_id))
        self._count(submissions=1.0, misses=1.0)
        return json_response(202, self._submission_payload(record, CACHE_MISS))

    def _submission_payload(self, record: JobRecord, cache: str) -> dict:
        return {
            "job_id": record.job_id,
            "kind": record.kind,
            "tenant": record.tenant,
            "state": record.state,
            "cache": cache,
            "links": {
                "status": f"/v1/jobs/{record.job_id}?tenant={record.tenant}",
                "result": f"/v1/jobs/{record.job_id}/result?tenant={record.tenant}",
            },
        }

    def _lookup(self, job_id: str, tenant: str | None) -> JobRecord | None:
        return self.spool.get(tenant or DEFAULT_TENANT, job_id)

    def job_status(self, job_id: str, tenant: str | None) -> Response:
        record = self._lookup(job_id, tenant)
        if record is None:
            return _error(404, f"no job {job_id!r} for tenant {tenant or DEFAULT_TENANT!r}")
        payload = {
            "job_id": record.job_id,
            "kind": record.kind,
            "tenant": record.tenant,
            "state": record.state,
            "attempts": record.attempts,
            "submitted_at": record.submitted_at,
            "finished_at": record.finished_at,
            "expires_at": record.expires_at,
            "error": record.error,
            "meta": record.meta,
        }
        live = self.job_profiles.get(record.job_id)
        if live is not None:
            payload["progress"] = _progress_snapshot(live)
        return json_response(200, payload)

    def job_result(self, job_id: str, tenant: str | None) -> Response:
        record = self._lookup(job_id, tenant)
        if record is None:
            return _error(404, f"no job {job_id!r} for tenant {tenant or DEFAULT_TENANT!r}")
        if record.state == FAILED:
            return _error(500, record.error or "job failed")
        if record.result is None:
            return json_response(
                202,
                {"job_id": record.job_id, "state": record.state,
                 "error": "result not ready"},
            )
        return Response(status=200, body=canonical_json_bytes(record.result))

    def list_jobs(self, tenant: str | None) -> Response:
        name = tenant or DEFAULT_TENANT
        if self.tenants.get(name) is None:
            return _error(403, f"unknown tenant {name!r}")
        records = self.spool.records(name)
        return json_response(
            200,
            {
                "tenant": name,
                "jobs": [
                    {"job_id": r.job_id, "kind": r.kind, "state": r.state}
                    for r in records
                ],
                "counts": self.spool.counts(name),
            },
        )

    def result_by_digest(self, digest: str, tenant: str | None) -> Response:
        """Direct content-addressed read: one store get, no job needed."""
        name = tenant or DEFAULT_TENANT
        if self.tenants.get(name) is None:
            return _error(403, f"unknown tenant {name!r}")
        store = ResultStore(tenant_store_root(self.root, name))
        for entry in store.entries():
            if entry.key != digest:
                continue
            cached = store.get(_entry_digest(entry.exp_id, entry.key))
            if cached is None:
                break  # corrupt: quarantined on read, report a miss
            return json_response(
                200,
                {
                    "schema": RESULT_SCHEMA,
                    "digest": digest,
                    "exp_id": cached.exp_id,
                    "cache": CACHE_HIT,
                    "experiment": experiment_to_dict(cached.experiment),
                },
            )
        return _error(404, f"no result under digest {digest!r} for tenant {name!r}")

    def metrics(self) -> Response:
        return Response(
            status=200,
            body=to_prometheus(self.profile).encode("utf-8"),
            content_type="text/plain; version=0.0.4",
        )

    def health(self) -> Response:
        return json_response(
            200,
            {
                "status": "ok",
                "pending": len(self.queue),
                "running": sorted(self.job_profiles),
                "tenants": list(self.tenants.names()),
            },
        )

    # ------------------------------------------------------------ worker
    def next_pending(self) -> tuple[str, str] | None:
        try:
            return self.queue.popleft()
        except IndexError:
            return None

    def run_pending(self, max_jobs: int | None = None) -> int:
        """Drain the queue (the worker loop body); returns jobs run."""
        ran = 0
        while max_jobs is None or ran < max_jobs:
            item = self.next_pending()
            if item is None:
                break
            tenant, job_id = item
            self.run_one(tenant, job_id)
            ran += 1
        return ran

    def run_one(self, tenant_name: str, job_id: str) -> JobRecord | None:
        """Execute one journaled job through the engine."""
        record = self.spool.get(tenant_name, job_id)
        if record is None or record.finished:
            return record
        tenant = self.tenants.get(tenant_name) or Tenant(name=tenant_name)
        record = self.spool.mark_running(record)
        with perfmon_profile(job_id=job_id, tenant=tenant_name) as prof:
            self.job_profiles[job_id] = prof
            try:
                result, meta = self._execute(record)
            except Exception as exc:
                self.job_profiles.pop(job_id, None)
                self._count(failed=1.0)
                return self.spool.mark_failed(
                    record,
                    error=f"{type(exc).__name__}: {exc}",
                    meta={"attempts": record.attempts},
                    now=self.clock(),
                    ttl_s=tenant.result_ttl_s,
                )
            finally:
                self.job_profiles.pop(job_id, None)
        meta["perfmon"] = _progress_snapshot(prof)
        if result is None:
            self._count(failed=1.0)
            return self.spool.mark_failed(
                record,
                error=str(meta.get("failures") or "job failed"),
                meta=meta,
                now=self.clock(),
                ttl_s=tenant.result_ttl_s,
            )
        self._count(completed=1.0)
        return self.spool.mark_done(
            record,
            result=result,
            meta=meta,
            now=self.clock(),
            ttl_s=tenant.result_ttl_s,
        )

    # ------------------------------------------------------------ executors
    def _execute(self, record: JobRecord) -> tuple[dict | None, dict]:
        kind = record.kind
        payload = record.request.get(kind, {})
        if kind == "suite":
            return self._execute_suite(record, payload)
        if kind == "sweep":
            return self._execute_sweep(record, payload)
        raise ValueError(f"unknown job kind {kind!r}; know {', '.join(JOB_RESOLVERS)}")

    def _execute_suite(self, record: JobRecord, payload: dict) -> tuple[dict | None, dict]:
        exp_ids = JOB_RESOLVERS["suite"](payload)
        store = ResultStore(tenant_store_root(self.root, record.tenant))
        injector = retry = None
        if payload.get("fault_plan") is not None:
            injector = FaultPlan.from_dict(payload["fault_plan"]).injector()
            retry = chaos_retry_policy()
        report = run_engine(
            exp_ids, jobs=self.jobs, store=store, retry=retry, injector=injector
        )
        meta = {
            "cache": report.cache_counts(),
            "plan": report.plan.counts(),
            "wall_s": report.wall_s,
            "attempts": record.attempts,
            "retry_rounds": report.retry_rounds,
        }
        if report.failures:
            meta["failures"] = [f.summary_line() for f in report.failures]
            return None, meta
        digests = {e.exp_id: e.digest.key for e in report.plan.entries}
        result = {
            "schema": RESULT_SCHEMA,
            "kind": "suite",
            "job_id": record.job_id,
            "tenant": record.tenant,
            "exp_ids": list(exp_ids),
            "digests": {exp_id: digests[exp_id] for exp_id in exp_ids},
            "experiments": [
                experiment_to_dict(r.experiment) for r in report.successes
            ],
        }
        return result, meta

    def _execute_sweep(self, record: JobRecord, payload: dict) -> tuple[dict, dict]:
        from repro.engine.store import ChunkStore

        sweep = JOB_RESOLVERS["sweep"](payload)
        grid = sweep.build()
        trace_ids = tuple(payload.get("traces") or ()) or None
        chunk_store = ChunkStore(tenant_store_root(self.root, record.tenant))
        start = time.perf_counter()
        outcome = cost_suite_grid(
            grid,
            trace_ids=trace_ids,
            memory_dilation=float(payload.get("dilation", 1.0)),
            store=chunk_store,
        )
        meta = {
            "wall_s": time.perf_counter() - start,
            "attempts": record.attempts,
            "n_machines": outcome.n_machines,
        }
        result = {
            "schema": RESULT_SCHEMA,
            "kind": "sweep",
            "job_id": record.job_id,
            "tenant": record.tenant,
            "anchor": payload.get("anchor", "sx4"),
            "n_machines": outcome.n_machines,
            "trace_ids": list(outcome.trace_ids),
            "machines": [
                {
                    "name": outcome.machine_names[i],
                    "suite_seconds": float(outcome.suite_seconds[i]),
                    "suite_mflops": float(outcome.suite_mflops[i]),
                    "suite_bandwidth_bytes_per_s": float(
                        outcome.suite_bandwidth_bytes_per_s[i]
                    ),
                }
                for i in range(outcome.n_machines)
            ],
        }
        return result, meta

    # ------------------------------------------------------------ hygiene
    def sweep_expired(self, now: float | None = None) -> int:
        """TTL sweep over every tenant's finished job records."""
        swept = self.spool.sweep_expired(self.clock() if now is None else now)
        if swept:
            self._count(swept=float(len(swept)))
        return len(swept)


def _parse_query(query: str) -> dict[str, str]:
    params: dict[str, str] = {}
    for pair in query.split("&"):
        if not pair:
            continue
        key, _, value = pair.partition("=")
        params[key] = value
    return params


def _entry_digest(exp_id: str, key: str):
    from repro.engine.deps import ExperimentDigest

    return ExperimentDigest(exp_id=exp_id, key=key, modules=())


def _progress_snapshot(prof: Profile) -> dict:
    """A point-in-time view of a job profile, safe to take mid-run."""
    spans = list(prof.spans)
    finished = [s for s in spans if s.end_s is not None]
    return {
        "counters": prof.counters.to_dict(),
        "spans_finished": len(finished),
        "spans_open": [s.name for s in spans if s.end_s is None],
        "last_span": finished[-1].name if finished else None,
        "cache_hits": sum(
            1 for s in finished if s.attrs.get("cache") == "hit"
        ),
    }
